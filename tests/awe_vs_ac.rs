//! AWE reduced-order models vs direct per-frequency complex solves, on
//! the *linearized benchmark circuits themselves* — the paper's claim
//! that AWE "yields accurate results without manual circuit analysis"
//! at a fraction of the cost.

use astrx_oblx::astrx::determined_voltages;
use astrx_oblx::bench_suite;
use oblx_linalg::Complex;
use oblx_mna::{solve_dc_with, DcOptions, LinearSystem, SizedCircuit};

/// Builds the ac jig `LinearSystem` of a benchmark at the default
/// sizing, biased by a true Newton solve.
fn jig_system(name: &str) -> (LinearSystem, String, oblx_mna::OutputSelector) {
    let b = bench_suite::by_name(name).expect("benchmark");
    let compiled = astrx_oblx::astrx::compile(b.problem().expect("parses")).expect("compiles");
    let user = compiled.initial_user_values();
    let vars = compiled.var_map(&user);
    let bias = SizedCircuit::build(&compiled.bias_netlist, &vars, &compiled.lib).expect("bias");
    let opts = DcOptions {
        abstol_i: 1e-8,
        max_iters: 300,
        ..DcOptions::default()
    };
    let op = solve_dc_with(&bias, &opts, None).expect("newton");
    let _ = determined_voltages(&bias);

    let jig = &compiled.jigs[0];
    let ckt = SizedCircuit::build(&jig.netlist, &vars, &compiled.lib).expect("jig");
    let mos: Vec<_> = ckt
        .mosfets
        .iter()
        .map(|m| {
            let i = bias
                .mosfets
                .iter()
                .position(|bm| bm.name == m.name)
                .expect("bias counterpart");
            op.mos_ops[i]
        })
        .collect();
    let bjt: Vec<_> = ckt
        .bjts
        .iter()
        .map(|q| {
            let i = bias
                .bjts
                .iter()
                .position(|bq| bq.name == q.name)
                .expect("bias counterpart");
            op.bjt_ops[i]
        })
        .collect();
    let diode: Vec<_> = ckt
        .diodes
        .iter()
        .map(|d| {
            let i = bias
                .diodes
                .iter()
                .position(|bd| bd.name == d.name)
                .expect("bias counterpart");
            op.diode_ops[i]
        })
        .collect();
    let sys = LinearSystem::from_device_ops(&ckt, &mos, &bjt, &diode);
    let a = &jig.analyses[0];
    let out = sys
        .output_selector(&a.out_p, a.out_m.as_deref())
        .expect("probe");
    (sys, a.source.clone(), out)
}

#[test]
fn awe_tracks_ac_sweep_on_every_benchmark_jig() {
    for name in [
        "Simple OTA",
        "OTA",
        "Two-Stage",
        "Folded Cascode",
        "Comparator",
        "BiCMOS Two-Stage",
        "Novel Folded Cascode",
    ] {
        let (sys, src, out) = jig_system(name);
        let model = oblx_awe::analyze(&sys, &src, out, 5).expect("awe model");

        // dc gain must agree to numerical precision (µ0 is exact).
        let h0 = sys.transfer(&src, out, 0.0).expect("dc solve").norm();
        assert!(
            (model.dc_gain() - h0).abs() <= 1e-9 * h0.max(1e-12),
            "{name}: dc gain awe {} vs ac {}",
            model.dc_gain(),
            h0
        );

        // Magnitude must track the direct solve from dc through the
        // unity-gain region (where all specs live); deep in the
        // stopband (past the crossing, gain ≪ 1) the truncated model
        // is allowed a looser band — nothing is measured there.
        let ugf = oblx_awe::unity_gain_frequency(&model);
        let f_spec = if ugf > 0.0 && ugf < 1e11 {
            1.5 * ugf
        } else {
            // No unity crossing at this sizing: the measured region is
            // dc through a decade past the dominant pole.
            model
                .dominant_pole()
                .map(|p| 10.0 * p.norm() / (2.0 * std::f64::consts::PI))
                .unwrap_or(1e6)
                .clamp(1e3, 1e8)
        };
        let f_hi = 2.0 * f_spec;
        let points = 25;
        for i in 0..points {
            let f = 10f64.powf(1.0 + (f_hi.log10() - 1.0) * i as f64 / (points - 1) as f64);
            let w = 2.0 * std::f64::consts::PI * f;
            let exact = sys.transfer(&src, out, w).expect("solve").norm();
            let approx = model.eval(Complex::new(0.0, w)).norm();
            let rel = (exact - approx).abs() / exact.max(1e-12);
            if f <= f_spec {
                assert!(
                    rel < 0.05,
                    "{name}: f = {f:.3e} Hz, awe {approx:.4e} vs ac {exact:.4e} ({:.2}%)",
                    100.0 * rel
                );
            } else {
                // Past the measurement region: either still tracking
                // (near the crossing), or both deep in the stopband (no
                // measured quantity lives there; the truncated far
                // poles are free to differ).
                assert!(
                    rel < 0.15 || (approx < 0.2 && exact < 0.2),
                    "{name}: f = {f:.3e} Hz, awe {approx:.4e} vs ac {exact:.4e} ({:.2}%)",
                    100.0 * rel
                );
            }
        }
    }
}

#[test]
fn awe_ugf_and_pm_match_simulator_measurements() {
    for name in ["Simple OTA", "Two-Stage", "BiCMOS Two-Stage"] {
        let (sys, src, out) = jig_system(name);
        let model = oblx_awe::analyze(&sys, &src, out, 5).expect("model");
        let ugf_awe = oblx_awe::unity_gain_frequency(&model);
        let ugf_ac = oblx_mna::ac::unity_gain_frequency(&sys, &src, out).expect("ac ugf");
        if ugf_ac > 0.0 && ugf_ac < 1e11 {
            let rel = (ugf_awe - ugf_ac).abs() / ugf_ac;
            assert!(
                rel < 0.02,
                "{name}: ugf awe {ugf_awe:.4e} vs ac {ugf_ac:.4e}"
            );
            let pm_awe = oblx_awe::phase_margin(&model);
            let pm_ac = oblx_mna::ac::phase_margin(&sys, &src, out).expect("ac pm");
            assert!(
                (pm_awe - pm_ac).abs() < 3.0,
                "{name}: pm awe {pm_awe:.2} vs ac {pm_ac:.2}"
            );
        }
    }
}

/// The economics: one AWE analysis must cost a small fraction of a
/// 30-point ac sweep on the same system (both use the same matrices).
#[test]
fn awe_is_cheaper_than_an_ac_sweep() {
    let (sys, src, out) = jig_system("Folded Cascode");
    use std::time::Instant;

    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..20 {
        let m = oblx_awe::analyze(&sys, &src, out, 5).expect("model");
        acc += m.dc_gain();
    }
    let awe_time = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    for _ in 0..20 {
        for i in 0..30 {
            let f = 10f64.powf(1.0 + 8.0 * i as f64 / 29.0);
            acc += sys
                .transfer(&src, out, 2.0 * std::f64::consts::PI * f)
                .expect("solve")
                .norm();
        }
    }
    let sweep_time = t1.elapsed().as_secs_f64();
    assert!(acc.is_finite());
    assert!(
        awe_time < sweep_time / 3.0,
        "awe {awe_time:.4}s vs 30-pt sweep {sweep_time:.4}s"
    );
}
