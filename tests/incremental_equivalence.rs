//! Property test for the precompiled-plan evaluator: after an arbitrary
//! sequence of single-variable, multi-variable and node-voltage moves —
//! including exact revisits that hit the state cache — the persistent
//! incremental evaluator must report the same `CostBreakdown` as a
//! from-scratch full evaluation of the final state, component by
//! component, within 1e-12 relative.

use astrx_oblx::cost::{CostBreakdown, CostEvaluator};
use astrx_oblx::{AdaptiveWeights, CompiledProblem};
use proptest::prelude::*;

const DIFFAMP: &str = include_str!("../crates/core/src/testdata/diffamp.ox");

fn compiled() -> CompiledProblem {
    astrx_oblx::astrx::compile_source(DIFFAMP).expect("diffamp compiles")
}

fn close(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

fn check_equal(plan: &CostBreakdown, full: &CostBreakdown) -> Result<(), TestCaseError> {
    prop_assert!(plan.failed == full.failed, "failed flag diverged");
    for (name, a, b) in [
        ("c_obj", plan.c_obj, full.c_obj),
        ("c_perf", plan.c_perf, full.c_perf),
        ("c_dev", plan.c_dev, full.c_dev),
        ("c_dc", plan.c_dc, full.c_dc),
        ("total", plan.total, full.total),
        ("kcl_max", plan.kcl_max, full.kcl_max),
    ] {
        prop_assert!(close(a, b), "{name}: incremental {a} vs full {b}");
    }
    for (vec_name, pv, fv) in [
        ("measured", &plan.measured, &full.measured),
        ("violation", &plan.violation, &full.violation),
        ("kcl_violation", &plan.kcl_violation, &full.kcl_violation),
    ] {
        prop_assert!(pv.len() == fv.len(), "{vec_name} length diverged");
        for (i, (a, b)) in pv.iter().zip(fv.iter()).enumerate() {
            prop_assert!(
                close(*a, *b),
                "{vec_name}[{i}]: incremental {a} vs full {b}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Replay a pseudo-random move sequence through one persistent
    /// evaluator (exercising its incremental, plan-full and cached
    /// paths) and cross-check every visited state against the cold
    /// full-rebuild path of a second evaluator.
    #[test]
    fn prop_incremental_matches_full_after_move_sequence(seed in 0u64..10_000) {
        let c = compiled();
        let mut ev = CostEvaluator::new(&c);
        prop_assert!(ev.has_plan(), "diffamp must compile to an eval plan");
        let cold = CostEvaluator::new(&c);
        let w = AdaptiveWeights::new(&c);

        // Deterministic pseudo-random walk from the seed.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };

        let mut user = c.initial_user_values();
        let mut nodes: Vec<f64> = (0..c.node_vars.len()).map(|_| -1.0 + 7.0 * next()).collect();
        let mut visited: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();

        for _ in 0..24 {
            // Pick a move kind; occasionally revisit an old state
            // exactly, which must be served from the slot cache.
            let kind = (next() * 5.0) as usize;
            match kind {
                0 if !visited.is_empty() => {
                    let k = (next() * visited.len() as f64) as usize % visited.len();
                    let (u, n) = visited[k].clone();
                    user = u;
                    nodes = n;
                }
                1 => {
                    // Single user variable, in range.
                    let i = (next() * user.len() as f64) as usize % user.len();
                    let v = &c.user_vars[i];
                    let r = next();
                    user[i] = if v.min > 0.0 {
                        v.min * (v.max / v.min).powf(r)
                    } else {
                        v.min + r * (v.max - v.min)
                    };
                }
                2 => {
                    // A couple of user variables at once.
                    for _ in 0..2 {
                        let i = (next() * user.len() as f64) as usize % user.len();
                        let v = &c.user_vars[i];
                        let r = next();
                        user[i] = if v.min > 0.0 {
                            v.min * (v.max / v.min).powf(r)
                        } else {
                            v.min + r * (v.max - v.min)
                        };
                    }
                }
                3 => {
                    // Single node voltage — the incremental sweet spot.
                    if !nodes.is_empty() {
                        let k = (next() * nodes.len() as f64) as usize % nodes.len();
                        nodes[k] = -1.0 + 7.0 * next();
                    }
                }
                _ => {
                    // Jitter all nodes.
                    for v in nodes.iter_mut() {
                        *v += 0.2 * (next() - 0.5);
                    }
                }
            }
            visited.push((user.clone(), nodes.clone()));

            let plan_path = ev.try_evaluate(&user, &nodes, &w);
            let full_path = cold
                .record(&user, &nodes)
                .and_then(|r| cold.cost_of_record(&r, &w));
            match (plan_path, full_path) {
                (Ok(p), Ok(f)) => check_equal(&p, &f)?,
                (Err(_), Err(_)) => {}
                (p, f) => prop_assert!(
                    false,
                    "paths disagree on evaluability: plan {:?} vs full {:?}",
                    p.map(|b| b.total),
                    f.map(|b| b.total)
                ),
            }
        }

        // The walk above must actually have exercised the fast paths.
        let stats = ev.stats();
        prop_assert!(stats.total() > 0);
    }
}
