//! Regression: an AWE model whose every pole sits in the right half
//! plane must surface as an evaluation *failure*, not silently satisfy
//! magnitude-only specs.
//!
//! Pre-fix behaviour: the negative-resistance jig below fits a single
//! RHP pole at +1/(RC).  Its magnitude response is identical to the
//! stable mirror-image pole, so `ugf(tf)` evaluated to ≈16 kHz, the
//! spec was "met", and the annealer happily kept an unstable circuit.
//! Post-fix, `analyze` rejects the all-RHP model with
//! `AweError::NoModel`, which the cost layer maps to the failure cliff.

use astrx_oblx::cost::{CostEvaluator, EvalFailure, FAILURE_COST};
use astrx_oblx::AdaptiveWeights;

/// A VCVS driving an RC whose load conductance is made *negative* by a
/// VCCS (g_net = 1/(1000R) − 2m/R = −1m/R): one pole at +1000/R rad/s,
/// dc gain −100.  |H(jω)| matches the stable mirror circuit exactly;
/// only the pole sign differs.
const RHP_DECK: &str = "\
.title all-RHP silent-failure regression
.var R 0.5 2 lin cont

.jig rhp
vin in 0 0 ac 1
e1 x 0 in 0 100
r1 x out '1000*R'
c1 out 0 1u
g1 out 0 out 0 '-0.002/R'
.pz tf v(out) vin
.endjig

.bias
v1 a 0 1
rb a 0 1k
.endbias

.spec ugf 'ugf(tf)' good=100 bad=1
";

#[test]
fn all_rhp_model_is_an_eval_failure_not_a_met_spec() {
    let c = astrx_oblx::astrx::compile_source(RHP_DECK).expect("deck compiles");
    let mut ev = CostEvaluator::new(&c);
    let user = c.initial_user_values();
    let nodes = vec![0.0; c.node_vars.len()];
    let w = AdaptiveWeights::new(&c);

    // Surfacing path: the AWE rejection is visible as an Awe failure.
    let err = ev
        .try_evaluate(&user, &nodes, &w)
        .expect_err("all-RHP transfer function must not evaluate");
    assert!(
        matches!(err, EvalFailure::Awe(_)),
        "expected an AWE failure, got: {err}"
    );

    // Annealer-facing path: the failure cliff, not a near-zero cost.
    let b = ev.evaluate(&user, &nodes, &w);
    assert!(b.failed, "breakdown must be flagged failed");
    assert_eq!(b.total, FAILURE_COST);
}

#[test]
fn stable_mirror_of_the_jig_still_evaluates() {
    // Flip the VCCS sign so g_net = +3m/R: same |H| shape, pole now in
    // the LHP.  This must keep evaluating cleanly, proving the guard
    // keys on pole location rather than rejecting the topology.
    let deck = RHP_DECK.replace("'-0.002/R'", "'0.002/R'");
    let c = astrx_oblx::astrx::compile_source(&deck).expect("deck compiles");
    let mut ev = CostEvaluator::new(&c);
    let user = c.initial_user_values();
    let nodes = vec![0.0; c.node_vars.len()];
    let w = AdaptiveWeights::new(&c);

    let b = ev
        .try_evaluate(&user, &nodes, &w)
        .expect("stable jig evaluates");
    assert!(!b.failed);
    // ugf ≈ 100·1000/(2π·R) Hz — comfortably above the 100 Hz spec.
    assert!(b.measured[0] > 1.0e3, "ugf = {}", b.measured[0]);
}
