//! Property-style invariants across the benchmark suite and the cost
//! function.

use astrx_oblx::bench_suite;
use astrx_oblx::cost::CostEvaluator;
use astrx_oblx::AdaptiveWeights;
use proptest::prelude::*;

/// Every benchmark compiles and its Table 1 statistics satisfy the
/// paper's structural claims.
#[test]
fn table1_shape_claims_hold() {
    for b in bench_suite::all() {
        let c = astrx_oblx::astrx::compile(b.problem().expect("parses"))
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let s = &c.stats;
        // Tens of lines of input, not thousands of lines of code.
        assert!(
            s.netlist_lines + s.synthesis_lines < 150,
            "{}: {} input lines",
            b.name,
            s.netlist_lines + s.synthesis_lines
        );
        // Relaxed-dc adds at least as many variables as the user wrote
        // (device templates carry internal nodes).
        assert!(
            s.node_vars >= s.user_vars,
            "{}: node vars {} < user vars {}",
            b.name,
            s.node_vars,
            s.user_vars
        );
        // Terms count covers every goal, device, and KCL constraint.
        assert!(s.terms > s.user_vars, "{}", b.name);
        // The generated C is in the thousand-line class the paper
        // reports, scaling with circuit size.
        assert!(
            s.c_lines > 800 && s.c_lines < 10_000,
            "{}: {} C lines",
            b.name,
            s.c_lines
        );
        // AWE circuit is bigger than the bias circuit in elements
        // (linearized templates), same nodes modulo jig sources.
        let (bn, be) = s.bias_size;
        let (an, ae) = s.awe_sizes[0];
        assert!(ae > be, "{}: awe {ae} <= bias {be} elements", b.name);
        assert!(an >= bn.saturating_sub(6), "{}", b.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The cost function is total: any in-range variable assignment and
    /// any node-voltage vector in the exploration box evaluates to a
    /// finite cost (possibly the failure cost, never NaN/∞ or a panic).
    #[test]
    fn prop_cost_total_over_design_space(seed in 0u64..1000) {
        let b = bench_suite::simple_ota();
        let c = astrx_oblx::astrx::compile(b.problem().expect("parses")).expect("compiles");
        let mut ev = CostEvaluator::new(&c);
        let w = AdaptiveWeights::new(&c);

        // Deterministic pseudo-random point from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let user: Vec<f64> = c
            .user_vars
            .iter()
            .map(|v| {
                let r = next();
                if v.min > 0.0 {
                    v.min * (v.max / v.min).powf(r)
                } else {
                    v.min + r * (v.max - v.min)
                }
            })
            .collect();
        let nodes: Vec<f64> = (0..c.node_vars.len()).map(|_| -1.0 + 7.0 * next()).collect();

        let breakdown = ev.evaluate(&user, &nodes, &w);
        prop_assert!(breakdown.total.is_finite());
        prop_assert!(breakdown.c_dc >= 0.0);
        prop_assert!(breakdown.c_perf >= 0.0);
        prop_assert!(breakdown.c_dev >= 0.0);
    }

    /// Monotone KCL penalty: scaling up every free-node residual by
    /// moving voltages further from a Kirchhoff-correct point never
    /// decreases `C^dc`.
    #[test]
    fn prop_kcl_penalty_grows_with_displacement(step in 1usize..8) {
        let b = bench_suite::simple_ota();
        let c = astrx_oblx::astrx::compile(b.problem().expect("parses")).expect("compiles");
        let mut ev = CostEvaluator::new(&c);
        let w = AdaptiveWeights::new(&c);
        let user = c.initial_user_values();

        // Start from the Newton point.
        let vars = c.var_map(&user);
        let bias = oblx_mna::SizedCircuit::build(&c.bias_netlist, &vars, &c.lib).expect("bias");
        let opts = oblx_mna::DcOptions { abstol_i: 1e-8, max_iters: 300, ..Default::default() };
        let op = oblx_mna::solve_dc_with(&bias, &opts, None).expect("newton");
        let det = astrx_oblx::astrx::determined_voltages(&bias);
        let nodes: Vec<f64> = det
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| op.v[i])
            .collect();

        let mut last = ev.try_evaluate(&user, &nodes, &w).expect("eval").c_dc;
        for k in 1..=step {
            let moved: Vec<f64> = nodes.iter().map(|v| v + 0.1 * k as f64).collect();
            let c_dc = ev.try_evaluate(&user, &moved, &w).expect("eval").c_dc;
            prop_assert!(c_dc + 1e-9 >= last,
                "displacement {k}: c_dc {c_dc} < previous {last}");
            last = c_dc;
        }
    }
}
