//! End-to-end synthesis: description text → ASTRX → OBLX → independent
//! verification, on the real benchmark suite.

use astrx_oblx::bench_suite;
use astrx_oblx::oblx::{synthesize, SynthesisOptions};
use astrx_oblx::verify::verify_result;
use oblx_netlist::SpecKind;

fn run(
    name: &str,
    moves: usize,
    seed: u64,
) -> (
    astrx_oblx::CompiledProblem,
    astrx_oblx::oblx::SynthesisResult,
) {
    let b = bench_suite::by_name(name).expect("benchmark exists");
    let compiled = astrx_oblx::astrx::compile(b.problem().expect("parses")).expect("compiles");
    let result = synthesize(
        &compiled,
        &SynthesisOptions {
            moves_budget: moves,
            seed,
            quench_patience: 500,
            ..SynthesisOptions::default()
        },
    )
    .expect("synthesis completes");
    (compiled, result)
}

#[test]
fn simple_ota_synthesis_meets_most_constraints() {
    let (compiled, result) = run("Simple OTA", 15_000, 1);

    // The relaxed-dc formulation must end dc-correct.
    assert!(result.kcl_max < 1e-8, "kcl = {:.3e}", result.kcl_max);

    // Count met constraints at the synthesized point.
    let mut met = 0;
    let mut total = 0;
    for (goal, value) in compiled
        .problem
        .specs
        .iter()
        .zip(result.breakdown.measured.iter())
    {
        if goal.kind == SpecKind::Constraint {
            total += 1;
            let z = astrx_oblx::cost::normalized(goal, *value);
            if z <= 0.05 {
                met += 1;
            }
        }
    }
    assert!(
        met * 10 >= total * 8,
        "at least 80% of constraints met: {met}/{total}"
    );

    // Verification through the full simulator agrees with AWE almost
    // exactly (the paper's accuracy claim).
    let verified = verify_result(&compiled, &result).expect("verifies");
    assert!(
        verified.worst_relative_error() < 0.05,
        "worst OBLX-vs-sim error {:.2}%",
        100.0 * verified.worst_relative_error()
    );
}

#[test]
fn two_stage_synthesis_converges_dc_and_verifies() {
    let (compiled, result) = run("Two-Stage", 12_000, 2);
    assert!(result.kcl_max < 1e-7, "kcl = {:.3e}", result.kcl_max);
    let verified = verify_result(&compiled, &result).expect("verifies");
    // Small-signal rows must closely agree; expression-based rows are
    // exact by construction. Allow a slightly looser bound than the
    // Simple OTA since the Miller pole-splitting is more sensitive.
    for (name, pred, sim) in &verified.rows {
        let rel = (pred - sim).abs() / sim.abs().max(1e-12);
        assert!(
            rel < 0.25,
            "{name}: OBLX {pred:.4e} vs sim {sim:.4e} ({:.1}% off)",
            rel * 100.0
        );
    }
}

#[test]
fn bicmos_synthesis_runs_with_bipolar_devices() {
    // The paper's protocol is 5–10 annealing runs with the best kept;
    // two short runs suffice here.
    let (compiled, a) = run("BiCMOS Two-Stage", 8_000, 1);
    let (_, b) = run("BiCMOS Two-Stage", 8_000, 3);
    let result = if a.best_cost <= b.best_cost { a } else { b };
    assert!(result.evaluations > 5_000);
    // The npn must end up forward-active in the verified design.
    let verified = verify_result(&compiled, &result).expect("verifies");
    assert!(verified.op_residual < 1e-7);
    // Gain of a two-stage with a bipolar second stage should be
    // substantial once biased.
    let adm = verified
        .rows
        .iter()
        .find(|(n, _, _)| n == "adm")
        .map(|(_, _, s)| *s)
        .expect("adm row");
    assert!(adm > 20.0, "adm = {adm} dB");
}

#[test]
fn synthesis_repeatable_and_seed_sensitive() {
    let (_, a) = run("Simple OTA", 2_000, 7);
    let (_, b) = run("Simple OTA", 2_000, 7);
    let (_, c) = run("Simple OTA", 2_000, 8);
    assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
    assert_ne!(a.best_cost.to_bits(), c.best_cost.to_bits());
}

#[test]
fn per_evaluation_time_is_milliseconds_scale() {
    // The paper reports 36–116 ms/eval on 1994 hardware; on modern
    // hardware the same work lands well under 10 ms. This guards
    // against pathological slowdowns.
    let (_, result) = run("Simple OTA", 3_000, 4);
    assert!(result.ms_per_eval < 10.0, "{} ms/eval", result.ms_per_eval);
}

/// Diagnostic (run with --ignored): dump |H| near the unity crossing of
/// the two-stage design where AWE and the simulator disagreed on ugf.
#[test]
#[ignore]
fn diag_two_stage_crossing() {
    use astrx_oblx::cost::CostEvaluator;
    let (compiled, result) = run("Two-Stage", 12_000, 2);
    let ev = CostEvaluator::new(&compiled);
    let record = ev.record(&result.state.user, &result.state.nodes).unwrap();
    let model = &record.models["tf"];
    println!("model order {}, poles:", model.order());
    for p in model.poles() {
        println!(
            "  {:.4e} + {:.4e} j (|p|/2pi = {:.4e} Hz)",
            p.re,
            p.im,
            p.norm() / (2.0 * std::f64::consts::PI)
        );
    }
    // Simulator-side magnitudes via verify path: rebuild the jig system.
    let v = verify_result(&compiled, &result).unwrap();
    println!("verify rows: {:?}", v.rows);
    for f in [3e6, 5e6, 7e6, 7.5e6, 8e6, 9e6, 10e6, 10.4e6, 12e6, 15e6] {
        let awe = oblx_awe::gain_at(model, f);
        println!("f = {:.2e}: awe |H| = {:.5}", f, awe);
    }
}
