//! Large-signal cross-checks: the paper's designer-supplied slew-rate
//! and swing *expressions* against real transient and dc-sweep
//! measurements — the validation the 1994 toolchain could not afford to
//! run inside the loop.

use astrx_oblx::bench_suite;
use astrx_oblx::oblx::{synthesize, SynthesisOptions};
use astrx_oblx::verify::{swept_swing, transient_slew};

fn synthesized() -> (
    astrx_oblx::CompiledProblem,
    astrx_oblx::oblx::SynthesisResult,
) {
    let b = bench_suite::simple_ota();
    let compiled = astrx_oblx::astrx::compile(b.problem().expect("parses")).expect("compiles");
    let result = synthesize(
        &compiled,
        &SynthesisOptions {
            moves_budget: 12_000,
            seed: 1,
            quench_patience: 400,
            ..SynthesisOptions::default()
        },
    )
    .expect("synthesis");
    (compiled, result)
}

#[test]
fn slew_expression_matches_transient_measurement() {
    let (compiled, result) = synthesized();
    let sr_expr = result.measure("sr").expect("sr goal");
    // Large positive step slews the output at the mirror-limited rate.
    let sr_tran = transient_slew(&compiled, &result.state, "acjig", 1.5).expect("transient");
    // The expression is a first-order estimate (the paper's own SR rows
    // disagree with simulation by up to ~18%); require same order of
    // magnitude and the right ballpark.
    let ratio = sr_tran / sr_expr;
    assert!(
        (0.3..3.0).contains(&ratio),
        "transient slew {sr_tran:.3e} vs expression {sr_expr:.3e} (ratio {ratio:.2})"
    );
}

#[test]
fn swing_expression_matches_dc_sweep() {
    let (compiled, result) = synthesized();
    let swing_expr = result.measure("swing").expect("swing goal");
    let swing_meas = swept_swing(&compiled, &result.state, "acjig", 2.0).expect("sweep");
    let ratio = swing_meas / swing_expr;
    assert!(
        (0.4..2.5).contains(&ratio),
        "swept swing {swing_meas:.3} V vs expression {swing_expr:.3} V (ratio {ratio:.2})"
    );
}

#[test]
fn transient_output_settles_after_step() {
    // Sanity on the transient engine itself at a synthesized bias
    // point: a small step must settle without blowing up.
    let (compiled, result) = synthesized();
    let vars = compiled.var_map(&result.state.user);
    let jig = &compiled.jigs[0];
    let ckt = oblx_mna::SizedCircuit::build(&jig.netlist, &vars, &compiled.lib).expect("jig");
    let w = oblx_mna::step_response(
        &ckt,
        "vin",
        0.01,
        &oblx_mna::TranOptions {
            dt: 2e-9,
            t_stop: 1e-6,
            ..oblx_mna::TranOptions::default()
        },
    )
    .expect("transient");
    let out = ckt.nodes.get("out").expect("out node");
    let trace = w.node(out);
    let last = trace.last().unwrap().1;
    assert!(
        last.is_finite() && last.abs() < 10.0,
        "v(out) final = {last}"
    );
    // Settled: the last 10% of the trace moves by < 10 mV.
    let tail_start = trace.len() * 9 / 10;
    let tail_span = trace[tail_start..]
        .iter()
        .map(|(_, v)| *v)
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(v), hi.max(v))
        });
    assert!(
        tail_span.1 - tail_span.0 < 0.01,
        "tail still moving: {:?}",
        tail_span
    );
}
