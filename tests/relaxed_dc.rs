//! The relaxed-dc formulation, cross-checked against the full
//! Newton–Raphson solver — paper §V.B and Fig. 2.

use astrx_oblx::astrx::{determined_voltages, CompiledProblem};
use astrx_oblx::bench_suite;
use astrx_oblx::cost::CostEvaluator;
use astrx_oblx::oblx::{synthesize, OblxProblem, SynthesisOptions};
use astrx_oblx::AdaptiveWeights;
use oblx_anneal::AnnealProblem;
use oblx_mna::{solve_dc_with, DcOptions, SizedCircuit};

fn compiled(name: &str) -> CompiledProblem {
    let b = bench_suite::by_name(name).expect("benchmark");
    astrx_oblx::astrx::compile(b.problem().expect("parses")).expect("compiles")
}

/// For every benchmark: evaluating the cost at the Newton-solved node
/// voltages must produce a (near-)zero KCL penalty, and perturbing the
/// voltages must produce a large one. This is the contract between the
/// relaxed-dc cost terms and real Kirchhoff correctness.
#[test]
fn kcl_terms_vanish_exactly_at_newton_solution() {
    for name in ["Simple OTA", "OTA", "Two-Stage", "BiCMOS Two-Stage"] {
        let c = compiled(name);
        let mut ev = CostEvaluator::new(&c);
        let user = c.initial_user_values();
        let vars = c.var_map(&user);
        let bias = SizedCircuit::build(&c.bias_netlist, &vars, &c.lib).expect("builds");
        let opts = DcOptions {
            abstol_i: 1e-8,
            max_iters: 300,
            ..DcOptions::default()
        };
        let op = solve_dc_with(&bias, &opts, None)
            .unwrap_or_else(|e| panic!("{name}: newton failed: {e}"));
        let det = determined_voltages(&bias);
        let nodes: Vec<f64> = det
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| op.v[i])
            .collect();
        assert_eq!(nodes.len(), c.node_vars.len(), "{name}");

        let w = AdaptiveWeights::new(&c);
        let at = ev
            .try_evaluate(&user, &nodes, &w)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            at.kcl_max < 1e-6,
            "{name}: kcl at solution {:.2e}",
            at.kcl_max
        );

        let off: Vec<f64> = nodes.iter().map(|v| v + 0.5).collect();
        let away = ev.try_evaluate(&user, &off, &w).expect("evaluates");
        assert!(
            away.kcl_max > 100.0 * at.kcl_max.max(1e-12),
            "{name}: perturbed kcl {:.2e} vs {:.2e}",
            away.kcl_max,
            at.kcl_max
        );
    }
}

/// Newton moves must converge the bias point from an arbitrary start
/// "at least as reliably as a detailed circuit simulator" (§V.A).
#[test]
fn newton_moves_converge_bias_for_benchmarks() {
    for name in ["Simple OTA", "OTA", "Folded Cascode"] {
        let c = compiled(name);
        let mut p = OblxProblem::new(&c, SynthesisOptions::default());
        let mut state = p.initial_state();
        let mut ev = CostEvaluator::new(&c);
        let w = AdaptiveWeights::new(&c);
        let mut kcl = f64::INFINITY;
        // Alternate full Newton jumps (class 4) as the annealer would.
        for _ in 0..40 {
            let mut rng = rand_stub();
            if let Some(next) = p.propose(&state, 4, 1.0, &mut rng) {
                state = next;
            }
            kcl = ev
                .try_evaluate(&state.user, &state.nodes, &w)
                .map(|b| b.kcl_max)
                .unwrap_or(f64::INFINITY);
            if kcl < 1e-9 {
                break;
            }
        }
        assert!(kcl < 1e-7, "{name}: newton moves stalled at {kcl:.2e} A");
    }
}

/// The Fig. 2 trace: KCL error must decay by orders of magnitude from
/// the early annealing phase to freeze-out.
#[test]
fn fig2_kcl_error_decays_over_run() {
    let c = compiled("Simple OTA");
    let result = synthesize(
        &c,
        &SynthesisOptions {
            moves_budget: 10_000,
            seed: 5,
            trace_every: 200,
            quench_patience: 500,
            ..SynthesisOptions::default()
        },
    )
    .expect("synthesis");
    let series = result.trace.series("kcl_max").expect("traced");
    assert!(series.len() > 20);
    // Compare the worst early residual to the final residual.
    let early_max = series
        .iter()
        .take(series.len() / 4)
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max);
    assert!(
        result.kcl_max < early_max / 1e3,
        "kcl should collapse: early max {early_max:.2e} → final {:.2e}",
        result.kcl_max
    );
}

/// A deterministic `Rng` for the Newton-move test (the move ignores
/// randomness, but the trait needs one).
fn rand_stub() -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(0)
}
