//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset of criterion the benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` and `finish`), [`Bencher::iter`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is auto-calibrated so one sample
//! takes roughly [`TARGET_SAMPLE_SECONDS`], then `sample_size` samples
//! are collected and the min / median / mean per-iteration times are
//! printed. No plots, no statistical regression — numbers on stdout,
//! which is what EXPERIMENTS.md quotes.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock budget per sample after calibration.
pub const TARGET_SAMPLE_SECONDS: f64 = 0.05;

/// Formats a per-iteration duration the way criterion does (ns/µs/ms/s).
fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Times one routine: the argument to closures passed to
/// [`Criterion::bench_function`].
pub struct Bencher<'a> {
    sample_size: usize,
    report: &'a mut Vec<(String, f64)>,
    name: String,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find an iteration count whose sample takes
        // roughly the target time (at least one iteration).
        let mut iters = 1usize;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_secs_f64(TARGET_SAMPLE_SECONDS) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{:<40} time: [{} {} {}]  ({} samples × {} iters)",
            self.name,
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            samples.len(),
            iters
        );
        self.report.push((self.name.clone(), median));
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Benchmarks one routine under `name`.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher {
            sample_size: 20,
            report: &mut self.results,
            name,
        };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// `(name, median seconds/iteration)` for every completed bench.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks one routine under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let mut b = Bencher {
            sample_size: self.sample_size,
            report: &mut self.criterion.results,
            name: full,
        };
        f(&mut b);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; this
            // runner has no options, so they are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_result() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].1 > 0.0);
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("fast", |b| b.iter(|| black_box(0u64)));
        g.finish();
        assert_eq!(c.results()[0].0, "grp/fast");
    }
}
