//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the (small) API surface the workspace actually uses:
//!
//! - a dyn-compatible [`Rng`] trait exposing `next_u64`,
//! - [`RngExt::random`] for uniform samples (`f64` in `[0, 1)`, full
//!   range integers, fair `bool`),
//! - [`SeedableRng::seed_from_u64`],
//! - [`rngs::StdRng`], a xoshiro256++ generator seeded via SplitMix64.
//!
//! Determinism is part of the contract: the whole synthesis pipeline
//! promises bit-identical runs per seed, so the generator here must
//! never silently change. xoshiro256++ is used verbatim from the
//! published reference implementation (Blackman & Vigna, public
//! domain).

/// A source of random 64-bit words. Dyn-compatible on purpose: the
/// annealing engine passes `&mut dyn Rng` through its problem trait.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Random {
    /// Draws one sample.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`]
/// (including `dyn Rng`).
pub trait RngExt: Rng {
    /// A uniform sample of `T` (see [`Random`] for the distributions).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64 (so nearby integer seeds give unrelated streams).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state; the
            // all-zero state is unreachable because SplitMix64 is a
            // bijection followed by distinct increments.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw generator state, for checkpoint/restore. Restoring
        /// via [`StdRng::from_state`] continues the exact stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a captured [`StdRng::state`].
        /// The all-zero state is a fixed point of xoshiro256++, so it
        /// is remapped to the seed-0 state rather than accepted.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as super::SeedableRng>::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The degenerate all-zero state is rejected, not propagated.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn dyn_rng_usable() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let x: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&x));
        let _ = dyn_rng.next_u64();
    }
}
