//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset of proptest the workspace uses: range and
//! collection strategies, `sample::select`, tuple composition, the
//! [`test_runner::TestRunner`], and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - no shrinking — a failing case reports its inputs verbatim;
//! - sampling is driven by the workspace's deterministic `rand` stub,
//!   so every property run is reproducible across machines and runs
//!   (real proptest keeps a persistence file for this instead).

use rand::rngs::StdRng;
use rand::{Rng, RngExt};
use std::fmt::Debug;
use std::ops::Range;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng),)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Constant-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, StdRng, Strategy};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + (rng.next_u64() as usize) % span;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Rng, StdRng, Strategy};
    use std::fmt::Debug;

    /// Strategy choosing uniformly among fixed options.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone + Debug>(Vec<T>);

    /// Uniform choice from `options` (which must be non-empty).
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.0[(rng.next_u64() as usize) % self.0.len()].clone()
        }
    }
}

/// The test runner and its configuration.
pub mod test_runner {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Number of cases to run per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the numeric
            // suites fast on small machines while still exercising the
            // input space.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// A failed property run (the first failing case, with its input).
    #[derive(Debug, Clone)]
    pub struct TestError {
        /// Failure message.
        pub message: String,
        /// Debug rendering of the failing input.
        pub input: String,
        /// Which case failed (0-based).
        pub case: u32,
    }

    impl fmt::Display for TestError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "property failed at case {}: {}\ninput: {}",
                self.case, self.message, self.input
            )
        }
    }

    /// Drives a property over many sampled inputs.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::new(ProptestConfig::default())
        }
    }

    impl TestRunner {
        /// A runner with the given configuration. The RNG seed is
        /// fixed: property runs are deterministic by design here.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(0x9E3779B97F4A7C15),
            }
        }

        /// Runs `test` on `config.cases` sampled inputs; stops at the
        /// first failure.
        ///
        /// # Errors
        ///
        /// [`TestError`] carrying the failing input and message.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), TestError> {
            for case in 0..self.config.cases {
                let value = strategy.sample(&mut self.rng);
                let rendered = format!("{value:?}");
                if let Err(e) = test(value) {
                    return Err(TestError {
                        message: e.to_string(),
                        input: rendered,
                        case,
                    });
                }
            }
            Ok(())
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let strategy = ($($strat,)+);
            runner
                .run(&strategy, |($($arg,)+)| {
                    $body
                    Ok(())
                })
                .unwrap_or_else(|e| panic!("{e}"));
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut runner = TestRunner::default();
        runner
            .run(&(0u8..3, -5i32..5), |(a, b)| {
                prop_assert!(a < 3);
                prop_assert!((-5..5).contains(&b));
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut runner = TestRunner::default();
        let strat = crate::collection::vec(0u64..10, 1..4);
        runner
            .run(&strat, |v| {
                prop_assert!(!v.is_empty() && v.len() < 4);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn select_only_yields_options() {
        let mut runner = TestRunner::default();
        let strat = crate::sample::select(vec!["a", "b"]);
        runner
            .run(&strat, |s| {
                prop_assert!(s == "a" || s == "b");
                Ok(())
            })
            .unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_works(x in 0u64..100, ys in crate::collection::vec(0u8..2, 1..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.iter().filter(|&&y| y > 1).count(), 0);
        }
    }

    #[test]
    fn failure_reports_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
        let err = runner
            .run(&(0u32..10), |x| {
                prop_assert!(x < 0, "x = {x}");
                Ok(())
            })
            .unwrap_err();
        assert!(err.to_string().contains("x = "));
    }
}
