//! Process-wide synthesis telemetry: counters, histograms, gauges, and
//! lightweight tracing spans — with **zero external dependencies**,
//! matching the workspace's vendored-crate policy.
//!
//! OBLX evaluates thousands of candidate circuits per second; a degenerate
//! AWE fit or an ill-conditioned LU factorization that fails *silently*
//! inside that loop is invisible from the outside. This crate gives every
//! layer of the stack a place to record what actually happened:
//!
//! * per-move-class attempt/accept counts (annealer),
//! * cost-term breakdowns `C^obj / C^perf / C^dev / C^dc` (evaluator),
//! * AWE fit orders, fallbacks, and instability counts (AWE engine),
//! * LU `pivot_ratio` conditioning histograms (linear solver),
//! * evaluation-latency histograms (tracing spans),
//! * per-worker busy/idle utilization (`oblxd` pool).
//!
//! # Hot-path cost
//!
//! All recording is gated behind a single process-wide [`AtomicBool`]
//! ([`enabled`]). When the flag is off — the default — every hook
//! reduces to one relaxed atomic load, so instrumented hot paths (the
//! incremental cost evaluator, `Lu::factor`) pay well under the 5%
//! overhead budget enforced by the `telemetry_overhead` bench. When the
//! flag is on, recording uses relaxed atomics only: telemetry is purely
//! observational and can never perturb the determinism contract
//! (bit-identical checkpoint resume, thread invariance).
//!
//! # Export
//!
//! [`Snapshot::capture`] freezes the current registry into plain data;
//! [`Snapshot::to_json`] serializes it as a single-line JSON object for
//! JSONL logs (the `oblxd` pool appends these alongside its event logs),
//! and [`Snapshot::render`] produces the human-readable report behind
//! `astrx profile` and `oblxd status --metrics`.
//!
//! # Examples
//!
//! ```
//! oblx_telemetry::reset();
//! oblx_telemetry::set_enabled(true);
//! oblx_telemetry::move_result(0, true);
//! oblx_telemetry::move_result(0, false);
//! let snap = oblx_telemetry::Snapshot::capture();
//! assert_eq!(snap.moves[0].attempts, 2);
//! assert_eq!(snap.moves[0].accepts, 1);
//! oblx_telemetry::set_enabled(false);
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

/// Maximum move classes tracked; higher class indices are clamped.
pub const MAX_CLASSES: usize = 16;
/// Maximum worker slots tracked; higher worker indices are clamped.
pub const MAX_WORKERS: usize = 64;
/// Power-of-two buckets per histogram (bucket `i` holds values in
/// `[2^i, 2^(i+1))`).
pub const HIST_BUCKETS: usize = 64;
/// Maximum AWE fit order tracked in the order histogram.
pub const MAX_FIT_ORDER: usize = 15;

/// A pivot ratio above this is counted as an ill-conditioning warning.
pub const PIVOT_RATIO_WARN: f64 = 1e12;

// `AtomicU64` is not `Copy`; a const item makes `[ZERO; N]` legal.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Named monotonic counters. The discriminant is the storage index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// AWE moment fits attempted (`fit_model` calls).
    AweFit,
    /// AWE fits that fell back to the forced one-pole model.
    AweForcedOnePole,
    /// AWE fits that degenerated to a constant (pole-free) model.
    AweConstant,
    /// AWE analyses rejected with `AweError::NoModel`.
    AweNoModel,
    /// Reduced models flagged unstable (RHP or dropped poles).
    AweUnstable,
    /// Non-finite poles dropped during model sanitization.
    AweDroppedPoles,
    /// Shifted re-expansions applied for far-crossing accuracy.
    AweShiftApplied,
    /// Shifted re-expansions rejected by the arbitration check.
    AweShiftRejected,
    /// Successful LU factorizations observed.
    LuFactor,
    /// LU factorizations whose pivot ratio exceeded [`PIVOT_RATIO_WARN`].
    LuIllConditioned,
    /// Cost evaluations on the cold (non-plan) path.
    EvalCold,
    /// Plan evaluations that rebuilt every jig.
    EvalFull,
    /// Plan evaluations that reran only dirty jigs.
    EvalIncremental,
    /// Plan evaluations served entirely from slot caches.
    EvalCached,
    /// Evaluations that ended in the failure-cost cliff.
    EvalFailure,
    /// Corrupt spool entries quarantined by the worker pool.
    JobCorrupt,
    /// Seed tasks that panicked and were contained by the pool.
    SeedPanic,
    /// Structural nonzeros handed to sparse symbolic analysis (summed).
    SparseNnz,
    /// Factor nonzeros after fill-in, as computed by symbolic analysis
    /// (summed; compare against [`Counter::SparseNnz`] for fill ratio).
    SparseFill,
    /// Sparse numeric refactorizations performed.
    SparseRefactor,
    /// Sparse solves that fell back to the dense LU path (bad pivot).
    SparseFallback,
    /// HTTP requests accepted for handling by the API edge.
    HttpRequest,
    /// HTTP requests answered with a 4xx status (client errors).
    Http4xx,
    /// HTTP requests answered with a 5xx status (server errors).
    Http5xx,
    /// HTTP requests rejected 429 by the per-client token bucket.
    HttpQuotaRejected,
    /// Connections shed 429 because the admission queue was full.
    HttpAdmissionRejected,
    /// Jobs that reached the `cancelled` terminal state.
    JobCancelled,
    /// Leases written at claim time (jobs and seeds).
    LeaseAcquired,
    /// Leases released after normal completion.
    LeaseReleased,
    /// Expired leases reaped by a surviving host.
    LeaseReaped,
    /// Lease refreshes that discovered the lease was stolen — the
    /// holder was fenced out and abandoned its work item.
    LeaseLost,
    /// Seed tasks claimed from a job sharded by a different host.
    SeedStolen,
    /// Portfolio best-so-far/move-stat records published.
    PortfolioPublished,
    /// Portfolio-driven mid-run adaptations applied.
    PortfolioAdapted,
    /// Number of counters (array size), not a real counter.
    Count,
}

const COUNTER_NAMES: [&str; Counter::Count as usize] = [
    "awe_fit",
    "awe_forced_one_pole",
    "awe_constant",
    "awe_no_model",
    "awe_unstable",
    "awe_dropped_poles",
    "awe_shift_applied",
    "awe_shift_rejected",
    "lu_factor",
    "lu_ill_conditioned",
    "eval_cold",
    "eval_full",
    "eval_incremental",
    "eval_cached",
    "eval_failure",
    "job_corrupt",
    "seed_panic",
    "sparse_nnz",
    "sparse_fill",
    "sparse_refactor",
    "sparse_fallback",
    "http_request",
    "http_4xx",
    "http_5xx",
    "http_quota_rejected",
    "http_admission_rejected",
    "job_cancelled",
    "lease_acquired",
    "lease_released",
    "lease_reaped",
    "lease_lost",
    "seed_stolen",
    "portfolio_published",
    "portfolio_adapted",
];

static COUNTERS: [AtomicU64; Counter::Count as usize] = [ZERO; Counter::Count as usize];

/// Tracing-span kinds, each backed by a latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SpanKind {
    /// One full cost evaluation (plan or cold path).
    CostEval,
    /// One AWE transfer-function analysis.
    AweAnalyze,
    /// One sparse symbolic factorization (fill-in pattern + pivot order).
    SparseSymbolic,
    /// One sparse numeric refactorization over a fixed pattern.
    SparseRefactor,
    /// One HTTP request handled by the API edge (parse → response).
    HttpRequest,
    /// Number of span kinds (array size), not a real span.
    Count,
}

const SPAN_NAMES: [&str; SpanKind::Count as usize] = [
    "cost_eval",
    "awe_analyze",
    "sparse_symbolic",
    "sparse_refactor",
    "http_request",
];

struct Hist {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Hist {
    const fn new() -> Hist {
        Hist {
            buckets: [ZERO; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
    }

    fn snapshot(&self) -> HistStats {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let count = self.count.load(Relaxed);
        let sum = self.sum.load(Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = (q * count as f64).ceil() as u64;
            let mut seen = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= target {
                    // Geometric midpoint of [2^(i-1), 2^i).
                    return if i == 0 { 0 } else { 3u64 << (i - 1) >> 1 };
                }
            }
            0
        };
        HistStats {
            count,
            sum,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            buckets,
        }
    }
}

static SPAN_HISTS: [Hist; SpanKind::Count as usize] = [
    Hist::new(),
    Hist::new(),
    Hist::new(),
    Hist::new(),
    Hist::new(),
];
static PIVOT_HIST: Hist = Hist::new();

static MOVE_ATTEMPTS: [AtomicU64; MAX_CLASSES] = [ZERO; MAX_CLASSES];
static MOVE_ACCEPTS: [AtomicU64; MAX_CLASSES] = [ZERO; MAX_CLASSES];
static FIT_ORDERS: [AtomicU64; MAX_FIT_ORDER + 1] = [ZERO; MAX_FIT_ORDER + 1];

// Cost-term accumulators: c_obj, c_perf, c_dev, c_dc, total (f64 bits).
static COST_SUMS: [AtomicU64; 5] = [ZERO; 5];
static COST_SAMPLES: AtomicU64 = AtomicU64::new(0);

static WORKER_BUSY_NS: [AtomicU64; MAX_WORKERS] = [ZERO; MAX_WORKERS];
static WORKER_IDLE_NS: [AtomicU64; MAX_WORKERS] = [ZERO; MAX_WORKERS];
static WORKER_TASKS: [AtomicU64; MAX_WORKERS] = [ZERO; MAX_WORKERS];

static CLASS_NAMES: Mutex<Vec<String>> = Mutex::new(Vec::new());

fn fadd(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Relaxed);
    loop {
        let new = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, new, Relaxed, Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Whether hot-path recording is on. One relaxed load; callers should
/// check this before doing any non-trivial work (e.g. reading a clock).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turns recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Clears every counter, histogram, and gauge (the enable flag is left
/// as-is). Intended for tests, benches, and per-run isolation.
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Relaxed);
    }
    for h in &SPAN_HISTS {
        h.reset();
    }
    PIVOT_HIST.reset();
    for a in MOVE_ATTEMPTS.iter().chain(&MOVE_ACCEPTS).chain(&FIT_ORDERS) {
        a.store(0, Relaxed);
    }
    for s in &COST_SUMS {
        s.store(0, Relaxed);
    }
    COST_SAMPLES.store(0, Relaxed);
    for w in WORKER_BUSY_NS
        .iter()
        .chain(&WORKER_IDLE_NS)
        .chain(&WORKER_TASKS)
    {
        w.store(0, Relaxed);
    }
}

/// Increments `counter` by one (no-op while disabled).
#[inline]
pub fn incr(counter: Counter) {
    if enabled() {
        COUNTERS[counter as usize].fetch_add(1, Relaxed);
    }
}

/// Adds `n` to `counter` (no-op while disabled).
#[inline]
pub fn add(counter: Counter, n: u64) {
    if enabled() {
        COUNTERS[counter as usize].fetch_add(n, Relaxed);
    }
}

/// Records one annealer move outcome for `class` (no-op while disabled).
#[inline]
pub fn move_result(class: usize, accepted: bool) {
    if enabled() {
        let i = class.min(MAX_CLASSES - 1);
        MOVE_ATTEMPTS[i].fetch_add(1, Relaxed);
        if accepted {
            MOVE_ACCEPTS[i].fetch_add(1, Relaxed);
        }
    }
}

/// Registers human-readable move-class names used by snapshots.
pub fn set_class_names(names: &[&str]) {
    if let Ok(mut lock) = CLASS_NAMES.lock() {
        *lock = names.iter().map(|s| (*s).to_string()).collect();
    }
}

/// Records one evaluated cost breakdown (no-op while disabled).
#[inline]
pub fn record_cost_terms(c_obj: f64, c_perf: f64, c_dev: f64, c_dc: f64) {
    if enabled() {
        // One ±inf sample (a graded-but-unbounded objective) would
        // poison every later mean; only finite breakdowns contribute.
        let total = c_obj + c_perf + c_dev + c_dc;
        if !total.is_finite() {
            return;
        }
        fadd(&COST_SUMS[0], c_obj);
        fadd(&COST_SUMS[1], c_perf);
        fadd(&COST_SUMS[2], c_dev);
        fadd(&COST_SUMS[3], c_dc);
        fadd(&COST_SUMS[4], total);
        COST_SAMPLES.fetch_add(1, Relaxed);
    }
}

/// Records a successful AWE fit of order `q` (no-op while disabled).
#[inline]
pub fn record_fit_order(q: usize) {
    if enabled() {
        FIT_ORDERS[q.min(MAX_FIT_ORDER)].fetch_add(1, Relaxed);
    }
}

/// Records an LU pivot ratio, flagging ill-conditioned factorizations
/// (no-op while disabled).
#[inline]
pub fn record_pivot_ratio(ratio: f64) {
    if enabled() {
        COUNTERS[Counter::LuFactor as usize].fetch_add(1, Relaxed);
        if ratio.is_finite() && ratio >= 1.0 {
            PIVOT_HIST.record(ratio as u64);
        }
        // NaN counts as ill-conditioned: a pivot ratio that cannot even
        // be computed is the worst conditioning signal there is.
        if ratio >= PIVOT_RATIO_WARN || ratio.is_nan() {
            COUNTERS[Counter::LuIllConditioned as usize].fetch_add(1, Relaxed);
        }
    }
}

/// Adds busy/idle nanoseconds to `worker`'s utilization tally.
#[inline]
pub fn record_worker_time(worker: usize, busy_ns: u64, idle_ns: u64) {
    if enabled() {
        let i = worker.min(MAX_WORKERS - 1);
        WORKER_BUSY_NS[i].fetch_add(busy_ns, Relaxed);
        WORKER_IDLE_NS[i].fetch_add(idle_ns, Relaxed);
    }
}

/// Counts one finished seed task for `worker`.
#[inline]
pub fn record_worker_task(worker: usize) {
    if enabled() {
        WORKER_TASKS[worker.min(MAX_WORKERS - 1)].fetch_add(1, Relaxed);
    }
}

/// A live tracing span; records its elapsed time into the latency
/// histogram for `kind` when dropped. While telemetry is disabled the
/// span is inert and never reads the clock.
#[derive(Debug)]
pub struct Span {
    kind: SpanKind,
    start: Option<Instant>,
}

/// Opens a span of `kind`. Drop it to record.
#[inline]
pub fn span(kind: SpanKind) -> Span {
    Span {
        kind,
        start: enabled().then(Instant::now),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            SPAN_HISTS[self.kind as usize].record(ns);
        }
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// Frozen histogram statistics. Quantiles are approximate (power-of-two
/// bucket midpoints).
#[derive(Debug, Clone, Default)]
pub struct HistStats {
    /// Samples recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Approximate 50th percentile.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Raw bucket counts (`buckets[i]` covers `[2^(i-1), 2^i)`).
    pub buckets: Vec<u64>,
}

impl HistStats {
    /// Mean recorded value, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One move class's frozen attempt/accept counts.
#[derive(Debug, Clone)]
pub struct MoveClassSnap {
    /// Registered class name (or `class<i>`).
    pub name: String,
    /// Moves proposed.
    pub attempts: u64,
    /// Moves accepted.
    pub accepts: u64,
}

impl MoveClassSnap {
    /// Accept fraction in `[0, 1]`, or 0 with no attempts.
    pub fn accept_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.accepts as f64 / self.attempts as f64
        }
    }
}

/// One worker slot's frozen utilization tally.
#[derive(Debug, Clone)]
pub struct WorkerSnap {
    /// Worker index.
    pub worker: usize,
    /// Nanoseconds spent running seed tasks.
    pub busy_ns: u64,
    /// Nanoseconds spent waiting for work.
    pub idle_ns: u64,
    /// Seed tasks completed.
    pub tasks: u64,
}

impl WorkerSnap {
    /// Busy fraction in `[0, 1]`, or 0 with no recorded time.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

/// A frozen copy of the whole registry, ready for export.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Per-move-class outcomes (only classes with attempts).
    pub moves: Vec<MoveClassSnap>,
    /// Named counters in declaration order (zeros included).
    pub counters: Vec<(&'static str, u64)>,
    /// Cost evaluations contributing to the term sums below.
    pub cost_samples: u64,
    /// Summed `[c_obj, c_perf, c_dev, c_dc, total]` over those samples.
    pub cost_sums: [f64; 5],
    /// Span latency histograms, by [`SpanKind`] name.
    pub spans: Vec<(&'static str, HistStats)>,
    /// AWE fit-order histogram (`fit_orders[q]` = fits of order `q`).
    pub fit_orders: Vec<u64>,
    /// LU pivot-ratio histogram.
    pub pivot_ratio: HistStats,
    /// Per-worker utilization (only workers with activity).
    pub workers: Vec<WorkerSnap>,
}

impl Snapshot {
    /// Freezes the current registry. Relaxed loads only; concurrent
    /// writers may land between fields (snapshots are advisory).
    pub fn capture() -> Snapshot {
        let names = CLASS_NAMES.lock().map(|n| n.clone()).unwrap_or_default();
        let moves = (0..MAX_CLASSES)
            .filter_map(|i| {
                let attempts = MOVE_ATTEMPTS[i].load(Relaxed);
                if attempts == 0 {
                    return None;
                }
                Some(MoveClassSnap {
                    name: names.get(i).cloned().unwrap_or_else(|| format!("class{i}")),
                    attempts,
                    accepts: MOVE_ACCEPTS[i].load(Relaxed),
                })
            })
            .collect();
        let counters = COUNTER_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| (*name, COUNTERS[i].load(Relaxed)))
            .collect();
        let spans = SPAN_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| (*name, SPAN_HISTS[i].snapshot()))
            .collect();
        let workers = (0..MAX_WORKERS)
            .filter_map(|i| {
                let busy_ns = WORKER_BUSY_NS[i].load(Relaxed);
                let idle_ns = WORKER_IDLE_NS[i].load(Relaxed);
                let tasks = WORKER_TASKS[i].load(Relaxed);
                if busy_ns == 0 && idle_ns == 0 && tasks == 0 {
                    return None;
                }
                Some(WorkerSnap {
                    worker: i,
                    busy_ns,
                    idle_ns,
                    tasks,
                })
            })
            .collect();
        Snapshot {
            moves,
            counters,
            cost_samples: COST_SAMPLES.load(Relaxed),
            cost_sums: [
                f64::from_bits(COST_SUMS[0].load(Relaxed)),
                f64::from_bits(COST_SUMS[1].load(Relaxed)),
                f64::from_bits(COST_SUMS[2].load(Relaxed)),
                f64::from_bits(COST_SUMS[3].load(Relaxed)),
                f64::from_bits(COST_SUMS[4].load(Relaxed)),
            ],
            spans,
            fit_orders: FIT_ORDERS.iter().map(|a| a.load(Relaxed)).collect(),
            pivot_ratio: PIVOT_HIST.snapshot(),
            workers,
        }
    }

    /// Value of a named counter (0 for unknown names).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Mean of cost term `i` (`0..5` = obj, perf, dev, dc, total).
    pub fn cost_mean(&self, i: usize) -> f64 {
        if self.cost_samples == 0 {
            0.0
        } else {
            self.cost_sums[i] / self.cost_samples as f64
        }
    }

    /// Serializes as one JSON object on a single line (JSONL-ready).
    /// Hand-rolled: every key is a static ASCII identifier, so no
    /// escaping machinery is needed.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"moves\":[");
        for (i, m) in self.moves.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"class\":\"{}\",\"attempts\":{},\"accepts\":{}}}",
                escape(&m.name),
                m.attempts,
                m.accepts
            );
        }
        s.push_str("],\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":{v}");
        }
        let _ = write!(s, "}},\"cost\":{{\"samples\":{}", self.cost_samples);
        for (i, key) in ["c_obj", "c_perf", "c_dev", "c_dc", "total"]
            .iter()
            .enumerate()
        {
            let _ = write!(s, ",\"{key}_sum\":{}", json_f64(self.cost_sums[i]));
        }
        s.push_str("},\"spans\":{");
        for (i, (name, h)) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{name}\":{{\"count\":{},\"sum_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\
                 \"p99_ns\":{}}}",
                h.count, h.sum, h.p50, h.p90, h.p99
            );
        }
        s.push_str("},\"awe_fit_orders\":[");
        for (i, n) in self.fit_orders.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{n}");
        }
        let _ = write!(
            s,
            "],\"lu_pivot_ratio\":{{\"count\":{},\"p50\":{},\"p99\":{}}}",
            self.pivot_ratio.count, self.pivot_ratio.p50, self.pivot_ratio.p99
        );
        s.push_str(",\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"worker\":{},\"busy_ns\":{},\"idle_ns\":{},\"tasks\":{}}}",
                w.worker, w.busy_ns, w.idle_ns, w.tasks
            );
        }
        s.push_str("]}");
        s
    }

    /// Renders the human-readable report (used by `astrx profile`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.moves.is_empty() {
            let _ = writeln!(out, "move classes:");
            for m in &self.moves {
                let _ = writeln!(
                    out,
                    "  {:<18} {:>9} attempts  {:>9} accepts  ({:.1}% accept)",
                    m.name,
                    m.attempts,
                    m.accepts,
                    100.0 * m.accept_rate()
                );
            }
        }
        if self.cost_samples > 0 {
            let _ = writeln!(out, "cost terms (mean over {} evals):", self.cost_samples);
            for (i, key) in ["c_obj", "c_perf", "c_dev", "c_dc", "total"]
                .iter()
                .enumerate()
            {
                let _ = writeln!(out, "  {:<8} {:>14.6}", key, self.cost_mean(i));
            }
        }
        let _ = writeln!(
            out,
            "eval paths: {} cold / {} full / {} incremental / {} cached / {} failed",
            self.counter("eval_cold"),
            self.counter("eval_full"),
            self.counter("eval_incremental"),
            self.counter("eval_cached"),
            self.counter("eval_failure"),
        );
        let _ = writeln!(
            out,
            "awe: {} fits ({} forced 1-pole, {} constant, {} no-model, {} unstable, \
             {} dropped poles, shift {}+/{}-)",
            self.counter("awe_fit"),
            self.counter("awe_forced_one_pole"),
            self.counter("awe_constant"),
            self.counter("awe_no_model"),
            self.counter("awe_unstable"),
            self.counter("awe_dropped_poles"),
            self.counter("awe_shift_applied"),
            self.counter("awe_shift_rejected"),
        );
        let orders: Vec<String> = self
            .fit_orders
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(q, n)| format!("q{q}:{n}"))
            .collect();
        if !orders.is_empty() {
            let _ = writeln!(out, "awe fit orders: {}", orders.join(" "));
        }
        let _ = writeln!(
            out,
            "lu: {} factors, {} ill-conditioned (pivot ratio p50 {:.1e}, p99 {:.1e})",
            self.counter("lu_factor"),
            self.counter("lu_ill_conditioned"),
            self.pivot_ratio.p50 as f64,
            self.pivot_ratio.p99 as f64,
        );
        if self.counter("sparse_nnz") > 0 {
            let _ = writeln!(
                out,
                "sparse: {} refactors, {} dense fallbacks, nnz {} -> fill {} \
                 (summed over symbolic runs)",
                self.counter("sparse_refactor"),
                self.counter("sparse_fallback"),
                self.counter("sparse_nnz"),
                self.counter("sparse_fill"),
            );
        }
        for (name, h) in &self.spans {
            if h.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "span {name}: {} samples, mean {:.1}us p50 {:.1}us p90 {:.1}us p99 {:.1}us",
                h.count,
                h.mean() / 1e3,
                h.p50 as f64 / 1e3,
                h.p90 as f64 / 1e3,
                h.p99 as f64 / 1e3,
            );
        }
        for w in &self.workers {
            let _ = writeln!(
                out,
                "worker {}: {:.1}% busy, {} tasks ({:.2}s busy / {:.2}s idle)",
                w.worker,
                100.0 * w.utilization(),
                w.tasks,
                w.busy_ns as f64 / 1e9,
                w.idle_ns as f64 / 1e9,
            );
        }
        out
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => "\\u0020".chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is process-global; tests share one lock so they
    /// do not interleave resets.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(false);
        incr(Counter::AweNoModel);
        move_result(1, true);
        record_cost_terms(1.0, 2.0, 3.0, 4.0);
        record_pivot_ratio(1e15);
        let snap = Snapshot::capture();
        assert_eq!(snap.counter("awe_no_model"), 0);
        assert!(snap.moves.is_empty());
        assert_eq!(snap.cost_samples, 0);
        assert_eq!(snap.counter("lu_ill_conditioned"), 0);
    }

    #[test]
    fn counters_and_moves_accumulate() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        set_class_names(&["node_single", "node_all"]);
        for _ in 0..10 {
            move_result(0, true);
        }
        for _ in 0..30 {
            move_result(0, false);
        }
        incr(Counter::AweNoModel);
        add(Counter::AweDroppedPoles, 3);
        record_cost_terms(1.0, 0.5, 0.25, 0.25);
        record_cost_terms(3.0, 1.5, 0.75, 0.75);
        let snap = Snapshot::capture();
        set_enabled(false);
        assert_eq!(snap.moves.len(), 1);
        assert_eq!(snap.moves[0].name, "node_single");
        assert_eq!(snap.moves[0].attempts, 40);
        assert!((snap.moves[0].accept_rate() - 0.25).abs() < 1e-12);
        assert_eq!(snap.counter("awe_no_model"), 1);
        assert_eq!(snap.counter("awe_dropped_poles"), 3);
        assert_eq!(snap.cost_samples, 2);
        assert!((snap.cost_mean(0) - 2.0).abs() < 1e-12);
        assert!((snap.cost_mean(4) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn pivot_ratio_warns_above_threshold() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        record_pivot_ratio(10.0);
        record_pivot_ratio(1e13);
        record_pivot_ratio(f64::INFINITY);
        let snap = Snapshot::capture();
        set_enabled(false);
        assert_eq!(snap.counter("lu_factor"), 3);
        assert_eq!(snap.counter("lu_ill_conditioned"), 2);
        assert_eq!(snap.pivot_ratio.count, 2, "infinite ratio skips histogram");
    }

    #[test]
    fn span_records_latency() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        {
            let _s = span(SpanKind::CostEval);
            std::hint::black_box(0u64);
        }
        let snap = Snapshot::capture();
        set_enabled(false);
        let (_, h) = snap.spans.iter().find(|(n, _)| *n == "cost_eval").unwrap();
        assert_eq!(h.count, 1);
    }

    #[test]
    fn json_is_single_line_and_balanced() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        move_result(2, true);
        record_fit_order(3);
        record_worker_time(0, 500, 250);
        record_worker_task(0);
        let snap = Snapshot::capture();
        set_enabled(false);
        let json = snap.to_json();
        assert!(!json.contains('\n'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces in {json}"
        );
        assert!(json.contains("\"awe_fit_orders\":[0,0,0,1,"));
        assert!(json.contains("\"busy_ns\":500"));
        let rendered = snap.render();
        assert!(rendered.contains("worker 0"));
    }

    #[test]
    fn reset_clears_everything() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        move_result(0, true);
        incr(Counter::EvalFull);
        record_cost_terms(1.0, 1.0, 1.0, 1.0);
        reset();
        let snap = Snapshot::capture();
        set_enabled(false);
        assert!(snap.moves.is_empty());
        assert_eq!(snap.counter("eval_full"), 0);
        assert_eq!(snap.cost_samples, 0);
    }
}
