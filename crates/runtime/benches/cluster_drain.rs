//! Cluster drain benchmark: the same job queue drained by one `oblxd`
//! process and by three `oblxd` processes sharing the spool, written to
//! `BENCH_cluster.json` at the repo root.
//!
//! This is a plain-main harness (no criterion) because it measures
//! whole child processes, not functions: it spawns the real `oblxd`
//! binary via `CARGO_BIN_EXE_oblxd`, one `run` daemon plus two `join`
//! daemons over a single spool directory, and times the drain from
//! first spawn to last exit. The workload is a tiny RC-lowpass deck
//! (~1 ms of synthesis per job) so the number measures the cluster
//! machinery — claim arbitration, leases, seed sharding, finalize —
//! rather than the annealer.
//!
//! Set `OBLX_BENCH_QUICK=1` to cut the job count (CI smoke mode).
//! Run with `cargo bench -p oblx-runtime --bench cluster_drain`.

use astrx_oblx::jobs::JobRequest;
use astrx_oblx::json::ObjBuilder;
use astrx_oblx::SynthesisOptions;
use oblx_runtime::spool::Spool;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A two-variable RC lowpass: one pole, one objective, one spec. Each
/// seed costs about a millisecond, which is the point — the bench
/// should be bound by spool coordination, not by circuit evaluation.
const RC_LOWPASS: &str = "\
.title rc lowpass bench
.var R 1k 1Meg log
.var C 1p 1n log
.jig acjig
vin in 0 0 ac 1
r1 in out 'R'
c1 out 0 'C'
.pz tf v(out) vin
.endjig
.bias
vin in 0 1
r1 in out 'R'
c1 out 0 'C'
.endbias
.obj bw 'ugf(tf)' good=1Meg bad=1k
.spec rc 'R*C' good=1u bad=1m
";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oblx-bench-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn submit_jobs(spool: &Spool, n_jobs: usize) {
    for i in 0..n_jobs {
        spool
            .submit(JobRequest {
                name: format!("rc-{i}"),
                source: RC_LOWPASS.to_string(),
                deck: String::new(),
                options: SynthesisOptions {
                    moves_budget: 60,
                    quench_patience: 100,
                    trace_every: 50,
                    seed: 0,
                    ..SynthesisOptions::default()
                },
                seeds: vec![1],
                priority: 0,
            })
            .expect("submit succeeds");
    }
}

/// Spawns one `oblxd` daemon over `spool`. The first host uses `run`
/// (which performs the startup recovery sweep); joiners use `join`.
fn spawn_daemon(spool: &Path, host: &str, first: bool) -> Child {
    Command::new(env!("CARGO_BIN_EXE_oblxd"))
        .arg(if first { "run" } else { "join" })
        .arg("--dir")
        .arg(spool)
        .args(["--drain", "--workers", "1", "--checkpoint-interval", "1000"])
        .args(["--host-id", host, "--lease-timeout", "30"])
        .stdout(Stdio::null())
        .spawn()
        .expect("oblxd spawns")
}

/// Waits for every child to exit successfully, with a watchdog so a
/// drain bug hangs the bench loudly instead of forever.
fn wait_all(children: Vec<Child>, secs: u64) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut children = children;
    while !children.is_empty() {
        children.retain_mut(|c| match c.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "daemon exited with {status}");
                false
            }
            None => true,
        });
        if Instant::now() > deadline {
            for c in &mut children {
                let _ = c.kill();
            }
            panic!("daemons did not drain within {secs}s");
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn done_count(spool: &Path) -> usize {
    std::fs::read_dir(spool.join("done"))
        .map(|d| d.flatten().count())
        .unwrap_or(0)
}

/// Submits `n_jobs`, drains them with `hosts` daemon processes, and
/// returns the drain wall time (spawn of the first daemon to exit of
/// the last).
fn drain(tag: &str, n_jobs: usize, hosts: usize) -> f64 {
    let dir = temp_dir(tag);
    let spool_dir = dir.join("spool");
    let spool = Spool::open(&spool_dir).expect("spool opens");
    submit_jobs(&spool, n_jobs);
    let start = Instant::now();
    let children: Vec<Child> = (0..hosts)
        .map(|h| spawn_daemon(&spool_dir, &format!("h{h}"), h == 0))
        .collect();
    wait_all(children, 600);
    let drain_s = start.elapsed().as_secs_f64();
    assert_eq!(done_count(&spool_dir), n_jobs, "every job drains");
    let _ = std::fs::remove_dir_all(&dir);
    drain_s
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/runtime sits two levels below the repo root")
        .to_path_buf()
}

fn main() {
    let quick = std::env::var_os("OBLX_BENCH_QUICK").is_some();
    let n_jobs = if quick { 40 } else { 150 };
    let n_hosts = 3usize;

    let single_s = drain("single", n_jobs, 1);
    let single_rate = n_jobs as f64 / single_s;
    println!(
        "cluster/single_host                      {n_jobs} jobs, 1 daemon: {:.2} s ({:.1} jobs/s)",
        single_s, single_rate
    );

    let cluster_s = drain("cluster", n_jobs, n_hosts);
    let cluster_rate = n_jobs as f64 / cluster_s;
    println!(
        "cluster/shared_spool                     {n_jobs} jobs, {n_hosts} daemons: {:.2} s ({:.1} jobs/s)",
        cluster_s, cluster_rate
    );

    let record = ObjBuilder::new()
        .field("format", "oblx-bench")
        .field("version", 1i64)
        .field("suite", "cluster")
        .field("workload", "rc lowpass, 60 moves, 1 seed")
        .field("queue_jobs", i64::try_from(n_jobs).unwrap())
        .field("hosts", i64::try_from(n_hosts).unwrap())
        .field("queue_drain_s", cluster_s)
        .field("queue_jobs_per_s", cluster_rate)
        .field("single_host_drain_s", single_s)
        .field("single_host_jobs_per_s", single_rate)
        .build();
    let out = repo_root().join("BENCH_cluster.json");
    std::fs::write(&out, format!("{}\n", record.to_json())).expect("BENCH_cluster.json written");
    println!("wrote {}", out.display());
}
