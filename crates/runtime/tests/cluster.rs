//! Multi-host integration tests: several real `oblxd` processes over
//! one shared spool directory.
//!
//! * **Chaos**: three daemons drain a queue, one is SIGKILLed
//!   mid-drain; the survivors' reapers must recover its leases and the
//!   final records must be **bit-identical** to an uninterrupted
//!   single-daemon run — placement and failure must not change results.
//! * **Race**: four daemons drain cheap jobs while the test fires
//!   concurrent `oblxd cancel` processes at half of them; every job
//!   must end with exactly one terminal record (done XOR cancelled),
//!   the spool's work directories must come out clean, and a re-drain
//!   must change nothing.

use astrx_oblx::jobs::JobRequest;
use astrx_oblx::json::Value;
use astrx_oblx::SynthesisOptions;
use oblx_runtime::spool::Spool;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A two-variable RC lowpass — cheap enough that multi-process
/// coordination, not synthesis, dominates the test's wall time.
const RC_LOWPASS: &str = "\
.title rc lowpass cluster test
.var R 1k 1Meg log
.var C 1p 1n log
.jig acjig
vin in 0 0 ac 1
r1 in out 'R'
c1 out 0 'C'
.pz tf v(out) vin
.endjig
.bias
vin in 0 1
r1 in out 'R'
c1 out 0 'C'
.endbias
.obj bw 'ugf(tf)' good=1Meg bad=1k
.spec rc 'R*C' good=1u bad=1m
";

/// Fields of a done record that must match across placements. The ids
/// differ between spools, so the comparison is field-wise.
const RESULT_FIELDS: [&str; 6] = [
    "status",
    "best_seed",
    "fixed_cost",
    "best_cost",
    "kcl_max",
    "state",
];

fn oblxd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oblxd"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oblx-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Submits `n_jobs` identical RC jobs and returns their ids in
/// submission order.
fn submit_batch(spool_dir: &Path, n_jobs: usize, moves: usize, seeds: &[u64]) -> Vec<String> {
    let spool = Spool::open(spool_dir).expect("spool opens");
    (0..n_jobs)
        .map(|i| {
            spool
                .submit(JobRequest {
                    name: format!("rc-{i}"),
                    source: RC_LOWPASS.to_string(),
                    deck: String::new(),
                    options: SynthesisOptions {
                        moves_budget: moves,
                        quench_patience: 100,
                        trace_every: 50,
                        seed: 0,
                        ..SynthesisOptions::default()
                    },
                    seeds: seeds.to_vec(),
                    priority: 0,
                })
                .expect("submit succeeds")
                .id
        })
        .collect()
}

/// Spawns one `oblxd` daemon (`run` for the first host over a spool,
/// `join` for the rest — joiners skip the startup recovery sweep).
fn spawn_daemon(spool_dir: &Path, host: &str, first: bool, lease_timeout: &str) -> Child {
    oblxd()
        .arg(if first { "run" } else { "join" })
        .arg("--dir")
        .arg(spool_dir)
        .args(["--drain", "--workers", "1", "--checkpoint-interval", "500"])
        .args(["--host-id", host, "--lease-timeout", lease_timeout])
        .stdout(Stdio::null())
        .spawn()
        .expect("oblxd spawns")
}

/// Waits for every child to exit successfully, with a deadline so a
/// stuck drain fails loudly.
fn wait_all(mut children: Vec<Child>, secs: u64) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !children.is_empty() {
        children.retain_mut(|c| match c.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "daemon exited with {status}");
                false
            }
            None => true,
        });
        assert!(
            Instant::now() < deadline,
            "daemons did not drain within {secs}s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn done_count(spool_dir: &Path) -> usize {
    std::fs::read_dir(spool_dir.join("done"))
        .map(|d| d.flatten().count())
        .unwrap_or(0)
}

fn done_record(spool_dir: &Path, id: &str) -> Option<Value> {
    let text = std::fs::read_to_string(spool_dir.join("done").join(format!("{id}.json"))).ok()?;
    astrx_oblx::json::parse(&text).ok()
}

#[test]
fn killing_a_host_mid_drain_completes_all_jobs_bit_identically() {
    let dir = temp_dir("chaos");
    let n_jobs = 6;
    let moves = 12_000;
    let seeds = [1u64, 2];

    // Reference: the same queue drained by one uninterrupted daemon.
    let ref_dir = dir.join("reference");
    let ref_ids = submit_batch(&ref_dir, n_jobs, moves, &seeds);
    let solo = spawn_daemon(&ref_dir, "solo", true, "30");
    wait_all(vec![solo], 300);
    assert_eq!(done_count(&ref_dir), n_jobs);

    // Victim cluster: three daemons; SIGKILL one as soon as results
    // start landing, so it dies holding live leases.
    let spool_dir = dir.join("cluster");
    let ids = submit_batch(&spool_dir, n_jobs, moves, &seeds);
    let mut children = vec![
        spawn_daemon(&spool_dir, "a", true, "1"),
        spawn_daemon(&spool_dir, "b", false, "1"),
        spawn_daemon(&spool_dir, "c", false, "1"),
    ];
    let deadline = Instant::now() + Duration::from_secs(120);
    while done_count(&spool_dir) < 1 {
        assert!(
            Instant::now() < deadline,
            "no job finished within 120s — cluster stuck before the kill"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut victim = children.remove(1);
    victim.kill().expect("SIGKILL delivered");
    let _ = victim.wait();
    // The survivors' reapers (1 s lease timeout) recover whatever the
    // victim held; --drain exits only once everything is terminal.
    wait_all(children, 300);

    assert_eq!(done_count(&spool_dir), n_jobs, "every job completed");
    for (id, ref_id) in ids.iter().zip(&ref_ids) {
        let got = done_record(&spool_dir, id).expect("job done");
        let want = done_record(&ref_dir, ref_id).expect("reference done");
        for key in RESULT_FIELDS {
            assert_eq!(
                got.get(key),
                want.get(key),
                "field `{key}` differs from the uninterrupted reference"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_cancels_across_four_daemons_leave_one_terminal_record_per_job() {
    let dir = temp_dir("race");
    let spool_dir = dir.join("spool");
    let n_jobs = 16;
    let ids = submit_batch(&spool_dir, n_jobs, 2_000, &[1]);

    let daemons = vec![
        spawn_daemon(&spool_dir, "a", true, "5"),
        spawn_daemon(&spool_dir, "b", false, "5"),
        spawn_daemon(&spool_dir, "c", false, "5"),
        spawn_daemon(&spool_dir, "d", false, "5"),
    ];
    // Fire cancels at every other job while the drain is in full
    // flight. Some land before the claim (dequeued), some mid-run
    // (tombstone honored at the next checkpoint), some after the job
    // finished (already done) — all three must be safe.
    let cancels: Vec<Child> = ids
        .iter()
        .step_by(2)
        .map(|id| {
            oblxd()
                .args(["cancel", "--dir"])
                .arg(&spool_dir)
                .arg(id)
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("oblxd cancel spawns")
        })
        .collect();
    for mut c in cancels {
        let _ = c.wait();
    }
    wait_all(daemons, 300);

    // Exactly one terminal record per job, never both.
    let spool = Spool::open(&spool_dir).unwrap();
    for id in &ids {
        let done = spool.done(id).is_some();
        let cancelled = spool.cancelled(id).is_some();
        assert!(
            done ^ cancelled,
            "job {id}: done={done} cancelled={cancelled} — want exactly one terminal record"
        );
    }
    // The work directories came out clean: nothing pending, running,
    // or leased survives the drain.
    assert!(spool.pending().is_empty(), "queue is empty");
    assert!(spool.running().is_empty(), "running/ is empty");
    assert!(spool.leases().is_empty(), "no leases survive the drain");

    // A fresh drain over the settled spool is a no-op: every terminal
    // record is byte-identical before and after.
    let before: Vec<(String, Vec<u8>)> = ids
        .iter()
        .map(|id| {
            let done = spool_dir.join("done").join(format!("{id}.json"));
            let cancelled = spool_dir.join("cancelled").join(format!("{id}.json"));
            let path = if done.exists() { done } else { cancelled };
            (id.clone(), std::fs::read(path).unwrap())
        })
        .collect();
    let redrain = spawn_daemon(&spool_dir, "e", true, "5");
    wait_all(vec![redrain], 120);
    for (id, bytes) in before {
        let done = spool_dir.join("done").join(format!("{id}.json"));
        let cancelled = spool_dir.join("cancelled").join(format!("{id}.json"));
        let path = if done.exists() { done } else { cancelled };
        assert_eq!(
            std::fs::read(path).unwrap(),
            bytes,
            "job {id}: re-drain must not touch a terminal record"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
