//! Graceful-shutdown integration test: SIGTERM a live `oblxd run`
//! mid-job and require it to exit 0 on its own — workers stop claiming,
//! the in-flight seed checkpoints and stops — leaving a spool that a
//! second daemon resumes to completion. This is the cycle-under-load
//! path (deploys, host maintenance) that previously required leaning on
//! the SIGKILL-crash machinery.

use astrx_oblx::json::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const DIFFAMP: &str = include_str!("../../core/src/testdata/diffamp.ox");

fn oblxd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oblxd"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oblx-term-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn done_record(spool: &Path, id: &str) -> Option<Value> {
    let text = std::fs::read_to_string(spool.join("done").join(format!("{id}.json"))).ok()?;
    astrx_oblx::json::parse(&text).ok()
}

#[test]
#[cfg(unix)]
fn sigterm_drains_gracefully_and_the_spool_resumes() {
    let dir = temp_dir("spool");
    let ox = dir.join("diffamp.ox");
    std::fs::write(&ox, DIFFAMP).unwrap();
    let spool = dir.join("spool");

    let out = oblxd()
        .args(["submit", "--dir"])
        .arg(&spool)
        .arg(&ox)
        .args(["--seeds", "2", "--moves", "20000", "--name", "termme"])
        .output()
        .expect("oblxd submit runs");
    assert!(out.status.success());
    let id = String::from_utf8(out.stdout).unwrap().trim().to_string();

    let mut child = oblxd()
        .args(["run", "--dir"])
        .arg(&spool)
        .args(["--workers", "2", "--checkpoint-interval", "200"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("oblxd run spawns");

    // Wait for the first on-disk checkpoint so the SIGTERM lands
    // mid-seed, then deliver it.
    let ckdir = spool.join("ckpt").join(&id);
    let first_ckpt = || {
        std::fs::read_dir(&ckdir)
            .map(|entries| {
                entries
                    .flatten()
                    .any(|e| e.path().to_string_lossy().ends_with(".ckpt.json"))
            })
            .unwrap_or(false)
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    while !first_ckpt() {
        assert!(Instant::now() < deadline, "no checkpoint within 60 s");
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "daemon exited before the signal (run mode should poll forever)"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let kill = Command::new("kill")
        .arg(child.id().to_string())
        .status()
        .expect("kill runs");
    assert!(kill.success(), "SIGTERM delivered");

    // The daemon must exit on its own, successfully, within a generous
    // window (one checkpoint interval of work plus teardown).
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "daemon ignored SIGTERM for 60 s");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(status.success(), "graceful shutdown exits 0, got {status}");

    // Shutdown is not completion: the job stays claimed with its
    // checkpoints behind, and is neither done nor lost.
    assert!(done_record(&spool, &id).is_none(), "job must not be done");
    assert!(
        spool.join("running").join(format!("{id}.json")).exists(),
        "interrupted job stays in running/ for the next recover()"
    );
    assert!(first_ckpt(), "checkpoints survive the shutdown");

    // A fresh daemon over the same spool recovers and finishes it.
    let status = oblxd()
        .args(["run", "--dir"])
        .arg(&spool)
        .args(["--drain", "--workers", "2", "--checkpoint-interval", "200"])
        .stdout(Stdio::null())
        .status()
        .expect("oblxd run runs");
    assert!(status.success());
    let record = done_record(&spool, &id).expect("resumed job completed");
    assert_eq!(record.get("status").unwrap().as_str(), Some("ok"));
    std::fs::remove_dir_all(&dir).unwrap();
}
