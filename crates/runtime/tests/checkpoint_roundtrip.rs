//! Property tests for the checkpoint serialization contract: a
//! checkpoint cut at any point, serialized to JSON, parsed back, and
//! resumed must finish **bit-identically** to the uninterrupted run —
//! and a damaged checkpoint must be rejected, never mis-parsed.

use astrx_oblx::jobs::{checkpoint_from_json, checkpoint_to_json};
use astrx_oblx::oblx::synthesize_controlled;
use astrx_oblx::{synthesize, CompiledProblem, SynthesisOptions, SynthesisOutcome};
use oblx_anneal::Directive;
use proptest::prelude::*;
use std::sync::OnceLock;

const DIFFAMP: &str = include_str!("../../core/src/testdata/diffamp.ox");

fn compiled() -> &'static CompiledProblem {
    static COMPILED: OnceLock<CompiledProblem> = OnceLock::new();
    COMPILED.get_or_init(|| astrx_oblx::compile_source(DIFFAMP).unwrap())
}

fn opts(seed: u64) -> SynthesisOptions {
    SynthesisOptions {
        moves_budget: 400,
        quench_patience: 100,
        trace_every: 50,
        seed,
        ..SynthesisOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// serialize → parse → continue ≡ never interrupted, for a random
    /// seed and a random interrupt point.
    #[test]
    fn prop_roundtripped_checkpoint_resumes_bit_identically(
        seed in 1u64..64,
        stop_at in 25usize..380,
    ) {
        let compiled = compiled();
        let opts = opts(seed);
        let reference = synthesize(compiled, &opts).unwrap();

        // Cut at the first checkpoint at or after `stop_at` proposals.
        let outcome = synthesize_controlled(compiled, &opts, None, 25, |ck| {
            if ck.engine.attempted >= stop_at {
                Directive::Stop
            } else {
                Directive::Continue
            }
        })
        .unwrap();
        let SynthesisOutcome::Interrupted(ck) = outcome else {
            panic!("run completed before proposal {stop_at}");
        };

        // The JSON codec is the identity on checkpoints: serializing
        // the parsed checkpoint reproduces the bytes.
        let text = checkpoint_to_json(&ck);
        let parsed = checkpoint_from_json(&text).unwrap();
        prop_assert_eq!(&text, &checkpoint_to_json(&parsed));

        // Continuing from the parsed checkpoint matches the reference
        // bit for bit.
        let resumed = match synthesize_controlled(compiled, &opts, Some(&parsed), 0, |_| {
            Directive::Continue
        })
        .unwrap()
        {
            SynthesisOutcome::Complete(r) => *r,
            SynthesisOutcome::Interrupted(_) => panic!("resume cannot stop: no hook"),
        };
        prop_assert_eq!(resumed.best_cost.to_bits(), reference.best_cost.to_bits());
        prop_assert_eq!(&resumed.state, &reference.state);
        prop_assert_eq!(resumed.attempted, reference.attempted);
        prop_assert_eq!(resumed.evaluations, reference.evaluations);
        prop_assert_eq!(resumed.kcl_max.to_bits(), reference.kcl_max.to_bits());
        prop_assert_eq!(resumed.trace.points.len(), reference.trace.points.len());
        for (a, b) in resumed.measured.iter().zip(reference.measured.iter()) {
            prop_assert_eq!(&a.0, &b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    /// A checkpoint truncated anywhere is rejected cleanly (the loader
    /// treats it as "no checkpoint"), never mis-parsed or panicking.
    #[test]
    fn prop_truncated_checkpoints_are_rejected(
        seed in 1u64..16,
        cut_permille in 1usize..999,
    ) {
        let compiled = compiled();
        let outcome = synthesize_controlled(compiled, &opts(seed), None, 25, |_| {
            Directive::Stop
        })
        .unwrap();
        let SynthesisOutcome::Interrupted(ck) = outcome else {
            panic!("first checkpoint must interrupt");
        };
        let text = checkpoint_to_json(&ck);
        let mut cut = text.len() * cut_permille / 1000;
        while cut > 0 && !text.is_char_boundary(cut) {
            cut -= 1;
        }
        prop_assert!(checkpoint_from_json(&text[..cut]).is_err());
    }
}

/// A checkpoint from a future format version is refused outright
/// (strict versioning rule), not half-read.
#[test]
fn foreign_version_is_refused() {
    let compiled = compiled();
    let outcome = synthesize_controlled(compiled, &opts(3), None, 25, |_| Directive::Stop).unwrap();
    let SynthesisOutcome::Interrupted(ck) = outcome else {
        panic!("first checkpoint must interrupt");
    };
    let text = checkpoint_to_json(&ck).replacen("\"version\":1", "\"version\":2", 1);
    assert!(checkpoint_from_json(&text).is_err());
}
