//! Kill-and-resume integration test: SIGKILL an `oblxd` worker process
//! mid-job, restart the daemon over the same spool, and require the job
//! to complete from its last checkpoint with a result **bit-identical**
//! to an uninterrupted run. This exercises the whole stack end to end:
//! spool claim/recover, torn-write protection (temp + atomic rename),
//! checkpoint restore, and the deterministic winner rule.

use astrx_oblx::json::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const DIFFAMP: &str = include_str!("../../core/src/testdata/diffamp.ox");

fn oblxd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oblxd"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oblx-kill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn submit(spool: &Path, ox: &Path) -> String {
    let out = oblxd()
        .args(["submit", "--dir"])
        .arg(spool)
        .arg(ox)
        .args(["--seeds", "5", "--moves", "8000", "--name", "killme"])
        .output()
        .expect("oblxd submit runs");
    assert!(
        out.status.success(),
        "submit failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap().trim().to_string()
}

fn run_drain(spool: &Path) {
    let status = oblxd()
        .args(["run", "--dir"])
        .arg(spool)
        .args(["--drain", "--workers", "1", "--checkpoint-interval", "200"])
        .stdout(Stdio::null())
        .status()
        .expect("oblxd run runs");
    assert!(status.success(), "drain run failed");
}

fn done_record(spool: &Path, id: &str) -> Option<Value> {
    let text = std::fs::read_to_string(spool.join("done").join(format!("{id}.json"))).ok()?;
    astrx_oblx::json::parse(&text).ok()
}

#[test]
fn sigkilled_daemon_resumes_to_a_bit_identical_result() {
    let dir = temp_dir("spools");
    let ox = dir.join("diffamp.ox");
    std::fs::write(&ox, DIFFAMP).unwrap();

    // Reference: the same job drained without interruption.
    let ref_spool = dir.join("reference");
    let ref_id = submit(&ref_spool, &ox);
    run_drain(&ref_spool);
    let reference = done_record(&ref_spool, &ref_id).expect("reference job completed");
    assert_eq!(reference.get("status").unwrap().as_str(), Some("ok"));

    // Victim: start a daemon, wait for the first on-disk checkpoint,
    // then SIGKILL it (`Child::kill` is SIGKILL on Unix — no chance to
    // clean up, exactly like a node dying).
    let spool = dir.join("victim");
    let id = submit(&spool, &ox);
    let mut child = oblxd()
        .args(["run", "--dir"])
        .arg(&spool)
        .args(["--drain", "--workers", "1", "--checkpoint-interval", "200"])
        .stdout(Stdio::null())
        .spawn()
        .expect("oblxd run spawns");
    // Checkpoints are fence-named (`seed_5.f<fence>.ckpt.json`); wait
    // for seed 5's to exist under any fence.
    let ckdir = spool.join("ckpt").join(&id);
    let ckpt_exists = || {
        std::fs::read_dir(&ckdir).is_ok_and(|entries| {
            entries.flatten().any(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.starts_with("seed_5.") && name.ends_with(".ckpt.json")
            })
        })
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    while !ckpt_exists() {
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared within 60 s"
        );
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("daemon exited early ({status}) — job finished before the kill");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL delivered");
    let _ = child.wait();
    assert!(
        done_record(&spool, &id).is_none(),
        "job must not be done yet — the kill landed mid-run"
    );
    assert!(
        spool.join("running").join(format!("{id}.json")).exists(),
        "killed job stays claimed until recovery"
    );

    // Restart over the same spool: recovery requeues the orphaned job
    // and the checkpoint makes the rerun a resume.
    run_drain(&spool);
    let resumed = done_record(&spool, &id).expect("resumed job completed");
    for key in [
        "status",
        "best_seed",
        "fixed_cost",
        "best_cost",
        "kcl_max",
        "state",
    ] {
        assert_eq!(
            resumed.get(key),
            reference.get(key),
            "field `{key}` differs between resumed and uninterrupted runs"
        );
    }

    // The event log tells the story: a recovery happened and the job
    // still finished exactly once.
    let events = std::fs::read_to_string(spool.join("events").join(format!("{id}.jsonl"))).unwrap();
    let kinds: Vec<String> = astrx_oblx::json::parse_lines(&events)
        .iter()
        .filter_map(|e| e.get("event").and_then(Value::as_str).map(str::to_string))
        .collect();
    assert!(
        kinds.iter().any(|k| k == "recovered"),
        "recovered event logged"
    );
    assert_eq!(kinds.iter().filter(|k| *k == "done").count(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
