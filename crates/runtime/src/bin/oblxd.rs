//! `oblxd` — the synthesis job daemon.
//!
//! ```text
//! oblxd submit --dir SPOOL (--bench NAME | file.ox)
//!              [--name N] [--seeds N|a,b,c] [--moves N] [--priority P]
//! oblxd run    --dir SPOOL [--workers N] [--checkpoint-interval N] [--drain]
//!              [--host-id H] [--lease-timeout SECS] [--portfolio]
//! oblxd join   --dir SPOOL [same flags as run]
//! oblxd status --dir SPOOL [--metrics]
//! ```
//!
//! `submit` spools a job; `run` starts the worker pool (one worker per
//! core by default) and, in `--drain` mode, exits when the spool is
//! empty. A killed `run` restarted over the same spool recovers every
//! orphaned job and resumes its seeds from their last checkpoints,
//! bit-identically.
//!
//! Several daemons may share one spool directory (NFS-style): each
//! needs a distinct `--host-id` (defaults to the hostname), claims
//! individual seeds, and steals idle peers' work. `join` is `run` for
//! the extra hosts of a cluster: it skips the startup recovery sweep,
//! leaving lease reaping to the cluster reaper so a freshly joined
//! host never requeues work a live peer still owns.

use astrx_oblx::jobs::JobRequest;
use astrx_oblx::{bench_suite, SynthesisOptions};
use oblx_runtime::events::{last_metrics, render_metrics, status, EventLog};
use oblx_runtime::pool::{self, PoolOptions};
use oblx_runtime::spool::Spool;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  oblxd submit --dir SPOOL (--bench NAME | file.ox) [--name N] \
         [--seeds N|a,b,c] [--moves N] [--priority P]\n  \
         oblxd run --dir SPOOL [--workers N] [--checkpoint-interval N] [--drain]\n            \
         [--host-id H] [--lease-timeout SECS] [--portfolio]\n  \
         oblxd join --dir SPOOL [same flags as run]\n  \
         oblxd cancel --dir SPOOL JOB_ID\n  \
         oblxd status --dir SPOOL [--metrics]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return usage();
    };
    let rest: Vec<&String> = it.collect();
    let Some(dir) = opt(&rest, "--dir") else {
        eprintln!("error: --dir SPOOL is required");
        return usage();
    };
    let spool = match Spool::open(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot open spool `{dir}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spool = match opt(&rest, "--host-id") {
        Some(host) => spool.with_host(host),
        None => spool,
    };
    match cmd.as_str() {
        "submit" => cmd_submit(&spool, &rest),
        "run" => cmd_run(&spool, &rest, true),
        "join" => cmd_run(&spool, &rest, false),
        "cancel" => cmd_cancel(&spool, &rest),
        "status" => {
            print!("{}", status(&spool).render());
            if flag(&rest, "--metrics") {
                match last_metrics(&spool) {
                    Some(data) => print!("{}", render_metrics(&data)),
                    None => println!("metrics: none recorded yet"),
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn flag(rest: &[&String], name: &str) -> bool {
    rest.iter().any(|a| a.as_str() == name)
}

fn opt<'a>(rest: &'a [&String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a.as_str() == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn parse_seeds(rest: &[&String]) -> Result<Vec<u64>, String> {
    match opt(rest, "--seeds") {
        Some(s) if !s.contains(',') => match s.trim().parse::<u64>() {
            Ok(n) if n > 0 => Ok((1..=n).collect()),
            _ => Err(format!("--seeds wants a count or a comma list, got `{s}`")),
        },
        Some(s) => {
            let seeds: Vec<u64> = s.split(',').filter_map(|x| x.trim().parse().ok()).collect();
            if seeds.is_empty() {
                Err(format!("--seeds parsed to an empty list from `{s}`"))
            } else {
                Ok(seeds)
            }
        }
        None => Ok(vec![1, 2, 3]),
    }
}

fn cmd_submit(spool: &Spool, rest: &[&String]) -> ExitCode {
    let (source, deck, default_name) = if let Some(name) = opt(rest, "--bench") {
        let Some(b) = bench_suite::by_name(name) else {
            eprintln!("error: unknown benchmark `{name}` — see `astrx list`");
            return ExitCode::FAILURE;
        };
        (
            b.source.to_string(),
            b.deck.label().to_string(),
            b.name.to_string(),
        )
    } else {
        let Some(path) = positional(rest) else {
            eprintln!("error: submit needs --bench NAME or a .ox file");
            return usage();
        };
        match std::fs::read_to_string(path) {
            Ok(text) => (text, String::new(), path.to_string()),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let seeds = match parse_seeds(rest) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let options = SynthesisOptions {
        moves_budget: opt(rest, "--moves")
            .and_then(|s| s.parse().ok())
            .unwrap_or(60_000),
        ..SynthesisOptions::default()
    };
    let request = JobRequest {
        name: opt(rest, "--name")
            .map(str::to_string)
            .unwrap_or(default_name),
        source,
        deck,
        options,
        seeds,
        priority: opt(rest, "--priority")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0),
    };
    // Validate before spooling: a malformed deck is the submitter's
    // error and should be rejected here with line/column diagnostics,
    // not discovered later by a worker.
    if let Err(e) = oblx_runtime::compile_job(&request) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    match spool.submit(request) {
        Ok(job) => {
            EventLog::open(spool, &job.id).emit(
                "submitted",
                &[
                    ("name", job.request.name.as_str().into()),
                    ("seeds", job.request.seeds.len().into()),
                    ("priority", job.request.priority.into()),
                ],
            );
            println!("{}", job.id);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: submit failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The first bare positional argument — one that neither starts with
/// `--` nor sits in the value slot of a preceding `--opt`.
fn positional<'a>(rest: &'a [&String]) -> Option<&'a str> {
    rest.iter().enumerate().find_map(|(i, a)| {
        let is_opt_value = i > 0 && rest[i - 1].starts_with("--");
        (!a.starts_with("--") && !is_opt_value).then_some(a.as_str())
    })
}

fn cmd_cancel(spool: &Spool, rest: &[&String]) -> ExitCode {
    use oblx_runtime::spool::CancelOutcome;
    let Some(id) = positional(rest) else {
        eprintln!("error: cancel needs a JOB_ID");
        return usage();
    };
    let name = spool
        .pending()
        .into_iter()
        .chain(spool.running())
        .find(|j| j.id == id)
        .map(|j| j.request.name)
        .unwrap_or_else(|| id.to_string());
    match spool.cancel(id, &name) {
        Ok(CancelOutcome::Dequeued) => {
            println!("{id}: cancelled (dequeued)");
            ExitCode::SUCCESS
        }
        Ok(CancelOutcome::Requested) => {
            println!("{id}: cancel requested (stops at the next checkpoint)");
            ExitCode::SUCCESS
        }
        Ok(CancelOutcome::AlreadyCancelled) => {
            println!("{id}: already cancelled");
            ExitCode::SUCCESS
        }
        Ok(CancelOutcome::AlreadyDone) => {
            eprintln!("error: {id} already finished; its result stands");
            ExitCode::FAILURE
        }
        Ok(CancelOutcome::Unknown) => {
            eprintln!("error: no job {id} in this spool");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: cancel {id} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_run(spool: &Spool, rest: &[&String], recover: bool) -> ExitCode {
    // The daemon always records telemetry: the per-run overhead is
    // within noise and `status --metrics` depends on the snapshots.
    oblx_telemetry::set_enabled(true);
    // Quarantine before recover so startup-time corruption is counted
    // and logged like worker-time corruption, not silently filed away.
    let mut startup_corrupt = 0usize;
    for id in spool.quarantine_corrupt() {
        EventLog::open(spool, &id).emit("job_corrupt", &[]);
        oblx_telemetry::incr(oblx_telemetry::Counter::JobCorrupt);
        eprintln!("quarantined corrupt spool entry {id}");
        startup_corrupt += 1;
    }
    // `join` skips this: recovery requeues THIS host's orphans (a
    // restart after a crash); a joining host has none, and foreign
    // orphans are the cluster reaper's job, on lease-timeout evidence.
    if recover {
        for id in spool.recover() {
            EventLog::open(spool, &id).emit("recovered", &[]);
            eprintln!("recovered orphaned job {id}");
        }
    }
    let opts = PoolOptions {
        workers: opt(rest, "--workers")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0),
        checkpoint_every: opt(rest, "--checkpoint-interval")
            .and_then(|s| s.parse().ok())
            .unwrap_or(2_000),
        drain: flag(rest, "--drain"),
        lease_timeout: std::time::Duration::from_secs_f64(
            opt(rest, "--lease-timeout")
                .and_then(|s| s.parse().ok())
                .unwrap_or(30.0),
        ),
        portfolio: flag(rest, "--portfolio"),
    };
    if opts.checkpoint_every == 0 {
        eprintln!("error: --checkpoint-interval must be positive");
        return ExitCode::from(2);
    }
    if opts.lease_timeout < std::time::Duration::from_millis(100) {
        eprintln!("error: --lease-timeout must be at least 0.1s");
        return ExitCode::from(2);
    }
    // SIGTERM/SIGINT drain gracefully: workers stop claiming, every
    // in-flight seed checkpoints and stops, events flush, and the
    // process exits 0 — jobs left in running/ resume bit-identically
    // on the next start.
    let shutdown = oblx_runtime::signal::install_shutdown_handler();
    let stats = pool::run(spool, &opts, shutdown);
    if shutdown.load(std::sync::atomic::Ordering::SeqCst) {
        eprintln!("shutdown: checkpointed in-flight seeds; restart to resume");
    }
    println!(
        "done: {} job(s) completed, {} failed, {} cancelled, {} seed task(s) run \
         ({} stolen), {} corrupt file(s) quarantined, {} panic(s) caught, \
         {} lease(s) reaped",
        stats.jobs_completed,
        stats.jobs_failed,
        stats.jobs_cancelled,
        stats.seeds_run,
        stats.seeds_stolen,
        stats.jobs_corrupt + startup_corrupt,
        stats.seeds_panicked,
        stats.leases_reaped
    );
    ExitCode::SUCCESS
}
