//! The spool: a directory-backed, crash-safe job queue.
//!
//! Layout under the spool root:
//!
//! ```text
//! queue/<id>.json      submitted jobs awaiting a worker
//! running/<id>.json    jobs claimed by a worker
//! done/<id>.json       result records (success or failure)
//! cancelled/<id>.json  terminal records of cancelled jobs
//! cancel/<id>.tomb     cancel tombstones honored by the worker pool
//! corrupt/<id>.json    quarantined undecodable job files
//! ckpt/<id>/           per-seed checkpoints and seed-done records
//! events/<id>.jsonl    per-job event logs (see crate::events)
//! workers.json         live worker-state snapshot (written by the pool)
//! seq                  submission sequence counter
//! ```
//!
//! Every transition is a single atomic `rename`, so a crash at any
//! instant leaves each job in exactly one well-defined place. A daemon
//! restart calls [`Spool::recover`], which moves `running/` jobs back to
//! `queue/`; their per-seed checkpoints under `ckpt/<id>/` make the
//! re-run resume rather than restart.

use astrx_oblx::jobs::{self, JobFile, JobRequest};
use astrx_oblx::json::Value;
use std::io;
use std::path::{Path, PathBuf};

/// Handle to a spool directory.
#[derive(Debug, Clone)]
pub struct Spool {
    root: PathBuf,
}

impl Spool {
    /// Opens (creating if needed) a spool rooted at `root`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory tree.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Spool> {
        let spool = Spool { root: root.into() };
        for dir in [
            spool.queue_dir(),
            spool.running_dir(),
            spool.done_dir(),
            spool.cancelled_dir(),
            spool.tombstones_dir(),
            spool.corrupt_dir(),
            spool.events_dir(),
            spool.ckpt_root(),
        ] {
            std::fs::create_dir_all(dir)?;
        }
        Ok(spool)
    }

    /// The spool root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `queue/` — pending jobs.
    pub fn queue_dir(&self) -> PathBuf {
        self.root.join("queue")
    }

    /// `running/` — claimed jobs.
    pub fn running_dir(&self) -> PathBuf {
        self.root.join("running")
    }

    /// `done/` — result records.
    pub fn done_dir(&self) -> PathBuf {
        self.root.join("done")
    }

    /// `cancelled/` — terminal records of cancelled jobs.
    pub fn cancelled_dir(&self) -> PathBuf {
        self.root.join("cancelled")
    }

    /// `cancel/` — cancel tombstones awaiting pool acknowledgement.
    pub fn tombstones_dir(&self) -> PathBuf {
        self.root.join("cancel")
    }

    /// `corrupt/` — quarantined job files that could not be decoded.
    pub fn corrupt_dir(&self) -> PathBuf {
        self.root.join("corrupt")
    }

    /// `events/` — per-job JSONL logs.
    pub fn events_dir(&self) -> PathBuf {
        self.root.join("events")
    }

    fn ckpt_root(&self) -> PathBuf {
        self.root.join("ckpt")
    }

    /// `ckpt/<id>/` — the checkpoint directory of one job.
    pub fn ckpt_dir(&self, id: &str) -> PathBuf {
        self.ckpt_root().join(id)
    }

    /// Path of the live worker-state snapshot.
    pub fn workers_path(&self) -> PathBuf {
        self.root.join("workers.json")
    }

    /// Submits a job: assigns an id and sequence number and writes it
    /// into `queue/` atomically (via [`jobs::spool_submit`], the same
    /// protocol thin clients use). Returns the stored [`JobFile`].
    ///
    /// # Errors
    ///
    /// Any I/O error.
    pub fn submit(&self, request: JobRequest) -> io::Result<JobFile> {
        jobs::spool_submit(&self.root, request)
    }

    fn read_jobs(dir: &Path) -> Vec<JobFile> {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Ok(job) = jobs::job_from_json(&text) {
                    out.push(job);
                }
            }
        }
        out.sort_by(|a, b| {
            b.request
                .priority
                .cmp(&a.request.priority)
                .then(a.seq.cmp(&b.seq))
        });
        out
    }

    /// Pending jobs, in claim order (priority desc, then FIFO).
    pub fn pending(&self) -> Vec<JobFile> {
        Self::read_jobs(&self.queue_dir())
    }

    /// Jobs currently claimed by workers.
    pub fn running(&self) -> Vec<JobFile> {
        Self::read_jobs(&self.running_dir())
    }

    /// Claims the highest-priority pending job by renaming it into
    /// `running/`. The rename is the arbitration point: when several
    /// workers race, exactly one rename succeeds and the losers move on
    /// to the next candidate.
    pub fn claim_next(&self) -> Option<JobFile> {
        for job in self.pending() {
            let from = self.queue_dir().join(format!("{}.json", job.id));
            let to = self.running_dir().join(format!("{}.json", job.id));
            if std::fs::rename(&from, &to).is_ok() {
                return Some(job);
            }
        }
        None
    }

    /// Scans `queue/` and `running/` for `.json` files that cannot be
    /// decoded as jobs — torn writes, truncation, garbage — and renames
    /// them into `corrupt/`. Returns the quarantined file stems.
    ///
    /// Undecodable files used to be skipped silently by every scan,
    /// sitting in the queue forever with no operator-visible trace;
    /// quarantining makes the failure diagnosable and keeps rescans
    /// cheap. A file that vanishes mid-scan (claimed or completed by a
    /// racing worker) is *not* corruption and is left alone.
    pub fn quarantine_corrupt(&self) -> Vec<String> {
        let mut quarantined = Vec::new();
        for dir in [self.queue_dir(), self.running_dir()] {
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) != Some("json") {
                    continue;
                }
                // Only a file we can *read* but not *decode* is corrupt.
                let Ok(text) = std::fs::read_to_string(&path) else {
                    continue;
                };
                if jobs::job_from_json(&text).is_ok() {
                    continue;
                }
                let Some(stem) = path.file_stem().map(|s| s.to_string_lossy().into_owned()) else {
                    continue;
                };
                let to = self.corrupt_dir().join(format!("{stem}.json"));
                if std::fs::rename(&path, &to).is_ok() {
                    quarantined.push(stem);
                }
            }
        }
        quarantined
    }

    /// Moves every `running/` job back into `queue/` — called once at
    /// daemon startup to recover jobs orphaned by a crash. Returns the
    /// recovered ids. Undecodable `running/` entries are quarantined
    /// (see [`Spool::quarantine_corrupt`]) rather than silently left
    /// behind.
    pub fn recover(&self) -> Vec<String> {
        let _ = self.quarantine_corrupt();
        let mut recovered = Vec::new();
        for job in self.running() {
            // A tombstoned orphan is not worth requeueing: the daemon
            // that would have acknowledged the cancel is gone, so
            // retire the job here instead of resuming it only to stop
            // it again at its first checkpoint.
            if self.cancel_requested(&job.id) {
                let _ = self.complete_cancelled(&job.id, &job.request.name);
                continue;
            }
            let from = self.running_dir().join(format!("{}.json", job.id));
            let to = self.queue_dir().join(format!("{}.json", job.id));
            if std::fs::rename(&from, &to).is_ok() {
                recovered.push(job.id);
            }
        }
        recovered
    }

    /// Records a finished job: writes the result record into `done/`
    /// and drops the `running/` entry.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the record.
    pub fn complete(&self, id: &str, record: &Value) -> io::Result<()> {
        let path = self.done_dir().join(format!("{id}.json"));
        jobs::write_atomic(&path, &record.to_json())?;
        let _ = std::fs::remove_file(self.running_dir().join(format!("{id}.json")));
        Ok(())
    }

    /// Reads the result record of a finished job, if any.
    pub fn done(&self, id: &str) -> Option<Value> {
        let text = std::fs::read_to_string(self.done_dir().join(format!("{id}.json"))).ok()?;
        astrx_oblx::json::parse(&text).ok()
    }

    /// Ids of all finished jobs.
    pub fn done_ids(&self) -> Vec<String> {
        Self::json_ids(&self.done_dir())
    }

    /// Ids of all cancelled jobs.
    pub fn cancelled_ids(&self) -> Vec<String> {
        Self::json_ids(&self.cancelled_dir())
    }

    fn json_ids(dir: &Path) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut ids: Vec<String> = entries
            .flatten()
            .filter_map(|e| {
                let p = e.path();
                if p.extension().and_then(|x| x.to_str()) == Some("json") {
                    p.file_stem().map(|s| s.to_string_lossy().into_owned())
                } else {
                    None
                }
            })
            .collect();
        ids.sort();
        ids
    }

    /// Path of job `id`'s cancel tombstone.
    pub fn tombstone_path(&self, id: &str) -> PathBuf {
        self.tombstones_dir().join(format!("{id}.tomb"))
    }

    /// Whether a cancel has been requested for `id` and not yet
    /// acknowledged. Checked by the pool at claim time and at every
    /// per-seed checkpoint.
    pub fn cancel_requested(&self, id: &str) -> bool {
        self.tombstone_path(id).exists()
    }

    /// Reads the terminal record of a cancelled job, if any.
    pub fn cancelled(&self, id: &str) -> Option<Value> {
        let text = std::fs::read_to_string(self.cancelled_dir().join(format!("{id}.json"))).ok()?;
        astrx_oblx::json::parse(&text).ok()
    }

    /// Requests cancellation of job `id`.
    ///
    /// A still-queued job is dequeued and moved straight to its
    /// `cancelled` terminal state. A claimed job gets a tombstone that
    /// the worker pool honors: each in-flight seed stops at its next
    /// checkpoint, and the job finalizes into `cancelled/` instead of
    /// `done/` (emitting a `job_cancelled` event). Cancelling a job
    /// that is already terminal, or unknown, changes nothing.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the tombstone or the cancelled record.
    pub fn cancel(&self, id: &str, name: &str) -> io::Result<CancelOutcome> {
        if self.done(id).is_some() {
            return Ok(CancelOutcome::AlreadyDone);
        }
        if self.cancelled(id).is_some() {
            return Ok(CancelOutcome::AlreadyCancelled);
        }
        // Tombstone first: from this instant a racing worker will see
        // the request at claim time or at its next checkpoint.
        jobs::write_atomic(&self.tombstone_path(id), "")?;
        // `remove_file` vs the pool's claim `rename` race on the same
        // queue entry: exactly one syscall wins, so a job is either
        // dequeued here or claimed there, never both.
        if std::fs::remove_file(self.queue_dir().join(format!("{id}.json"))).is_ok() {
            self.complete_cancelled(id, name)?;
            return Ok(CancelOutcome::Dequeued);
        }
        if self.running_dir().join(format!("{id}.json")).exists() {
            return Ok(CancelOutcome::Requested);
        }
        // Neither queued nor running. The job may have completed in the
        // window since the `done` check above — either way there is
        // nothing to cancel, so retract the tombstone.
        let _ = std::fs::remove_file(self.tombstone_path(id));
        if self.done(id).is_some() {
            return Ok(CancelOutcome::AlreadyDone);
        }
        Ok(CancelOutcome::Unknown)
    }

    /// Writes job `id`'s `cancelled` terminal record and retires every
    /// live trace of it (queue/running entries, tombstone). Called by
    /// [`Spool::cancel`] for queued jobs and by the pool once the last
    /// in-flight seed of a tombstoned job has stopped.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the record.
    pub fn complete_cancelled(&self, id: &str, name: &str) -> io::Result<()> {
        let record = astrx_oblx::json::ObjBuilder::new()
            .field("format", "oblx-result")
            .field("version", 1i64)
            .field("id", id)
            .field("name", name)
            .field("status", "cancelled")
            .build();
        let path = self.cancelled_dir().join(format!("{id}.json"));
        jobs::write_atomic(&path, &record.to_json())?;
        let _ = std::fs::remove_file(self.running_dir().join(format!("{id}.json")));
        let _ = std::fs::remove_file(self.queue_dir().join(format!("{id}.json")));
        let _ = std::fs::remove_file(self.tombstone_path(id));
        crate::events::EventLog::open(self, id).emit("job_cancelled", &[("name", name.into())]);
        oblx_telemetry::incr(oblx_telemetry::Counter::JobCancelled);
        Ok(())
    }
}

/// What [`Spool::cancel`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued: dequeued and cancelled immediately.
    Dequeued,
    /// The job is claimed: tombstoned, the pool will stop and retire it.
    Requested,
    /// The job had already finished; its result stands.
    AlreadyDone,
    /// The job was already cancelled.
    AlreadyCancelled,
    /// No such job exists in the spool.
    Unknown,
}

#[cfg(test)]
mod tests {
    use super::*;
    use astrx_oblx::SynthesisOptions;

    fn req(name: &str, priority: i64) -> JobRequest {
        JobRequest {
            name: name.into(),
            source: ".end\n".into(),
            deck: String::new(),
            options: SynthesisOptions::default(),
            seeds: vec![1],
            priority,
        }
    }

    fn temp_spool(tag: &str) -> Spool {
        let root = std::env::temp_dir().join(format!(
            "oblx-spool-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        Spool::open(root).unwrap()
    }

    #[test]
    fn claim_order_is_priority_then_fifo() {
        let spool = temp_spool("order");
        spool.submit(req("low-early", 0)).unwrap();
        spool.submit(req("high", 5)).unwrap();
        spool.submit(req("low-late", 0)).unwrap();
        let order: Vec<String> = std::iter::from_fn(|| spool.claim_next())
            .map(|j| j.request.name)
            .collect();
        assert_eq!(order, ["high", "low-early", "low-late"]);
        assert_eq!(spool.pending().len(), 0);
        assert_eq!(spool.running().len(), 3);
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn recover_requeues_running_jobs() {
        let spool = temp_spool("recover");
        spool.submit(req("a", 0)).unwrap();
        let job = spool.claim_next().unwrap();
        assert!(spool.pending().is_empty());
        let recovered = spool.recover();
        assert_eq!(recovered, std::slice::from_ref(&job.id));
        assert_eq!(spool.pending().len(), 1);
        assert!(spool.running().is_empty());
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn complete_moves_job_to_done() {
        let spool = temp_spool("complete");
        spool.submit(req("a", 0)).unwrap();
        let job = spool.claim_next().unwrap();
        let record = astrx_oblx::json::ObjBuilder::new()
            .field("status", "ok")
            .build();
        spool.complete(&job.id, &record).unwrap();
        assert!(spool.running().is_empty());
        assert_eq!(spool.done_ids(), std::slice::from_ref(&job.id));
        assert_eq!(
            spool.done(&job.id).unwrap().get("status").unwrap().as_str(),
            Some("ok")
        );
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn corrupt_queue_files_are_skipped() {
        let spool = temp_spool("corrupt");
        spool.submit(req("good", 0)).unwrap();
        std::fs::write(spool.queue_dir().join("torn.json"), "{\"format\":").unwrap();
        let jobs = spool.pending();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].request.name, "good");
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn quarantine_moves_undecodable_files_out_of_the_scan_path() {
        let spool = temp_spool("quarantine");
        spool.submit(req("good", 0)).unwrap();
        std::fs::write(spool.queue_dir().join("torn.json"), "{\"format\":").unwrap();
        std::fs::write(spool.running_dir().join("mangled.json"), "not json").unwrap();
        let mut q = spool.quarantine_corrupt();
        q.sort();
        assert_eq!(q, ["mangled", "torn"]);
        assert!(spool.corrupt_dir().join("torn.json").exists());
        assert!(spool.corrupt_dir().join("mangled.json").exists());
        assert_eq!(spool.pending().len(), 1, "the good job survives");
        assert!(spool.quarantine_corrupt().is_empty(), "rescan is clean");
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn recover_quarantines_corrupt_running_entries() {
        let spool = temp_spool("recover-corrupt");
        spool.submit(req("a", 0)).unwrap();
        let job = spool.claim_next().unwrap();
        std::fs::write(spool.running_dir().join("torn.json"), "{{{{").unwrap();
        let recovered = spool.recover();
        assert_eq!(recovered, std::slice::from_ref(&job.id));
        assert!(spool.corrupt_dir().join("torn.json").exists());
        assert!(spool.running().is_empty());
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn cancel_dequeues_a_pending_job() {
        let spool = temp_spool("cancel-queued");
        let job = spool.submit(req("victim", 0)).unwrap();
        assert_eq!(
            spool.cancel(&job.id, "victim").unwrap(),
            CancelOutcome::Dequeued
        );
        assert!(spool.pending().is_empty());
        assert!(!spool.cancel_requested(&job.id), "tombstone retired");
        let record = spool.cancelled(&job.id).unwrap();
        assert_eq!(record.get("status").unwrap().as_str(), Some("cancelled"));
        assert_eq!(spool.cancelled_ids(), std::slice::from_ref(&job.id));
        // Idempotent: a second cancel reports the terminal state.
        assert_eq!(
            spool.cancel(&job.id, "victim").unwrap(),
            CancelOutcome::AlreadyCancelled
        );
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn cancel_tombstones_a_claimed_job() {
        let spool = temp_spool("cancel-running");
        let job = spool.submit(req("victim", 0)).unwrap();
        let claimed = spool.claim_next().unwrap();
        assert_eq!(claimed.id, job.id);
        assert_eq!(
            spool.cancel(&job.id, "victim").unwrap(),
            CancelOutcome::Requested
        );
        assert!(spool.cancel_requested(&job.id));
        assert!(spool.cancelled(&job.id).is_none(), "not yet terminal");
        // The pool's acknowledgement path.
        spool.complete_cancelled(&job.id, "victim").unwrap();
        assert!(spool.running().is_empty());
        assert!(!spool.cancel_requested(&job.id));
        assert!(spool.cancelled(&job.id).is_some());
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn cancel_of_done_or_unknown_jobs_is_a_no_op() {
        let spool = temp_spool("cancel-noop");
        spool.submit(req("a", 0)).unwrap();
        let job = spool.claim_next().unwrap();
        let record = astrx_oblx::json::ObjBuilder::new()
            .field("status", "ok")
            .build();
        spool.complete(&job.id, &record).unwrap();
        assert_eq!(
            spool.cancel(&job.id, "a").unwrap(),
            CancelOutcome::AlreadyDone
        );
        assert_eq!(
            spool.cancel("j999999", "ghost").unwrap(),
            CancelOutcome::Unknown
        );
        assert!(!spool.cancel_requested("j999999"), "no stray tombstone");
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn recover_retires_tombstoned_orphans() {
        let spool = temp_spool("recover-cancel");
        spool.submit(req("keep", 0)).unwrap();
        spool.submit(req("drop", 0)).unwrap();
        let keep = spool.claim_next().unwrap();
        let drop = spool.claim_next().unwrap();
        assert_eq!(
            spool.cancel(&drop.id, "drop").unwrap(),
            CancelOutcome::Requested
        );
        let recovered = spool.recover();
        assert_eq!(recovered, std::slice::from_ref(&keep.id));
        assert_eq!(spool.pending().len(), 1);
        assert!(spool.cancelled(&drop.id).is_some());
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn sequence_numbers_are_unique_across_threads() {
        let spool = temp_spool("seq");
        let mut ids: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let spool = spool.clone();
                    scope.spawn(move || {
                        (0..5)
                            .map(|_| spool.submit(req("x", 0)).unwrap().id)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 20, "all submissions got distinct ids");
        std::fs::remove_dir_all(spool.root()).unwrap();
    }
}
