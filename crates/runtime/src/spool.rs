//! The spool: a directory-backed, crash-safe job queue.
//!
//! Layout under the spool root:
//!
//! ```text
//! queue/<id>.json            submitted jobs awaiting a worker
//! running/<id>.json          jobs claimed by a daemon
//! done/<id>.json             result records (success or failure)
//! cancelled/<id>.json        terminal records of cancelled jobs
//! cancel/<id>.tomb           cancel tombstones honored by the worker pool
//! corrupt/<id>.json          quarantined undecodable job files
//! ckpt/<id>/                 per-seed checkpoints and seed-done records
//! seeds/<id>/s<seed>.*.json  per-seed work entries (open = stealable,
//!                            run = claimed) — the cross-host work unit
//! leases/<stem>.lease        liveness leases (job and per-seed)
//! portfolio/<id>/            best-so-far exchange records (opt-in)
//! hosts/<host>.json          per-daemon heartbeat snapshots
//! events/<id>.jsonl          per-job event logs (see crate::events)
//! workers.json               live worker-state snapshot (per daemon)
//! seq                        submission sequence counter
//! ```
//!
//! Every transition is a single atomic `rename`, so a crash at any
//! instant leaves each job in exactly one well-defined place — the
//! protocol needs nothing beyond atomic rename and atomic
//! write-then-rename, so several daemons can share one spool over
//! NFS-style storage.
//!
//! # Cluster protocol
//!
//! Multiple `oblxd` daemons (each with a unique `--host-id`) cooperate
//! through three mechanisms, all file-based:
//!
//! * **Leased claims.** Claiming a job or a per-seed entry writes a
//!   lease record (owner host, pid, heartbeat counter, fencing token).
//!   Seed leases are refreshed at every checkpoint; a holder whose
//!   refresh discovers a foreign owner or a higher fence has been
//!   fenced out and abandons the work item. Expiry is *observation*
//!   based — a peer reaps a lease only after watching its `(owner,
//!   beat)` pair sit unchanged for the lease timeout on the peer's own
//!   monotonic clock — so no cross-host clock sync is required.
//! * **Seed stealing.** A claimed job is sharded into one
//!   `seeds/<id>/s<seed>.open.json` entry per unfinished seed; *any*
//!   idle daemon renames an open entry to `.run.json` to claim it.
//!   Checkpoints are bit-exact, so a seed reaped from a dead host
//!   resumes mid-anneal on the thief with a bit-identical final result.
//!   Fencing tokens are embedded in checkpoint *filenames*
//!   (see `astrx_oblx::jobs::fenced_checkpoint_path`), so a zombie's
//!   late checkpoint write can never shadow the new holder's state.
//! * **Recovery split.** [`Spool::recover`] (startup) requeues only
//!   jobs and seed entries owned by *this* host id or with no lease at
//!   all; live peers' work is left untouched. Expired *foreign* leases
//!   are reaped continuously by the pool's reaper tick instead.

use astrx_oblx::jobs::{self, JobFile, JobRequest};
use astrx_oblx::json::{ObjBuilder, Value};
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Handle to a spool directory, carrying the local host identity used
/// for lease ownership.
#[derive(Debug, Clone)]
pub struct Spool {
    root: PathBuf,
    host: String,
}

/// The default host identity: `$OBLX_HOST_ID` when set, else the
/// machine hostname, else `"host"`. Deliberately **stable across
/// restarts** of the same daemon on the same machine, so a restarted
/// daemon recognizes (and recovers) its own leases. Multiple daemons
/// sharing one machine must be given distinct ids via `--host-id`.
pub fn default_host_id() -> String {
    if let Ok(id) = std::env::var("OBLX_HOST_ID") {
        let id = id.trim().to_string();
        if !id.is_empty() {
            return id;
        }
    }
    if let Ok(name) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
        let name = name.trim().to_string();
        if !name.is_empty() {
            return name;
        }
    }
    std::env::var("HOSTNAME")
        .ok()
        .map(|h| h.trim().to_string())
        .filter(|h| !h.is_empty())
        .unwrap_or_else(|| "host".to_string())
}

impl Spool {
    /// Opens (creating if needed) a spool rooted at `root`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory tree.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Spool> {
        let spool = Spool {
            root: root.into(),
            host: default_host_id(),
        };
        for dir in [
            spool.queue_dir(),
            spool.running_dir(),
            spool.done_dir(),
            spool.cancelled_dir(),
            spool.tombstones_dir(),
            spool.corrupt_dir(),
            spool.events_dir(),
            spool.ckpt_root(),
            spool.seeds_root(),
            spool.leases_dir(),
            spool.portfolio_root(),
            spool.hosts_dir(),
        ] {
            std::fs::create_dir_all(dir)?;
        }
        Ok(spool)
    }

    /// Replaces the host identity used for lease ownership (the
    /// default is [`default_host_id`]). Every daemon sharing a spool
    /// must use a distinct id.
    #[must_use]
    pub fn with_host(mut self, host: impl Into<String>) -> Spool {
        self.host = host.into();
        self
    }

    /// This spool handle's host identity.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The spool root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `queue/` — pending jobs.
    pub fn queue_dir(&self) -> PathBuf {
        self.root.join("queue")
    }

    /// `running/` — claimed jobs.
    pub fn running_dir(&self) -> PathBuf {
        self.root.join("running")
    }

    /// `done/` — result records.
    pub fn done_dir(&self) -> PathBuf {
        self.root.join("done")
    }

    /// `cancelled/` — terminal records of cancelled jobs.
    pub fn cancelled_dir(&self) -> PathBuf {
        self.root.join("cancelled")
    }

    /// `cancel/` — cancel tombstones awaiting pool acknowledgement.
    pub fn tombstones_dir(&self) -> PathBuf {
        self.root.join("cancel")
    }

    /// `corrupt/` — quarantined job files that could not be decoded.
    pub fn corrupt_dir(&self) -> PathBuf {
        self.root.join("corrupt")
    }

    /// `events/` — per-job JSONL logs.
    pub fn events_dir(&self) -> PathBuf {
        self.root.join("events")
    }

    fn ckpt_root(&self) -> PathBuf {
        self.root.join("ckpt")
    }

    /// `ckpt/<id>/` — the checkpoint directory of one job.
    pub fn ckpt_dir(&self, id: &str) -> PathBuf {
        self.ckpt_root().join(id)
    }

    /// `seeds/` — per-seed work entries, one subdirectory per job.
    pub fn seeds_root(&self) -> PathBuf {
        self.root.join("seeds")
    }

    /// `seeds/<id>/` — the per-seed work entries of one job.
    pub fn job_seeds_dir(&self, id: &str) -> PathBuf {
        self.seeds_root().join(id)
    }

    /// `leases/` — job and seed liveness leases.
    pub fn leases_dir(&self) -> PathBuf {
        self.root.join("leases")
    }

    /// `portfolio/` — best-so-far exchange records, per job.
    pub fn portfolio_root(&self) -> PathBuf {
        self.root.join("portfolio")
    }

    /// `portfolio/<id>/` — the exchange directory of one job.
    pub fn job_portfolio_dir(&self, id: &str) -> PathBuf {
        self.portfolio_root().join(id)
    }

    /// `hosts/` — per-daemon heartbeat snapshots.
    pub fn hosts_dir(&self) -> PathBuf {
        self.root.join("hosts")
    }

    /// Path of this daemon's live worker-state snapshot. Per-host, so
    /// parallel daemons over one spool do not clobber each other.
    pub fn workers_path(&self) -> PathBuf {
        self.root.join(format!("workers.{}.json", self.host))
    }

    /// Worker-snapshot paths of every daemon that has written one
    /// (including the legacy unsuffixed `workers.json`).
    pub fn all_workers_paths(&self) -> Vec<PathBuf> {
        let mut out = Vec::new();
        let legacy = self.root.join("workers.json");
        if legacy.exists() {
            out.push(legacy);
        }
        if let Ok(entries) = std::fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.starts_with("workers.") && name.ends_with(".json") && name != "workers.json"
                {
                    out.push(entry.path());
                }
            }
        }
        out.sort();
        out
    }

    /// Submits a job: assigns an id and sequence number and writes it
    /// into `queue/` atomically (via [`jobs::spool_submit`], the same
    /// protocol thin clients use). Returns the stored [`JobFile`].
    ///
    /// # Errors
    ///
    /// Any I/O error.
    pub fn submit(&self, request: JobRequest) -> io::Result<JobFile> {
        jobs::spool_submit(&self.root, request)
    }

    fn read_jobs(dir: &Path) -> Vec<JobFile> {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Ok(job) = jobs::job_from_json(&text) {
                    out.push(job);
                }
            }
        }
        out.sort_by(|a, b| {
            b.request
                .priority
                .cmp(&a.request.priority)
                .then(a.seq.cmp(&b.seq))
        });
        out
    }

    /// Pending jobs, in claim order (priority desc, then FIFO).
    pub fn pending(&self) -> Vec<JobFile> {
        Self::read_jobs(&self.queue_dir())
    }

    /// Jobs currently claimed by workers.
    pub fn running(&self) -> Vec<JobFile> {
        Self::read_jobs(&self.running_dir())
    }

    /// Claims the highest-priority pending job by renaming it into
    /// `running/`. The rename is the arbitration point: when several
    /// workers race, exactly one rename succeeds and the losers move on
    /// to the next candidate. A successful claim writes the job's
    /// lease, marking this host as its shard-owner.
    ///
    /// Each call rescans the queue; claim loops should hold a
    /// [`ClaimCursor`] and use [`Spool::claim_next_from`] instead.
    pub fn claim_next(&self) -> Option<JobFile> {
        self.claim_next_from(&mut ClaimCursor::default())
    }

    /// [`Spool::claim_next`] resuming from `cursor`: the queue scan is
    /// cached across calls, so under N contending claimers a rename
    /// loser moves on to the next cached candidate instead of rescanning
    /// and re-parsing the whole queue directory (the thundering-herd
    /// cost was O(queue²) per drain). The cursor also tracks contention
    /// for [`ClaimCursor::backoff`].
    pub fn claim_next_from(&self, cursor: &mut ClaimCursor) -> Option<JobFile> {
        loop {
            if cursor.cached.is_empty() {
                cursor.cached = self.pending().into();
                if cursor.cached.is_empty() {
                    return None;
                }
            }
            while let Some(job) = cursor.cached.pop_front() {
                let from = self.queue_dir().join(format!("{}.json", job.id));
                let to = self.running_dir().join(format!("{}.json", job.id));
                if std::fs::rename(&from, &to).is_ok() {
                    cursor.losses = 0;
                    let _ = self.write_lease(&LeaseName::job(&job.id), 1, 1);
                    return Some(job);
                }
                // A peer claimed (or a cancel dequeued) this candidate
                // under us; the next cached entry is O(1) away.
                cursor.losses = cursor.losses.saturating_add(1);
            }
            // Cache exhausted by losses: rescan once; an empty rescan
            // means the queue really is (momentarily) empty.
            cursor.cached = self.pending().into();
            if cursor.cached.is_empty() {
                return None;
            }
        }
    }

    // -----------------------------------------------------------------
    // Leases.

    /// Path of a lease file.
    pub fn lease_path(&self, name: &LeaseName) -> PathBuf {
        self.leases_dir().join(format!("{}.lease", name.stem()))
    }

    /// Reads a lease, `None` when missing or torn.
    pub fn read_lease(&self, name: &LeaseName) -> Option<Lease> {
        let text = std::fs::read_to_string(self.lease_path(name)).ok()?;
        Lease::from_json(&text)
    }

    /// Writes (or overwrites) a lease owned by this host.
    ///
    /// # Errors
    ///
    /// Any I/O error.
    pub fn write_lease(&self, name: &LeaseName, fence: u64, beat: u64) -> io::Result<()> {
        let lease = Lease {
            owner: self.host.clone(),
            pid: std::process::id(),
            beat,
            fence,
        };
        jobs::write_atomic(&self.lease_path(name), &lease.to_json())?;
        oblx_telemetry::incr(oblx_telemetry::Counter::LeaseAcquired);
        Ok(())
    }

    /// Advances the heartbeat counter of a lease this host believes it
    /// holds at `fence`. Returns `false` — **the holder has been fenced
    /// out and must abandon the work item** — when the lease on disk is
    /// missing, foreign-owned, or carries a different fence (a reaper
    /// re-opened the entry and someone re-claimed it).
    pub fn refresh_lease(&self, name: &LeaseName, fence: u64) -> bool {
        let Some(lease) = self.read_lease(name) else {
            oblx_telemetry::incr(oblx_telemetry::Counter::LeaseLost);
            return false;
        };
        if lease.owner != self.host || lease.fence != fence {
            oblx_telemetry::incr(oblx_telemetry::Counter::LeaseLost);
            return false;
        }
        let next = Lease {
            beat: lease.beat.wrapping_add(1),
            ..lease
        };
        jobs::write_atomic(&self.lease_path(name), &next.to_json()).is_ok()
    }

    /// Removes a lease (normal completion of the leased work item).
    pub fn release_lease(&self, name: &LeaseName) {
        if std::fs::remove_file(self.lease_path(name)).is_ok() {
            oblx_telemetry::incr(oblx_telemetry::Counter::LeaseReleased);
        }
    }

    /// Every lease in the spool, parsed. Torn files are skipped.
    pub fn leases(&self) -> Vec<(LeaseName, Lease)> {
        let Ok(entries) = std::fs::read_dir(self.leases_dir()) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".lease")) else {
                continue;
            };
            let Some(name) = LeaseName::parse(stem) else {
                continue;
            };
            if let Ok(text) = std::fs::read_to_string(entry.path()) {
                if let Some(lease) = Lease::from_json(&text) {
                    out.push((name, lease));
                }
            }
        }
        out.sort_by_key(|a| a.0.stem());
        out
    }

    // -----------------------------------------------------------------
    // Per-seed work entries — the cross-host unit of migration.

    fn seed_entry_path(&self, job: &str, seed: u64, state: &str) -> PathBuf {
        self.job_seeds_dir(job)
            .join(format!("s{seed}.{state}.json"))
    }

    /// Shards a claimed job into per-seed `open` entries, skipping
    /// seeds that already have a done-record, an open entry, or a run
    /// entry. Idempotent: any daemon may call it to repair a shard left
    /// incomplete by a crashed claimer. Returns the entries created.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the seeds directory or writing entries.
    pub fn shard_job(&self, job: &JobFile) -> io::Result<usize> {
        let dir = self.job_seeds_dir(&job.id);
        std::fs::create_dir_all(&dir)?;
        let ckdir = self.ckpt_dir(&job.id);
        let mut created = 0;
        for (index, &seed) in job.request.seeds.iter().enumerate() {
            if ckdir.join(format!("seed_{seed}.done.json")).exists()
                || self.seed_entry_path(&job.id, seed, "open").exists()
                || self.seed_entry_path(&job.id, seed, "run").exists()
            {
                continue;
            }
            let entry = SeedEntry {
                job: job.id.clone(),
                seed,
                index,
                fence: 1,
            };
            jobs::write_atomic(
                &self.seed_entry_path(&job.id, seed, "open"),
                &entry.to_json(),
            )?;
            created += 1;
        }
        Ok(created)
    }

    fn read_seed_entries(&self, state: &str) -> Vec<SeedEntry> {
        let suffix = format!(".{state}.json");
        let Ok(jobs_dirs) = std::fs::read_dir(self.seeds_root()) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for job_dir in jobs_dirs.flatten() {
            let Ok(entries) = std::fs::read_dir(job_dir.path()) else {
                continue;
            };
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if !name.ends_with(&suffix) {
                    continue;
                }
                if let Ok(text) = std::fs::read_to_string(entry.path()) {
                    if let Some(e) = SeedEntry::from_json(&text) {
                        out.push(e);
                    }
                }
            }
        }
        out.sort_by(|a, b| a.job.cmp(&b.job).then(a.seed.cmp(&b.seed)));
        out
    }

    /// All stealable (open) seed entries, ordered by (job, seed).
    pub fn open_seed_entries(&self) -> Vec<SeedEntry> {
        self.read_seed_entries("open")
    }

    /// All claimed (run) seed entries, ordered by (job, seed).
    pub fn running_seed_entries(&self) -> Vec<SeedEntry> {
        self.read_seed_entries("run")
    }

    /// Whether job `id` still has any live (open or run) seed entry.
    pub fn has_live_seed_entries(&self, id: &str) -> bool {
        let Ok(entries) = std::fs::read_dir(self.job_seeds_dir(id)) else {
            return false;
        };
        entries.flatten().any(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".open.json") || n.ends_with(".run.json"))
        })
    }

    /// Claims one open seed entry by renaming it to its `run` name —
    /// the cross-host arbitration point — and writes its lease at the
    /// entry's fence. Returns `false` when a peer won the rename.
    pub fn claim_seed(&self, entry: &SeedEntry) -> bool {
        let from = self.seed_entry_path(&entry.job, entry.seed, "open");
        let to = self.seed_entry_path(&entry.job, entry.seed, "run");
        if std::fs::rename(&from, &to).is_err() {
            return false;
        }
        let _ = self.write_lease(&LeaseName::seed(&entry.job, entry.seed), entry.fence, 1);
        true
    }

    /// Retires a finished seed's run entry and lease (its done-record
    /// is already durable in `ckpt/<id>/`).
    pub fn finish_seed(&self, entry: &SeedEntry) {
        let _ = std::fs::remove_file(self.seed_entry_path(&entry.job, entry.seed, "run"));
        self.release_lease(&LeaseName::seed(&entry.job, entry.seed));
    }

    /// Re-opens a claimed seed entry whose holder is gone (crashed, or
    /// lease expired): writes a fresh `open` entry with a **bumped
    /// fencing token**, then retires the stale run entry and lease.
    /// The order is crash-safe — if the reaper itself dies mid-way the
    /// open entry survives and the next `claim_seed` rename simply
    /// replaces the leftover run entry.
    pub fn reopen_seed(&self, entry: &SeedEntry) -> bool {
        let reopened = SeedEntry {
            fence: entry.fence + 1,
            ..entry.clone()
        };
        let open = self.seed_entry_path(&entry.job, entry.seed, "open");
        if jobs::write_atomic(&open, &reopened.to_json()).is_err() {
            return false;
        }
        self.release_lease(&LeaseName::seed(&entry.job, entry.seed));
        let _ = std::fs::remove_file(self.seed_entry_path(&entry.job, entry.seed, "run"));
        true
    }

    /// Removes the whole seeds directory of a terminal job.
    pub fn remove_seed_entries(&self, id: &str) {
        let _ = std::fs::remove_dir_all(self.job_seeds_dir(id));
    }

    // -----------------------------------------------------------------
    // Host heartbeats.

    /// Writes this daemon's heartbeat snapshot (`hosts/<host>.json`):
    /// worker count plus a beat counter the status side can watch for
    /// staleness.
    pub fn write_host_heartbeat(&self, workers: usize, beat: u64) {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        let doc = ObjBuilder::new()
            .field("format", "oblx-host")
            .field("version", 1i64)
            .field("host", self.host.as_str())
            .field("pid", i64::from(std::process::id()))
            .field("workers", workers)
            .field("beat", jobs::u64_to_value(beat))
            .field("ts", ts)
            .build();
        let _ = jobs::write_atomic(
            &self.hosts_dir().join(format!("{}.json", self.host)),
            &doc.to_json(),
        );
    }

    /// Every host heartbeat in the spool, sorted by host id.
    pub fn hosts(&self) -> Vec<HostInfo> {
        let Ok(entries) = std::fs::read_dir(self.hosts_dir()) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let Ok(text) = std::fs::read_to_string(entry.path()) else {
                continue;
            };
            let Ok(v) = astrx_oblx::json::parse(&text) else {
                continue;
            };
            if v.get("format").and_then(Value::as_str) != Some("oblx-host") {
                continue;
            }
            let Some(host) = v.get("host").and_then(Value::as_str) else {
                continue;
            };
            out.push(HostInfo {
                host: host.to_string(),
                pid: v.get("pid").and_then(Value::as_int).unwrap_or(0) as u32,
                workers: v
                    .get("workers")
                    .and_then(Value::as_int)
                    .and_then(|i| usize::try_from(i).ok())
                    .unwrap_or(0),
                beat: v
                    .get("beat")
                    .and_then(|b| jobs::u64_from_value(b).ok())
                    .unwrap_or(0),
                ts: v.get("ts").and_then(Value::as_f64).unwrap_or(0.0),
            });
        }
        out.sort_by(|a, b| a.host.cmp(&b.host));
        out
    }

    /// Scans `queue/` and `running/` for `.json` files that cannot be
    /// decoded as jobs — torn writes, truncation, garbage — and renames
    /// them into `corrupt/`. Returns the quarantined file stems.
    ///
    /// Undecodable files used to be skipped silently by every scan,
    /// sitting in the queue forever with no operator-visible trace;
    /// quarantining makes the failure diagnosable and keeps rescans
    /// cheap. A file that vanishes mid-scan (claimed or completed by a
    /// racing worker) is *not* corruption and is left alone.
    pub fn quarantine_corrupt(&self) -> Vec<String> {
        let mut quarantined = Vec::new();
        for dir in [self.queue_dir(), self.running_dir()] {
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) != Some("json") {
                    continue;
                }
                // Only a file we can *read* but not *decode* is corrupt.
                let Ok(text) = std::fs::read_to_string(&path) else {
                    continue;
                };
                if jobs::job_from_json(&text).is_ok() {
                    continue;
                }
                let Some(stem) = path.file_stem().map(|s| s.to_string_lossy().into_owned()) else {
                    continue;
                };
                let to = self.corrupt_dir().join(format!("{stem}.json"));
                if std::fs::rename(&path, &to).is_ok() {
                    quarantined.push(stem);
                }
            }
        }
        quarantined
    }

    /// Startup recovery: requeues `running/` jobs and re-opens claimed
    /// seed entries that belong to **this host id** (we are their
    /// restarted owner) or that carry no lease at all. A live peer's
    /// work is left strictly alone — expired *foreign* leases are the
    /// pool reaper's job, which waits out the lease timeout first.
    /// Returns the recovered ids (`<job>` for requeued jobs,
    /// `<job>:s<seed>` for re-opened seed entries). Undecodable
    /// `running/` entries are quarantined (see
    /// [`Spool::quarantine_corrupt`]) rather than silently left behind.
    pub fn recover(&self) -> Vec<String> {
        let _ = self.quarantine_corrupt();
        let mut recovered = Vec::new();
        for job in self.running() {
            // A tombstoned orphan is not worth requeueing: retire the
            // job here instead of resuming it only to stop it again at
            // its first checkpoint — but only once no peer still runs
            // one of its seeds.
            if self.cancel_requested(&job.id) {
                if !self.foreign_live_seeds(&job.id) {
                    let _ = self.try_retire_cancelled(&job.id, &job.request.name);
                }
                continue;
            }
            if let Some(lease) = self.read_lease(&LeaseName::job(&job.id)) {
                if lease.owner != self.host {
                    continue;
                }
            }
            let from = self.running_dir().join(format!("{}.json", job.id));
            let to = self.queue_dir().join(format!("{}.json", job.id));
            if std::fs::rename(&from, &to).is_ok() {
                self.release_lease(&LeaseName::job(&job.id));
                recovered.push(job.id);
            }
        }
        for entry in self.running_seed_entries() {
            if let Some(lease) = self.read_lease(&LeaseName::seed(&entry.job, entry.seed)) {
                if lease.owner != self.host {
                    continue;
                }
            }
            if self.reopen_seed(&entry) {
                recovered.push(format!("{}:s{}", entry.job, entry.seed));
            }
        }
        recovered
    }

    /// Whether any seed of `id` is claimed (`run`) under a lease owned
    /// by a *different* host.
    fn foreign_live_seeds(&self, id: &str) -> bool {
        self.running_seed_entries()
            .iter()
            .filter(|e| e.job == id)
            .any(|e| {
                self.read_lease(&LeaseName::seed(&e.job, e.seed))
                    .is_some_and(|l| l.owner != self.host)
            })
    }

    /// Records a finished job: writes the result record into `done/`
    /// and drops the `running/` entry.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the record.
    pub fn complete(&self, id: &str, record: &Value) -> io::Result<()> {
        let path = self.done_dir().join(format!("{id}.json"));
        jobs::write_atomic(&path, &record.to_json())?;
        let _ = std::fs::remove_file(self.running_dir().join(format!("{id}.json")));
        Ok(())
    }

    /// Reads the result record of a finished job, if any.
    pub fn done(&self, id: &str) -> Option<Value> {
        let text = std::fs::read_to_string(self.done_dir().join(format!("{id}.json"))).ok()?;
        astrx_oblx::json::parse(&text).ok()
    }

    /// Ids of all finished jobs.
    pub fn done_ids(&self) -> Vec<String> {
        Self::json_ids(&self.done_dir())
    }

    /// Ids of all cancelled jobs.
    pub fn cancelled_ids(&self) -> Vec<String> {
        Self::json_ids(&self.cancelled_dir())
    }

    fn json_ids(dir: &Path) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut ids: Vec<String> = entries
            .flatten()
            .filter_map(|e| {
                let p = e.path();
                if p.extension().and_then(|x| x.to_str()) == Some("json") {
                    p.file_stem().map(|s| s.to_string_lossy().into_owned())
                } else {
                    None
                }
            })
            .collect();
        ids.sort();
        ids
    }

    /// Path of job `id`'s cancel tombstone.
    pub fn tombstone_path(&self, id: &str) -> PathBuf {
        self.tombstones_dir().join(format!("{id}.tomb"))
    }

    /// Whether a cancel has been requested for `id` and not yet
    /// acknowledged. Checked by the pool at claim time and at every
    /// per-seed checkpoint.
    pub fn cancel_requested(&self, id: &str) -> bool {
        self.tombstone_path(id).exists()
    }

    /// Reads the terminal record of a cancelled job, if any.
    pub fn cancelled(&self, id: &str) -> Option<Value> {
        let text = std::fs::read_to_string(self.cancelled_dir().join(format!("{id}.json"))).ok()?;
        astrx_oblx::json::parse(&text).ok()
    }

    /// Requests cancellation of job `id`.
    ///
    /// A still-queued job is dequeued and moved straight to its
    /// `cancelled` terminal state. A claimed job gets a tombstone that
    /// the worker pool honors: each in-flight seed stops at its next
    /// checkpoint, and the job finalizes into `cancelled/` instead of
    /// `done/` (emitting a `job_cancelled` event). Cancelling a job
    /// that is already terminal, or unknown, changes nothing.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the tombstone or the cancelled record.
    pub fn cancel(&self, id: &str, name: &str) -> io::Result<CancelOutcome> {
        if self.done(id).is_some() {
            return Ok(CancelOutcome::AlreadyDone);
        }
        if self.cancelled(id).is_some() {
            return Ok(CancelOutcome::AlreadyCancelled);
        }
        // Tombstone first: from this instant a racing worker will see
        // the request at claim time or at its next checkpoint.
        jobs::write_atomic(&self.tombstone_path(id), "")?;
        // `remove_file` vs the pool's claim `rename` race on the same
        // queue entry: exactly one syscall wins, so a job is either
        // dequeued here or claimed there, never both.
        if std::fs::remove_file(self.queue_dir().join(format!("{id}.json"))).is_ok() {
            self.complete_cancelled(id, name)?;
            return Ok(CancelOutcome::Dequeued);
        }
        if self.running_dir().join(format!("{id}.json")).exists() {
            return Ok(CancelOutcome::Requested);
        }
        // Neither queued nor running. The job may have completed in the
        // window since the `done` check above — either way there is
        // nothing to cancel, so retract the tombstone.
        let _ = std::fs::remove_file(self.tombstone_path(id));
        if self.done(id).is_some() {
            return Ok(CancelOutcome::AlreadyDone);
        }
        Ok(CancelOutcome::Unknown)
    }

    /// Writes job `id`'s `cancelled` terminal record and retires every
    /// live trace of it (queue/running entries, tombstone). Called by
    /// [`Spool::cancel`] for queued jobs and by the pool once the last
    /// in-flight seed of a tombstoned job has stopped.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the record.
    pub fn complete_cancelled(&self, id: &str, name: &str) -> io::Result<()> {
        let record = astrx_oblx::json::ObjBuilder::new()
            .field("format", "oblx-result")
            .field("version", 1i64)
            .field("id", id)
            .field("name", name)
            .field("status", "cancelled")
            .build();
        let path = self.cancelled_dir().join(format!("{id}.json"));
        jobs::write_atomic(&path, &record.to_json())?;
        let _ = std::fs::remove_file(self.running_dir().join(format!("{id}.json")));
        let _ = std::fs::remove_file(self.queue_dir().join(format!("{id}.json")));
        let _ = std::fs::remove_file(self.tombstone_path(id));
        self.remove_seed_entries(id);
        self.release_lease(&LeaseName::job(id));
        let _ = std::fs::remove_dir_all(self.job_portfolio_dir(id));
        crate::events::EventLog::open(self, id).emit("job_cancelled", &[("name", name.into())]);
        oblx_telemetry::incr(oblx_telemetry::Counter::JobCancelled);
        Ok(())
    }

    /// Cluster-safe retirement of a tombstoned, claimed job: exactly
    /// one caller across all hosts wins the arbitration rename of the
    /// job spec into `ckpt/<id>/job.json` and writes the `cancelled`
    /// record (via [`Spool::complete_cancelled`]); the losers see
    /// `Ok(false)`. Callers must first ensure no peer still runs one of
    /// the job's seeds.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the record.
    pub fn try_retire_cancelled(&self, id: &str, name: &str) -> io::Result<bool> {
        if !self.claim_finalize(id) {
            return Ok(false);
        }
        self.complete_cancelled(id, name)?;
        let _ = std::fs::remove_dir_all(self.ckpt_dir(id));
        Ok(true)
    }

    /// The finalize arbitration point: renames the job spec (from
    /// `running/`, or `queue/` if a recover requeued it mid-flight)
    /// into `ckpt/<id>/job.json`. Exactly one caller across all hosts
    /// succeeds; a crashed winner leaves `job.json` behind, which the
    /// reaper detects (terminal record missing) and re-finalizes from.
    pub fn claim_finalize(&self, id: &str) -> bool {
        let parked = self.parked_job_path(id);
        let _ = std::fs::create_dir_all(self.ckpt_dir(id));
        std::fs::rename(self.running_dir().join(format!("{id}.json")), &parked).is_ok()
            || std::fs::rename(self.queue_dir().join(format!("{id}.json")), &parked).is_ok()
    }

    /// Where [`Spool::claim_finalize`] parks the job spec while the
    /// terminal record is written.
    pub fn parked_job_path(&self, id: &str) -> PathBuf {
        self.ckpt_dir(id).join("job.json")
    }

    /// Reads the spec of a claimed (running) job.
    pub fn read_running_job(&self, id: &str) -> Option<JobFile> {
        let text = std::fs::read_to_string(self.running_dir().join(format!("{id}.json"))).ok()?;
        jobs::job_from_json(&text).ok()
    }

    /// Ids with a parked job spec (`ckpt/<id>/job.json`) — jobs whose
    /// finalize was claimed; ones without a terminal record yet belong
    /// to a crashed finalizer and are re-finalized by the reaper.
    pub fn parked_job_ids(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(self.ckpt_root()) else {
            return Vec::new();
        };
        let mut out: Vec<String> = entries
            .flatten()
            .filter(|e| e.path().join("job.json").exists())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        out.sort();
        out
    }

    /// Reads a parked job spec.
    pub fn read_parked_job(&self, id: &str) -> Option<JobFile> {
        let text = std::fs::read_to_string(self.parked_job_path(id)).ok()?;
        jobs::job_from_json(&text).ok()
    }
}

/// Claim-scan cache and contention tracker for
/// [`Spool::claim_next_from`]. One per claim loop (worker thread);
/// never shared.
#[derive(Debug, Default)]
pub struct ClaimCursor {
    cached: VecDeque<JobFile>,
    losses: u32,
    rng: u64,
}

impl ClaimCursor {
    /// How long the claim loop should sleep after a contended scan:
    /// zero while claims are landing, then exponential in the number of
    /// consecutive rename losses (1 ms, 2 ms, … capped at 16 ms) with
    /// up to 100% multiplicative jitter so N contending hosts spread
    /// out instead of rescanning in lockstep.
    pub fn backoff(&mut self) -> Duration {
        if self.losses == 0 {
            return Duration::ZERO;
        }
        let base_us = 1000u64 << u64::from(self.losses.min(5) - 1);
        if self.rng == 0 {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(1);
            self.rng = (u64::from(std::process::id()) << 32) | u64::from(nanos) | 1;
        }
        // xorshift64 — cheap, seedable, good enough to decorrelate.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        Duration::from_micros(base_us + self.rng % base_us)
    }

    /// Consecutive rename losses since the last successful claim.
    pub fn losses(&self) -> u32 {
        self.losses
    }
}

/// Names a leased work item: a whole job (shard ownership) or one seed
/// of a job (run liveness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseName {
    /// The job-level lease written at claim time.
    Job(String),
    /// The per-seed lease refreshed at every checkpoint.
    Seed(String, u64),
}

impl LeaseName {
    /// Lease name of job `id`.
    pub fn job(id: &str) -> LeaseName {
        LeaseName::Job(id.to_string())
    }

    /// Lease name of seed `seed` of job `id`.
    pub fn seed(id: &str, seed: u64) -> LeaseName {
        LeaseName::Seed(id.to_string(), seed)
    }

    /// The file stem under `leases/`: `<id>` or `<id>.s<seed>`.
    /// Job ids never contain `.`, so the two forms cannot collide.
    pub fn stem(&self) -> String {
        match self {
            LeaseName::Job(id) => id.clone(),
            LeaseName::Seed(id, seed) => format!("{id}.s{seed}"),
        }
    }

    /// Inverse of [`LeaseName::stem`].
    pub fn parse(stem: &str) -> Option<LeaseName> {
        if stem.is_empty() {
            return None;
        }
        if let Some((id, seed)) = stem.rsplit_once(".s") {
            if let Ok(seed) = seed.parse::<u64>() {
                return Some(LeaseName::Seed(id.to_string(), seed));
            }
        }
        Some(LeaseName::Job(stem.to_string()))
    }

    /// The job this lease belongs to.
    pub fn job_id(&self) -> &str {
        match self {
            LeaseName::Job(id) | LeaseName::Seed(id, _) => id,
        }
    }
}

/// One liveness lease on disk: who holds a work item, at what fencing
/// token, and a heartbeat counter peers watch for progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Host id of the holder.
    pub owner: String,
    /// Pid of the holding daemon (diagnostic only).
    pub pid: u32,
    /// Heartbeat counter; bumped by [`Spool::refresh_lease`].
    pub beat: u64,
    /// Fencing token; must match the work entry's fence to refresh.
    pub fence: u64,
}

impl Lease {
    /// Serializes to the `oblx-lease` v1 record.
    pub fn to_json(&self) -> String {
        ObjBuilder::new()
            .field("format", "oblx-lease")
            .field("version", 1i64)
            .field("owner", self.owner.as_str())
            .field("pid", i64::from(self.pid))
            .field("beat", jobs::u64_to_value(self.beat))
            .field("fence", jobs::u64_to_value(self.fence))
            .build()
            .to_json()
    }

    /// Parses an `oblx-lease` v1 record; `None` on any mismatch.
    pub fn from_json(text: &str) -> Option<Lease> {
        let v = astrx_oblx::json::parse(text).ok()?;
        if v.get("format")?.as_str()? != "oblx-lease" || v.get("version")?.as_int()? != 1 {
            return None;
        }
        Some(Lease {
            owner: v.get("owner")?.as_str()?.to_string(),
            pid: u32::try_from(v.get("pid").and_then(Value::as_int).unwrap_or(0)).unwrap_or(0),
            beat: jobs::u64_from_value(v.get("beat")?).ok()?,
            fence: jobs::u64_from_value(v.get("fence")?).ok()?,
        })
    }
}

/// One per-seed work entry (`seeds/<job>/s<seed>.<state>.json`) — the
/// cross-host unit of work migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedEntry {
    /// Owning job id.
    pub job: String,
    /// The RNG seed this entry runs.
    pub seed: u64,
    /// Position in the job's seed list (result ordering).
    pub index: usize,
    /// Fencing token; bumped each time the entry is re-opened.
    pub fence: u64,
}

impl SeedEntry {
    /// Serializes to the `oblx-seed` v1 record.
    pub fn to_json(&self) -> String {
        ObjBuilder::new()
            .field("format", "oblx-seed")
            .field("version", 1i64)
            .field("job", self.job.as_str())
            .field("seed", jobs::u64_to_value(self.seed))
            .field("index", self.index)
            .field("fence", jobs::u64_to_value(self.fence))
            .build()
            .to_json()
    }

    /// Parses an `oblx-seed` v1 record; `None` on any mismatch.
    pub fn from_json(text: &str) -> Option<SeedEntry> {
        let v = astrx_oblx::json::parse(text).ok()?;
        if v.get("format")?.as_str()? != "oblx-seed" || v.get("version")?.as_int()? != 1 {
            return None;
        }
        Some(SeedEntry {
            job: v.get("job")?.as_str()?.to_string(),
            seed: jobs::u64_from_value(v.get("seed")?).ok()?,
            index: usize::try_from(v.get("index")?.as_int()?).ok()?,
            fence: jobs::u64_from_value(v.get("fence")?).ok()?,
        })
    }
}

/// A parsed `hosts/<host>.json` heartbeat snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HostInfo {
    /// The daemon's host id.
    pub host: String,
    /// Its pid.
    pub pid: u32,
    /// Worker threads it runs.
    pub workers: usize,
    /// Heartbeat counter (bumped every reaper tick).
    pub beat: u64,
    /// Wall-clock seconds since the epoch at the last beat
    /// (diagnostic only — liveness uses beat observation).
    pub ts: f64,
}

/// What [`Spool::cancel`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued: dequeued and cancelled immediately.
    Dequeued,
    /// The job is claimed: tombstoned, the pool will stop and retire it.
    Requested,
    /// The job had already finished; its result stands.
    AlreadyDone,
    /// The job was already cancelled.
    AlreadyCancelled,
    /// No such job exists in the spool.
    Unknown,
}

#[cfg(test)]
mod tests {
    use super::*;
    use astrx_oblx::SynthesisOptions;

    fn req(name: &str, priority: i64) -> JobRequest {
        JobRequest {
            name: name.into(),
            source: ".end\n".into(),
            deck: String::new(),
            options: SynthesisOptions::default(),
            seeds: vec![1],
            priority,
        }
    }

    fn temp_spool(tag: &str) -> Spool {
        let root = std::env::temp_dir().join(format!(
            "oblx-spool-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        Spool::open(root).unwrap()
    }

    #[test]
    fn claim_order_is_priority_then_fifo() {
        let spool = temp_spool("order");
        spool.submit(req("low-early", 0)).unwrap();
        spool.submit(req("high", 5)).unwrap();
        spool.submit(req("low-late", 0)).unwrap();
        let order: Vec<String> = std::iter::from_fn(|| spool.claim_next())
            .map(|j| j.request.name)
            .collect();
        assert_eq!(order, ["high", "low-early", "low-late"]);
        assert_eq!(spool.pending().len(), 0);
        assert_eq!(spool.running().len(), 3);
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn recover_requeues_running_jobs() {
        let spool = temp_spool("recover");
        spool.submit(req("a", 0)).unwrap();
        let job = spool.claim_next().unwrap();
        assert!(spool.pending().is_empty());
        let recovered = spool.recover();
        assert_eq!(recovered, std::slice::from_ref(&job.id));
        assert_eq!(spool.pending().len(), 1);
        assert!(spool.running().is_empty());
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn complete_moves_job_to_done() {
        let spool = temp_spool("complete");
        spool.submit(req("a", 0)).unwrap();
        let job = spool.claim_next().unwrap();
        let record = astrx_oblx::json::ObjBuilder::new()
            .field("status", "ok")
            .build();
        spool.complete(&job.id, &record).unwrap();
        assert!(spool.running().is_empty());
        assert_eq!(spool.done_ids(), std::slice::from_ref(&job.id));
        assert_eq!(
            spool.done(&job.id).unwrap().get("status").unwrap().as_str(),
            Some("ok")
        );
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn corrupt_queue_files_are_skipped() {
        let spool = temp_spool("corrupt");
        spool.submit(req("good", 0)).unwrap();
        std::fs::write(spool.queue_dir().join("torn.json"), "{\"format\":").unwrap();
        let jobs = spool.pending();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].request.name, "good");
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn quarantine_moves_undecodable_files_out_of_the_scan_path() {
        let spool = temp_spool("quarantine");
        spool.submit(req("good", 0)).unwrap();
        std::fs::write(spool.queue_dir().join("torn.json"), "{\"format\":").unwrap();
        std::fs::write(spool.running_dir().join("mangled.json"), "not json").unwrap();
        let mut q = spool.quarantine_corrupt();
        q.sort();
        assert_eq!(q, ["mangled", "torn"]);
        assert!(spool.corrupt_dir().join("torn.json").exists());
        assert!(spool.corrupt_dir().join("mangled.json").exists());
        assert_eq!(spool.pending().len(), 1, "the good job survives");
        assert!(spool.quarantine_corrupt().is_empty(), "rescan is clean");
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn recover_quarantines_corrupt_running_entries() {
        let spool = temp_spool("recover-corrupt");
        spool.submit(req("a", 0)).unwrap();
        let job = spool.claim_next().unwrap();
        std::fs::write(spool.running_dir().join("torn.json"), "{{{{").unwrap();
        let recovered = spool.recover();
        assert_eq!(recovered, std::slice::from_ref(&job.id));
        assert!(spool.corrupt_dir().join("torn.json").exists());
        assert!(spool.running().is_empty());
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn cancel_dequeues_a_pending_job() {
        let spool = temp_spool("cancel-queued");
        let job = spool.submit(req("victim", 0)).unwrap();
        assert_eq!(
            spool.cancel(&job.id, "victim").unwrap(),
            CancelOutcome::Dequeued
        );
        assert!(spool.pending().is_empty());
        assert!(!spool.cancel_requested(&job.id), "tombstone retired");
        let record = spool.cancelled(&job.id).unwrap();
        assert_eq!(record.get("status").unwrap().as_str(), Some("cancelled"));
        assert_eq!(spool.cancelled_ids(), std::slice::from_ref(&job.id));
        // Idempotent: a second cancel reports the terminal state.
        assert_eq!(
            spool.cancel(&job.id, "victim").unwrap(),
            CancelOutcome::AlreadyCancelled
        );
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn cancel_tombstones_a_claimed_job() {
        let spool = temp_spool("cancel-running");
        let job = spool.submit(req("victim", 0)).unwrap();
        let claimed = spool.claim_next().unwrap();
        assert_eq!(claimed.id, job.id);
        assert_eq!(
            spool.cancel(&job.id, "victim").unwrap(),
            CancelOutcome::Requested
        );
        assert!(spool.cancel_requested(&job.id));
        assert!(spool.cancelled(&job.id).is_none(), "not yet terminal");
        // The pool's acknowledgement path.
        spool.complete_cancelled(&job.id, "victim").unwrap();
        assert!(spool.running().is_empty());
        assert!(!spool.cancel_requested(&job.id));
        assert!(spool.cancelled(&job.id).is_some());
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn cancel_of_done_or_unknown_jobs_is_a_no_op() {
        let spool = temp_spool("cancel-noop");
        spool.submit(req("a", 0)).unwrap();
        let job = spool.claim_next().unwrap();
        let record = astrx_oblx::json::ObjBuilder::new()
            .field("status", "ok")
            .build();
        spool.complete(&job.id, &record).unwrap();
        assert_eq!(
            spool.cancel(&job.id, "a").unwrap(),
            CancelOutcome::AlreadyDone
        );
        assert_eq!(
            spool.cancel("j999999", "ghost").unwrap(),
            CancelOutcome::Unknown
        );
        assert!(!spool.cancel_requested("j999999"), "no stray tombstone");
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn recover_retires_tombstoned_orphans() {
        let spool = temp_spool("recover-cancel");
        spool.submit(req("keep", 0)).unwrap();
        spool.submit(req("drop", 0)).unwrap();
        let keep = spool.claim_next().unwrap();
        let drop = spool.claim_next().unwrap();
        assert_eq!(
            spool.cancel(&drop.id, "drop").unwrap(),
            CancelOutcome::Requested
        );
        let recovered = spool.recover();
        assert_eq!(recovered, std::slice::from_ref(&keep.id));
        assert_eq!(spool.pending().len(), 1);
        assert!(spool.cancelled(&drop.id).is_some());
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn sequence_numbers_are_unique_across_threads() {
        let spool = temp_spool("seq");
        let mut ids: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let spool = spool.clone();
                    scope.spawn(move || {
                        (0..5)
                            .map(|_| spool.submit(req("x", 0)).unwrap().id)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 20, "all submissions got distinct ids");
        std::fs::remove_dir_all(spool.root()).unwrap();
    }
}
