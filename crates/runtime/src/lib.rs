//! **oblx-runtime** — `oblxd`, a resumable synthesis job runtime.
//!
//! The 1994 ASTRX/OBLX workflow was "start several overnight runs, pick
//! the best in the morning" — which presumes the runs survive the
//! night. This crate supplies the missing operational layer as a small,
//! dependency-free daemon:
//!
//! * [`spool`] — a directory-backed job queue. Jobs are JSON files
//!   (see `astrx_oblx::jobs`) moved atomically between `queue/`,
//!   `running/` and `done/`; a crash leaves either the old file or the
//!   new one, never a torn hybrid. Priority order is (priority desc,
//!   submission seq asc).
//! * [`pool`] — a work-stealing worker pool. Each job is sharded into
//!   per-seed tasks; idle workers steal queued seeds from busy ones, so
//!   a single 8-seed job saturates 8 cores while a burst of small jobs
//!   still drains fairly.
//! * Checkpoint/restore — every per-seed run persists a full
//!   [`astrx_oblx::SynthesisCheckpoint`] (engine, RNG, schedule,
//!   adaptive weights, trace) every N proposals. A killed daemon
//!   restarted over the same spool resumes every interrupted seed from
//!   its last checkpoint and produces **bit-identical** final results —
//!   the integration tests SIGKILL the daemon mid-run and diff the
//!   result files.
//! * [`events`] — a JSONL event log per job (`submitted`, `started`,
//!   `seed_started`, `checkpoint`, `seed_done`, `done`, `failed`,
//!   `recovered`), plus the status aggregation behind `oblxd status`.
//!
//! The binary front end lives in `src/bin/oblxd.rs`:
//!
//! ```text
//! oblxd submit --dir SPOOL (--bench NAME | file.ox) [--seeds …] [--moves N] [--priority P]
//! oblxd run    --dir SPOOL [--workers N] [--checkpoint-interval N] [--drain]
//! oblxd status --dir SPOOL
//! ```

pub mod events;
pub mod pool;
pub mod signal;
pub mod spool;

use astrx_oblx::jobs::JobRequest;
use astrx_oblx::CompiledProblem;
use oblx_devices::process::ProcessDeck;
use oblx_netlist::ParseError;

/// Resolves a process-deck label (as produced by [`ProcessDeck::label`])
/// back to the deck.
pub fn deck_from_label(label: &str) -> Option<ProcessDeck> {
    [
        ProcessDeck::C2Level1,
        ProcessDeck::C2Bsim,
        ProcessDeck::C12Bsim,
        ProcessDeck::C12Level3,
        ProcessDeck::BicmosC2,
    ]
    .into_iter()
    .find(|d| d.label() == label)
}

/// Why a job request cannot be turned into a [`CompiledProblem`] —
/// structured so the HTTP edge can surface parse locations as machine-
/// readable 4xx JSON instead of flattening everything into one string.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The `.ox` source failed to parse; carries line/column.
    Parse(ParseError),
    /// The request names a process deck this build does not know.
    UnknownDeck(String),
    /// The parsed problem failed semantic compilation.
    Compile(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Parse(e) => write!(f, "{e}"),
            JobError::UnknownDeck(deck) => write!(f, "unknown process deck `{deck}`"),
            JobError::Compile(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Validates and compiles a job's problem description, appending the
/// `.model` cards of its process deck when one is named. This is the
/// single validation path shared by `oblxd submit`, the worker pool,
/// and the HTTP edge, so a deck rejected at one boundary is rejected
/// identically at every other.
///
/// # Errors
///
/// A structured [`JobError`].
pub fn validate_job(req: &JobRequest) -> Result<CompiledProblem, JobError> {
    let mut problem = oblx_netlist::parse_problem(&req.source).map_err(JobError::Parse)?;
    if !req.deck.is_empty() {
        let deck =
            deck_from_label(&req.deck).ok_or_else(|| JobError::UnknownDeck(req.deck.clone()))?;
        problem.models.extend(deck.cards());
    }
    astrx_oblx::compile(problem).map_err(|e| JobError::Compile(e.to_string()))
}

/// Compiles a job's problem description, appending the `.model` cards
/// of its process deck when one is named.
///
/// # Errors
///
/// A human-readable message on parse, deck-lookup, or compile failure.
pub fn compile_job(req: &JobRequest) -> Result<CompiledProblem, String> {
    validate_job(req).map_err(|e| format!("{}: {e}", req.name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deck_labels_roundtrip() {
        for d in [
            ProcessDeck::C2Level1,
            ProcessDeck::C2Bsim,
            ProcessDeck::C12Bsim,
            ProcessDeck::C12Level3,
            ProcessDeck::BicmosC2,
        ] {
            assert_eq!(deck_from_label(d.label()), Some(d));
        }
        assert_eq!(deck_from_label("noodle"), None);
    }

    #[test]
    fn compile_job_resolves_benchmark_decks() {
        let b = astrx_oblx::bench_suite::by_name("Simple OTA").unwrap();
        let req = JobRequest {
            name: b.name.to_string(),
            source: b.source.to_string(),
            deck: b.deck.label().to_string(),
            options: astrx_oblx::SynthesisOptions::default(),
            seeds: vec![1],
            priority: 0,
        };
        assert!(compile_job(&req).is_ok());
        let bad = JobRequest {
            deck: "nope".into(),
            ..req
        };
        assert!(compile_job(&bad).is_err());
    }
}
