//! Structured JSONL event logs and the `oblxd status` aggregation.
//!
//! Every job gets `events/<id>.jsonl` in the spool: one JSON object per
//! line, appended with a single `write` each so concurrent workers
//! interleave whole lines. A torn final line (crash mid-append) is
//! skipped on read by `json::parse_lines` — the log is an audit trail,
//! not a source of truth; job state lives in the spool directories and
//! checkpoint files.

use crate::spool::Spool;
use astrx_oblx::jobs;
use astrx_oblx::json::{self, ObjBuilder, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{SystemTime, UNIX_EPOCH};

/// Append-only JSONL log for one job.
#[derive(Debug, Clone)]
pub struct EventLog {
    path: PathBuf,
}

impl EventLog {
    /// The log of job `id` in `spool`.
    pub fn open(spool: &Spool, id: &str) -> EventLog {
        EventLog {
            path: spool.events_dir().join(format!("{id}.jsonl")),
        }
    }

    /// Appends one event line (`ts` + `event` + the given fields). Log
    /// failures are deliberately swallowed: a full disk must not take
    /// down a synthesis run whose real state is checkpointed elsewhere.
    pub fn emit(&self, event: &str, fields: &[(&str, Value)]) {
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        let mut obj = ObjBuilder::new().field("ts", ts).field("event", event);
        for (key, value) in fields {
            obj = obj.field(key, value.clone());
        }
        let mut line = obj.build().to_json();
        line.push('\n');
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        {
            let _ = f.write_all(line.as_bytes());
        }
    }

    /// All intact event lines, in order.
    pub fn read(&self) -> Vec<Value> {
        std::fs::read_to_string(&self.path)
            .map(|text| json::parse_lines(&text))
            .unwrap_or_default()
    }

    /// Reads the complete lines appended since byte `offset`, returning
    /// them verbatim (JSONL text, trailing newline included) together
    /// with the offset to resume from next time. A partial final line —
    /// a concurrent append caught mid-write — is left for the next
    /// call, so a tailer never observes a torn event. This is the
    /// polling primitive behind the HTTP edge's streaming
    /// `GET /v1/jobs/:id/events`.
    pub fn read_raw_from(&self, offset: u64) -> (String, u64) {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let Ok(mut f) = std::fs::File::open(&self.path) else {
            return (String::new(), offset);
        };
        if f.seek(SeekFrom::Start(offset)).is_err() {
            return (String::new(), offset);
        }
        let mut bytes = Vec::new();
        if f.read_to_end(&mut bytes).is_err() {
            return (String::new(), offset);
        }
        let Some(last_nl) = bytes.iter().rposition(|&b| b == b'\n') else {
            return (String::new(), offset);
        };
        bytes.truncate(last_nl + 1);
        let new_offset = offset + bytes.len() as u64;
        (String::from_utf8_lossy(&bytes).into_owned(), new_offset)
    }
}

/// Appends the current telemetry snapshot to `events/metrics.jsonl` in
/// the spool as one `{"ts":…,"event":"metrics","data":{…}}` line.
/// No-op while telemetry is disabled; write failures are swallowed like
/// every other log append.
pub fn append_metrics(spool: &Spool) {
    if !oblx_telemetry::enabled() {
        return;
    }
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let line = format!(
        "{{\"ts\":{ts},\"event\":\"metrics\",\"data\":{}}}\n",
        oblx_telemetry::Snapshot::capture().to_json()
    );
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(spool.events_dir().join("metrics.jsonl"))
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// The `data` object of the newest intact `metrics` line in the spool,
/// if any daemon has written one.
pub fn last_metrics(spool: &Spool) -> Option<Value> {
    let text = std::fs::read_to_string(spool.events_dir().join("metrics.jsonl")).ok()?;
    json::parse_lines(&text)
        .into_iter()
        .rev()
        .find(|v| v.get("event").and_then(Value::as_str) == Some("metrics"))
        .and_then(|v| v.get("data").cloned())
}

/// Renders a `metrics` snapshot object (as written by
/// [`append_metrics`]) for `oblxd status --metrics`.
pub fn render_metrics(data: &Value) -> String {
    let mut out = String::new();
    let counter = |name: &str| -> i64 {
        data.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_int)
            .unwrap_or(0)
    };
    if let Some(moves) = data.get("moves").and_then(Value::as_arr) {
        if !moves.is_empty() {
            let _ = writeln!(out, "move classes:");
        }
        for m in moves {
            let class = m.get("class").and_then(Value::as_str).unwrap_or("?");
            let attempts = m.get("attempts").and_then(Value::as_int).unwrap_or(0);
            let accepts = m.get("accepts").and_then(Value::as_int).unwrap_or(0);
            let rate = if attempts > 0 {
                100.0 * accepts as f64 / attempts as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {class:<18} {attempts:>9} attempts  {accepts:>9} accepts  ({rate:.1}% accept)"
            );
        }
    }
    if let Some(cost) = data.get("cost") {
        let samples = cost.get("samples").and_then(Value::as_int).unwrap_or(0);
        if samples > 0 {
            let _ = writeln!(out, "cost terms (mean over {samples} evals):");
            for key in ["c_obj", "c_perf", "c_dev", "c_dc", "total"] {
                let sum = cost
                    .get(&format!("{key}_sum"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                let _ = writeln!(out, "  {:<8} {:>14.6}", key, sum / samples as f64);
            }
        }
    }
    let _ = writeln!(
        out,
        "eval paths: {} cold / {} full / {} incremental / {} cached / {} failed",
        counter("eval_cold"),
        counter("eval_full"),
        counter("eval_incremental"),
        counter("eval_cached"),
        counter("eval_failure"),
    );
    let _ = writeln!(
        out,
        "awe: {} fits ({} no-model, {} unstable, {} dropped poles)   \
         lu: {} factors, {} ill-conditioned",
        counter("awe_fit"),
        counter("awe_no_model"),
        counter("awe_unstable"),
        counter("awe_dropped_poles"),
        counter("lu_factor"),
        counter("lu_ill_conditioned"),
    );
    let _ = writeln!(
        out,
        "jobs: {} corrupt quarantined, {} seed panics caught, {} cancelled",
        counter("job_corrupt"),
        counter("seed_panic"),
        counter("job_cancelled"),
    );
    if counter("lease_acquired") > 0 || counter("lease_reaped") > 0 || counter("seed_stolen") > 0 {
        let _ = writeln!(
            out,
            "cluster: {} leases acquired ({} released, {} reaped, {} lost), \
             {} seeds stolen, portfolio {} published / {} adapted",
            counter("lease_acquired"),
            counter("lease_released"),
            counter("lease_reaped"),
            counter("lease_lost"),
            counter("seed_stolen"),
            counter("portfolio_published"),
            counter("portfolio_adapted"),
        );
    }
    if counter("http_request") > 0
        || counter("http_quota_rejected") > 0
        || counter("http_admission_rejected") > 0
    {
        let _ = writeln!(
            out,
            "http: {} requests ({} 4xx, {} 5xx), {} quota-rejected, {} shed at admission",
            counter("http_request"),
            counter("http_4xx"),
            counter("http_5xx"),
            counter("http_quota_rejected"),
            counter("http_admission_rejected"),
        );
    }
    if let Some(workers) = data.get("workers").and_then(Value::as_arr) {
        for w in workers {
            let idx = w.get("worker").and_then(Value::as_int).unwrap_or(0);
            let busy = w.get("busy_ns").and_then(Value::as_int).unwrap_or(0) as f64;
            let idle = w.get("idle_ns").and_then(Value::as_int).unwrap_or(0) as f64;
            let tasks = w.get("tasks").and_then(Value::as_int).unwrap_or(0);
            let util = if busy + idle > 0.0 {
                100.0 * busy / (busy + idle)
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  w{idx}: {util:.0}% busy ({:.1}s busy / {:.1}s idle, {tasks} tasks)",
                busy / 1e9,
                idle / 1e9,
            );
        }
    }
    out
}

/// Progress of one claimed job, reconstructed from its event log.
#[derive(Debug, Clone)]
pub struct JobProgress {
    /// Job id.
    pub id: String,
    /// Job name.
    pub name: String,
    /// Seeds in the job.
    pub seeds_total: usize,
    /// Seeds finished so far.
    pub seeds_done: usize,
    /// Latest checkpointed proposal count per in-flight seed.
    pub seed_attempted: BTreeMap<u64, usize>,
    /// Per-seed proposal budget.
    pub moves_budget: usize,
}

/// One worker's live state, from a pool's `workers.<host>.json`
/// snapshot (every host sharing the spool contributes one file).
#[derive(Debug, Clone)]
pub struct WorkerState {
    /// Host the worker belongs to (empty for legacy snapshots).
    pub host: String,
    /// Worker index within its host.
    pub worker: usize,
    /// `true` while running a seed task.
    pub busy: bool,
    /// Job id of the current task, if busy.
    pub job: Option<String>,
    /// Seed of the current task, if busy.
    pub seed: Option<u64>,
    /// Seed tasks completed by this worker so far.
    pub tasks_done: usize,
}

/// Aggregated spool state behind `oblxd status`.
#[derive(Debug, Clone)]
pub struct Status {
    /// Pending jobs in claim order: `(id, name, priority, seeds)`.
    pub queued: Vec<(String, String, i64, usize)>,
    /// Claimed jobs with their per-seed progress.
    pub running: Vec<JobProgress>,
    /// Finished jobs that produced a result.
    pub done_ok: usize,
    /// Finished jobs that failed.
    pub done_failed: usize,
    /// Jobs retired into the `cancelled` terminal state.
    pub cancelled: usize,
    /// Live worker states, across every host that wrote a snapshot.
    pub workers: Vec<WorkerState>,
    /// Host heartbeats (host id, worker count, beat counter).
    pub hosts: Vec<crate::spool::HostInfo>,
}

impl Status {
    /// Queue depth (pending jobs).
    pub fn queue_depth(&self) -> usize {
        self.queued.len()
    }

    /// Busy worker fraction in `[0, 1]`, or `None` without a snapshot.
    pub fn utilization(&self) -> Option<f64> {
        if self.workers.is_empty() {
            return None;
        }
        let busy = self.workers.iter().filter(|w| w.busy).count();
        Some(busy as f64 / self.workers.len() as f64)
    }

    /// Renders the human-readable status report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "queue depth {}   running {}   done {} ok / {} failed   cancelled {}",
            self.queue_depth(),
            self.running.len(),
            self.done_ok,
            self.done_failed,
            self.cancelled
        );
        match self.utilization() {
            Some(u) => {
                let busy = self.workers.iter().filter(|w| w.busy).count();
                let _ = writeln!(
                    out,
                    "workers {}/{} busy ({:.0}% utilization)",
                    busy,
                    self.workers.len(),
                    100.0 * u
                );
                let multi_host = self.hosts.len() > 1
                    || self.workers.iter().any(|w| {
                        !w.host.is_empty() && self.workers.iter().any(|o| o.host != w.host)
                    });
                for w in &self.workers {
                    let tag = if multi_host && !w.host.is_empty() {
                        format!("{}/w{}", w.host, w.worker)
                    } else {
                        format!("w{}", w.worker)
                    };
                    match (&w.job, w.seed) {
                        (Some(job), Some(seed)) => {
                            let _ = writeln!(
                                out,
                                "  {tag}: {} seed {} ({} tasks done)",
                                job, seed, w.tasks_done
                            );
                        }
                        _ => {
                            let _ = writeln!(out, "  {tag}: idle ({} tasks done)", w.tasks_done);
                        }
                    }
                }
            }
            None => {
                let _ = writeln!(out, "workers: no live snapshot (daemon not running?)");
            }
        }
        if !self.hosts.is_empty() {
            let _ = write!(out, "hosts:");
            for h in &self.hosts {
                let _ = write!(out, " {} ({} workers, beat {})", h.host, h.workers, h.beat);
            }
            let _ = writeln!(out);
        }
        for job in &self.running {
            let moved: usize = job.seed_attempted.values().sum();
            let _ = writeln!(
                out,
                "  running {} ({}): {}/{} seeds done, {} proposals checkpointed \
                 (budget {}/seed)",
                job.id, job.name, job.seeds_done, job.seeds_total, moved, job.moves_budget
            );
        }
        for (id, name, priority, seeds) in &self.queued {
            let _ = writeln!(
                out,
                "  queued  {id} ({name}): {seeds} seed(s), priority {priority}"
            );
        }
        out
    }
}

/// Reconstructs one job's progress from its event log.
pub fn job_progress(spool: &Spool, job: &jobs::JobFile) -> JobProgress {
    let mut progress = JobProgress {
        id: job.id.clone(),
        name: job.request.name.clone(),
        seeds_total: job.request.seeds.len(),
        seeds_done: 0,
        seed_attempted: BTreeMap::new(),
        moves_budget: job.request.options.moves_budget,
    };
    for event in EventLog::open(spool, &job.id).read() {
        let kind = event.get("event").and_then(Value::as_str).unwrap_or("");
        let seed = event
            .get("seed")
            .and_then(Value::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok());
        match (kind, seed) {
            ("checkpoint", Some(seed)) => {
                if let Some(attempted) = event
                    .get("attempted")
                    .and_then(Value::as_int)
                    .and_then(|i| usize::try_from(i).ok())
                {
                    progress.seed_attempted.insert(seed, attempted);
                }
            }
            ("seed_done", Some(seed)) => {
                progress.seeds_done += 1;
                progress.seed_attempted.remove(&seed);
            }
            _ => {}
        }
    }
    progress
}

/// Aggregates the whole spool into a [`Status`].
pub fn status(spool: &Spool) -> Status {
    let queued = spool
        .pending()
        .into_iter()
        .map(|j| {
            (
                j.id,
                j.request.name,
                j.request.priority,
                j.request.seeds.len(),
            )
        })
        .collect();
    let running = spool
        .running()
        .iter()
        .map(|j| job_progress(spool, j))
        .collect();
    let (mut done_ok, mut done_failed) = (0, 0);
    for id in spool.done_ids() {
        match spool
            .done(&id)
            .as_ref()
            .and_then(|r| r.get("status").and_then(Value::as_str).map(str::to_string))
        {
            Some(s) if s == "ok" => done_ok += 1,
            _ => done_failed += 1,
        }
    }
    let workers = read_workers(spool);
    Status {
        queued,
        running,
        done_ok,
        done_failed,
        cancelled: spool.cancelled_ids().len(),
        workers,
        hosts: spool.hosts(),
    }
}

/// Reads every host's worker snapshot (`workers.<host>.json`) from the
/// spool. Pub because the HTTP edge's cluster view reuses it.
pub fn read_workers(spool: &Spool) -> Vec<WorkerState> {
    let mut out = Vec::new();
    for path in spool.all_workers_paths() {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(doc) = json::parse(&text) else {
            continue;
        };
        let host = doc
            .get("host")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let Some(rows) = doc.get("workers").and_then(Value::as_arr) else {
            continue;
        };
        out.extend(rows.iter().filter_map(|row| {
            Some(WorkerState {
                host: host.clone(),
                worker: usize::try_from(row.get("worker")?.as_int()?).ok()?,
                busy: row.get("busy")?.as_bool()?,
                job: row.get("job").and_then(Value::as_str).map(str::to_string),
                seed: row
                    .get("seed")
                    .and_then(Value::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok()),
                tasks_done: row
                    .get("tasks_done")
                    .and_then(Value::as_int)
                    .and_then(|i| usize::try_from(i).ok())
                    .unwrap_or(0),
            })
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use astrx_oblx::jobs::JobRequest;
    use astrx_oblx::SynthesisOptions;

    fn temp_spool(tag: &str) -> Spool {
        let root = std::env::temp_dir().join(format!(
            "oblx-events-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        Spool::open(root).unwrap()
    }

    #[test]
    fn events_append_and_skip_torn_tail() {
        let spool = temp_spool("append");
        let log = EventLog::open(&spool, "j1");
        log.emit("submitted", &[("name", "amp".into())]);
        log.emit("started", &[]);
        // Simulate a crash mid-append.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(spool.events_dir().join("j1.jsonl"))
                .unwrap();
            f.write_all(b"{\"ts\":12,\"event\":\"chec").unwrap();
        }
        let events = log.read();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("submitted"));
        assert_eq!(events[1].get("event").unwrap().as_str(), Some("started"));
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn read_raw_from_tails_complete_lines_only() {
        let spool = temp_spool("tail");
        let log = EventLog::open(&spool, "j1");
        let (chunk, offset) = log.read_raw_from(0);
        assert_eq!((chunk.as_str(), offset), ("", 0), "no log yet");
        log.emit("submitted", &[]);
        log.emit("started", &[]);
        let (chunk, offset) = log.read_raw_from(0);
        assert_eq!(chunk.lines().count(), 2);
        assert_eq!(offset, chunk.len() as u64);
        // Nothing new: same offset back.
        let (chunk2, offset2) = log.read_raw_from(offset);
        assert_eq!((chunk2.as_str(), offset2), ("", offset));
        // A torn append is held back until its newline lands.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(spool.events_dir().join("j1.jsonl"))
                .unwrap();
            f.write_all(b"{\"ts\":9,\"event\":\"par").unwrap();
        }
        let (chunk3, offset3) = log.read_raw_from(offset);
        assert_eq!((chunk3.as_str(), offset3), ("", offset));
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(spool.events_dir().join("j1.jsonl"))
                .unwrap();
            f.write_all(b"tial\"}\n").unwrap();
        }
        let (chunk4, offset4) = log.read_raw_from(offset);
        assert_eq!(chunk4, "{\"ts\":9,\"event\":\"partial\"}\n");
        assert_eq!(offset4, offset + chunk4.len() as u64);
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn status_aggregates_queue_and_progress() {
        let spool = temp_spool("status");
        let req = |name: &str| JobRequest {
            name: name.into(),
            source: ".end\n".into(),
            deck: String::new(),
            options: SynthesisOptions {
                moves_budget: 1000,
                ..SynthesisOptions::default()
            },
            seeds: vec![1, 2],
            priority: 0,
        };
        spool.submit(req("waiting")).unwrap();
        spool.submit(req("active")).unwrap();
        let job = spool.claim_next().unwrap();
        let log = EventLog::open(&spool, &job.id);
        log.emit(
            "checkpoint",
            &[("seed", "1".into()), ("attempted", 400usize.into())],
        );
        log.emit("seed_done", &[("seed", "2".into())]);

        let s = status(&spool);
        assert_eq!(s.queue_depth(), 1);
        assert_eq!(s.running.len(), 1);
        assert_eq!(s.running[0].seeds_done, 1);
        assert_eq!(s.running[0].seed_attempted.get(&1), Some(&400));
        assert_eq!(s.utilization(), None, "no worker snapshot yet");
        assert!(s.render().contains("queue depth 1"));
        std::fs::remove_dir_all(spool.root()).unwrap();
    }
}
