//! Graceful-shutdown signal bridge: SIGINT/SIGTERM → a process-wide
//! `AtomicBool` the worker pool and the HTTP edge poll.
//!
//! The workspace vendors no `libc`/`signal-hook`, so the handler is
//! registered through the C `signal(2)` symbol that `std` already
//! links. The handler body is a single atomic store — the only thing
//! that is async-signal-safe anyway — and everything else (stop
//! claiming jobs, checkpoint in-flight seeds, flush events, exit 0)
//! happens on ordinary threads that observe the flag:
//!
//! * pool workers check it at the top of their loop and stop claiming;
//! * every per-seed run checks it at its next checkpoint (which has
//!   just been persisted) and stops, leaving the checkpoint behind for
//!   a bit-identical resume;
//! * the API server's accept loop checks it and stops admitting.
//!
//! A second SIGINT/SIGTERM while shutdown is already in progress falls
//! back to the default disposition and kills the process — the escape
//! hatch when a seed is wedged — which is safe precisely because the
//! SIGKILL-resume path is already crash-proof.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
const SIGINT: i32 = 2;
#[cfg(unix)]
const SIGTERM: i32 = 15;
#[cfg(unix)]
const SIG_DFL: usize = 0;

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn on_signal(signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
    // Restore the default disposition so a repeated signal terminates
    // immediately instead of being swallowed by a stuck shutdown.
    unsafe {
        signal(signum, SIG_DFL);
    }
}

/// Installs SIGINT/SIGTERM handlers that raise the shutdown flag and
/// returns the flag. Safe to call more than once. On non-Unix targets
/// this only returns the (never signal-raised) flag.
#[allow(clippy::fn_to_numeric_cast_any)]
pub fn install_shutdown_handler() -> &'static AtomicBool {
    #[cfg(unix)]
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
    &SHUTDOWN
}

/// The process-wide shutdown flag (raised by the installed handlers;
/// tests may raise it directly).
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}
