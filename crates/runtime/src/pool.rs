//! The work-stealing worker pool.
//!
//! A claimed job is *sharded*: one task per seed, all pushed onto the
//! claiming worker's local deque. Workers pop their own deque from the
//! back (LIFO — warm caches) and steal from the front of other deques
//! (FIFO — oldest, largest-remaining tasks first), so an 8-seed job
//! claimed by one worker immediately spreads across every idle core,
//! while a burst of one-seed jobs drains without contention on a single
//! shared queue.
//!
//! Determinism: a per-seed run is a pure function of (problem, options,
//! seed) — workers never share annealing state — so neither the worker
//! count nor the steal order can change any result, only wall-clock
//! time. Interruption (shutdown flag, or the process being killed)
//! leaves per-seed checkpoints behind; the next `run` over the same
//! spool resumes each unfinished seed bit-identically and completed
//! seeds are replayed from their `seed_<s>.done.json` records rather
//! than re-run.

use crate::compile_job;
use crate::events::EventLog;
use crate::spool::Spool;
use astrx_oblx::jobs::{self, JobFile};
use astrx_oblx::json::{ObjBuilder, Value};
use astrx_oblx::oblx::{fixed_cost, OblxState};
use astrx_oblx::{CompiledProblem, SynthesisOptions, SynthesisOutcome};
use oblx_anneal::Directive;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Proposals between checkpoints of each per-seed run.
    pub checkpoint_every: usize,
    /// When `true`, return once the spool is drained; otherwise keep
    /// polling for new jobs until `shutdown` is raised.
    pub drain: bool,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            workers: 0,
            checkpoint_every: 2_000,
            drain: false,
        }
    }
}

/// What a `run` accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Jobs finished with a result.
    pub jobs_completed: usize,
    /// Jobs finished in failure (compile error or every seed failed).
    pub jobs_failed: usize,
    /// Jobs retired into the `cancelled` terminal state.
    pub jobs_cancelled: usize,
    /// Undecodable job files quarantined out of the spool.
    pub jobs_corrupt: usize,
    /// Seed tasks executed to completion.
    pub seeds_run: usize,
    /// Seed tasks that panicked (caught; the worker survived).
    pub seeds_panicked: usize,
}

/// One finished (or failed) per-seed run — the plain-data record that
/// survives in `ckpt/<id>/seed_<seed>.done.json` until the whole job
/// finalizes.
#[derive(Debug, Clone)]
struct SeedRecord {
    seed: u64,
    fixed_cost: f64,
    best_cost: f64,
    kcl_max: f64,
    evaluations: usize,
    attempted: usize,
    wall_seconds: f64,
    state: OblxState,
    failed: bool,
}

struct RunningJob {
    file: JobFile,
    compiled: CompiledProblem,
    log: EventLog,
    remaining: AtomicUsize,
    records: Mutex<Vec<Option<SeedRecord>>>,
}

type Task = (Arc<RunningJob>, usize);

#[derive(Debug, Clone, Default)]
struct WorkerSnap {
    busy: bool,
    job: Option<String>,
    seed: Option<u64>,
    tasks_done: usize,
}

struct Shared<'a> {
    spool: &'a Spool,
    opts: &'a PoolOptions,
    shutdown: &'a AtomicBool,
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Serializes claim-and-shard so drain-exit checks are race-free.
    claim_lock: Mutex<()>,
    /// Seed tasks sharded but not yet finished or abandoned.
    inflight: AtomicUsize,
    snaps: Mutex<Vec<WorkerSnap>>,
    stats: Mutex<RunStats>,
}

/// Runs the pool over `spool` until drained (with
/// [`PoolOptions::drain`]) or until `shutdown` is raised. Call
/// [`Spool::recover`] first when restarting after a crash.
pub fn run(spool: &Spool, opts: &PoolOptions, shutdown: &AtomicBool) -> RunStats {
    let workers = if opts.workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.workers
    };
    let shared = Shared {
        spool,
        opts,
        shutdown,
        locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        claim_lock: Mutex::new(()),
        inflight: AtomicUsize::new(0),
        snaps: Mutex::new(vec![WorkerSnap::default(); workers]),
        stats: Mutex::new(RunStats::default()),
    };
    write_workers(&shared);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let shared = &shared;
            scope.spawn(move || worker_loop(shared, w));
        }
    });
    let stats = *shared.stats.lock().unwrap();
    write_workers(&shared); // final snapshot: everyone idle
    crate::events::append_metrics(spool);
    stats
}

fn worker_loop(shared: &Shared<'_>, w: usize) {
    let mut idle_since = std::time::Instant::now();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(task) = next_task(shared, w) {
            let start = std::time::Instant::now();
            oblx_telemetry::record_worker_time(w, 0, (start - idle_since).as_nanos() as u64);
            run_task(shared, w, task);
            oblx_telemetry::record_worker_task(w);
            idle_since = std::time::Instant::now();
            oblx_telemetry::record_worker_time(w, (idle_since - start).as_nanos() as u64, 0);
            continue;
        }
        // Nothing to steal: try to claim and shard a fresh job. The
        // lock also makes the drain-exit test atomic with sharding —
        // no task can appear between "queue empty" and "no inflight".
        {
            let _guard = shared.claim_lock.lock().unwrap();
            if let Some(job) = shared.spool.claim_next() {
                claim_and_shard(shared, w, job);
                continue;
            }
            // Anything left in queue/ that didn't claim is undecodable:
            // quarantine it so it stops haunting every scan, and leave
            // an operator-visible trace instead of the old silent skip.
            let corrupt = shared.spool.quarantine_corrupt();
            if !corrupt.is_empty() {
                for id in &corrupt {
                    EventLog::open(shared.spool, id).emit("job_corrupt", &[]);
                    oblx_telemetry::incr(oblx_telemetry::Counter::JobCorrupt);
                }
                shared.stats.lock().unwrap().jobs_corrupt += corrupt.len();
            }
            if shared.opts.drain && shared.inflight.load(Ordering::SeqCst) == 0 {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn next_task(shared: &Shared<'_>, w: usize) -> Option<Task> {
    if let Some(task) = shared.locals[w].lock().unwrap().pop_back() {
        return Some(task);
    }
    for i in 0..shared.locals.len() {
        if i == w {
            continue;
        }
        if let Some(task) = shared.locals[i].lock().unwrap().pop_front() {
            return Some(task);
        }
    }
    None
}

fn claim_and_shard(shared: &Shared<'_>, w: usize, job: JobFile) {
    // A tombstone that raced the claim: retire the job before wasting
    // a compile on it.
    if shared.spool.cancel_requested(&job.id) {
        let _ = shared.spool.complete_cancelled(&job.id, &job.request.name);
        shared.stats.lock().unwrap().jobs_cancelled += 1;
        return;
    }
    let log = EventLog::open(shared.spool, &job.id);
    let compiled = match compile_job(&job.request) {
        Ok(c) => c,
        Err(e) => {
            log.emit("failed", &[("error", e.as_str().into())]);
            let record = ObjBuilder::new()
                .field("format", "oblx-result")
                .field("version", 1i64)
                .field("id", job.id.as_str())
                .field("name", job.request.name.as_str())
                .field("status", "failed")
                .field("error", e.as_str())
                .build();
            let _ = shared.spool.complete(&job.id, &record);
            shared.stats.lock().unwrap().jobs_failed += 1;
            return;
        }
    };
    let ckdir = shared.spool.ckpt_dir(&job.id);
    let _ = std::fs::create_dir_all(&ckdir);
    let seeds = job.request.seeds.clone();
    let mut records: Vec<Option<SeedRecord>> = vec![None; seeds.len()];
    let mut todo = Vec::new();
    for (i, &seed) in seeds.iter().enumerate() {
        match read_seed_done(&ckdir, seed) {
            Some(rec) => records[i] = Some(rec),
            None => todo.push(i),
        }
    }
    log.emit(
        "started",
        &[
            ("seeds", seeds.len().into()),
            ("replayed", (seeds.len() - todo.len()).into()),
        ],
    );
    let running = Arc::new(RunningJob {
        file: job,
        compiled,
        log,
        remaining: AtomicUsize::new(todo.len()),
        records: Mutex::new(records),
    });
    if todo.is_empty() {
        finalize(shared, &running);
        return;
    }
    shared.inflight.fetch_add(todo.len(), Ordering::SeqCst);
    let mut local = shared.locals[w].lock().unwrap();
    for i in todo {
        local.push_back((Arc::clone(&running), i));
    }
}

fn run_task(shared: &Shared<'_>, w: usize, (job, index): Task) {
    let seed = job.file.request.seeds[index];
    set_snap(shared, w, |s| {
        s.busy = true;
        s.job = Some(job.file.id.clone());
        s.seed = Some(seed);
    });
    job.log
        .emit("seed_started", &[("seed", jobs::u64_to_value(seed))]);
    let run_opts = SynthesisOptions {
        seed,
        ..job.file.request.options.clone()
    };
    let ckdir = shared.spool.ckpt_dir(&job.file.id);
    // A panicking seed (a bug, or pathological numerics) must not
    // unwind through `std::thread::scope` and take the whole daemon —
    // and every sibling seed — down with it. Catch it and record the
    // seed as failed; determinism is untouched since the seed produced
    // no result either way.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        jobs::run_seed_resumable(
            &job.compiled,
            &run_opts,
            &ckdir,
            shared.opts.checkpoint_every,
            |ck| {
                job.log.emit(
                    "checkpoint",
                    &[
                        ("seed", jobs::u64_to_value(seed)),
                        ("attempted", ck.engine.attempted.into()),
                        ("cost", ck.engine.cost.into()),
                        ("best_cost", ck.engine.best_cost.into()),
                    ],
                );
                if shared.shutdown.load(Ordering::SeqCst)
                    || shared.spool.cancel_requested(&job.file.id)
                {
                    Directive::Stop
                } else {
                    Directive::Continue
                }
            },
        )
    }));
    let mut cancelled = false;
    let record = match outcome {
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            job.log.emit(
                "seed_panic",
                &[
                    ("seed", jobs::u64_to_value(seed)),
                    ("error", msg.as_str().into()),
                ],
            );
            oblx_telemetry::incr(oblx_telemetry::Counter::SeedPanic);
            shared.stats.lock().unwrap().seeds_panicked += 1;
            Some(failed_seed_record(seed))
        }
        Ok(Ok(SynthesisOutcome::Complete(result))) => {
            let fc = fixed_cost(&job.compiled, &result.state);
            Some(SeedRecord {
                seed,
                fixed_cost: fc,
                best_cost: result.best_cost,
                kcl_max: result.kcl_max,
                evaluations: result.evaluations,
                attempted: result.attempted,
                wall_seconds: result.wall_seconds,
                state: result.state,
                failed: false,
            })
        }
        Ok(Ok(SynthesisOutcome::Interrupted(_))) => {
            if shared.spool.cancel_requested(&job.file.id) {
                // Cancelled mid-run: the seed is abandoned for good.
                // A sentinel record keeps the remaining-count honest so
                // the last stopped seed finalizes the job (into
                // `cancelled/`, see `finalize`).
                job.log
                    .emit("seed_cancelled", &[("seed", jobs::u64_to_value(seed))]);
                cancelled = true;
                Some(failed_seed_record(seed))
            } else {
                // Shutdown mid-run: the checkpoint file stays behind
                // and the job stays in running/ for the next recover().
                job.log
                    .emit("interrupted", &[("seed", jobs::u64_to_value(seed))]);
                None
            }
        }
        Ok(Err(e)) => {
            job.log.emit(
                "seed_failed",
                &[
                    ("seed", jobs::u64_to_value(seed)),
                    ("error", e.to_string().as_str().into()),
                ],
            );
            Some(failed_seed_record(seed))
        }
    };
    if let Some(record) = record {
        // A cancelled seed produced no result: it only counts down the
        // job, leaving neither a seed-done file nor a `seed_done` event
        // suggesting it ran to completion.
        if !cancelled {
            let _ =
                jobs::write_atomic(&seed_done_path(&ckdir, seed), &seed_record_to_json(&record));
            let _ = std::fs::remove_file(jobs::checkpoint_path(&ckdir, seed));
            job.log.emit(
                "seed_done",
                &[
                    ("seed", jobs::u64_to_value(seed)),
                    ("fixed_cost", record.fixed_cost.into()),
                    ("evaluations", record.evaluations.into()),
                    ("failed", record.failed.into()),
                ],
            );
            shared.stats.lock().unwrap().seeds_run += 1;
        }
        job.records.lock().unwrap()[index] = Some(record);
        if job.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            finalize(shared, &job);
        }
    }
    shared.inflight.fetch_sub(1, Ordering::SeqCst);
    set_snap(shared, w, |s| {
        s.busy = false;
        s.job = None;
        s.seed = None;
        s.tasks_done += 1;
    });
}

/// Aggregates the per-seed records into the job's result file —
/// exactly [`astrx_oblx::oblx::synthesize_multi`]'s winner rule: lowest
/// frozen-final cost, NaN last, ties to the earlier seed in the list.
fn finalize(shared: &Shared<'_>, job: &RunningJob) {
    // A tombstone trumps any partial results: the job retires into
    // `cancelled/`, not `done/` (the `job_cancelled` event and the
    // telemetry counter are emitted by `complete_cancelled`).
    if shared.spool.cancel_requested(&job.file.id) {
        let _ = shared
            .spool
            .complete_cancelled(&job.file.id, &job.file.request.name);
        crate::events::append_metrics(shared.spool);
        let _ = std::fs::remove_dir_all(shared.spool.ckpt_dir(&job.file.id));
        shared.stats.lock().unwrap().jobs_cancelled += 1;
        return;
    }
    let records = job.records.lock().unwrap();
    let mut best: Option<(f64, usize)> = None;
    for (i, rec) in records.iter().enumerate() {
        let Some(rec) = rec else { continue };
        if rec.failed {
            continue;
        }
        let key = if rec.fixed_cost.is_nan() {
            f64::INFINITY
        } else {
            rec.fixed_cost
        };
        if best.is_none_or(|(bk, _)| key < bk) {
            best = Some((key, i));
        }
    }
    let runs: Vec<Value> = records
        .iter()
        .flatten()
        .map(|r| {
            ObjBuilder::new()
                .field("seed", jobs::u64_to_value(r.seed))
                .field("fixed_cost", jobs::f64_to_value(r.fixed_cost))
                .field("evaluations", r.evaluations)
                .field("attempted", r.attempted)
                .field("wall_seconds", r.wall_seconds)
                .field("failed", r.failed)
                .build()
        })
        .collect();
    let mut record = ObjBuilder::new()
        .field("format", "oblx-result")
        .field("version", 1i64)
        .field("id", job.file.id.as_str())
        .field("name", job.file.request.name.as_str());
    let status;
    match best {
        Some((_, i)) => {
            let r = records[i].as_ref().expect("winner exists");
            status = "ok";
            record = record
                .field("status", status)
                .field("best_seed", jobs::u64_to_value(r.seed))
                .field("fixed_cost", jobs::f64_to_value(r.fixed_cost))
                .field("best_cost", jobs::f64_to_value(r.best_cost))
                .field("kcl_max", jobs::f64_to_value(r.kcl_max))
                .field(
                    "state",
                    ObjBuilder::new()
                        .field(
                            "user",
                            Value::Arr(
                                r.state
                                    .user
                                    .iter()
                                    .map(|&v| jobs::f64_to_value(v))
                                    .collect(),
                            ),
                        )
                        .field(
                            "nodes",
                            Value::Arr(
                                r.state
                                    .nodes
                                    .iter()
                                    .map(|&v| jobs::f64_to_value(v))
                                    .collect(),
                            ),
                        )
                        .build(),
                );
        }
        None => {
            status = "failed";
            record = record
                .field("status", status)
                .field("error", "every seed failed");
        }
    }
    let record = record.field("runs", Value::Arr(runs)).build();
    let _ = shared.spool.complete(&job.file.id, &record);
    job.log.emit("done", &[("status", status.into())]);
    crate::events::append_metrics(shared.spool);
    let _ = std::fs::remove_dir_all(shared.spool.ckpt_dir(&job.file.id));
    let mut stats = shared.stats.lock().unwrap();
    if status == "ok" {
        stats.jobs_completed += 1;
    } else {
        stats.jobs_failed += 1;
    }
}

/// The failed-seed sentinel record: infinite fixed cost keeps it out of
/// winner selection; the empty state marks it as result-free.
fn failed_seed_record(seed: u64) -> SeedRecord {
    SeedRecord {
        seed,
        fixed_cost: f64::INFINITY,
        best_cost: f64::NAN,
        kcl_max: f64::NAN,
        evaluations: 0,
        attempted: 0,
        wall_seconds: 0.0,
        state: OblxState {
            user: Vec::new(),
            nodes: Vec::new(),
        },
        failed: true,
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn set_snap(shared: &Shared<'_>, w: usize, update: impl FnOnce(&mut WorkerSnap)) {
    {
        let mut snaps = shared.snaps.lock().unwrap();
        update(&mut snaps[w]);
    }
    write_workers(shared);
}

fn write_workers(shared: &Shared<'_>) {
    let snaps = shared.snaps.lock().unwrap();
    let rows: Vec<Value> = snaps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut b = ObjBuilder::new()
                .field("worker", i)
                .field("busy", s.busy)
                .field("tasks_done", s.tasks_done);
            if let Some(job) = &s.job {
                b = b.field("job", job.as_str());
            }
            if let Some(seed) = s.seed {
                b = b.field("seed", jobs::u64_to_value(seed));
            }
            b.build()
        })
        .collect();
    let doc = ObjBuilder::new().field("workers", Value::Arr(rows)).build();
    let _ = jobs::write_atomic(&shared.spool.workers_path(), &doc.to_json());
}

fn seed_done_path(ckdir: &Path, seed: u64) -> PathBuf {
    ckdir.join(format!("seed_{seed}.done.json"))
}

fn seed_record_to_json(r: &SeedRecord) -> String {
    ObjBuilder::new()
        .field("format", "oblx-seed-result")
        .field("version", 1i64)
        .field("seed", jobs::u64_to_value(r.seed))
        .field("fixed_cost", jobs::f64_to_value(r.fixed_cost))
        .field("best_cost", jobs::f64_to_value(r.best_cost))
        .field("kcl_max", jobs::f64_to_value(r.kcl_max))
        .field("evaluations", r.evaluations)
        .field("attempted", r.attempted)
        .field("wall_seconds", jobs::f64_to_value(r.wall_seconds))
        .field(
            "user",
            Value::Arr(
                r.state
                    .user
                    .iter()
                    .map(|&v| jobs::f64_to_value(v))
                    .collect(),
            ),
        )
        .field(
            "nodes",
            Value::Arr(
                r.state
                    .nodes
                    .iter()
                    .map(|&v| jobs::f64_to_value(v))
                    .collect(),
            ),
        )
        .field("failed", r.failed)
        .build()
        .to_json()
}

fn read_seed_done(ckdir: &Path, seed: u64) -> Option<SeedRecord> {
    let text = std::fs::read_to_string(seed_done_path(ckdir, seed)).ok()?;
    let v = astrx_oblx::json::parse(&text).ok()?;
    if v.get("format")?.as_str()? != "oblx-seed-result" || v.get("version")?.as_int()? != 1 {
        return None;
    }
    let bits = |key: &str| -> Option<f64> { jobs::f64_from_value(v.get(key)?).ok() };
    let vec_bits = |key: &str| -> Option<Vec<f64>> {
        v.get(key)?
            .as_arr()?
            .iter()
            .map(|x| jobs::f64_from_value(x).ok())
            .collect()
    };
    Some(SeedRecord {
        seed: jobs::u64_from_value(v.get("seed")?).ok()?,
        fixed_cost: bits("fixed_cost")?,
        best_cost: bits("best_cost")?,
        kcl_max: bits("kcl_max")?,
        evaluations: usize::try_from(v.get("evaluations")?.as_int()?).ok()?,
        attempted: usize::try_from(v.get("attempted")?.as_int()?).ok()?,
        wall_seconds: bits("wall_seconds")?,
        state: OblxState {
            user: vec_bits("user")?,
            nodes: vec_bits("nodes")?,
        },
        failed: v.get("failed")?.as_bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use astrx_oblx::jobs::JobRequest;

    const DIFFAMP: &str = include_str!("../../core/src/testdata/diffamp.ox");

    fn temp_spool(tag: &str) -> Spool {
        let root = std::env::temp_dir().join(format!(
            "oblx-pool-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        Spool::open(root).unwrap()
    }

    fn small_job(name: &str, seeds: Vec<u64>) -> JobRequest {
        JobRequest {
            name: name.into(),
            source: DIFFAMP.into(),
            deck: String::new(),
            options: SynthesisOptions {
                moves_budget: 400,
                quench_patience: 100,
                ..SynthesisOptions::default()
            },
            seeds,
            priority: 0,
        }
    }

    #[test]
    fn drains_queue_and_matches_synthesize_multi() {
        let spool = temp_spool("drain");
        let job = spool.submit(small_job("amp", vec![3, 4])).unwrap();
        let stats = run(
            &spool,
            &PoolOptions {
                workers: 2,
                checkpoint_every: 100,
                drain: true,
            },
            &AtomicBool::new(false),
        );
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(stats.seeds_run, 2);
        let record = spool.done(&job.id).unwrap();
        assert_eq!(record.get("status").unwrap().as_str(), Some("ok"));

        // The pool must pick the same winner as the in-process API.
        let compiled = compile_job(&job.request).unwrap();
        let multi =
            astrx_oblx::synthesize_multi(&compiled, &job.request.options, &[3, 4], 1).unwrap();
        assert_eq!(
            jobs::u64_from_value(record.get("best_seed").unwrap()).unwrap(),
            multi.best_seed
        );
        assert_eq!(
            jobs::f64_from_value(record.get("fixed_cost").unwrap())
                .unwrap()
                .to_bits(),
            fixed_cost(&compiled, &multi.best.state).to_bits()
        );
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn compile_failure_fails_the_job() {
        let spool = temp_spool("badjob");
        let mut req = small_job("broken", vec![1]);
        req.source = "not a netlist at all".into();
        let job = spool.submit(req).unwrap();
        let stats = run(
            &spool,
            &PoolOptions {
                workers: 1,
                checkpoint_every: 100,
                drain: true,
            },
            &AtomicBool::new(false),
        );
        assert_eq!(stats.jobs_failed, 1);
        let record = spool.done(&job.id).unwrap();
        assert_eq!(record.get("status").unwrap().as_str(), Some("failed"));
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn corrupt_spool_entry_is_quarantined_and_drain_completes() {
        let spool = temp_spool("corrupt-drain");
        let good = spool.submit(small_job("amp", vec![5])).unwrap();
        // A torn write, as left behind by a submitter killed mid-write.
        std::fs::write(spool.queue_dir().join("torn.json"), "{\"format\":\"oblx-j").unwrap();
        let stats = run(
            &spool,
            &PoolOptions {
                workers: 2,
                checkpoint_every: 100,
                drain: true,
            },
            &AtomicBool::new(false),
        );
        // Pre-fix: the torn file was skipped silently and sat in queue/
        // forever with no trace. Now it is quarantined, counted, and
        // leaves a `job_corrupt` event — and the good job still drains.
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(stats.jobs_corrupt, 1);
        assert!(spool.corrupt_dir().join("torn.json").exists());
        assert!(!spool.queue_dir().join("torn.json").exists());
        let events = EventLog::open(&spool, "torn").read();
        assert!(
            events
                .iter()
                .any(|e| e.get("event").and_then(Value::as_str) == Some("job_corrupt")),
            "job_corrupt event missing: {events:?}"
        );
        let record = spool.done(&good.id).unwrap();
        assert_eq!(record.get("status").unwrap().as_str(), Some("ok"));
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn tombstone_racing_the_claim_retires_the_job_unrun() {
        let spool = temp_spool("cancel-claim");
        let job = spool.submit(small_job("victim", vec![1])).unwrap();
        // A tombstone landing after submit but before any worker claims
        // (as `Spool::cancel` leaves behind when it loses the dequeue
        // race): the pool must retire the job without running a seed.
        jobs::write_atomic(&spool.tombstone_path(&job.id), "").unwrap();
        let stats = run(
            &spool,
            &PoolOptions {
                workers: 1,
                checkpoint_every: 100,
                drain: true,
            },
            &AtomicBool::new(false),
        );
        assert_eq!(stats.jobs_cancelled, 1);
        assert_eq!(stats.seeds_run, 0);
        assert_eq!(stats.jobs_completed, 0);
        let record = spool.cancelled(&job.id).unwrap();
        assert_eq!(record.get("status").unwrap().as_str(), Some("cancelled"));
        assert!(spool.done(&job.id).is_none());
        let events = EventLog::open(&spool, &job.id).read();
        assert!(events
            .iter()
            .any(|e| e.get("event").and_then(Value::as_str) == Some("job_cancelled")));
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn cancel_mid_run_stops_seeds_at_the_next_checkpoint() {
        let spool = temp_spool("cancel-midrun");
        let mut req = small_job("victim", vec![1, 2]);
        // A budget far beyond what drains quickly, so the cancel always
        // lands while seeds are in flight.
        req.options.moves_budget = 200_000;
        req.options.quench_patience = 200_000;
        let job = spool.submit(req).unwrap();
        let id = job.id.clone();
        let opts = PoolOptions {
            workers: 2,
            checkpoint_every: 50,
            drain: true,
        };
        std::thread::scope(|scope| {
            let spool_ref = &spool;
            let handle = scope.spawn(move || run(spool_ref, &opts, &AtomicBool::new(false)));
            // Wait until a seed has checkpointed (the job is claimed
            // and running), then cancel.
            let ckdir = spool.ckpt_dir(&id);
            let deadline = std::time::Instant::now() + Duration::from_secs(60);
            while !ckdir.exists() && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            assert_eq!(
                spool.cancel(&id, "victim").unwrap(),
                crate::spool::CancelOutcome::Requested
            );
            let stats = handle.join().unwrap();
            assert_eq!(stats.jobs_cancelled, 1);
            assert_eq!(stats.jobs_completed, 0);
        });
        assert!(spool.cancelled(&job.id).is_some());
        assert!(spool.done(&job.id).is_none());
        assert!(!spool.cancel_requested(&job.id), "tombstone retired");
        assert!(
            !spool.ckpt_dir(&job.id).exists(),
            "checkpoints of a cancelled job are reclaimed"
        );
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn interrupted_job_resumes_bit_identically_through_the_pool() {
        let opts = PoolOptions {
            workers: 1,
            checkpoint_every: 50,
            drain: true,
        };
        // Reference: the same job run uninterrupted in a fresh spool.
        let reference = {
            let spool = temp_spool("ref");
            let job = spool.submit(small_job("amp", vec![7])).unwrap();
            run(&spool, &opts, &AtomicBool::new(false));
            let record = spool.done(&job.id).unwrap();
            std::fs::remove_dir_all(spool.root()).unwrap();
            record
        };

        // Interrupted run: cut a checkpoint at a known point (as a
        // killed worker would leave behind), then let the pool pick the
        // job up and resume it.
        let spool = temp_spool("resume");
        let job = spool.submit(small_job("amp", vec![7])).unwrap();
        let compiled = compile_job(&job.request).unwrap();
        let run_opts = SynthesisOptions {
            seed: 7,
            ..job.request.options.clone()
        };
        let ckdir = spool.ckpt_dir(&job.id);
        std::fs::create_dir_all(&ckdir).unwrap();
        let outcome = jobs::run_seed_resumable(&compiled, &run_opts, &ckdir, 50, |ck| {
            if ck.engine.attempted >= 150 {
                Directive::Stop
            } else {
                Directive::Continue
            }
        })
        .unwrap();
        assert!(matches!(outcome, SynthesisOutcome::Interrupted(_)));
        assert!(jobs::checkpoint_path(&ckdir, 7).exists());

        let stats = run(&spool, &opts, &AtomicBool::new(false));
        assert_eq!(stats.jobs_completed, 1);
        let resumed = spool.done(&job.id).unwrap();
        for key in [
            "status",
            "best_seed",
            "fixed_cost",
            "best_cost",
            "kcl_max",
            "state",
        ] {
            assert_eq!(
                resumed.get(key),
                reference.get(key),
                "field `{key}` differs between resumed and uninterrupted runs"
            );
        }
        std::fs::remove_dir_all(spool.root()).unwrap();
    }
}
