//! The cluster worker pool.
//!
//! A claimed job is *sharded* onto disk: one `seeds/<id>/s<seed>.open`
//! entry per unfinished seed (see [`Spool::shard_job`]). Workers — in
//! this process **and in every other daemon sharing the spool** — claim
//! entries by atomic rename, so an 8-seed job claimed by one host
//! immediately spreads across every idle core of every host. The local
//! claim path keeps a cached scan ([`ClaimCursor`] for jobs, a shared
//! deque for seed entries) so contention costs O(1) per lost rename,
//! not a directory rescan.
//!
//! Determinism: a per-seed run is a pure function of (problem, options,
//! seed) — workers never share annealing state — so neither the worker
//! count, the steal order, nor the host placement can change any
//! result, only wall-clock time. Interruption (shutdown flag, SIGKILL,
//! a reaped lease) leaves fence-named per-seed checkpoints behind; any
//! daemon resumes each unfinished seed bit-identically, and completed
//! seeds are replayed from their `seed_<s>.done.json` records rather
//! than re-run.
//!
//! Liveness: every claimed seed holds a lease refreshed at checkpoint
//! time; the reaper tick watches `(owner, beat)` pairs and the owners'
//! host heartbeats, and re-opens (with a bumped fencing token) entries
//! whose holder died. A holder that lost its lease discovers it at the
//! next refresh and abandons the seed; its stale checkpoints carry a
//! lower fence in their *filenames*, so they can never shadow the new
//! holder's state.
//!
//! Portfolio mode (opt-in, [`PoolOptions::portfolio`]) trades the
//! bit-identity guarantee for convergence speed: seeds publish
//! best-so-far cost and Hustin move statistics to `portfolio/<id>/` at
//! checkpoints, and a seed that sees a clearly better peer restarts its
//! move-class selection biased toward the peer's observed distribution.

use crate::compile_job;
use crate::events::EventLog;
use crate::spool::{ClaimCursor, LeaseName, SeedEntry, Spool};
use astrx_oblx::jobs::{self, JobFile};
use astrx_oblx::json::{ObjBuilder, Value};
use astrx_oblx::oblx::{fixed_cost, OblxState, SynthesisCheckpoint};
use astrx_oblx::{CompiledProblem, SynthesisOptions, SynthesisOutcome};
use oblx_anneal::Directive;
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Proposals between checkpoints of each per-seed run.
    pub checkpoint_every: usize,
    /// When `true`, return once the spool is drained; otherwise keep
    /// polling for new jobs until `shutdown` is raised.
    pub drain: bool,
    /// How long a lease's `(owner, beat)` pair — and the owner's host
    /// heartbeat — may sit unchanged before a peer reaps the lease and
    /// re-opens its work entry.
    pub lease_timeout: Duration,
    /// Portfolio mode: exchange best-so-far statistics between seeds
    /// and bias move selection toward the best peer. Intentionally
    /// trades bit-identical results for convergence speed.
    pub portfolio: bool,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            workers: 0,
            checkpoint_every: 2_000,
            drain: false,
            lease_timeout: Duration::from_secs(30),
            portfolio: false,
        }
    }
}

/// What a `run` accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Jobs finished with a result.
    pub jobs_completed: usize,
    /// Jobs finished in failure (compile error or every seed failed).
    pub jobs_failed: usize,
    /// Jobs retired into the `cancelled` terminal state.
    pub jobs_cancelled: usize,
    /// Undecodable job files quarantined out of the spool.
    pub jobs_corrupt: usize,
    /// Seed tasks executed to completion.
    pub seeds_run: usize,
    /// Seed tasks that panicked (caught; the worker survived).
    pub seeds_panicked: usize,
    /// Seed tasks claimed from a job another host shard-owns.
    pub seeds_stolen: usize,
    /// Expired leases reaped (work re-opened for the cluster).
    pub leases_reaped: usize,
}

/// One finished (or failed) per-seed run — the plain-data record that
/// survives in `ckpt/<id>/seed_<seed>.done.json` until the whole job
/// finalizes.
#[derive(Debug, Clone)]
struct SeedRecord {
    seed: u64,
    fixed_cost: f64,
    best_cost: f64,
    kcl_max: f64,
    evaluations: usize,
    attempted: usize,
    wall_seconds: f64,
    state: OblxState,
    failed: bool,
}

/// A job spec with its compiled problem, cached per pool run so a host
/// compiles each job at most once however many of its seeds it runs.
struct PreparedJob {
    file: JobFile,
    compiled: CompiledProblem,
}

#[derive(Debug, Clone, Default)]
struct WorkerSnap {
    busy: bool,
    job: Option<String>,
    seed: Option<u64>,
    tasks_done: usize,
}

/// Why a per-seed run's checkpoint hook said [`Directive::Stop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopCause {
    /// It didn't (the run finished, failed, or panicked).
    Ran,
    /// Shutdown flag raised.
    Shutdown,
    /// Cancel tombstone appeared.
    Cancelled,
    /// Lease refresh failed — fenced out, the seed is not ours anymore.
    LeaseLost,
    /// Portfolio mode found a clearly better peer to adapt toward.
    Adapt,
}

/// Claim-path state shared by the local workers.
#[derive(Default)]
struct ClaimState {
    jobs: ClaimCursor,
    seeds: VecDeque<SeedEntry>,
}

/// One remembered `(owner, beat, fence)` sighting; a lease (or host
/// heartbeat) whose sighting sits unchanged past the timeout is dead.
struct Observation {
    owner: String,
    beat: u64,
    fence: u64,
    since: Instant,
}

/// Reaper state: lease/heartbeat observations plus the tick clock.
struct Reaper {
    seen: HashMap<String, Observation>,
    host_beats: HashMap<String, (u64, Instant)>,
    last_tick: Option<Instant>,
    beat: u64,
}

struct Shared<'a> {
    spool: &'a Spool,
    opts: &'a PoolOptions,
    shutdown: &'a AtomicBool,
    workers: usize,
    claim: Mutex<ClaimState>,
    prepared: Mutex<HashMap<String, Option<Arc<PreparedJob>>>>,
    /// Locally claimed seed tasks not yet finished or handed back.
    inflight: AtomicUsize,
    snaps: Mutex<Vec<WorkerSnap>>,
    stats: Mutex<RunStats>,
    reaper: Mutex<Reaper>,
}

/// Runs the pool over `spool` until drained (with
/// [`PoolOptions::drain`]) or until `shutdown` is raised. Call
/// [`Spool::recover`] first when restarting after a crash. Several
/// daemons may run this concurrently over one spool; drain mode waits
/// for the *whole* spool (including peers' in-flight work, which it
/// will reap and finish if they die).
pub fn run(spool: &Spool, opts: &PoolOptions, shutdown: &AtomicBool) -> RunStats {
    let workers = if opts.workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.workers
    };
    let shared = Shared {
        spool,
        opts,
        shutdown,
        workers,
        claim: Mutex::new(ClaimState::default()),
        prepared: Mutex::new(HashMap::new()),
        inflight: AtomicUsize::new(0),
        snaps: Mutex::new(vec![WorkerSnap::default(); workers]),
        stats: Mutex::new(RunStats::default()),
        reaper: Mutex::new(Reaper {
            seen: HashMap::new(),
            host_beats: HashMap::new(),
            last_tick: None,
            beat: 0,
        }),
    };
    spool.write_host_heartbeat(workers, 0);
    write_workers(&shared);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let shared = &shared;
            scope.spawn(move || worker_loop(shared, w));
        }
    });
    let stats = *shared.stats.lock().unwrap();
    write_workers(&shared); // final snapshot: everyone idle
    crate::events::append_metrics(spool);
    stats
}

fn worker_loop(shared: &Shared<'_>, w: usize) {
    let mut idle_since = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Per-seed entries first: they are ready-to-run work (possibly
        // another host's), while a queue claim costs a compile.
        if let Some(entry) = claim_seed_task(shared) {
            let start = Instant::now();
            oblx_telemetry::record_worker_time(w, 0, (start - idle_since).as_nanos() as u64);
            run_seed_entry(shared, w, entry);
            oblx_telemetry::record_worker_task(w);
            idle_since = Instant::now();
            oblx_telemetry::record_worker_time(w, (idle_since - start).as_nanos() as u64, 0);
            continue;
        }
        let mut pause = Duration::from_millis(5);
        let claimed = {
            let mut claim = shared.claim.lock().unwrap();
            let job = shared.spool.claim_next_from(&mut claim.jobs);
            if job.is_none() {
                pause = pause.max(claim.jobs.backoff());
            }
            job
        };
        if let Some(job) = claimed {
            claim_and_shard(shared, job);
            continue;
        }
        // Anything left in queue/ that didn't claim is undecodable:
        // quarantine it so it stops haunting every scan, and leave an
        // operator-visible trace instead of the old silent skip.
        let corrupt = shared.spool.quarantine_corrupt();
        if !corrupt.is_empty() {
            for id in &corrupt {
                EventLog::open(shared.spool, id).emit("job_corrupt", &[]);
                oblx_telemetry::incr(oblx_telemetry::Counter::JobCorrupt);
            }
            shared.stats.lock().unwrap().jobs_corrupt += corrupt.len();
        }
        reap(shared);
        if shared.opts.drain && drained(shared) {
            return;
        }
        std::thread::sleep(pause);
    }
}

/// Claims one open seed entry, preferring the shared cached scan.
/// Rename losers advance to the next cached candidate in O(1); the
/// scan is refreshed only when the cache runs dry.
fn claim_seed_task(shared: &Shared<'_>) -> Option<SeedEntry> {
    let mut claim = shared.claim.lock().unwrap();
    for _ in 0..2 {
        if claim.seeds.is_empty() {
            claim.seeds = shared.spool.open_seed_entries().into();
        }
        while let Some(entry) = claim.seeds.pop_front() {
            if shared.spool.claim_seed(&entry) {
                shared.inflight.fetch_add(1, Ordering::SeqCst);
                return Some(entry);
            }
            // A peer won the rename; the next candidate is O(1) away.
        }
    }
    None
}

/// Whether the whole spool is quiescent. Scanned twice so a rename
/// straddling one scan (queue→running, open→run) cannot slip through;
/// the claim lock freezes local claimers meanwhile.
fn drained(shared: &Shared<'_>) -> bool {
    if shared.inflight.load(Ordering::SeqCst) != 0 {
        return false;
    }
    let _guard = shared.claim.lock().unwrap();
    (0..2).all(|_| {
        shared.spool.pending().is_empty()
            && shared.spool.running().is_empty()
            && shared.spool.open_seed_entries().is_empty()
            && shared.spool.running_seed_entries().is_empty()
            && parked_unfinalized(shared.spool).is_empty()
    })
}

/// Parked job specs with no terminal record — a crashed finalizer the
/// reaper must finish before the spool counts as drained.
fn parked_unfinalized(spool: &Spool) -> Vec<String> {
    spool
        .parked_job_ids()
        .into_iter()
        .filter(|id| spool.done(id).is_none() && spool.cancelled(id).is_none())
        .collect()
}

fn claim_and_shard(shared: &Shared<'_>, job: JobFile) {
    let spool = shared.spool;
    // A tombstone that raced the claim: retire the job before wasting
    // a compile on it.
    if spool.cancel_requested(&job.id) {
        if spool
            .try_retire_cancelled(&job.id, &job.request.name)
            .unwrap_or(false)
        {
            shared.stats.lock().unwrap().jobs_cancelled += 1;
        }
        return;
    }
    let log = EventLog::open(spool, &job.id);
    let compiled = match compile_job(&job.request) {
        Ok(c) => c,
        Err(e) => {
            log.emit("failed", &[("error", e.as_str().into())]);
            let record = ObjBuilder::new()
                .field("format", "oblx-result")
                .field("version", 1i64)
                .field("id", job.id.as_str())
                .field("name", job.request.name.as_str())
                .field("status", "failed")
                .field("error", e.as_str())
                .build();
            let _ = spool.complete(&job.id, &record);
            shared.stats.lock().unwrap().jobs_failed += 1;
            return;
        }
    };
    let ckdir = spool.ckpt_dir(&job.id);
    let _ = std::fs::create_dir_all(&ckdir);
    let replayed = job
        .request
        .seeds
        .iter()
        .filter(|&&s| seed_done_path(&ckdir, s).exists())
        .count();
    let _ = spool.shard_job(&job);
    log.emit(
        "started",
        &[
            ("seeds", job.request.seeds.len().into()),
            ("replayed", replayed.into()),
        ],
    );
    let prep = Arc::new(PreparedJob {
        file: job,
        compiled,
    });
    shared
        .prepared
        .lock()
        .unwrap()
        .insert(prep.file.id.clone(), Some(Arc::clone(&prep)));
    // Every seed may already carry a done record (a crash between the
    // last seed and finalize, then a requeue): finalize right away.
    maybe_finalize(shared, &prep.file);
}

/// The compile cache: a host compiles each job at most once, whoever
/// sharded it. `None` is a remembered compile failure.
fn prepared_job(shared: &Shared<'_>, id: &str) -> Option<Arc<PreparedJob>> {
    if let Some(cached) = shared.prepared.lock().unwrap().get(id) {
        return cached.clone();
    }
    let file = shared.spool.read_running_job(id)?;
    // Compile deterministically fails everywhere or nowhere, and a
    // sharded job compiled on its sharding host — a failure here means
    // the spec changed under us, which cannot happen; remember it
    // defensively anyway.
    let prep = compile_job(&file.request)
        .ok()
        .map(|compiled| Arc::new(PreparedJob { file, compiled }));
    shared
        .prepared
        .lock()
        .unwrap()
        .entry(id.to_string())
        .or_insert_with(|| prep.clone());
    prep
}

fn run_seed_entry(shared: &Shared<'_>, w: usize, entry: SeedEntry) {
    let spool = shared.spool;
    let seed = entry.seed;
    let Some(prep) = prepared_job(shared, &entry.job) else {
        // Job spec gone (terminal under us) or uncompilable: drop the
        // claim so the entry cannot wedge drain.
        spool.finish_seed(&entry);
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        return;
    };
    let log = EventLog::open(spool, &entry.job);
    if let Some(lease) = spool.read_lease(&LeaseName::job(&entry.job)) {
        if lease.owner != spool.host() {
            oblx_telemetry::incr(oblx_telemetry::Counter::SeedStolen);
            shared.stats.lock().unwrap().seeds_stolen += 1;
            log.emit(
                "seed_stolen",
                &[
                    ("seed", jobs::u64_to_value(seed)),
                    ("from", lease.owner.as_str().into()),
                ],
            );
        }
    }
    if spool.cancel_requested(&entry.job) {
        log.emit("seed_cancelled", &[("seed", jobs::u64_to_value(seed))]);
        spool.finish_seed(&entry);
        retire_if_cancelled(shared, &prep.file);
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    set_snap(shared, w, |s| {
        s.busy = true;
        s.job = Some(entry.job.clone());
        s.seed = Some(seed);
    });
    log.emit(
        "seed_started",
        &[
            ("seed", jobs::u64_to_value(seed)),
            ("fence", jobs::u64_to_value(entry.fence)),
        ],
    );
    let run_opts = SynthesisOptions {
        seed,
        ..prep.file.request.options.clone()
    };
    let ckdir = spool.ckpt_dir(&entry.job);
    let _ = std::fs::create_dir_all(&ckdir);
    let mut portfolio = PortfolioCtl::default();
    // A panicking seed (a bug, or pathological numerics) must not
    // unwind through `std::thread::scope` and take the whole daemon —
    // and every sibling seed — down with it. Catch it and record the
    // seed as failed; determinism is untouched since the seed produced
    // no result either way.
    let (attempt, cause) = loop {
        let mut cause = StopCause::Ran;
        let mut peer: Option<PeerBest> = None;
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            jobs::run_seed_resumable_fenced(
                &prep.compiled,
                &run_opts,
                &ckdir,
                shared.opts.checkpoint_every,
                entry.fence,
                |ck| {
                    log.emit(
                        "checkpoint",
                        &[
                            ("seed", jobs::u64_to_value(seed)),
                            ("attempted", ck.engine.attempted.into()),
                            ("cost", ck.engine.cost.into()),
                            ("best_cost", ck.engine.best_cost.into()),
                        ],
                    );
                    if shared.shutdown.load(Ordering::SeqCst) {
                        cause = StopCause::Shutdown;
                        return Directive::Stop;
                    }
                    if spool.cancel_requested(&entry.job) {
                        cause = StopCause::Cancelled;
                        return Directive::Stop;
                    }
                    if !spool.refresh_lease(&LeaseName::seed(&entry.job, seed), entry.fence) {
                        cause = StopCause::LeaseLost;
                        return Directive::Stop;
                    }
                    if shared.opts.portfolio {
                        publish_portfolio(spool, &entry.job, ck);
                        if let Some(p) = portfolio.better_peer(spool, &entry.job, ck) {
                            peer = Some(p);
                            cause = StopCause::Adapt;
                            return Directive::Stop;
                        }
                    }
                    Directive::Continue
                },
            )
        }));
        match attempt {
            Ok(Ok(SynthesisOutcome::Interrupted(ck))) if cause == StopCause::Adapt => {
                if let Some(p) = peer.take() {
                    apply_adaptation(&log, &entry, &ckdir, *ck, &p);
                }
            }
            other => break (other, cause),
        }
    };
    let record = match attempt {
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            log.emit(
                "seed_panic",
                &[
                    ("seed", jobs::u64_to_value(seed)),
                    ("error", msg.as_str().into()),
                ],
            );
            oblx_telemetry::incr(oblx_telemetry::Counter::SeedPanic);
            shared.stats.lock().unwrap().seeds_panicked += 1;
            Some(failed_seed_record(seed))
        }
        Ok(Ok(SynthesisOutcome::Complete(result))) => {
            let fc = fixed_cost(&prep.compiled, &result.state);
            Some(SeedRecord {
                seed,
                fixed_cost: fc,
                best_cost: result.best_cost,
                kcl_max: result.kcl_max,
                evaluations: result.evaluations,
                attempted: result.attempted,
                wall_seconds: result.wall_seconds,
                state: result.state,
                failed: false,
            })
        }
        Ok(Ok(SynthesisOutcome::Interrupted(_))) => {
            match cause {
                StopCause::Cancelled => {
                    // Cancelled mid-run: abandoned for good, no done
                    // record — the job retires into `cancelled/` once
                    // its last live seed stops.
                    log.emit("seed_cancelled", &[("seed", jobs::u64_to_value(seed))]);
                    spool.finish_seed(&entry);
                    retire_if_cancelled(shared, &prep.file);
                }
                StopCause::LeaseLost => {
                    // Fenced out: a reaper re-opened this entry and it
                    // belongs to someone else now. Touch nothing.
                    log.emit("seed_lost", &[("seed", jobs::u64_to_value(seed))]);
                }
                _ => {
                    // Shutdown: the checkpoint stays behind; re-open
                    // the entry (bumped fence) so live peers can pick
                    // it up immediately instead of waiting out the
                    // lease timeout.
                    log.emit("interrupted", &[("seed", jobs::u64_to_value(seed))]);
                    spool.reopen_seed(&entry);
                }
            }
            None
        }
        Ok(Err(e)) => {
            log.emit(
                "seed_failed",
                &[
                    ("seed", jobs::u64_to_value(seed)),
                    ("error", e.to_string().as_str().into()),
                ],
            );
            Some(failed_seed_record(seed))
        }
    };
    if let Some(record) = record {
        let _ = jobs::write_atomic(&seed_done_path(&ckdir, seed), &seed_record_to_json(&record));
        jobs::remove_checkpoints(&ckdir, seed);
        log.emit(
            "seed_done",
            &[
                ("seed", jobs::u64_to_value(seed)),
                ("fixed_cost", record.fixed_cost.into()),
                ("evaluations", record.evaluations.into()),
                ("failed", record.failed.into()),
            ],
        );
        shared.stats.lock().unwrap().seeds_run += 1;
        spool.finish_seed(&entry);
        maybe_finalize(shared, &prep.file);
    }
    shared.inflight.fetch_sub(1, Ordering::SeqCst);
    set_snap(shared, w, |s| {
        s.busy = false;
        s.job = None;
        s.seed = None;
        s.tasks_done += 1;
    });
}

/// Retires a tombstoned job once no live seed entry (any host's)
/// remains; the retirement itself is arbitrated cluster-wide by
/// [`Spool::try_retire_cancelled`].
fn retire_if_cancelled(shared: &Shared<'_>, file: &JobFile) {
    let spool = shared.spool;
    if !spool.cancel_requested(&file.id) || spool.has_live_seed_entries(&file.id) {
        return;
    }
    if spool
        .try_retire_cancelled(&file.id, &file.request.name)
        .unwrap_or(false)
    {
        shared.prepared.lock().unwrap().remove(&file.id);
        shared.stats.lock().unwrap().jobs_cancelled += 1;
        crate::events::append_metrics(spool);
    }
}

/// Finalizes the job once every seed carries a done record; the
/// arbitration rename ([`Spool::claim_finalize`]) picks one winner
/// across all hosts.
fn maybe_finalize(shared: &Shared<'_>, file: &JobFile) {
    let spool = shared.spool;
    if spool.cancel_requested(&file.id) {
        retire_if_cancelled(shared, file);
        return;
    }
    let ckdir = spool.ckpt_dir(&file.id);
    if !file
        .request
        .seeds
        .iter()
        .all(|&s| seed_done_path(&ckdir, s).exists())
    {
        return;
    }
    if !spool.claim_finalize(&file.id) {
        return;
    }
    finalize_from(shared, file);
}

/// Aggregates the per-seed done records into the job's result file —
/// exactly [`astrx_oblx::oblx::synthesize_multi`]'s winner rule: lowest
/// frozen-final cost, NaN last, ties to the earlier seed in the list.
/// The caller must hold the finalize claim (the parked job spec).
fn finalize_from(shared: &Shared<'_>, file: &JobFile) {
    let spool = shared.spool;
    let ckdir = spool.ckpt_dir(&file.id);
    let records: Vec<SeedRecord> = file
        .request
        .seeds
        .iter()
        .filter_map(|&s| read_seed_done(&ckdir, s))
        .collect();
    let mut best: Option<(f64, usize)> = None;
    for (i, rec) in records.iter().enumerate() {
        if rec.failed {
            continue;
        }
        let key = if rec.fixed_cost.is_nan() {
            f64::INFINITY
        } else {
            rec.fixed_cost
        };
        if best.is_none_or(|(bk, _)| key < bk) {
            best = Some((key, i));
        }
    }
    let runs: Vec<Value> = records
        .iter()
        .map(|r| {
            ObjBuilder::new()
                .field("seed", jobs::u64_to_value(r.seed))
                .field("fixed_cost", jobs::f64_to_value(r.fixed_cost))
                .field("evaluations", r.evaluations)
                .field("attempted", r.attempted)
                .field("wall_seconds", r.wall_seconds)
                .field("failed", r.failed)
                .build()
        })
        .collect();
    let mut record = ObjBuilder::new()
        .field("format", "oblx-result")
        .field("version", 1i64)
        .field("id", file.id.as_str())
        .field("name", file.request.name.as_str());
    let status;
    match best {
        Some((_, i)) => {
            let r = &records[i];
            status = "ok";
            record = record
                .field("status", status)
                .field("best_seed", jobs::u64_to_value(r.seed))
                .field("fixed_cost", jobs::f64_to_value(r.fixed_cost))
                .field("best_cost", jobs::f64_to_value(r.best_cost))
                .field("kcl_max", jobs::f64_to_value(r.kcl_max))
                .field(
                    "state",
                    ObjBuilder::new()
                        .field(
                            "user",
                            Value::Arr(
                                r.state
                                    .user
                                    .iter()
                                    .map(|&v| jobs::f64_to_value(v))
                                    .collect(),
                            ),
                        )
                        .field(
                            "nodes",
                            Value::Arr(
                                r.state
                                    .nodes
                                    .iter()
                                    .map(|&v| jobs::f64_to_value(v))
                                    .collect(),
                            ),
                        )
                        .build(),
                );
        }
        None => {
            status = "failed";
            record = record
                .field("status", status)
                .field("error", "every seed failed");
        }
    }
    let record = record.field("runs", Value::Arr(runs)).build();
    let _ = spool.complete(&file.id, &record);
    EventLog::open(spool, &file.id).emit("done", &[("status", status.into())]);
    crate::events::append_metrics(spool);
    let _ = std::fs::remove_dir_all(&ckdir);
    spool.remove_seed_entries(&file.id);
    spool.release_lease(&LeaseName::job(&file.id));
    let _ = std::fs::remove_dir_all(spool.job_portfolio_dir(&file.id));
    shared.prepared.lock().unwrap().remove(&file.id);
    let mut stats = shared.stats.lock().unwrap();
    if status == "ok" {
        stats.jobs_completed += 1;
    } else {
        stats.jobs_failed += 1;
    }
}

/// The reaper tick: beats this host's heartbeat, watches every lease
/// (and lease-less run entry, and peer heartbeat) for progress, and
/// re-opens work whose holder died. Also finishes the two multi-step
/// transitions a crash can orphan: incomplete shards of adopted jobs,
/// and parked-but-unfinalized job specs.
fn reap(shared: &Shared<'_>) {
    let Ok(mut reaper) = shared.reaper.try_lock() else {
        return;
    };
    let now = Instant::now();
    let timeout = shared.opts.lease_timeout;
    let tick = (timeout / 4).clamp(Duration::from_millis(100), Duration::from_secs(5));
    if reaper
        .last_tick
        .is_some_and(|t| now.duration_since(t) < tick)
    {
        return;
    }
    reaper.last_tick = Some(now);
    reaper.beat += 1;
    shared
        .spool
        .write_host_heartbeat(shared.workers, reaper.beat);

    // Host liveness: a host whose heartbeat advanced within the timeout
    // is alive; one never seen (no heartbeat file) is unknown → dead.
    let mut host_live: HashMap<String, bool> = HashMap::new();
    for info in shared.spool.hosts() {
        let fresh = match reaper.host_beats.get(&info.host) {
            Some((beat, since)) if *beat == info.beat => now.duration_since(*since) < timeout,
            _ => true,
        };
        if reaper.host_beats.get(&info.host).map(|(b, _)| *b) != Some(info.beat) {
            reaper
                .host_beats
                .insert(info.host.clone(), (info.beat, now));
        }
        host_live.insert(info.host.clone(), fresh);
    }

    let run_entries = shared.spool.running_seed_entries();
    let mut current: HashMap<String, (String, u64, u64)> = HashMap::new();
    for (name, lease) in shared.spool.leases() {
        current.insert(name.stem(), (lease.owner, lease.beat, lease.fence));
    }
    for e in &run_entries {
        // A run entry with no lease yet: a claim in progress — or a
        // claimer that died between the rename and the lease write.
        // The empty owner is never "live", so the timeout decides.
        current
            .entry(LeaseName::seed(&e.job, e.seed).stem())
            .or_insert_with(|| (String::new(), 0, e.fence));
    }
    reaper.seen.retain(|k, _| current.contains_key(k));
    let mut expired: Vec<String> = Vec::new();
    for (stem, (owner, beat, fence)) in &current {
        match reaper.seen.get(stem) {
            Some(obs) if obs.owner == *owner && obs.beat == *beat && obs.fence == *fence => {
                let live =
                    *owner == shared.spool.host() || host_live.get(owner).copied().unwrap_or(false);
                if !live && now.duration_since(obs.since) >= timeout {
                    expired.push(stem.clone());
                }
            }
            _ => {
                reaper.seen.insert(
                    stem.clone(),
                    Observation {
                        owner: owner.clone(),
                        beat: *beat,
                        fence: *fence,
                        since: now,
                    },
                );
            }
        }
    }
    let by_key: HashMap<(&str, u64), &SeedEntry> = run_entries
        .iter()
        .map(|e| ((e.job.as_str(), e.seed), e))
        .collect();
    for stem in expired {
        let Some(name) = LeaseName::parse(&stem) else {
            continue;
        };
        match &name {
            LeaseName::Seed(job, seed) => {
                if let Some(e) = by_key.get(&(job.as_str(), *seed)) {
                    if shared.spool.reopen_seed(e) {
                        EventLog::open(shared.spool, job).emit(
                            "seed_reaped",
                            &[
                                ("seed", jobs::u64_to_value(*seed)),
                                ("fence", jobs::u64_to_value(e.fence + 1)),
                            ],
                        );
                    }
                } else {
                    // A lease with no entry behind it: stale leftover.
                    shared.spool.release_lease(&name);
                }
            }
            LeaseName::Job(id) => {
                // The shard-owner died. Adopt the job: take the lease,
                // repair the shard (idempotent — a crash mid-`shard_job`
                // leaves some seeds unsharded), and finalize if it was
                // actually complete.
                if let Some(job) = shared.spool.read_running_job(id) {
                    let _ = shared.spool.write_lease(&name, 1, 1);
                    let _ = shared.spool.shard_job(&job);
                    EventLog::open(shared.spool, id).emit("job_adopted", &[]);
                    maybe_finalize(shared, &job);
                } else {
                    shared.spool.release_lease(&name);
                }
            }
        }
        reaper.seen.remove(&stem);
        oblx_telemetry::incr(oblx_telemetry::Counter::LeaseReaped);
        shared.stats.lock().unwrap().leases_reaped += 1;
    }

    // Orphaned finalizes: a parked job spec whose finalizer died. With
    // a terminal record present only the cleanup is missing; without
    // one, redo the aggregation (byte-identical from the same done
    // records, so a concurrent peer redoing it too is harmless).
    for id in shared.spool.parked_job_ids() {
        let done = shared.spool.done(&id).is_some();
        if done || shared.spool.cancelled(&id).is_some() {
            let _ = std::fs::remove_dir_all(shared.spool.ckpt_dir(&id));
            shared.spool.remove_seed_entries(&id);
            shared.spool.release_lease(&LeaseName::job(&id));
            let _ = std::fs::remove_dir_all(shared.spool.job_portfolio_dir(&id));
            continue;
        }
        let Some(file) = shared.spool.read_parked_job(&id) else {
            continue;
        };
        if shared.spool.cancel_requested(&id) {
            if shared
                .spool
                .complete_cancelled(&id, &file.request.name)
                .is_ok()
            {
                let _ = std::fs::remove_dir_all(shared.spool.ckpt_dir(&id));
                shared.stats.lock().unwrap().jobs_cancelled += 1;
            }
            continue;
        }
        let ckdir = shared.spool.ckpt_dir(&id);
        if file
            .request
            .seeds
            .iter()
            .all(|&s| seed_done_path(&ckdir, s).exists())
        {
            finalize_from(shared, &file);
        }
    }
}

// ---------------------------------------------------------------------
// Portfolio mode.

/// A peer's published best-so-far, as an adaptation target.
struct PeerBest {
    host: String,
    cost: f64,
    p: Vec<f64>,
    scale: Vec<f64>,
}

/// Paces the portfolio exchange: peers are consulted every few
/// checkpoints, and an adaptation is followed by a cooldown so a seed
/// settles into the blended statistics before looking again.
#[derive(Default)]
struct PortfolioCtl {
    calls: u64,
    cooldown_until: u64,
}

impl PortfolioCtl {
    fn better_peer(
        &mut self,
        spool: &Spool,
        id: &str,
        ck: &SynthesisCheckpoint,
    ) -> Option<PeerBest> {
        self.calls += 1;
        if self.calls < self.cooldown_until || !self.calls.is_multiple_of(4) {
            return None;
        }
        let own = ck.engine.best_cost;
        if !own.is_finite() {
            return None;
        }
        let me = portfolio_record_name(spool.host(), ck.seed);
        let best = read_portfolio(spool, id)
            .into_iter()
            .filter(|(name, _)| *name != me)
            .map(|(_, p)| p)
            .filter(|p| p.cost.is_finite())
            .min_by(|a, b| a.cost.total_cmp(&b.cost))?;
        // Only adapt toward a *clearly* better peer: 5% relative.
        if best.cost < own - 0.05 * own.abs() {
            self.cooldown_until = self.calls + 8;
            Some(best)
        } else {
            None
        }
    }
}

fn portfolio_record_name(host: &str, seed: u64) -> String {
    format!("{host}.s{seed}.json")
}

/// Publishes this seed's best-so-far cost and move statistics to the
/// job's exchange directory.
fn publish_portfolio(spool: &Spool, id: &str, ck: &SynthesisCheckpoint) {
    let dir = spool.job_portfolio_dir(id);
    let _ = std::fs::create_dir_all(&dir);
    let classes = &ck.engine.stats.classes;
    let doc = ObjBuilder::new()
        .field("format", "oblx-portfolio")
        .field("version", 1i64)
        .field("host", spool.host())
        .field("seed", jobs::u64_to_value(ck.seed))
        .field("best_cost", jobs::f64_to_value(ck.engine.best_cost))
        .field("attempted", ck.engine.attempted)
        .field(
            "p",
            Value::Arr(
                classes
                    .iter()
                    .map(|c| jobs::f64_to_value(c.probability))
                    .collect(),
            ),
        )
        .field(
            "scale",
            Value::Arr(
                classes
                    .iter()
                    .map(|c| jobs::f64_to_value(c.scale))
                    .collect(),
            ),
        )
        .build();
    let path = dir.join(portfolio_record_name(spool.host(), ck.seed));
    if jobs::write_atomic(&path, &doc.to_json()).is_ok() {
        oblx_telemetry::incr(oblx_telemetry::Counter::PortfolioPublished);
    }
}

/// Every parseable record in the job's exchange directory.
fn read_portfolio(spool: &Spool, id: &str) -> Vec<(String, PeerBest)> {
    let Ok(entries) = std::fs::read_dir(spool.job_portfolio_dir(id)) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let Ok(v) = astrx_oblx::json::parse(&text) else {
            continue;
        };
        if v.get("format").and_then(Value::as_str) != Some("oblx-portfolio") {
            continue;
        }
        let bits_arr = |key: &str| -> Option<Vec<f64>> {
            v.get(key)?
                .as_arr()?
                .iter()
                .map(|x| jobs::f64_from_value(x).ok())
                .collect()
        };
        let Some(host) = v.get("host").and_then(Value::as_str) else {
            continue;
        };
        let Some(cost) = v
            .get("best_cost")
            .and_then(|c| jobs::f64_from_value(c).ok())
        else {
            continue;
        };
        let (Some(p), Some(scale)) = (bits_arr("p"), bits_arr("scale")) else {
            continue;
        };
        out.push((
            name,
            PeerBest {
                host: host.to_string(),
                cost,
                p,
                scale,
            },
        ));
    }
    out
}

/// Blends this seed's move-class statistics toward a better peer's and
/// writes the mutated checkpoint back; the run then resumes from it.
fn apply_adaptation(
    log: &EventLog,
    entry: &SeedEntry,
    ckdir: &Path,
    mut ck: SynthesisCheckpoint,
    peer: &PeerBest,
) {
    let stats = &mut ck.engine.stats;
    if peer.p.len() != stats.classes.len() {
        return;
    }
    for (i, c) in stats.classes.iter_mut().enumerate() {
        c.probability = 0.5 * c.probability + 0.5 * peer.p[i];
        if let Some(&s) = peer.scale.get(i) {
            c.scale = (0.5 * c.scale + 0.5 * s).clamp(1e-6, 1.0);
        }
    }
    // Re-normalize with the selector's own probability floor, the same
    // invariants its rebalance maintains.
    let floor = stats.p_min;
    let sum: f64 = stats.classes.iter().map(|c| c.probability).sum();
    if sum > 0.0 {
        for c in &mut stats.classes {
            c.probability = (c.probability / sum).max(floor);
        }
        let sum2: f64 = stats.classes.iter().map(|c| c.probability).sum();
        for c in &mut stats.classes {
            c.probability /= sum2;
        }
    }
    let path = jobs::fenced_checkpoint_path(ckdir, entry.seed, entry.fence);
    if jobs::write_atomic(&path, &jobs::checkpoint_to_json(&ck)).is_ok() {
        oblx_telemetry::incr(oblx_telemetry::Counter::PortfolioAdapted);
        log.emit(
            "portfolio_adapt",
            &[
                ("seed", jobs::u64_to_value(entry.seed)),
                ("peer", peer.host.as_str().into()),
                ("peer_cost", jobs::f64_to_value(peer.cost)),
            ],
        );
    }
}

// ---------------------------------------------------------------------
// Plumbing shared with the old single-host pool.

/// The failed-seed sentinel record: infinite fixed cost keeps it out of
/// winner selection; the empty state marks it as result-free.
fn failed_seed_record(seed: u64) -> SeedRecord {
    SeedRecord {
        seed,
        fixed_cost: f64::INFINITY,
        best_cost: f64::NAN,
        kcl_max: f64::NAN,
        evaluations: 0,
        attempted: 0,
        wall_seconds: 0.0,
        state: OblxState {
            user: Vec::new(),
            nodes: Vec::new(),
        },
        failed: true,
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn set_snap(shared: &Shared<'_>, w: usize, update: impl FnOnce(&mut WorkerSnap)) {
    {
        let mut snaps = shared.snaps.lock().unwrap();
        update(&mut snaps[w]);
    }
    write_workers(shared);
}

fn write_workers(shared: &Shared<'_>) {
    let snaps = shared.snaps.lock().unwrap();
    let rows: Vec<Value> = snaps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut b = ObjBuilder::new()
                .field("worker", i)
                .field("busy", s.busy)
                .field("tasks_done", s.tasks_done);
            if let Some(job) = &s.job {
                b = b.field("job", job.as_str());
            }
            if let Some(seed) = s.seed {
                b = b.field("seed", jobs::u64_to_value(seed));
            }
            b.build()
        })
        .collect();
    let doc = ObjBuilder::new()
        .field("host", shared.spool.host())
        .field("workers", Value::Arr(rows))
        .build();
    let _ = jobs::write_atomic(&shared.spool.workers_path(), &doc.to_json());
}

fn seed_done_path(ckdir: &Path, seed: u64) -> PathBuf {
    ckdir.join(format!("seed_{seed}.done.json"))
}

fn seed_record_to_json(r: &SeedRecord) -> String {
    ObjBuilder::new()
        .field("format", "oblx-seed-result")
        .field("version", 1i64)
        .field("seed", jobs::u64_to_value(r.seed))
        .field("fixed_cost", jobs::f64_to_value(r.fixed_cost))
        .field("best_cost", jobs::f64_to_value(r.best_cost))
        .field("kcl_max", jobs::f64_to_value(r.kcl_max))
        .field("evaluations", r.evaluations)
        .field("attempted", r.attempted)
        .field("wall_seconds", jobs::f64_to_value(r.wall_seconds))
        .field(
            "user",
            Value::Arr(
                r.state
                    .user
                    .iter()
                    .map(|&v| jobs::f64_to_value(v))
                    .collect(),
            ),
        )
        .field(
            "nodes",
            Value::Arr(
                r.state
                    .nodes
                    .iter()
                    .map(|&v| jobs::f64_to_value(v))
                    .collect(),
            ),
        )
        .field("failed", r.failed)
        .build()
        .to_json()
}

fn read_seed_done(ckdir: &Path, seed: u64) -> Option<SeedRecord> {
    let text = std::fs::read_to_string(seed_done_path(ckdir, seed)).ok()?;
    let v = astrx_oblx::json::parse(&text).ok()?;
    if v.get("format")?.as_str()? != "oblx-seed-result" || v.get("version")?.as_int()? != 1 {
        return None;
    }
    let bits = |key: &str| -> Option<f64> { jobs::f64_from_value(v.get(key)?).ok() };
    let vec_bits = |key: &str| -> Option<Vec<f64>> {
        v.get(key)?
            .as_arr()?
            .iter()
            .map(|x| jobs::f64_from_value(x).ok())
            .collect()
    };
    Some(SeedRecord {
        seed: jobs::u64_from_value(v.get("seed")?).ok()?,
        fixed_cost: bits("fixed_cost")?,
        best_cost: bits("best_cost")?,
        kcl_max: bits("kcl_max")?,
        evaluations: usize::try_from(v.get("evaluations")?.as_int()?).ok()?,
        attempted: usize::try_from(v.get("attempted")?.as_int()?).ok()?,
        wall_seconds: bits("wall_seconds")?,
        state: OblxState {
            user: vec_bits("user")?,
            nodes: vec_bits("nodes")?,
        },
        failed: v.get("failed")?.as_bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use astrx_oblx::jobs::JobRequest;

    const DIFFAMP: &str = include_str!("../../core/src/testdata/diffamp.ox");

    fn temp_spool(tag: &str) -> Spool {
        let root = std::env::temp_dir().join(format!(
            "oblx-pool-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        Spool::open(root).unwrap()
    }

    fn small_job(name: &str, seeds: Vec<u64>) -> JobRequest {
        JobRequest {
            name: name.into(),
            source: DIFFAMP.into(),
            deck: String::new(),
            options: SynthesisOptions {
                moves_budget: 400,
                quench_patience: 100,
                ..SynthesisOptions::default()
            },
            seeds,
            priority: 0,
        }
    }

    fn drain_opts(workers: usize) -> PoolOptions {
        PoolOptions {
            workers,
            checkpoint_every: 100,
            drain: true,
            ..PoolOptions::default()
        }
    }

    #[test]
    fn drains_queue_and_matches_synthesize_multi() {
        let spool = temp_spool("drain");
        let job = spool.submit(small_job("amp", vec![3, 4])).unwrap();
        let stats = run(&spool, &drain_opts(2), &AtomicBool::new(false));
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(stats.seeds_run, 2);
        let record = spool.done(&job.id).unwrap();
        assert_eq!(record.get("status").unwrap().as_str(), Some("ok"));

        // The pool must pick the same winner as the in-process API.
        let compiled = compile_job(&job.request).unwrap();
        let multi =
            astrx_oblx::synthesize_multi(&compiled, &job.request.options, &[3, 4], 1).unwrap();
        assert_eq!(
            jobs::u64_from_value(record.get("best_seed").unwrap()).unwrap(),
            multi.best_seed
        );
        assert_eq!(
            jobs::f64_from_value(record.get("fixed_cost").unwrap())
                .unwrap()
                .to_bits(),
            fixed_cost(&compiled, &multi.best.state).to_bits()
        );
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn compile_failure_fails_the_job() {
        let spool = temp_spool("badjob");
        let mut req = small_job("broken", vec![1]);
        req.source = "not a netlist at all".into();
        let job = spool.submit(req).unwrap();
        let stats = run(&spool, &drain_opts(1), &AtomicBool::new(false));
        assert_eq!(stats.jobs_failed, 1);
        let record = spool.done(&job.id).unwrap();
        assert_eq!(record.get("status").unwrap().as_str(), Some("failed"));
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn corrupt_spool_entry_is_quarantined_and_drain_completes() {
        let spool = temp_spool("corrupt-drain");
        let good = spool.submit(small_job("amp", vec![5])).unwrap();
        // A torn write, as left behind by a submitter killed mid-write.
        std::fs::write(spool.queue_dir().join("torn.json"), "{\"format\":\"oblx-j").unwrap();
        let stats = run(&spool, &drain_opts(2), &AtomicBool::new(false));
        // Pre-fix: the torn file was skipped silently and sat in queue/
        // forever with no trace. Now it is quarantined, counted, and
        // leaves a `job_corrupt` event — and the good job still drains.
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(stats.jobs_corrupt, 1);
        assert!(spool.corrupt_dir().join("torn.json").exists());
        assert!(!spool.queue_dir().join("torn.json").exists());
        let events = EventLog::open(&spool, "torn").read();
        assert!(
            events
                .iter()
                .any(|e| e.get("event").and_then(Value::as_str) == Some("job_corrupt")),
            "job_corrupt event missing: {events:?}"
        );
        let record = spool.done(&good.id).unwrap();
        assert_eq!(record.get("status").unwrap().as_str(), Some("ok"));
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn tombstone_racing_the_claim_retires_the_job_unrun() {
        let spool = temp_spool("cancel-claim");
        let job = spool.submit(small_job("victim", vec![1])).unwrap();
        // A tombstone landing after submit but before any worker claims
        // (as `Spool::cancel` leaves behind when it loses the dequeue
        // race): the pool must retire the job without running a seed.
        jobs::write_atomic(&spool.tombstone_path(&job.id), "").unwrap();
        let stats = run(&spool, &drain_opts(1), &AtomicBool::new(false));
        assert_eq!(stats.jobs_cancelled, 1);
        assert_eq!(stats.seeds_run, 0);
        assert_eq!(stats.jobs_completed, 0);
        let record = spool.cancelled(&job.id).unwrap();
        assert_eq!(record.get("status").unwrap().as_str(), Some("cancelled"));
        assert!(spool.done(&job.id).is_none());
        let events = EventLog::open(&spool, &job.id).read();
        assert!(events
            .iter()
            .any(|e| e.get("event").and_then(Value::as_str) == Some("job_cancelled")));
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn cancel_mid_run_stops_seeds_at_the_next_checkpoint() {
        let spool = temp_spool("cancel-midrun");
        let mut req = small_job("victim", vec![1, 2]);
        // A budget far beyond what drains quickly, so the cancel always
        // lands while seeds are in flight.
        req.options.moves_budget = 200_000;
        req.options.quench_patience = 200_000;
        let job = spool.submit(req).unwrap();
        let id = job.id.clone();
        let opts = PoolOptions {
            workers: 2,
            checkpoint_every: 50,
            drain: true,
            ..PoolOptions::default()
        };
        std::thread::scope(|scope| {
            let spool_ref = &spool;
            let handle = scope.spawn(move || run(spool_ref, &opts, &AtomicBool::new(false)));
            // Wait until a seed has checkpointed (the job is claimed
            // and running), then cancel.
            let ckdir = spool.ckpt_dir(&id);
            let deadline = std::time::Instant::now() + Duration::from_secs(60);
            while !ckdir.exists() && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            assert_eq!(
                spool.cancel(&id, "victim").unwrap(),
                crate::spool::CancelOutcome::Requested
            );
            let stats = handle.join().unwrap();
            assert_eq!(stats.jobs_cancelled, 1);
            assert_eq!(stats.jobs_completed, 0);
        });
        assert!(spool.cancelled(&job.id).is_some());
        assert!(spool.done(&job.id).is_none());
        assert!(!spool.cancel_requested(&job.id), "tombstone retired");
        assert!(
            !spool.ckpt_dir(&job.id).exists(),
            "checkpoints of a cancelled job are reclaimed"
        );
        assert!(
            !spool.job_seeds_dir(&job.id).exists(),
            "seed entries of a cancelled job are reclaimed"
        );
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn interrupted_job_resumes_bit_identically_through_the_pool() {
        let opts = drain_opts(1);
        let opts = PoolOptions {
            checkpoint_every: 50,
            ..opts
        };
        // Reference: the same job run uninterrupted in a fresh spool.
        let reference = {
            let spool = temp_spool("ref");
            let job = spool.submit(small_job("amp", vec![7])).unwrap();
            run(&spool, &opts, &AtomicBool::new(false));
            let record = spool.done(&job.id).unwrap();
            std::fs::remove_dir_all(spool.root()).unwrap();
            record
        };

        // Interrupted run: cut a checkpoint at a known point (as a
        // killed worker would leave behind), then let the pool pick the
        // job up and resume it.
        let spool = temp_spool("resume");
        let job = spool.submit(small_job("amp", vec![7])).unwrap();
        let compiled = compile_job(&job.request).unwrap();
        let run_opts = SynthesisOptions {
            seed: 7,
            ..job.request.options.clone()
        };
        let ckdir = spool.ckpt_dir(&job.id);
        std::fs::create_dir_all(&ckdir).unwrap();
        let outcome = jobs::run_seed_resumable(&compiled, &run_opts, &ckdir, 50, |ck| {
            if ck.engine.attempted >= 150 {
                Directive::Stop
            } else {
                Directive::Continue
            }
        })
        .unwrap();
        assert!(matches!(outcome, SynthesisOutcome::Interrupted(_)));
        assert!(jobs::checkpoint_path(&ckdir, 7).exists());

        let stats = run(&spool, &opts, &AtomicBool::new(false));
        assert_eq!(stats.jobs_completed, 1);
        let resumed = spool.done(&job.id).unwrap();
        for key in [
            "status",
            "best_seed",
            "fixed_cost",
            "best_cost",
            "kcl_max",
            "state",
        ] {
            assert_eq!(
                resumed.get(key),
                reference.get(key),
                "field `{key}` differs between resumed and uninterrupted runs"
            );
        }
        std::fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn stolen_seeds_finish_a_dead_peers_job_bit_identically() {
        // Reference result, single host.
        let reference = {
            let spool = temp_spool("steal-ref");
            let job = spool.submit(small_job("amp", vec![3, 4])).unwrap();
            run(&spool, &drain_opts(2), &AtomicBool::new(false));
            let record = spool.done(&job.id).unwrap();
            std::fs::remove_dir_all(spool.root()).unwrap();
            record
        };
        // Host `a` claims and shards the job, then "dies" before
        // running a single seed (its open entries and job lease stay
        // behind). Host `b` steals every seed and finalizes.
        let spool_a = temp_spool("steal").with_host("a");
        let job = spool_a.submit(small_job("amp", vec![3, 4])).unwrap();
        let claimed = spool_a.claim_next().unwrap();
        std::fs::create_dir_all(spool_a.ckpt_dir(&claimed.id)).unwrap();
        assert_eq!(spool_a.shard_job(&claimed).unwrap(), 2);

        let spool_b = Spool::open(spool_a.root()).unwrap().with_host("b");
        let stats = run(&spool_b, &drain_opts(2), &AtomicBool::new(false));
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(stats.seeds_run, 2);
        assert_eq!(stats.seeds_stolen, 2, "both seeds came from a's job");
        let record = spool_b.done(&job.id).unwrap();
        for key in ["status", "best_seed", "fixed_cost", "best_cost", "state"] {
            assert_eq!(
                record.get(key),
                reference.get(key),
                "field `{key}` differs between stolen and single-host runs"
            );
        }
        std::fs::remove_dir_all(spool_a.root()).unwrap();
    }

    #[test]
    fn reaper_reopens_an_expired_foreign_lease_and_recovers_the_seed() {
        // Reference result, single host.
        let reference = {
            let spool = temp_spool("reap-ref");
            let job = spool.submit(small_job("amp", vec![9])).unwrap();
            run(&spool, &drain_opts(1), &AtomicBool::new(false));
            let record = spool.done(&job.id).unwrap();
            std::fs::remove_dir_all(spool.root()).unwrap();
            record
        };
        // Host `a` claims the job AND its only seed, then dies without
        // ever heartbeating again. Host `b` must wait out the lease
        // timeout, reap, re-open at a higher fence, and finish.
        let spool_a = temp_spool("reap").with_host("a");
        let job = spool_a.submit(small_job("amp", vec![9])).unwrap();
        let claimed = spool_a.claim_next().unwrap();
        std::fs::create_dir_all(spool_a.ckpt_dir(&claimed.id)).unwrap();
        spool_a.shard_job(&claimed).unwrap();
        let entry = spool_a.open_seed_entries().pop().unwrap();
        assert!(spool_a.claim_seed(&entry));
        spool_a.write_host_heartbeat(1, 1);

        let spool_b = Spool::open(spool_a.root()).unwrap().with_host("b");
        let opts = PoolOptions {
            lease_timeout: Duration::from_millis(300),
            ..drain_opts(1)
        };
        let stats = run(&spool_b, &opts, &AtomicBool::new(false));
        assert!(stats.leases_reaped >= 1, "a's seed lease was reaped");
        assert_eq!(stats.jobs_completed, 1);
        let record = spool_b.done(&job.id).unwrap();
        for key in ["status", "fixed_cost", "best_cost", "state"] {
            assert_eq!(
                record.get(key),
                reference.get(key),
                "field `{key}` differs between reaped and healthy runs"
            );
        }
        std::fs::remove_dir_all(spool_a.root()).unwrap();
    }

    #[test]
    fn portfolio_mode_publishes_and_still_completes() {
        let spool = temp_spool("portfolio");
        let job = spool.submit(small_job("amp", vec![3, 4])).unwrap();
        let opts = PoolOptions {
            portfolio: true,
            checkpoint_every: 50,
            ..drain_opts(2)
        };
        let stats = run(&spool, &opts, &AtomicBool::new(false));
        assert_eq!(stats.jobs_completed, 1);
        let record = spool.done(&job.id).unwrap();
        assert_eq!(record.get("status").unwrap().as_str(), Some("ok"));
        assert!(
            !spool.job_portfolio_dir(&job.id).exists(),
            "exchange records are reclaimed at finalize"
        );
        std::fs::remove_dir_all(spool.root()).unwrap();
    }
}
