//! Dense real and complex linear algebra for the astrx-oblx analog
//! synthesis toolkit.
//!
//! The circuits handled by ASTRX/OBLX are cell-level (tens of devices, at
//! most a few hundred MNA unknowns), so a carefully written dense LU with
//! partial pivoting is both simpler and faster than a sparse package at
//! this scale. The crate provides:
//!
//! * [`Complex`] — a minimal `f64`-based complex number,
//! * [`Mat`] — a dense row-major matrix generic over [`Scalar`]
//!   (instantiated at `f64` and `Complex`),
//! * [`Lu`] — LU factorization with partial pivoting, reusable for the
//!   repeated back-substitutions at the heart of AWE moment generation,
//! * [`SparseLu`] — sparse LU with a one-time symbolic factorization
//!   (structural Markowitz pivot order + fill-in pattern) and an
//!   allocation-free numeric refactor, for the fixed-pattern refactor-
//!   per-move workload of the incremental cost evaluator,
//! * [`Poly`] — polynomial arithmetic and Aberth–Ehrlich root finding,
//!   used to turn Padé denominators into pole sets,
//! * [`solve_hankel`] / [`solve_vandermonde`] — the two structured solves
//!   of the AWE moment-matching step.
//!
//! # Examples
//!
//! ```
//! use oblx_linalg::{Mat, Lu};
//!
//! # fn main() -> Result<(), oblx_linalg::SingularMatrixError> {
//! let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
//! let lu = Lu::factor(a)?;
//! let x = lu.solve(&[5.0, 10.0]);
//! assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod complex;
mod lu;
mod matrix;
mod poly;
mod sparse;
mod structured;

pub use complex::Complex;
pub use lu::{solve_once, Lu, SingularMatrixError};
pub use matrix::{Mat, Scalar};
pub use poly::{aberth_roots, Poly};
pub use sparse::SparseLu;
pub use structured::{solve_hankel, solve_vandermonde};
