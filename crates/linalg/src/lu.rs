//! LU factorization with partial pivoting.
//!
//! The factorization is computed once and reused for many right-hand
//! sides; AWE moment generation performs `2q` back-substitutions against a
//! single factored conductance matrix, which is where the method's speed
//! advantage over a per-frequency complex solve comes from.

use crate::matrix::{Mat, Scalar};
use std::error::Error;
use std::fmt;

/// Error returned when a matrix is numerically singular.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Pivot column at which elimination broke down.
    pub column: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular at pivot column {}", self.column)
    }
}

impl Error for SingularMatrixError {}

/// An LU factorization `P·A = L·U` with partial pivoting.
///
/// # Examples
///
/// ```
/// use oblx_linalg::{Mat, Lu};
///
/// # fn main() -> Result<(), oblx_linalg::SingularMatrixError> {
/// let a = Mat::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = Lu::factor(a)?;
/// let x = lu.solve(&[10.0, 12.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu<T: Scalar> {
    lu: Mat<T>,
    perm: Vec<usize>,
    sign_flips: usize,
}

impl<T: Scalar> Lu<T> {
    /// Factors `a` in place, consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when no usable pivot exists in some
    /// column (the matrix is singular to working precision).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(mut a: Mat<T>) -> Result<Self, SingularMatrixError> {
        let n = a.rows();
        assert_eq!(n, a.cols(), "LU requires a square matrix");
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign_flips = 0usize;

        for k in 0..n {
            // Partial pivot: largest magnitude in column k at/below row k.
            let mut p = k;
            let mut best = a.get(k, k).magnitude();
            for r in (k + 1)..n {
                let m = a.get(r, k).magnitude();
                if m > best {
                    best = m;
                    p = r;
                }
            }
            // `!(best > 0.0)` (rather than `best <= 0.0`) deliberately
            // catches NaN pivots as singular.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(best > 0.0) || !best.is_finite() {
                return Err(SingularMatrixError { column: k });
            }
            if p != k {
                for c in 0..n {
                    let tmp = a.get(k, c);
                    a[(k, c)] = a.get(p, c);
                    a[(p, c)] = tmp;
                }
                perm.swap(k, p);
                sign_flips += 1;
            }
            let pivot = a.get(k, k);
            for r in (k + 1)..n {
                let factor = a.get(r, k) / pivot;
                a[(r, k)] = factor;
                if factor == T::ZERO {
                    continue;
                }
                for c in (k + 1)..n {
                    let v = a.get(r, c) - factor * a.get(k, c);
                    a[(r, c)] = v;
                }
            }
        }
        let lu = Lu {
            lu: a,
            perm,
            sign_flips,
        };
        if oblx_telemetry::enabled() {
            oblx_telemetry::record_pivot_ratio(lu.pivot_ratio());
        }
        Ok(lu)
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for one right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = Vec::with_capacity(self.dim());
        self.solve_into(b, &mut x);
        x
    }

    /// [`Lu::solve`] into a caller-owned buffer (cleared and refilled),
    /// so repeated solves against one factorization — the AWE moment
    /// recurrence performs `2q` of them — reuse a single allocation.
    /// The summation order is exactly the historical per-element loop's
    /// (ascending column index), walked over contiguous row slices.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_into(&self, b: &[T], x: &mut Vec<T>) {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs dimension mismatch");
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        let lud = self.lu.as_slice();
        // Forward substitution with unit-diagonal L.
        for r in 1..n {
            let row = &lud[r * n..r * n + r];
            let mut acc = x[r];
            for (l, xc) in row.iter().zip(x.iter()) {
                acc = acc - *l * *xc;
            }
            x[r] = acc;
        }
        // Back substitution with U.
        for r in (0..n).rev() {
            let row = &lud[r * n..(r + 1) * n];
            let mut acc = x[r];
            for (u, xc) in row[r + 1..].iter().zip(x[r + 1..].iter()) {
                acc = acc - *u * *xc;
            }
            x[r] = acc / row[r];
        }
    }

    /// Solves `Aᵀ·x = b`, used for adjoint (transfer-function) analyses.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_transpose(&self, b: &[T]) -> Vec<T> {
        let mut x = Vec::with_capacity(self.dim());
        let mut scratch = Vec::with_capacity(self.dim());
        self.solve_transpose_into(b, &mut x, &mut scratch);
        x
    }

    /// [`Lu::solve_transpose`] into a caller-owned buffer with a
    /// caller-owned scratch vector, so the adjoint moment recurrence
    /// reuses two allocations across its `2q` solves. The triangular
    /// passes run in saxpy (row-access) form: once an unknown is final,
    /// its contribution is subtracted from every remaining entry using
    /// one contiguous row of the factor.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_transpose_into(&self, b: &[T], x: &mut Vec<T>, scratch: &mut Vec<T>) {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs dimension mismatch");
        scratch.clear();
        scratch.extend_from_slice(b);
        let y = &mut scratch[..];
        let lud = self.lu.as_slice();
        // Solve Uᵀ·z = b (forward, since Uᵀ is lower-triangular).
        for r in 0..n {
            let (head, tail) = y.split_at_mut(r + 1);
            let yr = head[r] / lud[r * n + r];
            head[r] = yr;
            let row = &lud[r * n + r + 1..(r + 1) * n];
            for (t, u) in tail.iter_mut().zip(row.iter()) {
                *t = *t - *u * yr;
            }
        }
        // Solve Lᵀ·w = z (backward, Lᵀ upper-triangular with unit diag).
        for r in (1..n).rev() {
            let (head, tail) = y.split_at_mut(r);
            let yr = tail[0];
            let row = &lud[r * n..r * n + r];
            for (t, l) in head.iter_mut().zip(row.iter()) {
                *t = *t - *l * yr;
            }
        }
        // Undo the row permutation: x[perm[i]] = w[i].
        x.clear();
        x.resize(n, T::ZERO);
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = y[i];
        }
    }

    /// The determinant of the original matrix.
    pub fn det(&self) -> T {
        let mut d = if self.sign_flips.is_multiple_of(2) {
            T::ONE
        } else {
            -T::ONE
        };
        for i in 0..self.dim() {
            d = d * self.lu.get(i, i);
        }
        d
    }

    /// A cheap conditioning indicator: ratio of largest to smallest pivot
    /// magnitude. Large values flag near-singular systems (used by AWE to
    /// stop growing the model order).
    pub fn pivot_ratio(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for i in 0..self.dim() {
            let m = self.lu.get(i, i).magnitude();
            lo = lo.min(m);
            hi = hi.max(m);
        }
        if lo == 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    }
}

/// Convenience single-shot solve of `A·x = b`.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] if `a` is singular.
pub fn solve_once<T: Scalar>(a: Mat<T>, b: &[T]) -> Result<Vec<T>, SingularMatrixError> {
    Ok(Lu::factor(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex;
    use proptest::prelude::*;

    #[test]
    fn solves_small_real_system() {
        let a = Mat::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let lu = Lu::factor(a).unwrap();
        let x = lu.solve(&[8.0, -11.0, -3.0]);
        let expect = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expect.iter()) {
            assert!((xi - ei).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn transpose_solve_matches_explicit_transpose() {
        let a = Mat::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let mut at = Mat::zeros(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                at[(r, c)] = a.get(c, r);
            }
        }
        let b = [1.0, -2.0, 0.5];
        let x1 = Lu::factor(a).unwrap().solve_transpose(&b);
        let x2 = Lu::factor(at).unwrap().solve(&b);
        for (a, b) in x1.iter().zip(x2.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn complex_system() {
        // (1+j)x = 2j  =>  x = 2j/(1+j) = 1 + j
        let a = Mat::from_rows(&[&[Complex::new(1.0, 1.0)]]);
        let x = Lu::factor(a).unwrap().solve(&[Complex::new(0.0, 2.0)]);
        assert!((x[0] - Complex::new(1.0, 1.0)).norm() < 1e-14);
    }

    #[test]
    fn determinant() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let d = Lu::factor(a).unwrap().det();
        assert!((d - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(Lu::factor(a).is_err());
    }

    #[test]
    fn needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = Lu::factor(a).unwrap().solve(&[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-14 && (x[1] - 3.0).abs() < 1e-14);
    }

    proptest! {
        /// Round trip A·x = b on diagonally dominant random systems.
        #[test]
        fn prop_solve_round_trip(seed in 0u64..500) {
            let n = 1 + (seed as usize % 8);
            // Simple LCG so the test is self-contained and deterministic.
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            };
            let mut a = Mat::<f64>::zeros(n, n);
            for r in 0..n {
                let mut row_sum = 0.0;
                for c in 0..n {
                    let v = next();
                    a[(r, c)] = v;
                    row_sum += v.abs();
                }
                a[(r, r)] += row_sum + 1.0; // diagonal dominance
            }
            let xtrue: Vec<f64> = (0..n).map(|_| next()).collect();
            let b = a.mul_vec(&xtrue);
            let x = Lu::factor(a).unwrap().solve(&b);
            for (xi, ti) in x.iter().zip(xtrue.iter()) {
                prop_assert!((xi - ti).abs() < 1e-8);
            }
        }
    }
}
