//! Polynomials and the Aberth–Ehrlich simultaneous root finder.
//!
//! AWE produces a Padé denominator polynomial whose roots are the
//! reduced-order model's poles; orders are small (q ≤ 8 in practice) so a
//! robust simultaneous iteration converges in a handful of steps.

use crate::Complex;

/// A polynomial with complex coefficients stored in ascending order:
/// `c[0] + c[1]·x + c[2]·x² + …`.
///
/// # Examples
///
/// ```
/// use oblx_linalg::{Poly, Complex};
///
/// // p(x) = x² - 1
/// let p = Poly::from_real(&[-1.0, 0.0, 1.0]);
/// let roots = p.roots();
/// assert_eq!(roots.len(), 2);
/// for r in roots {
///     assert!((r.norm() - 1.0).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Poly {
    coeffs: Vec<Complex>,
}

impl Poly {
    /// Creates a polynomial from ascending complex coefficients.
    ///
    /// Trailing (highest-order) zero coefficients are trimmed.
    pub fn new(coeffs: Vec<Complex>) -> Self {
        let mut p = Poly { coeffs };
        p.trim();
        p
    }

    /// Creates a polynomial from ascending real coefficients.
    pub fn from_real(coeffs: &[f64]) -> Self {
        Poly::new(coeffs.iter().map(|&c| Complex::from_real(c)).collect())
    }

    /// Builds the monic polynomial with the given roots.
    pub fn from_roots(roots: &[Complex]) -> Self {
        let mut coeffs = vec![Complex::ONE];
        for &r in roots {
            // multiply by (x - r)
            let mut next = vec![Complex::ZERO; coeffs.len() + 1];
            for (i, &c) in coeffs.iter().enumerate() {
                next[i + 1] += c;
                next[i] += -r * c;
            }
            coeffs = next;
        }
        Poly::new(coeffs)
    }

    fn trim(&mut self) {
        while self.coeffs.len() > 1 && self.coeffs.last().is_some_and(|c| c.norm() == 0.0) {
            self.coeffs.pop();
        }
    }

    /// The polynomial degree (0 for constants, including the zero poly).
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Ascending coefficient slice.
    pub fn coeffs(&self) -> &[Complex] {
        &self.coeffs
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    pub fn eval(&self, x: Complex) -> Complex {
        let mut acc = Complex::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// The formal derivative.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::new(vec![Complex::ZERO]);
        }
        Poly::new(
            self.coeffs[1..]
                .iter()
                .enumerate()
                .map(|(i, &c)| c * (i as f64 + 1.0))
                .collect(),
        )
    }

    /// All complex roots via [`aberth_roots`].
    ///
    /// Returns an empty vector for constant polynomials.
    pub fn roots(&self) -> Vec<Complex> {
        aberth_roots(&self.coeffs)
    }
}

/// Finds all roots of the polynomial with ascending coefficients `coeffs`
/// using the Aberth–Ehrlich simultaneous iteration.
///
/// Leading zero (highest-order) coefficients are ignored; exact zero roots
/// are deflated first for accuracy. Convergence for the small, well-scaled
/// polynomials produced by AWE is typically < 30 iterations.
pub fn aberth_roots(coeffs: &[Complex]) -> Vec<Complex> {
    // Trim trailing zeros (highest order).
    let mut c: Vec<Complex> = coeffs.to_vec();
    while c.len() > 1 && c.last().is_some_and(|x| x.norm() == 0.0) {
        c.pop();
    }
    let n = c.len().saturating_sub(1);
    if n == 0 {
        return Vec::new();
    }

    // Deflate exact zero roots (constant coefficient == 0).
    let mut zero_roots = 0usize;
    while zero_roots < n && c[0].norm() == 0.0 {
        c.remove(0);
        zero_roots += 1;
    }
    let m = c.len() - 1;
    let mut roots = vec![Complex::ZERO; zero_roots];
    if m == 0 {
        return roots;
    }

    // Normalize to monic for stability.
    let lead = c[m];
    let monic: Vec<Complex> = c.iter().map(|&x| x / lead).collect();
    let p = Poly::new(monic.clone());
    let dp = p.derivative();

    // Initial guesses on a circle with radius from the Cauchy bound,
    // slightly perturbed to break symmetry.
    let radius = 1.0 + monic[..m].iter().map(|x| x.norm()).fold(0.0f64, f64::max);
    let mut z: Vec<Complex> = (0..m)
        .map(|k| {
            let theta = 2.0 * std::f64::consts::PI * (k as f64 + 0.25) / m as f64 + 0.4;
            Complex::from_polar(radius * 0.8, theta)
        })
        .collect();

    const MAX_ITERS: usize = 80;
    const TOL: f64 = 1e-13;
    for _ in 0..MAX_ITERS {
        let mut max_step = 0.0f64;
        for i in 0..m {
            let pv = p.eval(z[i]);
            let dv = dp.eval(z[i]);
            if pv.norm() < TOL * (1.0 + z[i].norm()) {
                continue;
            }
            let newton = if dv.norm() > 0.0 {
                pv / dv
            } else {
                Complex::new(TOL, TOL)
            };
            let mut sum = Complex::ZERO;
            for j in 0..m {
                if j != i {
                    let d = z[i] - z[j];
                    if d.norm() > 1e-300 {
                        sum += d.recip();
                    }
                }
            }
            let denom = Complex::ONE - newton * sum;
            let step = if denom.norm() > 1e-300 {
                newton / denom
            } else {
                newton
            };
            z[i] -= step;
            max_step = max_step.max(step.norm() / (1.0 + z[i].norm()));
        }
        if max_step < TOL {
            break;
        }
    }

    // One polishing Newton step per root.
    for zi in z.iter_mut() {
        let dv = dp.eval(*zi);
        if dv.norm() > 0.0 {
            let corr = p.eval(*zi) / dv;
            if corr.norm() < 0.1 * (1.0 + zi.norm()) {
                *zi -= corr;
            }
        }
    }

    roots.extend(z);
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sort_by_re(mut v: Vec<Complex>) -> Vec<Complex> {
        v.sort_by(|a, b| {
            a.re.partial_cmp(&b.re)
                .unwrap()
                .then(a.im.partial_cmp(&b.im).unwrap())
        });
        v
    }

    #[test]
    fn eval_horner() {
        // p(x) = 1 + 2x + 3x²; p(2) = 17
        let p = Poly::from_real(&[1.0, 2.0, 3.0]);
        assert!((p.eval(Complex::from_real(2.0)) - Complex::from_real(17.0)).norm() < 1e-14);
    }

    #[test]
    fn derivative_rule() {
        let p = Poly::from_real(&[5.0, 1.0, 2.0, 3.0]); // 5 + x + 2x² + 3x³
        let d = p.derivative(); // 1 + 4x + 9x²
        assert_eq!(d.coeffs().len(), 3);
        assert!((d.eval(Complex::from_real(1.0)) - Complex::from_real(14.0)).norm() < 1e-14);
    }

    #[test]
    fn quadratic_real_roots() {
        // (x-1)(x-3) = 3 - 4x + x²
        let r = sort_by_re(Poly::from_real(&[3.0, -4.0, 1.0]).roots());
        assert!((r[0] - Complex::from_real(1.0)).norm() < 1e-9);
        assert!((r[1] - Complex::from_real(3.0)).norm() < 1e-9);
    }

    #[test]
    fn complex_conjugate_pair() {
        // x² + 1 → ±j
        let r = Poly::from_real(&[1.0, 0.0, 1.0]).roots();
        assert_eq!(r.len(), 2);
        for root in &r {
            assert!((root.norm() - 1.0).abs() < 1e-9);
            assert!(root.re.abs() < 1e-9);
        }
    }

    #[test]
    fn zero_roots_deflated() {
        // x²(x - 2) = -2x² + x³
        let r = sort_by_re(Poly::from_real(&[0.0, 0.0, -2.0, 1.0]).roots());
        assert_eq!(r.len(), 3);
        assert!(r[0].norm() < 1e-12);
        assert!(r[1].norm() < 1e-12);
        assert!((r[2] - Complex::from_real(2.0)).norm() < 1e-9);
    }

    #[test]
    fn widely_spread_poles_like_awe() {
        // Poles at -1e3, -1e6, -1e9 after frequency scaling to -1, -1e3, -1e6:
        // AWE always scales, so test the scaled flavor.
        let roots_true = [
            Complex::from_real(-1.0),
            Complex::from_real(-1e3),
            Complex::from_real(-1e6),
        ];
        let p = Poly::from_roots(&roots_true);
        let r = sort_by_re(p.roots());
        let t = sort_by_re(roots_true.to_vec());
        for (a, b) in r.iter().zip(t.iter()) {
            assert!((*a - *b).norm() / b.norm().max(1.0) < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn from_roots_round_trip_eval() {
        let roots = [Complex::new(-1.0, 2.0), Complex::new(-1.0, -2.0)];
        let p = Poly::from_roots(&roots);
        for r in roots {
            assert!(p.eval(r).norm() < 1e-12);
        }
    }

    #[test]
    fn constant_poly_has_no_roots() {
        assert!(Poly::from_real(&[7.0]).roots().is_empty());
        assert_eq!(Poly::from_real(&[7.0]).degree(), 0);
    }

    proptest! {
        /// Roots of a monic polynomial built from random roots are recovered.
        #[test]
        fn prop_root_round_trip(seed in 0u64..300) {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(12345);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
            };
            let n = 1 + (seed as usize % 5);
            // Well-separated roots to keep the conditioning sane.
            let mut roots: Vec<Complex> = Vec::new();
            for _ in 0..n {
                let mut cand = Complex::new(next(), next());
                let mut guard = 0;
                while roots.iter().any(|r| (*r - cand).norm() < 0.3) && guard < 50 {
                    cand = Complex::new(next(), next());
                    guard += 1;
                }
                roots.push(cand);
            }
            let p = Poly::from_roots(&roots);
            let found = p.roots();
            prop_assert_eq!(found.len(), roots.len());
            for r in &roots {
                let best = found.iter().map(|f| (*f - *r).norm()).fold(f64::INFINITY, f64::min);
                prop_assert!(best < 1e-5, "root {} unmatched (best {})", r, best);
            }
        }
    }
}
