//! Sparse LU with a symbolic/numeric split, in the style of Sparse 1.3
//! and KLU: the fill-in pattern and pivot order are computed **once**
//! from the structural nonzero pattern, then every subsequent
//! factorization replays a compiled elimination sequence over a fixed
//! slot layout — no allocation, no pivot search, no pattern churn.
//!
//! This matches the MNA workload exactly: an `EvalPlan` jig has a fixed
//! sparsity pattern for the whole annealing run (device topology never
//! changes, only element values), so the per-move cost collapses to a
//! numeric refactorization plus triangular solves over the factor's
//! nonzeros.
//!
//! # Pivoting
//!
//! Pivots are chosen at symbolic time by structural Markowitz cost
//! `(r_count − 1)·(c_count − 1)` with a deterministic tie-break
//! (prefer the diagonal, then the lowest row, then the lowest column).
//! Because the choice is value-independent, a plan-compile-time
//! symbolic analysis and a from-scratch analysis of the same circuit
//! derive the *same* pivot order, which keeps the incremental and cold
//! evaluation paths bit-identical. The price of static pivoting is that
//! a numerically awful (but structurally fine) pivot can slip through;
//! the numeric refactor therefore checks every pivot exactly like the
//! dense path (`!(mag > 0.0) || !finite` → [`SingularMatrixError`]) and
//! feeds the same pivot-ratio conditioning telemetry, and callers fall
//! back to dense partial-pivoted LU on failure.

use crate::lu::SingularMatrixError;
use std::collections::HashMap;

/// Number of bits per bitset word in the symbolic pass.
const WORD: usize = 64;

/// A sparse LU factorization `P·A·Q = L·U` over a fixed structural
/// pattern.
///
/// Built once with [`SparseLu::symbolic`] from the pattern alone, then
/// refactored any number of times with [`SparseLu::refactor`] as values
/// change. Solves are allocation-free given caller-owned scratch.
///
/// # Examples
///
/// ```
/// use oblx_linalg::SparseLu;
///
/// // [2 1; 1 3] — entries in caller order, values supplied per refactor.
/// let entries = [(0, 0), (0, 1), (1, 0), (1, 1)];
/// let mut lu = SparseLu::symbolic(2, &entries).unwrap();
/// lu.refactor(&[2.0, 1.0, 1.0, 3.0]).unwrap();
/// let (mut x, mut scratch) = (Vec::new(), Vec::new());
/// lu.solve_into(&[5.0, 10.0], &mut x, &mut scratch);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Original row eliminated at step `k` (`P`).
    row_of_step: Vec<u32>,
    /// Original column eliminated at step `k` (`Q`).
    col_of_step: Vec<u32>,
    /// Caller entry `i` accumulates into factor slot `scatter[i]`.
    scatter: Vec<u32>,
    /// Factor slot of the step-`k` pivot `U(k,k)`.
    pivot_slot: Vec<u32>,
    /// `L` entries below each pivot: permuted row + slot, flat with
    /// per-step ranges `l_start[k]..l_start[k+1]`.
    l_rows: Vec<u32>,
    l_slots: Vec<u32>,
    l_start: Vec<u32>,
    /// `U` entries right of each pivot: permuted column + slot.
    u_cols: Vec<u32>,
    u_slots: Vec<u32>,
    u_start: Vec<u32>,
    /// Compiled rank-1 update ops `fvals[t] -= fvals[l] · fvals[u]`,
    /// flat with per-step ranges.
    mul_target: Vec<u32>,
    mul_l: Vec<u32>,
    mul_u: Vec<u32>,
    mul_start: Vec<u32>,
    /// Factor value storage (pattern slots, including fill-in).
    fvals: Vec<f64>,
    /// Ratio of largest to smallest pivot magnitude of the last
    /// successful refactor.
    pivot_ratio: f64,
    factored: bool,
    nnz_input: usize,
}

impl SparseLu {
    /// Computes the symbolic factorization of an `n × n` pattern.
    ///
    /// `entries` lists structural nonzero coordinates in **caller
    /// order**; [`SparseLu::refactor`] takes a value slice parallel to
    /// it. Duplicate coordinates are allowed and accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when the pattern is structurally
    /// singular (some elimination step has no candidate pivot at all).
    ///
    /// # Panics
    ///
    /// Panics if any entry lies outside the matrix.
    pub fn symbolic(n: usize, entries: &[(usize, usize)]) -> Result<Self, SingularMatrixError> {
        let _span = oblx_telemetry::span(oblx_telemetry::SpanKind::SparseSymbolic);
        let words = n.div_ceil(WORD).max(1);
        // Row-major bitset of the (growing) pattern.
        let mut pat = vec![0u64; n * words];
        for &(r, c) in entries {
            assert!(r < n && c < n, "entry ({r}, {c}) outside {n}x{n} matrix");
            pat[r * words + c / WORD] |= 1 << (c % WORD);
        }
        let nnz_input = pat.iter().map(|w| w.count_ones() as usize).sum();

        let mut row_alive = vec![true; n];
        let mut col_mask = vec![0u64; words];
        for c in 0..n {
            col_mask[c / WORD] |= 1 << (c % WORD);
        }

        let mut row_of_step = Vec::with_capacity(n);
        let mut col_of_step = Vec::with_capacity(n);
        // Per-step original-coordinate L rows / U columns.
        let mut step_l: Vec<Vec<u32>> = Vec::with_capacity(n);
        let mut step_u: Vec<Vec<u32>> = Vec::with_capacity(n);

        let bits_of = |row: &[u64], mask: &[u64]| -> Vec<u32> {
            let mut out = Vec::new();
            for (wi, (&w, &m)) in row.iter().zip(mask).enumerate() {
                let mut live = w & m;
                while live != 0 {
                    let b = live.trailing_zeros();
                    out.push((wi * WORD) as u32 + b);
                    live &= live - 1;
                }
            }
            out
        };

        for _step in 0..n {
            // Alive-submatrix row and column counts.
            let mut row_cnt = vec![0u32; n];
            let mut col_cnt = vec![0u32; n];
            for r in 0..n {
                if !row_alive[r] {
                    continue;
                }
                let row = &pat[r * words..(r + 1) * words];
                for (wi, (&w, &m)) in row.iter().zip(&col_mask).enumerate() {
                    let mut live = w & m;
                    row_cnt[r] += live.count_ones();
                    while live != 0 {
                        let c = wi * WORD + live.trailing_zeros() as usize;
                        col_cnt[c] += 1;
                        live &= live - 1;
                    }
                }
            }
            // Markowitz pivot search with deterministic tie-break.
            let mut best: Option<(u64, bool, usize, usize)> = None;
            for r in 0..n {
                if !row_alive[r] || row_cnt[r] == 0 {
                    continue;
                }
                let row = &pat[r * words..(r + 1) * words];
                for c in bits_of(row, &col_mask) {
                    let c = c as usize;
                    let cost = u64::from(row_cnt[r] - 1) * u64::from(col_cnt[c] - 1);
                    // Sort key: (cost, off-diagonal, r, c) — lower wins.
                    let key = (cost, r != c, r, c);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            let Some((_, _, pr, pc)) = best else {
                // No candidate pivot: structurally singular. Report the
                // first still-alive column, mirroring the dense error.
                let column = bits_of(&vec![u64::MAX; words], &col_mask)
                    .first()
                    .map_or(0, |&c| c as usize);
                return Err(SingularMatrixError { column });
            };

            // Record this step's L rows and U columns, then apply the
            // structural rank-1 fill update.
            let pivot_row: Vec<u64> = {
                let row = &pat[pr * words..(pr + 1) * words];
                row.iter().zip(&col_mask).map(|(&w, &m)| w & m).collect()
            };
            let mut u_here = bits_of(&pivot_row, &col_mask);
            u_here.retain(|&c| c as usize != pc);
            let mut l_here = Vec::new();
            for r in 0..n {
                if r == pr || !row_alive[r] {
                    continue;
                }
                if pat[r * words + pc / WORD] >> (pc % WORD) & 1 == 1 {
                    l_here.push(r as u32);
                    for (w, &p) in pat[r * words..(r + 1) * words].iter_mut().zip(&pivot_row) {
                        *w |= p;
                    }
                }
            }
            row_of_step.push(pr as u32);
            col_of_step.push(pc as u32);
            step_l.push(l_here);
            step_u.push(u_here);
            row_alive[pr] = false;
            col_mask[pc / WORD] &= !(1 << (pc % WORD));
        }

        // Permuted coordinates and factor slot assignment: step order,
        // pivot first, then L by permuted row, then U by permuted col.
        let mut inv_row = vec![0u32; n];
        let mut inv_col = vec![0u32; n];
        for k in 0..n {
            inv_row[row_of_step[k] as usize] = k as u32;
            inv_col[col_of_step[k] as usize] = k as u32;
        }
        let mut slot_of: HashMap<(u32, u32), u32> = HashMap::new();
        let mut pivot_slot = Vec::with_capacity(n);
        let mut l_rows = Vec::new();
        let mut l_slots = Vec::new();
        let mut l_start = Vec::with_capacity(n + 1);
        let mut u_cols = Vec::new();
        let mut u_slots = Vec::new();
        let mut u_start = Vec::with_capacity(n + 1);
        for k in 0..n {
            let kk = k as u32;
            let next = slot_of.len() as u32;
            pivot_slot.push(next);
            slot_of.insert((kk, kk), next);
            l_start.push(l_rows.len() as u32);
            let mut lp: Vec<u32> = step_l[k].iter().map(|&r| inv_row[r as usize]).collect();
            lp.sort_unstable();
            for i in lp {
                let next = slot_of.len() as u32;
                slot_of.insert((i, kk), next);
                l_rows.push(i);
                l_slots.push(next);
            }
            u_start.push(u_cols.len() as u32);
            let mut up: Vec<u32> = step_u[k].iter().map(|&c| inv_col[c as usize]).collect();
            up.sort_unstable();
            for j in up {
                let next = slot_of.len() as u32;
                slot_of.insert((kk, j), next);
                u_cols.push(j);
                u_slots.push(next);
            }
        }
        l_start.push(l_rows.len() as u32);
        u_start.push(u_cols.len() as u32);

        // Compiled elimination: every (L row) × (U col) pair of a step
        // targets a slot of the trailing submatrix, which the fill pass
        // above guaranteed exists.
        let mut mul_target = Vec::new();
        let mut mul_l = Vec::new();
        let mut mul_u = Vec::new();
        let mut mul_start = Vec::with_capacity(n + 1);
        for k in 0..n {
            mul_start.push(mul_target.len() as u32);
            let lr = l_start[k] as usize..l_start[k + 1] as usize;
            let ur = u_start[k] as usize..u_start[k + 1] as usize;
            for li in lr {
                for ui in ur.clone() {
                    let t = slot_of[&(l_rows[li], u_cols[ui])];
                    mul_target.push(t);
                    mul_l.push(l_slots[li]);
                    mul_u.push(u_slots[ui]);
                }
            }
        }
        mul_start.push(mul_target.len() as u32);

        let scatter = entries
            .iter()
            .map(|&(r, c)| slot_of[&(inv_row[r], inv_col[c])])
            .collect();

        let fill = slot_of.len();
        oblx_telemetry::add(oblx_telemetry::Counter::SparseNnz, nnz_input as u64);
        oblx_telemetry::add(oblx_telemetry::Counter::SparseFill, fill as u64);

        Ok(SparseLu {
            n,
            row_of_step,
            col_of_step,
            scatter,
            pivot_slot,
            l_rows,
            l_slots,
            l_start,
            u_cols,
            u_slots,
            u_start,
            mul_target,
            mul_l,
            mul_u,
            mul_start,
            fvals: vec![0.0; fill],
            pivot_ratio: f64::INFINITY,
            factored: false,
            nnz_input,
        })
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Structural nonzeros of the input pattern (duplicates merged).
    pub fn nnz(&self) -> usize {
        self.nnz_input
    }

    /// Nonzeros of the `L + U` factor, including fill-in.
    pub fn fill_nnz(&self) -> usize {
        self.fvals.len()
    }

    /// Ratio of the largest to smallest pivot magnitude of the last
    /// successful [`SparseLu::refactor`], as a conditioning signal.
    pub fn pivot_ratio(&self) -> f64 {
        self.pivot_ratio
    }

    /// Numerically refactors with `vals[i]` as the value of the `i`-th
    /// symbolic entry, replaying the compiled elimination. Allocation-
    /// free.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] on a zero, non-finite, or NaN
    /// pivot — the same acceptance test as the dense `Lu::factor` — and
    /// leaves the factor unusable until a later refactor succeeds.
    ///
    /// # Panics
    ///
    /// Panics if `vals` is shorter than the symbolic entry list.
    pub fn refactor(&mut self, vals: &[f64]) -> Result<(), SingularMatrixError> {
        let _span = oblx_telemetry::span(oblx_telemetry::SpanKind::SparseRefactor);
        assert!(vals.len() >= self.scatter.len(), "value slice too short");
        self.factored = false;
        self.fvals.fill(0.0);
        for (i, &s) in self.scatter.iter().enumerate() {
            self.fvals[s as usize] += vals[i];
        }
        let f = &mut self.fvals;
        let mut hi = 0.0f64;
        let mut lo = f64::INFINITY;
        for k in 0..self.n {
            let p = f[self.pivot_slot[k] as usize];
            let mag = p.abs();
            // `!(mag > 0.0)` deliberately catches NaN pivots, exactly
            // like the dense factorization.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(mag > 0.0) || !mag.is_finite() {
                return Err(SingularMatrixError {
                    column: self.col_of_step[k] as usize,
                });
            }
            hi = hi.max(mag);
            lo = lo.min(mag);
            for s in &self.l_slots[self.l_start[k] as usize..self.l_start[k + 1] as usize] {
                f[*s as usize] /= p;
            }
            let mr = self.mul_start[k] as usize..self.mul_start[k + 1] as usize;
            for ((&t, &l), &u) in self.mul_target[mr.clone()]
                .iter()
                .zip(&self.mul_l[mr.clone()])
                .zip(&self.mul_u[mr])
            {
                f[t as usize] -= f[l as usize] * f[u as usize];
            }
        }
        self.pivot_ratio = if lo == 0.0 { f64::INFINITY } else { hi / lo };
        self.factored = true;
        if oblx_telemetry::enabled() {
            oblx_telemetry::record_pivot_ratio(self.pivot_ratio);
            oblx_telemetry::incr(oblx_telemetry::Counter::SparseRefactor);
        }
        Ok(())
    }

    /// Solves `A·x = b` into `x` using `scratch` as workspace; both are
    /// resized to the system dimension (allocation-free once warm).
    ///
    /// # Panics
    ///
    /// Panics (debug) if no successful refactor precedes the solve.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>, scratch: &mut Vec<f64>) {
        debug_assert!(self.factored, "solve before successful refactor");
        let n = self.n;
        scratch.clear();
        scratch.resize(n, 0.0);
        let y = &mut scratch[..];
        for k in 0..n {
            y[k] = b[self.row_of_step[k] as usize];
        }
        // Forward: L (unit diagonal), column-oriented saxpy.
        for k in 0..n {
            let yk = y[k];
            if yk != 0.0 {
                let r = self.l_start[k] as usize..self.l_start[k + 1] as usize;
                for (&i, &s) in self.l_rows[r.clone()].iter().zip(&self.l_slots[r]) {
                    y[i as usize] -= self.fvals[s as usize] * yk;
                }
            }
        }
        // Backward: U, row-oriented gather.
        for k in (0..n).rev() {
            let mut acc = y[k];
            let r = self.u_start[k] as usize..self.u_start[k + 1] as usize;
            for (&j, &s) in self.u_cols[r.clone()].iter().zip(&self.u_slots[r]) {
                acc -= self.fvals[s as usize] * y[j as usize];
            }
            y[k] = acc / self.fvals[self.pivot_slot[k] as usize];
        }
        x.clear();
        x.resize(n, 0.0);
        for k in 0..n {
            x[self.col_of_step[k] as usize] = y[k];
        }
    }

    /// Solves `Aᵀ·x = b` into `x` — the AWE adjoint direction — reusing
    /// the same factor (`Aᵀ = Q·Uᵀ·Lᵀ·P`).
    ///
    /// # Panics
    ///
    /// Panics (debug) if no successful refactor precedes the solve.
    pub fn solve_transpose_into(&self, b: &[f64], x: &mut Vec<f64>, scratch: &mut Vec<f64>) {
        debug_assert!(self.factored, "solve before successful refactor");
        let n = self.n;
        scratch.clear();
        scratch.resize(n, 0.0);
        let y = &mut scratch[..];
        for k in 0..n {
            y[k] = b[self.col_of_step[k] as usize];
        }
        // Forward: Uᵀ (lower triangular, pivot diagonal), saxpy over
        // the rows of U.
        for k in 0..n {
            let yk = y[k] / self.fvals[self.pivot_slot[k] as usize];
            y[k] = yk;
            if yk != 0.0 {
                let r = self.u_start[k] as usize..self.u_start[k + 1] as usize;
                for (&j, &s) in self.u_cols[r.clone()].iter().zip(&self.u_slots[r]) {
                    y[j as usize] -= self.fvals[s as usize] * yk;
                }
            }
        }
        // Backward: Lᵀ (unit upper triangular), gather over the columns
        // of L.
        for k in (0..n).rev() {
            let mut acc = y[k];
            let r = self.l_start[k] as usize..self.l_start[k + 1] as usize;
            for (&i, &s) in self.l_rows[r.clone()].iter().zip(&self.l_slots[r]) {
                acc -= self.fvals[s as usize] * y[i as usize];
            }
            y[k] = acc;
        }
        x.clear();
        x.resize(n, 0.0);
        for k in 0..n {
            x[self.row_of_step[k] as usize] = y[k];
        }
    }

    /// One-shot convenience solve (allocates; tests and cold paths).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        let mut scratch = Vec::new();
        self.solve_into(b, &mut x, &mut scratch);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::Lu;
    use crate::matrix::Mat;
    use proptest::prelude::*;

    /// Deterministic LCG in `[-1, 1)`, matching the dense LU proptest.
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        }
    }

    /// Random sparse diagonally dominant system: pattern + values + the
    /// equivalent dense matrix.
    fn random_system(seed: u64, n: usize) -> (Vec<(usize, usize)>, Vec<f64>, Mat<f64>) {
        let mut next = lcg(seed);
        let mut entries = Vec::new();
        let mut vals = Vec::new();
        let mut dense = Mat::<f64>::zeros(n, n);
        for r in 0..n {
            let mut row_sum = 0.0;
            for c in 0..n {
                if r != c && next().abs() > 0.3 {
                    continue; // ~30% off-diagonal density
                }
                let v = next();
                entries.push((r, c));
                vals.push(v);
                dense[(r, c)] += v;
                row_sum += v.abs();
            }
            // Dominant diagonal as a second (duplicate) entry.
            entries.push((r, r));
            vals.push(row_sum + 1.0);
            dense[(r, r)] += row_sum + 1.0;
        }
        (entries, vals, dense)
    }

    #[test]
    fn dense_pattern_matches_dense_lu() {
        let a = Mat::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let entries = [(0, 0), (0, 1), (1, 0), (1, 1)];
        let mut lu = SparseLu::symbolic(2, &entries).unwrap();
        lu.refactor(&[4.0, 3.0, 6.0, 3.0]).unwrap();
        let x = lu.solve(&[10.0, 12.0]);
        let xd = Lu::factor(a).unwrap().solve(&[10.0, 12.0]);
        assert!((x[0] - xd[0]).abs() < 1e-12 && (x[1] - xd[1]).abs() < 1e-12);
    }

    #[test]
    fn zero_structural_diagonal_is_pivoted_around() {
        // Voltage-source-style branch row: structurally zero diagonal.
        let entries = [(0, 1), (1, 0), (1, 1)];
        let mut lu = SparseLu::symbolic(2, &entries).unwrap();
        lu.refactor(&[1.0, 1.0, 2.0]).unwrap();
        let x = lu.solve(&[3.0, 7.0]);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn structurally_singular_pattern_is_rejected() {
        // Column 1 completely empty.
        let entries = [(0, 0), (1, 0)];
        assert!(SparseLu::symbolic(2, &entries).is_err());
    }

    #[test]
    fn numerically_singular_values_error_like_dense() {
        let entries = [(0, 0), (0, 1), (1, 0), (1, 1)];
        let mut lu = SparseLu::symbolic(2, &entries).unwrap();
        // Rank-1 values: elimination must hit a zero pivot.
        let err = lu.refactor(&[1.0, 2.0, 2.0, 4.0]).unwrap_err();
        let dense_err = Lu::factor(Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]])).unwrap_err();
        assert_eq!(err.column, dense_err.column);
        // NaN values are singular too, never silently propagated.
        assert!(lu.refactor(&[f64::NAN, 2.0, 2.0, 4.0]).is_err());
    }

    #[test]
    fn refactor_reuses_pattern_for_new_values() {
        let entries = [(0, 0), (0, 1), (1, 0), (1, 1)];
        let mut lu = SparseLu::symbolic(2, &entries).unwrap();
        lu.refactor(&[2.0, 1.0, 1.0, 3.0]).unwrap();
        assert!((lu.solve(&[5.0, 10.0])[1] - 3.0).abs() < 1e-12);
        lu.refactor(&[1.0, 0.0, 0.0, 1.0]).unwrap();
        let x = lu.solve(&[5.0, 10.0]);
        assert!((x[0] - 5.0).abs() < 1e-12 && (x[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn fill_in_is_counted() {
        // Arrow matrix: dense first row/col, diagonal elsewhere — the
        // diagonal-preference tie-break eliminates the spine last, so
        // no fill-in is created (nnz == fill).
        let n = 6;
        let mut entries = vec![];
        for i in 0..n {
            entries.push((0, i));
            entries.push((i, 0));
            entries.push((i, i));
        }
        let lu = SparseLu::symbolic(n, &entries).unwrap();
        assert_eq!(lu.nnz(), 3 * n - 2);
        assert_eq!(lu.fill_nnz(), lu.nnz());
    }

    #[test]
    fn pivot_ratio_reports_conditioning() {
        let entries = [(0, 0), (1, 1)];
        let mut lu = SparseLu::symbolic(2, &entries).unwrap();
        lu.refactor(&[1e6, 1e-6]).unwrap();
        assert!((lu.pivot_ratio() - 1e12).abs() / 1e12 < 1e-9);
    }

    proptest! {
        /// Satellite: random sparse systems, sparse LU vs dense LU agree
        /// to 1e-9 — plain solves, RHS batches, and transpose solves
        /// (the AWE adjoint chain uses both directions).
        #[test]
        fn prop_sparse_matches_dense(seed in 0u64..300) {
            let n = 1 + (seed as usize % 24);
            let (entries, vals, dense) = random_system(seed, n);
            let mut sp = SparseLu::symbolic(n, &entries).unwrap();
            sp.refactor(&vals).unwrap();
            let dn = Lu::factor(dense).unwrap();
            let mut next = lcg(!seed);
            let (mut x, mut scratch, mut xt) = (Vec::new(), Vec::new(), Vec::new());
            // A small RHS batch against one factorization.
            for _ in 0..3 {
                let b: Vec<f64> = (0..n).map(|_| next()).collect();
                sp.solve_into(&b, &mut x, &mut scratch);
                let xd = dn.solve(&b);
                sp.solve_transpose_into(&b, &mut xt, &mut scratch);
                let mut xdt = Vec::new();
                let mut dscratch = Vec::new();
                dn.solve_transpose_into(&b, &mut xdt, &mut dscratch);
                for i in 0..n {
                    prop_assert!((x[i] - xd[i]).abs() < 1e-9, "solve row {}", i);
                    prop_assert!((xt[i] - xdt[i]).abs() < 1e-9, "transpose row {}", i);
                }
            }
        }

        /// Refactoring with new values matches a fresh dense factor.
        #[test]
        fn prop_refactor_tracks_values(seed in 0u64..100) {
            let n = 2 + (seed as usize % 12);
            let (entries, vals, dense) = random_system(seed, n);
            let mut sp = SparseLu::symbolic(n, &entries).unwrap();
            sp.refactor(&vals).unwrap();
            drop(dense);
            // Second value set over the same pattern (dominance kept).
            let vals2: Vec<f64> = entries
                .iter()
                .zip(&vals)
                .map(|(&(r, c), &v)| if r == c { 2.0 * v + 1.0 } else { 2.0 * v })
                .collect();
            let mut dense2 = Mat::<f64>::zeros(n, n);
            for (&(r, c), &v) in entries.iter().zip(&vals2) {
                dense2[(r, c)] += v;
            }
            sp.refactor(&vals2).unwrap();
            let dn = Lu::factor(dense2).unwrap();
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let x = sp.solve(&b);
            let xd = dn.solve(&b);
            for i in 0..n {
                prop_assert!((x[i] - xd[i]).abs() < 1e-9);
            }
        }
    }
}
