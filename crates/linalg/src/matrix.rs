//! Dense row-major matrices generic over a scalar field.

use crate::Complex;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// The scalar field a [`Mat`] can be built over.
///
/// This trait is sealed in spirit: the two implementations used by the
/// toolkit are `f64` (dc and moment computations) and [`Complex`]
/// (ac analysis). The `magnitude` method supplies the pivot ordering for
/// LU with partial pivoting.
pub trait Scalar:
    Copy
    + PartialEq
    + Default
    + fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Absolute value used for pivot selection.
    fn magnitude(self) -> f64;
    /// Lifts a real number into the field.
    fn from_f64(x: f64) -> Self;
    /// `true` when the value is NaN/infinite in any component.
    fn is_bad(self) -> bool;
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    #[inline]
    fn magnitude(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn from_f64(x: f64) -> f64 {
        x
    }
    #[inline]
    fn is_bad(self) -> bool {
        !self.is_finite()
    }
}

impl Scalar for Complex {
    const ZERO: Complex = Complex::ZERO;
    const ONE: Complex = Complex::ONE;
    #[inline]
    fn magnitude(self) -> f64 {
        self.norm()
    }
    #[inline]
    fn from_f64(x: f64) -> Complex {
        Complex::from_real(x)
    }
    #[inline]
    fn is_bad(self) -> bool {
        Complex::is_bad(self)
    }
}

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use oblx_linalg::Mat;
///
/// let mut a = Mat::<f64>::zeros(2, 2);
/// a[(0, 0)] = 1.0;
/// a[(1, 1)] = 2.0;
/// let v = a.mul_vec(&[3.0, 4.0]);
/// assert_eq!(v, vec![3.0, 8.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Mat<T> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Mat::from_rows");
            data.extend_from_slice(row);
        }
        Mat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access without bounds-check sugar.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        self.data[r * self.cols + c]
    }

    /// Sets every element to zero, retaining the allocation.
    pub fn clear(&mut self) {
        self.data.fill(T::ZERO);
    }

    /// Adds `v` to element `(r, c)` — the MNA "stamp" primitive.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: T) {
        assert!(r < self.rows && c < self.cols, "stamp out of bounds");
        self.data[r * self.cols + c] += v;
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        let mut y = Vec::new();
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Matrix–vector product `A·x` into a caller-owned buffer (resized
    /// to `self.rows()`), so repeated products reuse one allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[allow(clippy::needless_range_loop)] // row-slice walk, indexed on purpose
    pub fn mul_vec_into(&self, x: &[T], y: &mut Vec<T>) {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        y.clear();
        y.resize(self.rows, T::ZERO);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = T::ZERO;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += *a * *b;
            }
            y[r] = acc;
        }
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != b.rows()`.
    pub fn mul_mat(&self, b: &Mat<T>) -> Mat<T> {
        assert_eq!(self.cols, b.rows, "dimension mismatch in mul_mat");
        let mut out = Mat::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == T::ZERO {
                    continue;
                }
                for j in 0..b.cols {
                    out.data[i * b.cols + j] += aik * b.get(k, j);
                }
            }
        }
        out
    }

    /// Converts into another scalar field element-wise.
    pub fn map<U: Scalar>(&self, f: impl Fn(T) -> U) -> Mat<U> {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// The raw row-major data slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Maximum magnitude over all entries (∞-norm of the data).
    pub fn max_magnitude(&self) -> f64 {
        self.data.iter().map(|x| x.magnitude()).fold(0.0, f64::max)
    }

    /// Returns `true` if any entry is NaN or infinite.
    pub fn has_bad_values(&self) -> bool {
        self.data.iter().any(|x| x.is_bad())
    }
}

impl Mat<f64> {
    /// Lifts a real matrix into the complex field.
    pub fn to_complex(&self) -> Mat<Complex> {
        self.map(Complex::from_real)
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Mat<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Mat<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Scalar> fmt::Display for Mat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Mat::identity(2);
        assert_eq!(a.mul_mat(&i), a);
        assert_eq!(i.mul_mat(&a), a);
    }

    #[test]
    fn mul_vec_matches_by_hand() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn stamping_accumulates() {
        let mut g = Mat::<f64>::zeros(2, 2);
        g.add_at(0, 0, 1.0);
        g.add_at(0, 0, 2.5);
        assert_eq!(g[(0, 0)], 3.5);
    }

    #[test]
    fn complex_lift() {
        let a = Mat::from_rows(&[&[1.0, -2.0]]);
        let c = a.to_complex();
        assert_eq!(c[(0, 1)], Complex::new(-2.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "stamp out of bounds")]
    fn stamp_out_of_bounds_panics() {
        let mut g = Mat::<f64>::zeros(1, 1);
        g.add_at(1, 0, 1.0);
    }

    #[test]
    fn bad_value_detection() {
        let mut a = Mat::<f64>::zeros(2, 2);
        assert!(!a.has_bad_values());
        a[(1, 1)] = f64::NAN;
        assert!(a.has_bad_values());
    }
}
