//! A minimal `f64` complex number.
//!
//! Only the operations required by circuit analysis are provided; this is
//! deliberately not a general-purpose numerics type.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use oblx_linalg::Complex;
///
/// let s = Complex::new(0.0, 1.0);
/// assert!((s * s + Complex::ONE).norm() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `j` (electrical-engineering spelling of `i`).
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates.
    ///
    /// # Examples
    ///
    /// ```
    /// use oblx_linalg::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!(z.re.abs() < 1e-15 && (z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// The modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared modulus `|z|²`, cheaper than [`Complex::norm`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// Returns infinities when `z` is zero, matching `f64` division
    /// semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// The principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Complex::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Returns `true` when either component is NaN or infinite.
    #[inline]
    pub fn is_bad(self) -> bool {
        !self.re.is_finite() || !self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ by definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.recip(), Complex::ONE));
        assert!(close(z + (-z), Complex::ZERO));
        assert!(close(z.conj().conj(), z));
        assert!(close((z * z).sqrt(), z)); // |arg z| < π/2 ⇒ principal branch returns z
    }

    #[test]
    fn division_matches_multiplication() {
        let a = Complex::new(1.5, 2.5);
        let b = Complex::new(-0.5, 3.0);
        assert!(close(a / b * b, a));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.norm() - 2.0).abs() < 1e-14);
        assert!((z.arg() - 0.7).abs() < 1e-14);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn bad_detection() {
        assert!(Complex::new(f64::NAN, 0.0).is_bad());
        assert!(Complex::new(0.0, f64::INFINITY).is_bad());
        assert!(!Complex::new(1.0, 1.0).is_bad());
    }
}
