//! Structured solves used by AWE moment matching.
//!
//! Given transfer-function moments `µ0 … µ_{2q-1}`, the Padé step solves a
//! Hankel system for denominator coefficients and a (pole-)Vandermonde
//! system for residues. Orders are small, so we simply build the dense
//! systems and reuse [`Lu`](crate::Lu).

use crate::matrix::Scalar;
use crate::{Lu, Mat, SingularMatrixError};

/// Solves the AWE Hankel system for the denominator coefficients
/// `b = (b0 … b_{q-1})` of the q-pole Padé approximant.
///
/// For `H(s) = N(s)/D(s)` with `D(s) = b0 + b1·s + … + b_{q-1}·s^{q-1} + s^q`
/// and `deg N < q`, matching the Maclaurin moments `µ0 … µ_{2q-1}` gives,
/// for `j = 0 … q−1`:
///
/// ```text
/// | µ1   µ2   … µ_q      |   | b_{q-1} |     | µ0      |
/// | µ2   µ3   … µ_{q+1}  | · | b_{q-2} | = − | µ1      |
/// | …                    |   | …       |     | …       |
/// | µ_q  …      µ_{2q-1} |   | b_0     |     | µ_{q-1} |
/// ```
///
/// The returned vector is reordered to ascending `b0 … b_{q-1}`.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] if the Hankel matrix is singular — the
/// usual signal that the requested order q exceeds the information content
/// of the moments, so AWE should fall back to a smaller q.
///
/// # Panics
///
/// Panics if `moments.len() < 2*q` or `q == 0`.
pub fn solve_hankel<T: Scalar>(moments: &[T], q: usize) -> Result<Vec<T>, SingularMatrixError> {
    assert!(q > 0, "Padé order must be positive");
    assert!(moments.len() >= 2 * q, "need 2q moments for a q-pole model");
    let mut h = Mat::<T>::zeros(q, q);
    let mut rhs = vec![T::ZERO; q];
    for r in 0..q {
        for c in 0..q {
            h[(r, c)] = moments[r + c + 1];
        }
        rhs[r] = -moments[r];
    }
    let mut b = Lu::factor(h)?.solve(&rhs);
    b.reverse(); // solved order is b_{q-1} … b_0
    Ok(b)
}

/// Solves the Vandermonde system for residues `k_i` of the pole-residue
/// model `H(s) ≈ Σ k_i/(s − p_i)` from moment matching:
///
/// ```text
/// µ_j = − Σ_i k_i / p_i^{j+1}     j = 0 … q−1
/// ```
///
/// # Errors
///
/// Returns [`SingularMatrixError`] when poles are (numerically) repeated.
///
/// # Panics
///
/// Panics if `moments.len() < poles.len()` or any pole is exactly zero.
pub fn solve_vandermonde<T: Scalar>(
    poles: &[T],
    moments: &[T],
) -> Result<Vec<T>, SingularMatrixError> {
    let q = poles.len();
    assert!(moments.len() >= q, "need q moments for q residues");
    let mut v = Mat::<T>::zeros(q, q);
    let mut rhs = vec![T::ZERO; q];
    for (c, &p) in poles.iter().enumerate() {
        assert!(p.magnitude() > 0.0, "zero pole in residue solve");
        let mut inv_pow = T::ONE / p; // 1/p^{1}
        for r in 0..q {
            v[(r, c)] = -inv_pow;
            inv_pow = inv_pow / p;
        }
    }
    rhs[..q].copy_from_slice(&moments[..q]);
    Lu::factor(v).map(|lu| lu.solve(&rhs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Complex, Poly};

    /// Construct moments from a known pole/residue model and verify the
    /// Hankel + Vandermonde pipeline recovers it. This is the AWE inverse
    /// problem in miniature.
    #[test]
    fn recovers_known_pole_residue_model() {
        let poles = [-1.0f64, -5.0];
        let resid = [2.0f64, -0.5];
        let q = 2;
        // µ_j = -Σ k_i / p_i^{j+1}
        let moments: Vec<f64> = (0..2 * q)
            .map(|j| {
                -poles
                    .iter()
                    .zip(resid.iter())
                    .map(|(&p, &k)| k / p.powi(j as i32 + 1))
                    .sum::<f64>()
            })
            .collect();

        let b = solve_hankel(&moments, q).unwrap();
        // char poly: b0 + b1 s + s^2, roots must be the poles
        let mut coeffs: Vec<f64> = b.clone();
        coeffs.push(1.0);
        let roots = Poly::from_real(&coeffs).roots();
        let mut res: Vec<f64> = roots.iter().map(|r| r.re).collect();
        res.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((res[0] - (-5.0)).abs() < 1e-8, "{res:?}");
        assert!((res[1] - (-1.0)).abs() < 1e-8, "{res:?}");

        let k = solve_vandermonde(&[-1.0, -5.0], &moments).unwrap();
        assert!((k[0] - 2.0).abs() < 1e-8);
        assert!((k[1] - (-0.5)).abs() < 1e-8);
    }

    #[test]
    fn hankel_rejects_rank_deficient_moments() {
        // Moments of a single-pole model cannot support q = 2.
        let p = -2.0f64;
        let k = 3.0f64;
        let moments: Vec<f64> = (0..4).map(|j| -k / p.powi(j + 1)).collect();
        assert!(solve_hankel(&moments, 2).is_err());
    }

    #[test]
    fn complex_field_works_too() {
        let poles = [Complex::new(-1.0, 1.0), Complex::new(-1.0, -1.0)];
        let resid = [Complex::new(0.0, -0.5), Complex::new(0.0, 0.5)];
        let q = 2;
        let moments: Vec<Complex> = (0..2 * q)
            .map(|j| {
                let mut acc = Complex::ZERO;
                for (p, k) in poles.iter().zip(resid.iter()) {
                    let mut ppow = *p;
                    for _ in 0..j {
                        ppow *= *p;
                    }
                    acc += *k / ppow;
                }
                -acc
            })
            .collect();
        let b = solve_hankel(&moments, q).unwrap();
        // char poly roots = poles; for poles -1±j: (s+1)^2+1 = s^2+2s+2
        assert!((b[0] - Complex::from_real(2.0)).norm() < 1e-9);
        assert!((b[1] - Complex::from_real(2.0)).norm() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need 2q moments")]
    fn too_few_moments_panics() {
        let _ = solve_hankel(&[1.0, 2.0, 3.0], 2);
    }
}
