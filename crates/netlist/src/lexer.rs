//! Line-level lexing: comments, continuations, field splitting, and
//! SPICE-style scaled number literals.

use crate::ParseError;

/// Iterator over *logical* lines of a SPICE-flavoured source: `*` and `;`
/// comments are stripped, blank lines skipped, and `+` continuation lines
/// joined onto their predecessor. Yields `(line_number, text)` where
/// `line_number` is the 1-based number of the first physical line.
///
/// # Examples
///
/// ```
/// use oblx_netlist::LogicalLines;
///
/// let src = "* comment\nr1 a b 1k ; load\n+ extra\n\nc1 a 0 1p";
/// let lines: Vec<_> = LogicalLines::new(src).collect();
/// assert_eq!(lines[0], (2, "r1 a b 1k extra".to_string()));
/// assert_eq!(lines[1], (5, "c1 a 0 1p".to_string()));
/// ```
#[derive(Debug)]
pub struct LogicalLines<'a> {
    lines: std::iter::Peekable<std::iter::Enumerate<std::str::Lines<'a>>>,
}

impl<'a> LogicalLines<'a> {
    /// Creates the iterator over `src`.
    pub fn new(src: &'a str) -> Self {
        LogicalLines {
            lines: src.lines().enumerate().peekable(),
        }
    }
}

fn strip_comment(line: &str) -> &str {
    // `;` starts an inline comment; a leading `*` comments the whole line.
    let trimmed = line.trim_start();
    if trimmed.starts_with('*') {
        return "";
    }
    match line.find(';') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

impl<'a> Iterator for LogicalLines<'a> {
    type Item = (usize, String);

    fn next(&mut self) -> Option<(usize, String)> {
        loop {
            let (idx, raw) = self.lines.next()?;
            let body = strip_comment(raw).trim();
            if body.is_empty() {
                continue;
            }
            let mut text = body.to_string();
            // Absorb continuation lines.
            while let Some(&(_, peeked)) = self.lines.peek() {
                let next_body = strip_comment(peeked).trim_start();
                if let Some(rest) = next_body.strip_prefix('+') {
                    text.push(' ');
                    text.push_str(rest.trim());
                    self.lines.next();
                } else if next_body.is_empty() && peeked.trim_start().starts_with('*') {
                    // A comment between a line and its continuation is
                    // allowed; skip it without ending the logical line.
                    self.lines.next();
                } else {
                    break;
                }
            }
            return Some((idx + 1, text));
        }
    }
}

/// Splits a logical line into whitespace-separated fields, keeping
/// single-quoted expressions (`'I/(2*Cl)'`) as one field with the quotes
/// removed, and keeping `key=value` pairs intact.
///
/// # Errors
///
/// Returns [`ParseError`] on an unterminated quote.
///
/// # Examples
///
/// ```
/// use oblx_netlist::split_fields;
///
/// let f = split_fields(3, ".spec sr 'I/(2*(Cl+cd))' good=1Meg bad=10k").unwrap();
/// assert_eq!(f, vec![".spec", "sr", "I/(2*(Cl+cd))", "good=1Meg", "bad=10k"]);
/// ```
pub fn split_fields(line_no: usize, line: &str) -> Result<Vec<String>, ParseError> {
    let mut fields = Vec::new();
    // `col` counts characters consumed, so quote errors can point at the
    // 1-based column of the offending opening quote.
    let mut col = 0usize;
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            col += 1;
        } else if c == '\'' {
            let open_col = col + 1;
            chars.next();
            col += 1;
            let mut buf = String::new();
            let mut closed = false;
            for ch in chars.by_ref() {
                col += 1;
                if ch == '\'' {
                    closed = true;
                    break;
                }
                buf.push(ch);
            }
            if !closed {
                return Err(ParseError::at(
                    line_no,
                    open_col,
                    "unterminated quoted expression",
                ));
            }
            fields.push(buf);
        } else {
            let mut buf = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() {
                    break;
                }
                if ch == '\'' {
                    // key='expr' — splice the quoted body into the field.
                    let open_col = col + 1;
                    chars.next();
                    col += 1;
                    let mut closed = false;
                    for ch2 in chars.by_ref() {
                        col += 1;
                        if ch2 == '\'' {
                            closed = true;
                            break;
                        }
                        buf.push(ch2);
                    }
                    if !closed {
                        return Err(ParseError::at(
                            line_no,
                            open_col,
                            "unterminated quoted expression",
                        ));
                    }
                    continue;
                }
                buf.push(ch);
                chars.next();
                col += 1;
            }
            fields.push(buf);
        }
    }
    Ok(fields)
}

/// Parses a SPICE scaled number: `1k`, `2.5Meg`, `0.8u`, `10n`, `1e-6`,
/// `3pF` (trailing unit letters after the scale factor are ignored, as in
/// SPICE).
///
/// Scale suffixes (case-insensitive): `t`=1e12, `g`=1e9, `meg`=1e6,
/// `k`=1e3, `m`=1e-3, `u`=1e-6, `n`=1e-9, `p`=1e-12, `f`=1e-15.
///
/// Returns `None` when the token is not a number.
///
/// # Examples
///
/// ```
/// use oblx_netlist::parse_number;
///
/// assert_eq!(parse_number("1Meg"), Some(1.0e6));
/// assert_eq!(parse_number("2.2k"), Some(2200.0));
/// assert!((parse_number("100nF").unwrap() - 1.0e-7).abs() < 1e-20);
/// assert_eq!(parse_number("abc"), None);
/// ```
pub fn parse_number(token: &str) -> Option<f64> {
    let bytes = token.as_bytes();
    if bytes.is_empty() {
        return None;
    }
    // Longest numeric prefix: [+-]? digits [. digits] [e[+-]digits]
    let mut end = 0;
    let mut seen_digit = false;
    if bytes[end] == b'+' || bytes[end] == b'-' {
        end += 1;
    }
    while end < bytes.len() && bytes[end].is_ascii_digit() {
        end += 1;
        seen_digit = true;
    }
    if end < bytes.len() && bytes[end] == b'.' {
        end += 1;
        while end < bytes.len() && bytes[end].is_ascii_digit() {
            end += 1;
            seen_digit = true;
        }
    }
    if !seen_digit {
        return None;
    }
    if end < bytes.len() && (bytes[end] == b'e' || bytes[end] == b'E') {
        // Only treat as exponent if followed by a valid exponent body.
        let mut e = end + 1;
        if e < bytes.len() && (bytes[e] == b'+' || bytes[e] == b'-') {
            e += 1;
        }
        if e < bytes.len() && bytes[e].is_ascii_digit() {
            while e < bytes.len() && bytes[e].is_ascii_digit() {
                e += 1;
            }
            end = e;
        }
    }
    let mantissa: f64 = token[..end].parse().ok()?;
    let suffix = token[end..].to_ascii_lowercase();
    let scale = if suffix.is_empty() {
        1.0
    } else if suffix.starts_with("meg") {
        1e6
    } else if suffix.starts_with("mil") {
        25.4e-6
    } else {
        match suffix.as_bytes()[0] {
            b't' => 1e12,
            b'g' => 1e9,
            b'k' => 1e3,
            b'm' => 1e-3,
            b'u' => 1e-6,
            b'n' => 1e-9,
            b'p' => 1e-12,
            b'f' => 1e-15,
            // Unknown letters directly after a number (e.g. `2x`) are a
            // unit annotation in SPICE tradition; accept as scale 1 only
            // for known unit letters, otherwise reject.
            b'v' | b'a' | b'h' | b's' => 1.0,
            _ => return None,
        }
    };
    Some(mantissa * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_lines_strip_and_join() {
        let src = "* header\nr1 a b 1k\n+2k ; tail comment\n* mid comment\n+3k\nc1 a 0 1p\n";
        let got: Vec<_> = LogicalLines::new(src).collect();
        assert_eq!(got[0], (2, "r1 a b 1k 2k 3k".to_string()));
        assert_eq!(got[1], (6, "c1 a 0 1p".to_string()));
    }

    #[test]
    fn fields_with_quotes() {
        let f = split_fields(1, ".obj adm 'dc_gain(tf)' good=1000 bad=10").unwrap();
        assert_eq!(f[2], "dc_gain(tf)");
        assert_eq!(f[3], "good=1000");
    }

    #[test]
    fn fields_with_embedded_quote_value() {
        let f = split_fields(1, "m1 d g s b nmos w='W' l='L*2'").unwrap();
        assert_eq!(f[6], "w=W");
        assert_eq!(f[7], "l=L*2");
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(split_fields(4, ".obj x 'oops").is_err());
        assert!(split_fields(4, "m1 a b w='oops").is_err());
    }

    fn assert_close(tok: &str, expect: f64) {
        let got = parse_number(tok).unwrap_or_else(|| panic!("`{tok}` did not parse"));
        assert!(
            (got - expect).abs() <= 1e-12 * expect.abs().max(1e-300),
            "`{tok}` -> {got}, expected {expect}"
        );
    }

    #[test]
    fn numbers_with_suffixes() {
        assert_close("10", 10.0);
        assert_close("-3.3", -3.3);
        assert_close("1k", 1e3);
        assert_close("1K", 1e3);
        assert_close("1Meg", 1e6);
        assert_close("1MEG", 1e6);
        assert_close("1m", 1e-3);
        assert_close("0.8u", 0.8e-6);
        assert_close("5n", 5e-9);
        assert_close("2p", 2e-12);
        assert_close("3f", 3e-15);
        assert_close("4g", 4e9);
        assert_close("1e-6", 1e-6);
        assert_close("1.5e3", 1500.0);
    }

    #[test]
    fn numbers_with_units() {
        assert_eq!(parse_number("1pF"), Some(1e-12));
        assert_eq!(parse_number("5kOhm"), Some(5e3));
        assert_eq!(parse_number("2V"), Some(2.0));
    }

    #[test]
    fn non_numbers_rejected() {
        assert_eq!(parse_number("vdd"), None);
        assert_eq!(parse_number(""), None);
        assert_eq!(parse_number("+"), None);
        assert_eq!(parse_number(".spec"), None);
        assert_eq!(parse_number("1x"), None);
    }

    #[test]
    fn exponent_vs_unit_e() {
        // `1e` is "1" with unknown suffix 'e' — rejected; `1e2` is 100.
        assert_eq!(parse_number("1e2"), Some(100.0));
        assert_eq!(parse_number("1e"), None);
    }
}
