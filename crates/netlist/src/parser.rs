//! Card-level parser assembling a [`Problem`] from source text.

use crate::circuit::{Element, ElementKind, Instance, Netlist, Subckt};
use crate::expr::ExprParser;
use crate::lexer::{parse_number, split_fields, LogicalLines};
use crate::problem::{
    Analysis, Goal, Jig, ModelCard, Problem, RegionReq, SpecKind, VarDecl, VarScale,
};
use crate::{Expr, ParseError};
use std::collections::HashMap;

/// Parses a single expression (used for quoted values and tests).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input; `line` is attached to the
/// error for diagnostics.
pub fn parse_expr(line: usize, src: &str) -> Result<Expr, ParseError> {
    ExprParser::new(line, src).parse()
}

/// Parses a value field that may be a bare SPICE number, a quoted
/// expression (quotes already stripped by the lexer), or a plain
/// variable/expression token.
fn parse_value(line: usize, tok: &str) -> Result<Expr, ParseError> {
    if let Some(v) = parse_number(tok) {
        return Ok(Expr::Num(v));
    }
    parse_expr(line, tok)
}

/// Section the parser is currently inside.
enum Section {
    Top,
    Subckt(Subckt),
    Jig(Jig),
    Bias(Netlist),
}

/// Parses a complete synthesis-problem description.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered, annotated with its
/// source line.
///
/// # Examples
///
/// See the [crate-level documentation](crate).
pub fn parse_problem(src: &str) -> Result<Problem, ParseError> {
    let mut problem = Problem::default();
    let mut section = Section::Top;

    for (line_no, text) in LogicalLines::new(src) {
        let fields = split_fields(line_no, &text)?;
        if fields.is_empty() {
            continue;
        }
        let head = fields[0].to_lowercase();

        // Section-terminating and section-opening cards first.
        match head.as_str() {
            ".subckt" => {
                if !matches!(section, Section::Top) {
                    return Err(ParseError::new(line_no, ".subckt must be at top level"));
                }
                if fields.len() < 2 {
                    return Err(ParseError::new(line_no, ".subckt needs a name"));
                }
                problem.line_stats.netlist_lines += 1;
                let name = fields[1].to_lowercase();
                let ports = fields[2..].iter().map(|s| s.to_lowercase()).collect();
                section = Section::Subckt(Subckt {
                    name,
                    ports,
                    body: Netlist::new(),
                });
                continue;
            }
            ".ends" => {
                problem.line_stats.netlist_lines += 1;
                match std::mem::replace(&mut section, Section::Top) {
                    Section::Subckt(sub) => {
                        if problem.design.is_none() {
                            problem.design = Some(sub.name.clone());
                        }
                        problem.subckts.insert(sub.name.clone(), sub);
                    }
                    _ => return Err(ParseError::new(line_no, ".ends without .subckt")),
                }
                continue;
            }
            ".jig" => {
                if !matches!(section, Section::Top) {
                    return Err(ParseError::new(line_no, ".jig must be at top level"));
                }
                if fields.len() != 2 {
                    return Err(ParseError::new(line_no, ".jig needs exactly a name"));
                }
                problem.line_stats.netlist_lines += 1;
                section = Section::Jig(Jig {
                    name: fields[1].to_lowercase(),
                    netlist: Netlist::new(),
                    analyses: Vec::new(),
                });
                continue;
            }
            ".endjig" => {
                problem.line_stats.netlist_lines += 1;
                match std::mem::replace(&mut section, Section::Top) {
                    Section::Jig(jig) => problem.jigs.push(jig),
                    _ => return Err(ParseError::new(line_no, ".endjig without .jig")),
                }
                continue;
            }
            ".bias" => {
                if !matches!(section, Section::Top) {
                    return Err(ParseError::new(line_no, ".bias must be at top level"));
                }
                problem.line_stats.netlist_lines += 1;
                section = Section::Bias(Netlist::new());
                continue;
            }
            ".endbias" => {
                problem.line_stats.netlist_lines += 1;
                match std::mem::replace(&mut section, Section::Top) {
                    Section::Bias(nl) => problem.bias = nl,
                    _ => return Err(ParseError::new(line_no, ".endbias without .bias")),
                }
                continue;
            }
            _ => {}
        }

        match &mut section {
            Section::Top => {
                parse_top_card(line_no, &head, &fields, &mut problem)?;
            }
            Section::Subckt(sub) => {
                problem.line_stats.netlist_lines += 1;
                parse_netlist_card(line_no, &head, &fields, &mut sub.body)?;
            }
            Section::Jig(jig) => {
                if head == ".pz" {
                    problem.line_stats.synthesis_lines += 1;
                    jig.analyses.push(parse_pz(line_no, &fields)?);
                } else {
                    problem.line_stats.netlist_lines += 1;
                    parse_netlist_card(line_no, &head, &fields, &mut jig.netlist)?;
                }
            }
            Section::Bias(nl) => {
                problem.line_stats.netlist_lines += 1;
                parse_netlist_card(line_no, &head, &fields, nl)?;
            }
        }
    }

    if !matches!(section, Section::Top) {
        return Err(ParseError::new(0, "unterminated section at end of input"));
    }
    Ok(problem)
}

fn parse_top_card(
    line_no: usize,
    head: &str,
    fields: &[String],
    problem: &mut Problem,
) -> Result<(), ParseError> {
    match head {
        ".title" => {
            problem.title = fields[1..].join(" ");
            Ok(())
        }
        ".design" => {
            if fields.len() != 2 {
                return Err(ParseError::new(line_no, ".design needs a subckt name"));
            }
            problem.design = Some(fields[1].to_lowercase());
            problem.line_stats.netlist_lines += 1;
            Ok(())
        }
        ".var" => {
            problem.line_stats.synthesis_lines += 1;
            problem.vars.push(parse_var(line_no, fields)?);
            Ok(())
        }
        ".obj" | ".spec" => {
            problem.line_stats.synthesis_lines += 1;
            let kind = if head == ".obj" {
                SpecKind::Objective
            } else {
                SpecKind::Constraint
            };
            problem.specs.push(parse_goal(line_no, fields, kind)?);
            Ok(())
        }
        ".model" => {
            problem.line_stats.netlist_lines += 1;
            problem.models.push(parse_model(line_no, fields)?);
            Ok(())
        }
        ".region" => {
            problem.line_stats.synthesis_lines += 1;
            if fields.len() != 3 {
                return Err(ParseError::new(line_no, ".region needs: device region"));
            }
            let region = fields[2].to_lowercase();
            if !matches!(region.as_str(), "sat" | "triode" | "off" | "any") {
                return Err(ParseError::new(
                    line_no,
                    format!("unknown region `{region}` (sat|triode|off|any)"),
                ));
            }
            problem.regions.push(RegionReq {
                device: fields[1].to_lowercase(),
                region,
            });
            Ok(())
        }
        _ => Err(ParseError::new(
            line_no,
            format!("unexpected card `{head}` at top level"),
        )),
    }
}

fn parse_var(line_no: usize, fields: &[String]) -> Result<VarDecl, ParseError> {
    if fields.len() < 4 {
        return Err(ParseError::new(
            line_no,
            ".var needs: name min max [log|lin] [cont] [ic=v]",
        ));
    }
    let name = fields[1].to_lowercase();
    let min = parse_number(&fields[2])
        .ok_or_else(|| ParseError::new(line_no, format!("bad min `{}`", fields[2])))?;
    let max = parse_number(&fields[3])
        .ok_or_else(|| ParseError::new(line_no, format!("bad max `{}`", fields[3])))?;
    // `!(min < max)` deliberately rejects NaN bounds too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(min < max) {
        return Err(ParseError::new(
            line_no,
            "variable range must have min < max",
        ));
    }
    let mut decl = VarDecl {
        name,
        min,
        max,
        scale: VarScale::Log,
        continuous: false,
        initial: None,
    };
    for f in &fields[4..] {
        let fl = f.to_lowercase();
        if fl == "log" {
            decl.scale = VarScale::Log;
        } else if fl == "lin" {
            decl.scale = VarScale::Lin;
        } else if fl == "cont" {
            decl.continuous = true;
        } else if let Some(v) = fl.strip_prefix("ic=") {
            decl.initial = Some(
                parse_number(v).ok_or_else(|| ParseError::new(line_no, format!("bad ic `{v}`")))?,
            );
        } else {
            return Err(ParseError::new(line_no, format!("unknown .var flag `{f}`")));
        }
    }
    if decl.scale == VarScale::Log && decl.min <= 0.0 {
        return Err(ParseError::new(
            line_no,
            "log-scaled variable needs positive min (use lin)",
        ));
    }
    Ok(decl)
}

fn parse_goal(line_no: usize, fields: &[String], kind: SpecKind) -> Result<Goal, ParseError> {
    if fields.len() < 5 {
        return Err(ParseError::new(
            line_no,
            "goal needs: name 'expr' good=v bad=v",
        ));
    }
    let name = fields[1].to_lowercase();
    let expr = parse_expr(line_no, &fields[2])?;
    let mut good = None;
    let mut bad = None;
    for f in &fields[3..] {
        let fl = f.to_lowercase();
        if let Some(v) = fl.strip_prefix("good=") {
            good = parse_number(v);
            if good.is_none() {
                return Err(ParseError::new(line_no, format!("bad good value `{v}`")));
            }
        } else if let Some(v) = fl.strip_prefix("bad=") {
            bad = parse_number(v);
            if bad.is_none() {
                return Err(ParseError::new(line_no, format!("bad bad value `{v}`")));
            }
        } else {
            return Err(ParseError::new(
                line_no,
                format!("unknown goal field `{f}`"),
            ));
        }
    }
    let (good, bad) = match (good, bad) {
        (Some(g), Some(b)) if g != b => (g, b),
        (Some(_), Some(_)) => return Err(ParseError::new(line_no, "good and bad must differ")),
        _ => return Err(ParseError::new(line_no, "goal needs good= and bad=")),
    };
    Ok(Goal {
        name,
        expr,
        good,
        bad,
        kind,
    })
}

fn parse_model(line_no: usize, fields: &[String]) -> Result<ModelCard, ParseError> {
    if fields.len() < 3 {
        return Err(ParseError::new(line_no, ".model needs: name kind [k=v …]"));
    }
    let name = fields[1].to_lowercase();
    let kind = fields[2].to_lowercase();
    let mut params = HashMap::new();
    for f in &fields[3..] {
        let (k, v) = f
            .split_once('=')
            .ok_or_else(|| ParseError::new(line_no, format!("bad model param `{f}`")))?;
        let val = parse_number(v)
            .ok_or_else(|| ParseError::new(line_no, format!("bad model value `{v}`")))?;
        params.insert(k.to_lowercase(), val);
    }
    Ok(ModelCard { name, kind, params })
}

fn parse_pz(line_no: usize, fields: &[String]) -> Result<Analysis, ParseError> {
    if fields.len() != 4 {
        return Err(ParseError::new(
            line_no,
            ".pz needs: name v(out[,out-]) source",
        ));
    }
    let name = fields[1].to_lowercase();
    let out = fields[2].to_lowercase();
    let inner = out
        .strip_prefix("v(")
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| ParseError::new(line_no, "output must look like v(node) or v(a,b)"))?;
    let (out_p, out_m) = match inner.split_once(',') {
        Some((p, m)) => (p.trim().to_string(), Some(m.trim().to_string())),
        None => (inner.trim().to_string(), None),
    };
    Ok(Analysis {
        name,
        out_p,
        out_m,
        source: fields[3].to_lowercase(),
    })
}

fn parse_netlist_card(
    line_no: usize,
    head: &str,
    fields: &[String],
    out: &mut Netlist,
) -> Result<(), ParseError> {
    if head.starts_with('.') {
        return Err(ParseError::new(
            line_no,
            format!("card `{head}` not allowed inside a circuit section"),
        ));
    }
    let name = head.to_string();
    // A quoted empty field (`''`) yields an empty head; indexing byte 0
    // would panic, which used to kill the daemon on such a deck.
    let Some(&first) = name.as_bytes().first() else {
        return Err(ParseError::new(
            line_no,
            "empty element name (blank quoted field?)",
        ));
    };
    let lower = |i: usize| -> String { fields[i].to_lowercase() };
    let need = |n: usize, what: &str| -> Result<(), ParseError> {
        if fields.len() < n {
            Err(ParseError::new(line_no, format!("{what}: too few fields")))
        } else {
            Ok(())
        }
    };
    match first {
        b'r' | b'c' | b'l' => {
            need(4, "two-terminal element")?;
            let value = parse_value(line_no, &fields[3])?;
            let kind = match first {
                b'r' => ElementKind::Resistor { value },
                b'c' => ElementKind::Capacitor { value },
                _ => ElementKind::Inductor { value },
            };
            out.elements.push(Element {
                name,
                nodes: vec![lower(1), lower(2)],
                kind,
            });
        }
        b'v' | b'i' => {
            need(4, "independent source")?;
            let mut dc = Expr::Num(0.0);
            let mut ac = 0.0;
            let mut i = 3;
            let mut saw_dc = false;
            while i < fields.len() {
                let f = fields[i].to_lowercase();
                if f == "dc" {
                    i += 1;
                    need(i + 1, "dc value")?;
                    dc = parse_value(line_no, &fields[i])?;
                    saw_dc = true;
                } else if f == "ac" {
                    i += 1;
                    need(i + 1, "ac value")?;
                    ac = parse_number(&fields[i]).ok_or_else(|| {
                        ParseError::new(line_no, format!("bad ac magnitude `{}`", fields[i]))
                    })?;
                } else if !saw_dc {
                    dc = parse_value(line_no, &fields[i])?;
                    saw_dc = true;
                } else {
                    return Err(ParseError::new(
                        line_no,
                        format!("unexpected source field `{}`", fields[i]),
                    ));
                }
                i += 1;
            }
            let kind = if first == b'v' {
                ElementKind::Vsource { dc, ac }
            } else {
                ElementKind::Isource { dc, ac }
            };
            out.elements.push(Element {
                name,
                nodes: vec![lower(1), lower(2)],
                kind,
            });
        }
        b'e' | b'g' => {
            need(6, "controlled source")?;
            let gain = parse_value(line_no, &fields[5])?;
            let kind = if first == b'e' {
                ElementKind::Vcvs {
                    cp: lower(3),
                    cm: lower(4),
                    gain,
                }
            } else {
                ElementKind::Vccs {
                    cp: lower(3),
                    cm: lower(4),
                    gm: gain,
                }
            };
            out.elements.push(Element {
                name,
                nodes: vec![lower(1), lower(2)],
                kind,
            });
        }
        b'm' => {
            need(6, "mosfet")?;
            let model = lower(5);
            let mut w = None;
            let mut l = None;
            for f in &fields[6..] {
                let fl = f.to_lowercase();
                if let Some(v) = fl.strip_prefix("w=") {
                    w = Some(parse_value(line_no, v)?);
                } else if let Some(v) = fl.strip_prefix("l=") {
                    l = Some(parse_value(line_no, v)?);
                } else {
                    return Err(ParseError::new(
                        line_no,
                        format!("unknown mosfet field `{f}`"),
                    ));
                }
            }
            let (w, l) = match (w, l) {
                (Some(w), Some(l)) => (w, l),
                _ => return Err(ParseError::new(line_no, "mosfet needs w= and l=")),
            };
            out.elements.push(Element {
                name,
                nodes: vec![lower(1), lower(2), lower(3), lower(4)],
                kind: ElementKind::Mosfet { model, w, l },
            });
        }
        b'q' => {
            need(5, "bjt")?;
            let model = lower(4);
            let mut area = Expr::Num(1.0);
            for f in &fields[5..] {
                let fl = f.to_lowercase();
                if let Some(v) = fl.strip_prefix("area=") {
                    area = parse_value(line_no, v)?;
                } else {
                    return Err(ParseError::new(line_no, format!("unknown bjt field `{f}`")));
                }
            }
            out.elements.push(Element {
                name,
                nodes: vec![lower(1), lower(2), lower(3)],
                kind: ElementKind::Bjt { model, area },
            });
        }
        b'd' => {
            need(4, "diode")?;
            let model = lower(3);
            let mut area = Expr::Num(1.0);
            for f in &fields[4..] {
                let fl = f.to_lowercase();
                if let Some(v) = fl.strip_prefix("area=") {
                    area = parse_value(line_no, v)?;
                } else {
                    return Err(ParseError::new(
                        line_no,
                        format!("unknown diode field `{f}`"),
                    ));
                }
            }
            out.elements.push(Element {
                name,
                nodes: vec![lower(1), lower(2)],
                kind: ElementKind::Diode { model, area },
            });
        }
        b'x' => {
            need(3, "subckt instance")?;
            let subckt = lower(fields.len() - 1);
            let nodes = fields[1..fields.len() - 1]
                .iter()
                .map(|s| s.to_lowercase())
                .collect();
            out.instances.push(Instance {
                name,
                nodes,
                subckt,
            });
        }
        _ => {
            return Err(ParseError::new(
                line_no,
                format!("unknown element type `{name}`"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Section IV differential-amplifier description, transcribed in
    /// this crate's dialect.
    const SECTION_IV: &str = "\
.title simple differential amplifier (paper section iv)
.var W 1u 1000u log
.var L 0.8u 100u log
.var I 1u 10m log
.var Vb 0.5 4.5 lin cont

.model nmos_m nmos level=1 vto=0.7 kp=100u
.model pmos_m pmos level=1 vto=-0.8 kp=40u

.subckt amp in+ in- out+ out- nvdd nvss
m1 out- in+ a nvss nmos_m w='W' l='L'
m2 out+ in- a nvss nmos_m w='W' l='L'
m3 out- bias nvdd nvdd pmos_m w=20u l=2u
m4 out+ bias nvdd nvdd pmos_m w=20u l=2u
vbias bias 0 'Vb'
ib a nvss 'I'
.ends

.jig acjig
xamp in+ in- out+ out- nvdd nvss amp
vdd nvdd 0 5
vss nvss 0 0
vin in+ 0 0 ac 1
ein in- 0 0 in+ 1
cl1 out+ 0 1p
cl2 out- 0 1p
.pz tf v(out+) vin
.endjig

.bias
xamp in+ in- out+ out- nvdd nvss amp
vdd nvdd 0 5
vss nvss 0 0
vcm in+ 0 2.5
vcm2 in- 0 2.5
.endbias

.obj adm 'db(dc_gain(tf))' good=60 bad=20
.spec ugf 'ugf(tf)' good=1Meg bad=10k
.spec sr 'I/(2*(1p+xamp.m1.cd+xamp.m3.cd))' good=1Meg bad=10k
";

    #[test]
    fn parses_section_iv_example() {
        let p = parse_problem(SECTION_IV).unwrap();
        assert_eq!(p.title, "simple differential amplifier (paper section iv)");
        assert_eq!(p.vars.len(), 4);
        assert_eq!(p.design.as_deref(), Some("amp"));
        assert_eq!(p.jigs.len(), 1);
        assert_eq!(p.specs.len(), 3);
        assert_eq!(p.models.len(), 2);
        assert!(!p.bias.is_empty());

        let w = p.var("w").unwrap();
        assert_eq!(w.min, 1e-6);
        assert_eq!(w.max, 1e-3);
        assert_eq!(w.scale, VarScale::Log);
        assert!(!w.continuous);
        let vb = p.var("vb").unwrap();
        assert!(vb.continuous);
        assert_eq!(vb.scale, VarScale::Lin);

        let amp = &p.subckts["amp"];
        assert_eq!(amp.ports.len(), 6);
        assert_eq!(amp.body.elements.len(), 6);
        match &amp.body.elements[0].kind {
            ElementKind::Mosfet { model, w, l } => {
                assert_eq!(model, "nmos_m");
                assert_eq!(w, &Expr::var("w"));
                assert_eq!(l, &Expr::var("l"));
            }
            other => panic!("expected mosfet, got {other:?}"),
        }

        let jig = &p.jigs[0];
        assert_eq!(jig.analyses.len(), 1);
        assert_eq!(jig.analyses[0].out_p, "out+");
        assert_eq!(jig.analyses[0].source, "vin");
        assert_eq!(jig.netlist.instances.len(), 1);
        assert_eq!(jig.netlist.instances[0].subckt, "amp");

        // Goal semantics: adm maximize, both kinds present.
        let adm = &p.specs[0];
        assert_eq!(adm.kind, SpecKind::Objective);
        assert!(adm.maximize());
        assert_eq!(p.objectives().count(), 1);
        assert_eq!(p.constraints().count(), 2);
    }

    #[test]
    fn line_stats_split_matches_categories() {
        let p = parse_problem(SECTION_IV).unwrap();
        // synthesis lines: 4 .var + 1 .pz + 3 goals = 8
        assert_eq!(p.line_stats.synthesis_lines, 8);
        // netlist lines: everything else except .title
        assert!(p.line_stats.netlist_lines >= 20);
    }

    #[test]
    fn jig_flattens_against_library() {
        let p = parse_problem(SECTION_IV).unwrap();
        let flat = p.jigs[0].netlist.flatten(&p.subckts).unwrap();
        // 6 amp elements + 6 jig elements
        assert_eq!(flat.elements.len(), 12);
        assert!(flat.elements.iter().any(|e| e.name == "xamp.m1"));
        // internal node `a` renamed, port node `in+` preserved
        let m1 = flat.elements.iter().find(|e| e.name == "xamp.m1").unwrap();
        assert_eq!(m1.nodes, vec!["out-", "in+", "xamp.a", "nvss"]);
    }

    #[test]
    fn differential_pz_output() {
        let a = parse_pz(
            1,
            &[
                ".pz".into(),
                "tf".into(),
                "v(out+,out-)".into(),
                "vin".into(),
            ],
        )
        .unwrap();
        assert_eq!(a.out_p, "out+");
        assert_eq!(a.out_m.as_deref(), Some("out-"));
    }

    #[test]
    fn source_card_variants() {
        let mut nl = Netlist::new();
        parse_netlist_card(1, "v1", &fields("v1 a 0 5"), &mut nl).unwrap();
        parse_netlist_card(2, "v2", &fields("v2 a 0 dc 3 ac 1"), &mut nl).unwrap();
        parse_netlist_card(3, "i1", &fields("i1 a 0 10u"), &mut nl).unwrap();
        match &nl.elements[1].kind {
            ElementKind::Vsource { dc, ac } => {
                assert_eq!(dc, &Expr::Num(3.0));
                assert_eq!(*ac, 1.0);
            }
            _ => panic!(),
        }
        match &nl.elements[2].kind {
            ElementKind::Isource {
                dc: Expr::Num(v), ..
            } => {
                assert!((v - 1e-5).abs() < 1e-18)
            }
            _ => panic!(),
        }
    }

    fn fields(s: &str) -> Vec<String> {
        split_fields(1, s).unwrap()
    }

    #[test]
    fn errors_have_line_numbers() {
        let src = ".subckt a x\nbogus 1 2 3\n.ends\n";
        let err = parse_problem(src).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unterminated_section_is_error() {
        assert!(parse_problem(".subckt a x\nr1 x 0 1k\n").is_err());
        assert!(parse_problem(".jig j\n").is_err());
    }

    #[test]
    fn mismatched_section_ends() {
        assert!(parse_problem(".ends\n").is_err());
        assert!(parse_problem(".endjig\n").is_err());
        assert!(parse_problem(".endbias\n").is_err());
    }

    #[test]
    fn bad_var_cards() {
        assert!(parse_problem(".var w 1u\n").is_err());
        assert!(parse_problem(".var w 2u 1u\n").is_err()); // min >= max
        assert!(parse_problem(".var w -1 1 log\n").is_err()); // log with min<=0
        assert!(parse_problem(".var w 1u 10u bogus\n").is_err());
    }

    #[test]
    fn var_with_ic_and_lin() {
        let p = parse_problem(".var vb -2 2 lin cont ic=0.5\n").unwrap();
        let v = p.var("vb").unwrap();
        assert_eq!(v.initial, Some(0.5));
        assert!(v.continuous);
    }

    #[test]
    fn bad_goal_cards() {
        assert!(parse_problem(".obj a 'x' good=1\n").is_err());
        assert!(parse_problem(".obj a 'x' good=1 bad=1\n").is_err());
        assert!(parse_problem(".spec a 'x' good=1 bad=2 extra=3\n").is_err());
    }

    #[test]
    fn diode_card() {
        let mut nl = Netlist::new();
        parse_netlist_card(1, "d1", &fields("d1 a k dmod area=2"), &mut nl).unwrap();
        match &nl.elements[0].kind {
            ElementKind::Diode { model, area } => {
                assert_eq!(model, "dmod");
                assert_eq!(area, &Expr::Num(2.0));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_netlist_card(2, "d2", &fields("d2 a k dmod bogus=1"), &mut nl).is_err());
    }

    #[test]
    fn region_card() {
        let p = parse_problem(
            ".region xamp.m5 triode
.region xamp.m9 any
",
        )
        .unwrap();
        assert_eq!(p.regions.len(), 2);
        assert_eq!(p.regions[0].device, "xamp.m5");
        assert_eq!(p.regions[0].region, "triode");
        assert!(parse_problem(
            ".region m1 bogus
"
        )
        .is_err());
        assert!(parse_problem(
            ".region m1
"
        )
        .is_err());
    }

    #[test]
    fn model_card_params() {
        let p = parse_problem(".model nfet nmos level=3 vto=0.75 kp=55u tox=40n\n").unwrap();
        let m = p.model("nfet").unwrap();
        assert_eq!(m.kind, "nmos");
        assert_eq!(m.params["level"], 3.0);
        assert!((m.params["kp"] - 5.5e-5).abs() < 1e-18);
    }

    #[test]
    fn continuation_lines_in_cards() {
        let src = ".model nfet nmos level=1\n+ vto=0.7\n+ kp=100u\n";
        let p = parse_problem(src).unwrap();
        assert_eq!(p.model("nfet").unwrap().params.len(), 3);
    }
}
