//! Structural netlist model: elements, subcircuits, and hierarchical
//! flattening.

use crate::{Expr, ParseError};
use std::collections::HashMap;
use std::fmt;

/// The ground node name after canonicalization.
pub const GROUND: &str = "0";

/// The kind (and kind-specific data) of a primitive element.
#[derive(Debug, Clone, PartialEq)]
pub enum ElementKind {
    /// Resistor: value in ohms.
    Resistor { value: Expr },
    /// Capacitor: value in farads.
    Capacitor { value: Expr },
    /// Inductor: value in henries.
    Inductor { value: Expr },
    /// Independent voltage source with dc value and ac magnitude.
    Vsource { dc: Expr, ac: f64 },
    /// Independent current source (flows from node 1 through the source
    /// to node 2, SPICE convention) with dc value and ac magnitude.
    Isource { dc: Expr, ac: f64 },
    /// Voltage-controlled voltage source: `gain · v(cp, cm)`.
    Vcvs { cp: String, cm: String, gain: Expr },
    /// Voltage-controlled current source: `gm · v(cp, cm)`.
    Vccs { cp: String, cm: String, gm: Expr },
    /// MOS transistor: nodes are `[d, g, s, b]`.
    Mosfet { model: String, w: Expr, l: Expr },
    /// Bipolar transistor: nodes are `[c, b, e]`.
    Bjt { model: String, area: Expr },
    /// Junction diode: nodes are `[anode, cathode]`.
    Diode { model: String, area: Expr },
}

impl ElementKind {
    /// A short human-readable label for error messages.
    pub fn label(&self) -> &'static str {
        match self {
            ElementKind::Resistor { .. } => "resistor",
            ElementKind::Capacitor { .. } => "capacitor",
            ElementKind::Inductor { .. } => "inductor",
            ElementKind::Vsource { .. } => "vsource",
            ElementKind::Isource { .. } => "isource",
            ElementKind::Vcvs { .. } => "vcvs",
            ElementKind::Vccs { .. } => "vccs",
            ElementKind::Mosfet { .. } => "mosfet",
            ElementKind::Bjt { .. } => "bjt",
            ElementKind::Diode { .. } => "diode",
        }
    }
}

/// A primitive circuit element.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Instance name (lowercase), e.g. `m1`.
    pub name: String,
    /// Connection nodes in card order.
    pub nodes: Vec<String>,
    /// Kind-specific data.
    pub kind: ElementKind,
}

/// A subcircuit instantiation (`x` card).
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name, e.g. `xamp`.
    pub name: String,
    /// Actual nodes bound to the subcircuit ports.
    pub nodes: Vec<String>,
    /// Name of the subcircuit definition.
    pub subckt: String,
}

/// A subcircuit definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Subckt {
    /// Definition name (lowercase).
    pub name: String,
    /// Formal port node names.
    pub ports: Vec<String>,
    /// Body netlist (may itself contain instances).
    pub body: Netlist,
}

/// A flat or hierarchical netlist: primitive elements plus subcircuit
/// instances.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    /// Primitive elements in declaration order.
    pub elements: Vec<Element>,
    /// Subcircuit instances in declaration order.
    pub instances: Vec<Instance>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Returns true when there are no elements and no instances.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty() && self.instances.is_empty()
    }

    /// All distinct node names referenced by primitive elements
    /// (flattened netlists only — instances are ignored), ground
    /// included, in first-seen order.
    pub fn node_names(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for e in &self.elements {
            for n in &e.nodes {
                if !seen.contains(n) {
                    seen.push(n.clone());
                }
            }
            // Controlling nodes of controlled sources count too.
            match &e.kind {
                ElementKind::Vcvs { cp, cm, .. } | ElementKind::Vccs { cp, cm, .. } => {
                    for n in [cp, cm] {
                        if !seen.contains(n) {
                            seen.push(n.clone());
                        }
                    }
                }
                _ => {}
            }
        }
        seen
    }

    /// Flattens this netlist against a library of subcircuit
    /// definitions. Instance-internal nodes and element names are
    /// prefixed with `instance.`; port nodes are substituted with the
    /// actual nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] for unknown subcircuits or port-count
    /// mismatches.
    pub fn flatten(&self, lib: &HashMap<String, Subckt>) -> Result<Netlist, ParseError> {
        let mut out = Netlist::new();
        self.flatten_into(lib, "", &HashMap::new(), &mut out, 0)?;
        Ok(out)
    }

    fn flatten_into(
        &self,
        lib: &HashMap<String, Subckt>,
        prefix: &str,
        port_map: &HashMap<String, String>,
        out: &mut Netlist,
        depth: usize,
    ) -> Result<(), ParseError> {
        if depth > 32 {
            return Err(ParseError::new(0, "subcircuit nesting too deep (cycle?)"));
        }
        let map_node = |n: &str| -> String {
            if n == GROUND {
                return GROUND.to_string();
            }
            if let Some(actual) = port_map.get(n) {
                return actual.clone();
            }
            if prefix.is_empty() {
                n.to_string()
            } else {
                format!("{prefix}{n}")
            }
        };
        for e in &self.elements {
            let mut e2 = e.clone();
            e2.name = format!("{prefix}{}", e.name);
            e2.nodes = e.nodes.iter().map(|n| map_node(n)).collect();
            match &mut e2.kind {
                ElementKind::Vcvs { cp, cm, .. } | ElementKind::Vccs { cp, cm, .. } => {
                    *cp = map_node(cp);
                    *cm = map_node(cm);
                }
                _ => {}
            }
            out.elements.push(e2);
        }
        for inst in &self.instances {
            let def = lib.get(&inst.subckt).ok_or_else(|| {
                ParseError::new(0, format!("unknown subcircuit `{}`", inst.subckt))
            })?;
            if def.ports.len() != inst.nodes.len() {
                return Err(ParseError::new(
                    0,
                    format!(
                        "instance `{}` connects {} nodes but `{}` has {} ports",
                        inst.name,
                        inst.nodes.len(),
                        def.name,
                        def.ports.len()
                    ),
                ));
            }
            let mut inner_map = HashMap::new();
            for (formal, actual) in def.ports.iter().zip(inst.nodes.iter()) {
                inner_map.insert(formal.clone(), map_node(actual));
            }
            let inner_prefix = format!("{prefix}{}.", inst.name);
            def.body
                .flatten_into(lib, &inner_prefix, &inner_map, out, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.elements {
            writeln!(f, "{} {} [{}]", e.name, e.nodes.join(" "), e.kind.label())?;
        }
        for i in &self.instances {
            writeln!(f, "{} {} {}", i.name, i.nodes.join(" "), i.subckt)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str, a: &str, b: &str) -> Element {
        Element {
            name: name.into(),
            nodes: vec![a.into(), b.into()],
            kind: ElementKind::Resistor {
                value: Expr::num(1.0),
            },
        }
    }

    #[test]
    fn node_names_in_order_with_controls() {
        let mut n = Netlist::new();
        n.elements.push(r("r1", "a", "b"));
        n.elements.push(Element {
            name: "g1".into(),
            nodes: vec!["b".into(), "0".into()],
            kind: ElementKind::Vccs {
                cp: "c".into(),
                cm: "0".into(),
                gm: Expr::num(1.0),
            },
        });
        assert_eq!(n.node_names(), vec!["a", "b", "0", "c"]);
    }

    #[test]
    fn flatten_renames_internals_and_binds_ports() {
        let mut body = Netlist::new();
        body.elements.push(r("r1", "in", "mid"));
        body.elements.push(r("r2", "mid", "out"));
        let sub = Subckt {
            name: "divider".into(),
            ports: vec!["in".into(), "out".into()],
            body,
        };
        let mut lib = HashMap::new();
        lib.insert("divider".to_string(), sub);

        let mut top = Netlist::new();
        top.instances.push(Instance {
            name: "x1".into(),
            nodes: vec!["a".into(), "0".into()],
            subckt: "divider".into(),
        });
        let flat = top.flatten(&lib).unwrap();
        assert_eq!(flat.elements.len(), 2);
        assert_eq!(flat.elements[0].name, "x1.r1");
        assert_eq!(flat.elements[0].nodes, vec!["a", "x1.mid"]);
        assert_eq!(flat.elements[1].nodes, vec!["x1.mid", "0"]);
    }

    #[test]
    fn flatten_two_levels() {
        let mut inner = Netlist::new();
        inner.elements.push(r("r", "p", "q"));
        let sub_inner = Subckt {
            name: "unit".into(),
            ports: vec!["p".into(), "q".into()],
            body: inner,
        };
        let mut mid = Netlist::new();
        mid.instances.push(Instance {
            name: "xu".into(),
            nodes: vec!["t".into(), "internal".into()],
            subckt: "unit".into(),
        });
        let sub_mid = Subckt {
            name: "wrap".into(),
            ports: vec!["t".into()],
            body: mid,
        };
        let mut lib = HashMap::new();
        lib.insert("unit".to_string(), sub_inner);
        lib.insert("wrap".to_string(), sub_mid);

        let mut top = Netlist::new();
        top.instances.push(Instance {
            name: "xw".into(),
            nodes: vec!["n1".into()],
            subckt: "wrap".into(),
        });
        let flat = top.flatten(&lib).unwrap();
        assert_eq!(flat.elements[0].name, "xw.xu.r");
        assert_eq!(flat.elements[0].nodes, vec!["n1", "xw.internal"]);
    }

    #[test]
    fn ground_never_renamed() {
        let mut body = Netlist::new();
        body.elements.push(r("r1", "a", "0"));
        let sub = Subckt {
            name: "s".into(),
            ports: vec!["a".into()],
            body,
        };
        let mut lib = HashMap::new();
        lib.insert("s".to_string(), sub);
        let mut top = Netlist::new();
        top.instances.push(Instance {
            name: "x1".into(),
            nodes: vec!["n".into()],
            subckt: "s".into(),
        });
        let flat = top.flatten(&lib).unwrap();
        assert_eq!(flat.elements[0].nodes, vec!["n", "0"]);
    }

    #[test]
    fn flatten_of_flat_netlist_is_identity() {
        use proptest::prelude::*;
        let mut runner = proptest::test_runner::TestRunner::default();
        let node = proptest::sample::select(vec!["a", "b", "c", "0", "n1", "n2"]);
        let strat = proptest::collection::vec((node.clone(), node), 1..12);
        runner
            .run(&strat, |pairs| {
                let mut n = Netlist::new();
                for (i, (p, m)) in pairs.iter().enumerate() {
                    n.elements.push(r(&format!("r{i}"), p, m));
                }
                // A flat netlist (no instances) flattens to itself.
                let flat = n.flatten(&HashMap::new()).expect("flat");
                prop_assert_eq!(&flat, &n);
                // And flattening is idempotent.
                let again = flat.flatten(&HashMap::new()).expect("flat");
                prop_assert_eq!(&again, &flat);
                // Display never panics and names every element.
                let text = format!("{flat}");
                prop_assert_eq!(text.lines().count(), pairs.len());
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn unknown_subckt_errors() {
        let mut top = Netlist::new();
        top.instances.push(Instance {
            name: "x1".into(),
            nodes: vec!["n".into()],
            subckt: "missing".into(),
        });
        assert!(top.flatten(&HashMap::new()).is_err());
    }

    #[test]
    fn port_count_mismatch_errors() {
        let sub = Subckt {
            name: "s".into(),
            ports: vec!["a".into(), "b".into()],
            body: Netlist::new(),
        };
        let mut lib = HashMap::new();
        lib.insert("s".to_string(), sub);
        let mut top = Netlist::new();
        top.instances.push(Instance {
            name: "x1".into(),
            nodes: vec!["n".into()],
            subckt: "s".into(),
        });
        assert!(top.flatten(&lib).is_err());
    }
}
