//! The expression language used for element values, objectives, and
//! specifications.
//!
//! Grammar (precedence climbing):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := factor (('*' | '/') factor)*
//! factor  := unary ('^' unary)*
//! unary   := '-' unary | primary
//! primary := number | ident ('(' args ')')? | path | '(' expr ')'
//! path    := ident ('.' ident)+
//! ```
//!
//! Identifiers resolve through an [`EvalContext`]: plain names are design
//! variables or transfer-function handles, dotted paths reach into device
//! operating-point data (`xamp.m1.cd`), and calls dispatch measurement
//! functions (`dc_gain(tf)`, `ugf(tf)`, `min(a,b)`, …).

use crate::lexer::parse_number;
use crate::ParseError;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition `+`.
    Add,
    /// Subtraction `-`.
    Sub,
    /// Multiplication `*`.
    Mul,
    /// Division `/`.
    Div,
    /// Power `^`.
    Pow,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
        };
        f.write_str(s)
    }
}

/// An expression AST node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal number (after SPICE suffix scaling).
    Num(f64),
    /// A plain identifier: design variable or analysis handle.
    Var(String),
    /// A dotted path such as `xamp.m1.cd`.
    Path(Vec<String>),
    /// A function call.
    Call(String, Vec<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a constant.
    pub fn num(v: f64) -> Expr {
        Expr::Num(v)
    }

    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Collects every plain identifier referenced by the expression
    /// (variables and analysis handles, not path heads or call names).
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Var(name) = e {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Collects every function-call name in the expression.
    pub fn calls(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Call(name, _) = e {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Collects every dotted path in the expression.
    pub fn paths(&self) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Path(p) = e {
                if !out.contains(p) {
                    out.push(p.clone());
                }
            }
        });
        out
    }

    fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Bin(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Neg(a) => a.walk(f),
            Expr::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Evaluates the expression against `ctx`.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from unresolved names, unknown functions,
    /// or non-finite intermediate results.
    pub fn eval(&self, ctx: &dyn EvalContext) -> Result<f64, EvalError> {
        let v = match self {
            Expr::Num(v) => *v,
            Expr::Var(name) => ctx.lookup_var(name)?,
            Expr::Path(path) => ctx.lookup_path(path)?,
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                // Functions may need unevaluated handles (e.g. dc_gain(tf));
                // the context receives both the raw argument expressions and
                // eagerly evaluated values where possible.
                for a in args {
                    vals.push(a.eval(ctx).ok());
                }
                ctx.call(name, args, &vals)?
            }
            Expr::Bin(op, a, b) => {
                let x = a.eval(ctx)?;
                let y = b.eval(ctx)?;
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Pow => x.powf(y),
                }
            }
            Expr::Neg(a) => -a.eval(ctx)?,
        };
        if v.is_nan() {
            return Err(EvalError::NotFinite(self.to_string()));
        }
        Ok(v)
    }

    /// Evaluates against a plain variable map with the standard math
    /// functions; convenient for element values.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Expr::eval`].
    pub fn eval_with_vars(&self, vars: &HashMap<String, f64>) -> Result<f64, EvalError> {
        self.eval(&MapContext::new(vars))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(v) => write!(f, "{v}"),
            Expr::Var(n) => f.write_str(n),
            Expr::Path(p) => f.write_str(&p.join(".")),
            Expr::Call(n, args) => {
                write!(f, "{n}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Bin(op, a, b) => write!(f, "({a}{op}{b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

/// Error produced when evaluating an [`Expr`].
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A plain identifier could not be resolved.
    UnknownVar(String),
    /// A dotted path could not be resolved.
    UnknownPath(String),
    /// A function name is not known to the context.
    UnknownFunction(String),
    /// A function was called with a bad argument list.
    BadArguments(String),
    /// Evaluation produced NaN.
    NotFinite(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVar(n) => write!(f, "unknown variable `{n}`"),
            EvalError::UnknownPath(p) => write!(f, "unknown path `{p}`"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            EvalError::BadArguments(n) => write!(f, "bad arguments to `{n}`"),
            EvalError::NotFinite(e) => write!(f, "expression `{e}` is not finite"),
        }
    }
}

impl Error for EvalError {}

/// Name-resolution environment for expression evaluation.
///
/// The ASTRX compiler implements this against the live circuit state so
/// that specifications can reference AWE measurements and device
/// operating-point quantities.
pub trait EvalContext {
    /// Resolves a plain identifier.
    ///
    /// # Errors
    ///
    /// [`EvalError::UnknownVar`] if the name is not known.
    fn lookup_var(&self, name: &str) -> Result<f64, EvalError>;

    /// Resolves a dotted path.
    ///
    /// # Errors
    ///
    /// [`EvalError::UnknownPath`] if the path is not known.
    fn lookup_path(&self, path: &[String]) -> Result<f64, EvalError> {
        Err(EvalError::UnknownPath(path.join(".")))
    }

    /// Dispatches a function call. `args` are the raw argument
    /// expressions; `values` are their eagerly evaluated results (or
    /// `None` where evaluation failed, e.g. a transfer-function handle).
    ///
    /// # Errors
    ///
    /// [`EvalError::UnknownFunction`] / [`EvalError::BadArguments`].
    fn call(&self, name: &str, args: &[Expr], values: &[Option<f64>]) -> Result<f64, EvalError> {
        builtin_call(name, args, values)
    }
}

/// Dispatches the context-independent math builtins: `min`, `max`, `abs`,
/// `sqrt`, `log10`, `ln`, `exp`, `db` (20·log10|x|), `par` (parallel
/// resistance).
///
/// # Errors
///
/// [`EvalError::UnknownFunction`] for other names,
/// [`EvalError::BadArguments`] for arity mismatches.
pub fn builtin_call(name: &str, _args: &[Expr], values: &[Option<f64>]) -> Result<f64, EvalError> {
    let need = |n: usize| -> Result<Vec<f64>, EvalError> {
        if values.len() != n || values.iter().any(|v| v.is_none()) {
            return Err(EvalError::BadArguments(name.to_string()));
        }
        Ok(values.iter().map(|v| v.unwrap()).collect())
    };
    match name {
        "min" => {
            let v = need(2)?;
            Ok(v[0].min(v[1]))
        }
        "max" => {
            let v = need(2)?;
            Ok(v[0].max(v[1]))
        }
        "abs" => Ok(need(1)?[0].abs()),
        "sqrt" => Ok(need(1)?[0].sqrt()),
        "log10" => Ok(need(1)?[0].log10()),
        "ln" => Ok(need(1)?[0].ln()),
        "exp" => Ok(need(1)?[0].exp()),
        "db" => Ok(20.0 * need(1)?[0].abs().log10()),
        "par" => {
            let v = need(2)?;
            Ok(v[0] * v[1] / (v[0] + v[1]))
        }
        _ => Err(EvalError::UnknownFunction(name.to_string())),
    }
}

/// An [`EvalContext`] backed by a plain map plus the math builtins.
#[derive(Debug)]
pub struct MapContext<'a> {
    vars: &'a HashMap<String, f64>,
}

impl<'a> MapContext<'a> {
    /// Wraps a variable map.
    pub fn new(vars: &'a HashMap<String, f64>) -> Self {
        MapContext { vars }
    }
}

impl EvalContext for MapContext<'_> {
    fn lookup_var(&self, name: &str) -> Result<f64, EvalError> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| EvalError::UnknownVar(name.to_string()))
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

pub(crate) struct ExprParser<'a> {
    line: usize,
    src: &'a [u8],
    pos: usize,
}

impl<'a> ExprParser<'a> {
    pub(crate) fn new(line: usize, src: &'a str) -> Self {
        ExprParser {
            line,
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        // Column is the 1-based offset of the failing character within
        // the expression text (for quoted expressions, within the
        // quotes).
        ParseError::at(self.line, self.pos + 1, msg)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    pub(crate) fn parse(mut self) -> Result<Expr, ParseError> {
        let e = self.expr()?;
        self.skip_ws();
        if self.pos != self.src.len() {
            return Err(self.err(format!(
                "trailing characters in expression: `{}`",
                String::from_utf8_lossy(&self.src[self.pos..])
            )));
        }
        Ok(e)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        while let Some(c) = self.peek() {
            let op = match c {
                b'+' => BinOp::Add,
                b'-' => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        while let Some(c) = self.peek() {
            let op = match c {
                b'*' => BinOp::Mul,
                b'/' => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        let base = self.unary()?;
        if self.peek() == Some(b'^') {
            self.bump();
            let exp = self.factor()?; // right associative
            return Ok(Expr::Bin(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(b'-') {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.peek() == Some(b'+') {
            self.bump();
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(b'(') => {
                self.bump();
                let e = self.expr()?;
                if self.peek() != Some(b')') {
                    return Err(self.err("expected `)`"));
                }
                self.bump();
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => self.number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.ident_like(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of expression")),
        }
    }

    fn number(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        let start = self.pos;
        // Consume a number token: digits, dot, exponent, scale suffix
        // letters. Stops at operators and delimiters.
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_alphanumeric() || c == b'.' {
                self.pos += 1;
            } else if (c == b'+' || c == b'-')
                && self.pos > start
                && (self.src[self.pos - 1] == b'e' || self.src[self.pos - 1] == b'E')
            {
                // exponent sign
                self.pos += 1;
            } else {
                break;
            }
        }
        let tok = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        parse_number(tok)
            .map(Expr::Num)
            .ok_or_else(|| self.err(format!("invalid number `{tok}`")))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).to_lowercase())
    }

    fn ident_like(&mut self) -> Result<Expr, ParseError> {
        let first = self.ident()?;
        // Dotted path?
        if self.src.get(self.pos) == Some(&b'.') {
            let mut path = vec![first];
            while self.src.get(self.pos) == Some(&b'.') {
                self.pos += 1;
                path.push(self.ident()?);
            }
            return Ok(Expr::Path(path));
        }
        // Call?
        if self.peek() == Some(b'(') {
            self.bump();
            let mut args = Vec::new();
            if self.peek() != Some(b')') {
                loop {
                    args.push(self.expr()?);
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b')') => break,
                        _ => return Err(self.err("expected `,` or `)` in call")),
                    }
                }
            }
            self.bump(); // ')'
            return Ok(Expr::Call(first, args));
        }
        Ok(Expr::Var(first))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use proptest::prelude::*;

    fn eval(src: &str, vars: &[(&str, f64)]) -> f64 {
        let map: HashMap<String, f64> = vars.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        parse_expr(1, src).unwrap().eval_with_vars(&map).unwrap()
    }

    #[test]
    fn precedence_and_parens() {
        assert_eq!(eval("1+2*3", &[]), 7.0);
        assert_eq!(eval("(1+2)*3", &[]), 9.0);
        assert_eq!(eval("2^3^2", &[]), 512.0); // right assoc
        assert_eq!(eval("-2^2", &[]), 4.0); // (-2)^2 with unary binding tighter
        assert_eq!(eval("10-4-3", &[]), 3.0); // left assoc
        assert_eq!(eval("8/2/2", &[]), 2.0);
    }

    #[test]
    fn spice_numbers_inside_expressions() {
        assert_eq!(eval("1k+1", &[]), 1001.0);
        assert_eq!(eval("2*0.5u", &[]), 1e-6);
        assert_eq!(eval("1Meg/1k", &[]), 1000.0);
        assert_eq!(eval("1e-3*2", &[]), 2e-3);
    }

    #[test]
    fn variables_and_case_folding() {
        assert_eq!(eval("W*L", &[("w", 3.0), ("l", 4.0)]), 12.0);
        assert_eq!(eval("Cl+cl", &[("cl", 1.5)]), 3.0);
    }

    #[test]
    fn builtins() {
        assert_eq!(eval("min(3,5)", &[]), 3.0);
        assert_eq!(eval("max(3,5)", &[]), 5.0);
        assert_eq!(eval("abs(-2)", &[]), 2.0);
        assert_eq!(eval("sqrt(16)", &[]), 4.0);
        assert_eq!(eval("db(100)", &[]), 40.0);
        assert_eq!(eval("par(2k,2k)", &[]), 1000.0);
    }

    #[test]
    fn paper_slew_rate_expression_shape() {
        // SR = I/(2*(Cl+cd)) with paths replaced by vars for this test.
        let v = eval(
            "I/(2*(Cl+cd1+cd3))",
            &[
                ("i", 10e-6),
                ("cl", 1e-12),
                ("cd1", 0.5e-12),
                ("cd3", 0.5e-12),
            ],
        );
        assert!((v - 2.5e6).abs() < 1.0);
    }

    #[test]
    fn paths_are_collected() {
        let e = parse_expr(1, "I/(2*(Cl+xamp.m1.cd+xamp.m3.cd))").unwrap();
        let paths = e.paths();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0], vec!["xamp", "m1", "cd"]);
        let vars = e.variables();
        assert!(vars.contains(&"i".to_string()) && vars.contains(&"cl".to_string()));
    }

    #[test]
    fn calls_are_collected() {
        let e = parse_expr(1, "db(dc_gain(tf))+ugf(tf)").unwrap();
        let mut calls = e.calls();
        calls.sort();
        assert_eq!(calls, vec!["db", "dc_gain", "ugf"]);
    }

    #[test]
    fn unknown_variable_is_error() {
        let e = parse_expr(1, "W*2").unwrap();
        let err = e.eval_with_vars(&HashMap::new()).unwrap_err();
        assert_eq!(err, EvalError::UnknownVar("w".to_string()));
    }

    #[test]
    fn syntax_errors() {
        assert!(parse_expr(1, "1+").is_err());
        assert!(parse_expr(1, "(1").is_err());
        assert!(parse_expr(1, "foo(1,").is_err());
        assert!(parse_expr(1, "1 2").is_err());
        assert!(parse_expr(1, "").is_err());
    }

    #[test]
    fn display_round_trips_semantics() {
        let src = "1+2*w-min(3,4)/2";
        let e = parse_expr(1, src).unwrap();
        let printed = e.to_string();
        let e2 = parse_expr(1, &printed).unwrap();
        let map: HashMap<String, f64> = [("w".to_string(), 5.0)].into();
        assert_eq!(
            e.eval_with_vars(&map).unwrap(),
            e2.eval_with_vars(&map).unwrap()
        );
    }

    proptest! {
        /// Random arithmetic over (+,-,*) evaluates identically after a
        /// print → reparse round trip.
        #[test]
        fn prop_print_parse_round_trip(ops in proptest::collection::vec(0u8..3, 1..20),
                                       nums in proptest::collection::vec(-100i32..100, 2..22)) {
            let mut src = format!("{}", nums[0]);
            for (i, op) in ops.iter().enumerate() {
                if i + 1 >= nums.len() { break; }
                let sym = ["+", "-", "*"][*op as usize];
                // Negative literals need parens after operators.
                let n = nums[i + 1];
                if n < 0 {
                    src.push_str(&format!("{sym}(0{n})"));
                } else {
                    src.push_str(&format!("{sym}{n}"));
                }
            }
            let e = parse_expr(1, &src).unwrap();
            let v1 = e.eval_with_vars(&HashMap::new()).unwrap();
            let e2 = parse_expr(1, &e.to_string()).unwrap();
            let v2 = e2.eval_with_vars(&HashMap::new()).unwrap();
            prop_assert_eq!(v1, v2);
        }
    }
}
