//! The ASTRX synthesis-problem description language.
//!
//! ASTRX/OBLX deliberately borrows SPICE's familiar notation so that the
//! "preparatory effort" for a new circuit is an afternoon, not months of
//! equation derivation. An input file contains:
//!
//! * a `.subckt` defining the **circuit under design** (device geometries
//!   may reference design variables),
//! * one or more **test jigs** (`.jig` … `.endjig`) — stimulus, load and
//!   supply environments in which performance is measured, each with
//!   `.pz` cards naming the transfer functions AWE must extract,
//! * a **bias circuit** (`.bias` … `.endbias`) supplying the large-signal
//!   dc environment,
//! * `.var` cards declaring the independent design variables and their
//!   ranges,
//! * `.obj` / `.spec` cards declaring objectives and constraints as
//!   expressions over measurement functions (`dc_gain(tf)`, `ugf(tf)`,
//!   …), design variables, and device operating-point paths
//!   (`xamp.m1.cd`),
//! * `.model` cards carrying device-model parameter sets.
//!
//! The crate provides the lexer, the expression language, the element and
//! card grammar, hierarchical flattening, and the
//! [`problem::Problem`] container handed to the ASTRX compiler.
//!
//! # Examples
//!
//! ```
//! use oblx_netlist::parse_problem;
//!
//! # fn main() -> Result<(), oblx_netlist::ParseError> {
//! let src = "\
//! * trivial RC jig
//! .subckt cell a b
//! r1 a b 1k
//! .ends
//! .jig main
//! xcell in out cell
//! vin in 0 dc 0 ac 1
//! cl out 0 1p
//! .pz tf v(out) vin
//! .endjig
//! .spec bw 'ugf(tf)' good=1Meg bad=10k
//! ";
//! let problem = parse_problem(src)?;
//! assert_eq!(problem.jigs.len(), 1);
//! assert_eq!(problem.specs.len(), 1);
//! # Ok(())
//! # }
//! ```

mod circuit;
mod error;
mod expr;
mod lexer;
mod parser;
pub mod problem;

pub use circuit::{Element, ElementKind, Instance, Netlist, Subckt};
pub use error::ParseError;
pub use expr::{builtin_call, BinOp, EvalContext, EvalError, Expr, MapContext};
pub use lexer::{parse_number, split_fields, LogicalLines};
pub use parser::{parse_expr, parse_problem};
pub use problem::{
    Analysis, Goal, Jig, LineStats, ModelCard, Problem, RegionReq, SpecKind, VarDecl, VarScale,
};
