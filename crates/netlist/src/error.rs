//! Parse-error type for the description language.

use std::error::Error;
use std::fmt;

/// An error produced while parsing a synthesis-problem description.
///
/// Carries the 1-based source line for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input (0 when not line-specific).
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error attached to `line`.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl Error for ParseError {}
