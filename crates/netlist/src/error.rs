//! Parse-error type for the description language.

use std::error::Error;
use std::fmt;

/// An error produced while parsing a synthesis-problem description.
///
/// Carries the 1-based source line (and, where the failing token is
/// known, the 1-based column) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input (0 when not line-specific).
    pub line: usize,
    /// 1-based column number in the logical line (0 when unknown).
    pub column: usize,
    /// Human-readable message.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error attached to `line` (column unknown).
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column: 0,
            message: message.into(),
        }
    }

    /// Creates a parse error attached to `line` and `column`.
    pub fn at(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }

    /// The 1-based source location, when the error is positioned:
    /// `(line, Some(column))` when the failing token is known, `(line,
    /// None)` when only the line is. Errors not tied to any line (e.g.
    /// "empty input") return `None`. Consumers that surface diagnostics
    /// structurally (the HTTP edge's 4xx JSON) use this instead of
    /// re-parsing the rendered message.
    pub fn location(&self) -> Option<(usize, Option<usize>)> {
        match (self.line, self.column) {
            (0, _) => None,
            (line, 0) => Some((line, None)),
            (line, col) => Some((line, Some(col))),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.column) {
            (0, _) => write!(f, "{}", self.message),
            (line, 0) => write!(f, "line {line}: {}", self.message),
            (line, col) => write!(f, "line {line}, col {col}: {}", self.message),
        }
    }
}

impl Error for ParseError {}
