//! The parsed synthesis-problem container and its card-level data types.

use crate::{Expr, Netlist, Subckt};
use std::collections::HashMap;

/// Scale used when griding / moving a design variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VarScale {
    /// Logarithmically spaced grid — the default for device geometries,
    /// since small size changes matter proportionally less on large
    /// devices (paper §V.A).
    #[default]
    Log,
    /// Linearly spaced grid, for voltages and other signed quantities.
    Lin,
}

/// A designer-declared independent variable (`.var` card).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name (lowercase).
    pub name: String,
    /// Lower bound.
    pub min: f64,
    /// Upper bound.
    pub max: f64,
    /// Grid scale.
    pub scale: VarScale,
    /// Continuous (node-voltage-like) rather than discrete-grid.
    pub continuous: bool,
    /// Optional initial value hint (`ic=`); OBLX is starting-point
    /// independent, so this is only used for reproducible traces.
    pub initial: Option<f64>,
}

impl VarDecl {
    /// Midpoint of the range respecting the scale, used when no `ic` is
    /// given.
    pub fn default_initial(&self) -> f64 {
        match self.scale {
            VarScale::Log if self.min > 0.0 => (self.min * self.max).sqrt(),
            _ => 0.5 * (self.min + self.max),
        }
    }
}

/// Whether a goal is an objective (minimize/maximize) or a constraint
/// (must be at least as good as `good`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// `.obj` — drives the `C^obj` cost component.
    Objective,
    /// `.spec` — drives the `C^perf` penalty component.
    Constraint,
}

/// A performance goal (`.obj` or `.spec` card).
///
/// `good` and `bad` both bound the specification and normalize its
/// contribution to the cost function (paper §IV.A). `good < bad` means
/// smaller-is-better (e.g. power); `good > bad` means larger-is-better
/// (e.g. gain).
#[derive(Debug, Clone, PartialEq)]
pub struct Goal {
    /// Goal name (lowercase), e.g. `adm`.
    pub name: String,
    /// Measurement expression.
    pub expr: Expr,
    /// The value at which the designer is fully satisfied.
    pub good: f64,
    /// The value considered completely unacceptable.
    pub bad: f64,
    /// Objective vs constraint.
    pub kind: SpecKind,
}

impl Goal {
    /// `true` when larger measured values are better.
    pub fn maximize(&self) -> bool {
        self.good > self.bad
    }
}

/// A `.pz` transfer-function request inside a jig: ask AWE for
/// `v(out_p[, out_m]) / source`.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Handle name referenced from goal expressions (e.g. `tf`).
    pub name: String,
    /// Positive output node.
    pub out_p: String,
    /// Optional negative output node (differential measurement).
    pub out_m: Option<String>,
    /// Name of the stimulus source element.
    pub source: String,
}

/// A test jig: the measurement environment (stimulus, loads, supplies)
/// plus the analyses to run in it.
#[derive(Debug, Clone, PartialEq)]
pub struct Jig {
    /// Jig name.
    pub name: String,
    /// Jig netlist (typically instantiates the circuit under design).
    pub netlist: Netlist,
    /// Transfer functions AWE must extract in this jig.
    pub analyses: Vec<Analysis>,
}

/// A `.region` card: the operating region a device is designed for
/// (drives the `C^dev` penalty; devices without a card default to
/// saturation, the analog workhorse region).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionReq {
    /// Flattened device name (e.g. `xamp.m5`).
    pub device: String,
    /// Required region: `sat`, `triode`, `off`, or `any`.
    pub region: String,
}

/// A `.model` card: an opaque, named parameter set interpreted by the
/// encapsulated device evaluators.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCard {
    /// Model name referenced from device cards.
    pub name: String,
    /// Model family, e.g. `nmos`, `pmos`, `npn` plus `level=` parameter.
    pub kind: String,
    /// Raw parameters.
    pub params: HashMap<String, f64>,
}

/// Input-size statistics for Table 1 of the paper: the description
/// splits into SPICE-like netlist/model lines and synthesis-specific
/// lines (`.var`, `.obj`, `.spec`, `.pz`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineStats {
    /// Logical lines describing circuits and models.
    pub netlist_lines: usize,
    /// Logical lines describing variables and specifications.
    pub synthesis_lines: usize,
}

/// A fully parsed synthesis-problem description.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Problem {
    /// Optional `.title`.
    pub title: String,
    /// Design variables.
    pub vars: Vec<VarDecl>,
    /// All subcircuit definitions.
    pub subckts: HashMap<String, Subckt>,
    /// Name of the circuit under design (`.design` card, or the first
    /// subcircuit defined).
    pub design: Option<String>,
    /// Test jigs in declaration order.
    pub jigs: Vec<Jig>,
    /// The bias circuit (`.bias` … `.endbias`).
    pub bias: Netlist,
    /// Objectives and constraints in declaration order.
    pub specs: Vec<Goal>,
    /// Device model cards.
    pub models: Vec<ModelCard>,
    /// Designer-declared operating regions.
    pub regions: Vec<RegionReq>,
    /// Input-size statistics.
    pub line_stats: LineStats,
}

impl Problem {
    /// The goals that are objectives.
    pub fn objectives(&self) -> impl Iterator<Item = &Goal> {
        self.specs.iter().filter(|g| g.kind == SpecKind::Objective)
    }

    /// The goals that are constraints.
    pub fn constraints(&self) -> impl Iterator<Item = &Goal> {
        self.specs.iter().filter(|g| g.kind == SpecKind::Constraint)
    }

    /// Looks up a variable declaration by (lowercase) name.
    pub fn var(&self, name: &str) -> Option<&VarDecl> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Looks up a model card by name.
    pub fn model(&self, name: &str) -> Option<&ModelCard> {
        self.models.iter().find(|m| m.name == name)
    }

    /// Looks up a jig by name.
    pub fn jig(&self, name: &str) -> Option<&Jig> {
        self.jigs.iter().find(|j| j.name == name)
    }
}
