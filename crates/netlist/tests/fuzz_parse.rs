//! Malformed-input fuzzing for the parser: truncated, garbled, and
//! recombined decks must produce `ParseError`s (or parse), never panics.
//!
//! Regression context: a deck line consisting of a quoted empty field
//! (`''`) inside a circuit section produced an empty element name, and
//! the parser indexed its first byte — a panic that propagated through
//! the `oblxd` worker scope and killed the daemon.

use oblx_netlist::parse_problem;
use proptest::prelude::*;

const BASE: &str = "\
.title fuzz base deck
.var W 1u 1000u log
.var Vb 0.5 4.5 lin cont

.model nmos_m nmos level=1 vto=0.7 kp=100u

.subckt amp in out nvdd
m1 out in a nvdd nmos_m w='W' l=2u
r1 a 0 1k
.ends

.jig acjig
xamp in out nvdd amp
vdd nvdd 0 5
vin in 0 0 ac 1
cl out 0 1p
.pz tf v(out) vin
.endjig

.bias
xamp in out nvdd amp
vdd nvdd 0 5
vcm in 0 2.5
.endbias

.obj adm 'db(dc_gain(tf))' good=60 bad=20
.spec ugf 'ugf(tf)' good=1Meg bad=10k
";

/// Line fragments that historically exercised panic-prone paths: quoted
/// empties, bare element letters, dangling cards, expression shrapnel.
fn fragments() -> Vec<&'static str> {
    vec![
        "''",
        "'",
        "x",
        "m",
        "q1",
        "v2 a",
        ".subckt",
        ".ends",
        ".jig j",
        ".endjig",
        ".bias",
        ".endbias",
        ".pz",
        ".var x",
        ".obj o '1+' good=1 bad=0",
        ".spec s '((' good=1 bad=0",
        ".model m",
        ".region m1",
        "r1 a b 'W*'",
        "e1 a b c d '1e'",
        "+ continuation",
        "* comment",
        "m1 d g s b nmos w= l=",
        "i1 a 0 dc",
        "v1 a 0 ac",
        "x1 a b c d e f g h",
        "d1 a 0",
        ".title",
        "''''",
        "r'' a b 1k",
    ]
}

#[test]
fn quoted_empty_field_in_section_is_an_error_not_a_panic() {
    // The exact pre-fix daemon-killer: empty head inside .subckt.
    let deck = ".subckt s a\n''\n.ends\n";
    let err = parse_problem(deck).unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.message.contains("empty element name"), "{err}");

    // Same head inside .jig and .bias sections.
    assert!(parse_problem(".jig j\n''\n.endjig\n").is_err());
    assert!(parse_problem(".bias\n''\n.endbias\n").is_err());
}

#[test]
fn unterminated_quote_reports_line_and_column() {
    let err = parse_problem(".subckt s a\nr1 a b 'W\n.ends\n").unwrap_err();
    assert_eq!(err.line, 2);
    assert_eq!(err.column, 8);
    assert!(err.to_string().contains("line 2, col 8"), "{err}");
}

proptest! {
    /// Truncating a valid deck anywhere must not panic.
    #[test]
    fn prop_truncated_decks_never_panic(cut in 0usize..2048) {
        let chars: Vec<char> = BASE.chars().collect();
        let deck: String = chars[..cut.min(chars.len())].iter().collect();
        let _ = parse_problem(&deck);
    }

    /// Overwriting random characters with arbitrary bytes (printable
    /// ASCII, quotes, controls) must not panic.
    #[test]
    fn prop_garbled_decks_never_panic(
        edits in proptest::collection::vec((0usize..1024, 0u8..128), 1..12),
    ) {
        let mut chars: Vec<char> = BASE.chars().collect();
        for (pos, byte) in edits {
            let i = pos % chars.len();
            chars[i] = byte as char;
        }
        let deck: String = chars.iter().collect();
        let _ = parse_problem(&deck);
    }

    /// Random recombinations of panic-prone line fragments must not
    /// panic, whatever order or nesting they land in.
    #[test]
    fn prop_fragment_soup_never_panics(
        picks in proptest::collection::vec(0usize..29, 1..25),
    ) {
        let frags = fragments();
        let deck: String = picks
            .iter()
            .map(|&i| frags[i % frags.len()])
            .collect::<Vec<_>>()
            .join("\n");
        let _ = parse_problem(&deck);
    }
}
