//! Plain-text table formatting for experiment reports.
//!
//! The examples and benches print the regenerated tables with these
//! helpers so EXPERIMENTS.md rows can be pasted directly.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with blanks).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        while r.len() < self.header.len() {
            r.push(String::new());
        }
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", c, w = width[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Engineering-notation formatting (`3.30 µ`, `45.1 M`, …).
pub fn eng(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    if !value.is_finite() {
        return format!("{value}");
    }
    let mag = value.abs();
    let (scale, suffix) = if mag >= 1e9 {
        (1e9, "G")
    } else if mag >= 1e6 {
        (1e6, "M")
    } else if mag >= 1e3 {
        (1e3, "k")
    } else if mag >= 1.0 {
        (1.0, "")
    } else if mag >= 1e-3 {
        (1e-3, "m")
    } else if mag >= 1e-6 {
        (1e-6, "u")
    } else if mag >= 1e-9 {
        (1e-9, "n")
    } else if mag >= 1e-12 {
        (1e-12, "p")
    } else {
        (1e-15, "f")
    };
    format!("{:.3}{}", value / scale, suffix)
}

/// Formats an `OBLX / simulation` pair the way Tables 2/3 print them.
pub fn pair(pred: f64, sim: f64) -> String {
    format!("{} / {}", eng(pred), eng(sim))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // Columns aligned: `value` column starts at same offset.
        let off0 = lines[0].find("value").unwrap();
        let off2 = lines[2].find('1').unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn engineering_notation() {
        assert_eq!(eng(0.0), "0");
        assert_eq!(eng(1.5e6), "1.500M");
        assert_eq!(eng(50.1e6), "50.100M");
        assert_eq!(eng(-3.3e-6), "-3.300u");
        assert_eq!(eng(2.5), "2.500");
        assert_eq!(eng(720e-6), "720.000u");
        assert_eq!(eng(1e-13), "100.000f");
    }

    #[test]
    fn pair_format() {
        assert_eq!(pair(50.1e6, 50.6e6), "50.100M / 50.600M");
    }
}
