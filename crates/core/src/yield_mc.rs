//! Monte-Carlo mismatch analysis — the *yield* half of the paper's
//! closing future-work item ("the manual designer was willing to trade
//! nominal performance for better estimated yield").
//!
//! Each sample draws an independent threshold-voltage offset for every
//! MOS device (Pelgrom-style mismatch, `σ ∝ 1/√(W·L)`), re-solves the
//! bias, re-measures every goal through the simulator path, and checks
//! the constraints. The pass fraction is the estimated parametric
//! yield.

use crate::astrx::CompiledProblem;
use crate::cost::{normalized, EvalFailure};
use crate::oblx::OblxState;
use crate::verify::verify_design_with;
use oblx_netlist::SpecKind;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Options for the Monte-Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct YieldOptions {
    /// Number of Monte-Carlo samples.
    pub samples: usize,
    /// Pelgrom coefficient `A_vt` (V·m): `σ_vto = A_vt/√(W·L)`.
    /// A 1990s-era 2µ process sits around 20–40 mV·µm.
    pub a_vt: f64,
    /// RNG seed.
    pub seed: u64,
    /// Constraint slack: a goal counts as passed when its normalized
    /// violation `z ≤ slack` (0 = hard pass).
    pub slack: f64,
}

impl Default for YieldOptions {
    fn default() -> Self {
        YieldOptions {
            samples: 100,
            a_vt: 25e-9, // 25 mV·µm in V·m
            seed: 1,
            slack: 0.02,
        }
    }
}

/// Result of a Monte-Carlo yield estimate.
#[derive(Debug, Clone)]
pub struct YieldResult {
    /// Samples attempted.
    pub samples: usize,
    /// Samples where the bias solved and every constraint passed.
    pub passed: usize,
    /// Samples whose bias failed to solve at all (counted as fails).
    pub bias_failures: usize,
    /// Per-constraint failure counts, in goal order (objectives get 0).
    pub failures_by_goal: Vec<(String, usize)>,
}

impl YieldResult {
    /// The estimated parametric yield in `[0, 1]`.
    pub fn yield_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.passed as f64 / self.samples as f64
        }
    }
}

/// Standard-normal sample via Box–Muller (no external distributions
/// crate needed).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Runs the Monte-Carlo mismatch analysis on a synthesized design.
///
/// # Errors
///
/// [`EvalFailure`] only for structural problems (the nominal design
/// cannot even be assembled); per-sample bias failures are *counted*,
/// not propagated — a sample that cannot bias has failed yield.
pub fn yield_mc(
    compiled: &CompiledProblem,
    state: &OblxState,
    opts: &YieldOptions,
) -> Result<YieldResult, EvalFailure> {
    // Nominal must assemble; this also snapshots device geometries for
    // the Pelgrom sigmas.
    let vars = compiled.var_map(&state.user);
    let bias = oblx_mna::SizedCircuit::build(&compiled.bias_netlist, &vars, &compiled.lib)
        .map_err(|e| EvalFailure::Build(e.to_string()))?;
    let geometries: HashMap<String, f64> = bias
        .mosfets
        .iter()
        .map(|m| (m.name.clone(), m.w * m.l))
        .collect();

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut passed = 0usize;
    let mut bias_failures = 0usize;
    let mut failures: Vec<usize> = vec![0; compiled.problem.specs.len()];

    for _ in 0..opts.samples {
        // Draw one vto offset per device name; the same offset applies
        // to that device in the bias circuit and in every jig.
        let offsets: HashMap<String, f64> = geometries
            .iter()
            .map(|(name, wl)| {
                let sigma = opts.a_vt / wl.max(1e-18).sqrt();
                (name.clone(), sigma * normal(&mut rng))
            })
            .collect();
        let perturb = |ckt: &mut oblx_mna::SizedCircuit| {
            for m in ckt.mosfets.iter_mut() {
                if let Some(&dv) = offsets.get(&m.name) {
                    m.model.shift_vto(dv);
                }
            }
        };
        match verify_design_with(compiled, state, &[], &perturb) {
            Ok(v) => {
                let mut ok = true;
                for ((goal, (_, _, sim)), fail_count) in compiled
                    .problem
                    .specs
                    .iter()
                    .zip(v.rows.iter())
                    .zip(failures.iter_mut())
                {
                    if goal.kind == SpecKind::Constraint && normalized(goal, *sim) > opts.slack {
                        ok = false;
                        *fail_count += 1;
                    }
                }
                if ok {
                    passed += 1;
                }
            }
            Err(_) => bias_failures += 1,
        }
    }

    Ok(YieldResult {
        samples: opts.samples,
        passed,
        bias_failures,
        failures_by_goal: compiled
            .problem
            .specs
            .iter()
            .map(|g| g.name.clone())
            .zip(failures)
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite;
    use crate::oblx::{synthesize, SynthesisOptions};

    #[test]
    fn yield_degrades_with_mismatch_sigma() {
        let b = bench_suite::simple_ota();
        let compiled = crate::astrx::compile(b.problem().unwrap()).unwrap();
        // 20k moves: enough budget that convergence does not hinge on
        // one lucky trajectory (the AWE guard rails make the cost
        // surface stricter than when this test was first seeded).
        let result = synthesize(
            &compiled,
            &SynthesisOptions {
                moves_budget: 20_000,
                seed: 1,
                quench_patience: 400,
                ..SynthesisOptions::default()
            },
        )
        .unwrap();

        // Zero mismatch: yield is determined by the nominal margins
        // alone and must be 0% or 100% — and with a generous slack, a
        // converged design passes.
        let clean = yield_mc(
            &compiled,
            &result.state,
            &YieldOptions {
                samples: 8,
                a_vt: 0.0,
                slack: 0.25,
                ..YieldOptions::default()
            },
        )
        .unwrap();
        assert_eq!(clean.passed, 8, "nominal design passes with slack");

        // Brutal mismatch (500 mV·µm): yield must collapse.
        let noisy = yield_mc(
            &compiled,
            &result.state,
            &YieldOptions {
                samples: 16,
                a_vt: 500e-9,
                slack: 0.25,
                ..YieldOptions::default()
            },
        )
        .unwrap();
        assert!(
            noisy.yield_fraction() < clean.yield_fraction(),
            "mismatch must cost yield: {} vs {}",
            noisy.yield_fraction(),
            clean.yield_fraction()
        );
        // The failure table names at least one guilty constraint (or a
        // bias failure occurred).
        let total_failures: usize =
            noisy.failures_by_goal.iter().map(|(_, n)| n).sum::<usize>() + noisy.bias_failures;
        assert!(total_failures > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let b = bench_suite::simple_ota();
        let compiled = crate::astrx::compile(b.problem().unwrap()).unwrap();
        let result = synthesize(
            &compiled,
            &SynthesisOptions {
                moves_budget: 3_000,
                seed: 2,
                quench_patience: 200,
                ..SynthesisOptions::default()
            },
        )
        .unwrap();
        let opts = YieldOptions {
            samples: 6,
            a_vt: 60e-9,
            ..YieldOptions::default()
        };
        let a = yield_mc(&compiled, &result.state, &opts).unwrap();
        let b2 = yield_mc(&compiled, &result.state, &opts).unwrap();
        assert_eq!(a.passed, b2.passed);
    }
}
