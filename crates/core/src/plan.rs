//! Precompiled evaluation plan: the hot path of [`crate::CostEvaluator`].
//!
//! The cold evaluation path ([`crate::CostEvaluator::record`]) rebuilds
//! every circuit from its netlist on every call: node names are
//! re-interned, device models re-looked-up, source/probe name maps
//! reconstructed — all pure string work whose result never changes,
//! because the annealer only ever changes *values*, never *structure*.
//!
//! [`EvalPlan`] performs that structural work exactly once, at
//! [`crate::CostEvaluator`] construction:
//!
//! * circuit skeletons are built for the bias netlist and every jig at
//!   the initial point and kept as templates;
//! * each variable-dependent element value becomes a [`Binding`] — an
//!   expression plus a direct index into the skeleton — constructed by
//!   walking the netlist in exactly the order
//!   [`SizedCircuit::build`] does, so value clamps, validation
//!   messages, and first-error order are reproduced bit for bit;
//! * analysis stimulus vectors and output selectors are resolved to
//!   index form up front.
//!
//! A [`Slot`] is one materialized configuration: the bound circuits,
//! device operating points, KCL residual, and AWE models for a specific
//! `(user, nodes)` vector pair. The evaluator keeps two slots and diffs
//! a proposed state against one of them by bitwise comparison, which
//! enables three progressively cheaper re-evaluation modes: plan-full
//! (all bindings re-applied, everything recomputed), incremental (only
//! dirty bindings, devices, and jigs recomputed), and cached rescore
//! (state seen before; only the weighted sum is recomputed).
//!
//! Invariant: every numeric result produced through a plan is
//! **bit-identical** to the cold path, because both run the same
//! expression evaluator, the same clamps, the same stamp order, and the
//! same AWE entry point. Debug builds verify this on every evaluation.

use crate::astrx::{determined_voltages, CompiledProblem};
use crate::cost::{area_of, power_of, score_with, CostBreakdown, EvalFailure, MeasureSource};
use crate::weights::AdaptiveWeights;
use oblx_awe::{AweEngine, ReducedModel};
use oblx_devices::{BjtLanes, BjtOp, DiodeLanes, DiodeOp, MosLanes, MosOp};
use oblx_linalg::Mat;
use oblx_mna::{LinElement, LinearSystem, OutputSelector, SizedCircuit};
use oblx_netlist::{ElementKind, EvalContext, EvalError, Expr, Netlist};

/// Where a bound value lands in a circuit skeleton. The index is into
/// the skeleton's `linear` / `mosfets` / `bjts` / `diodes` list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BindTarget {
    /// Resistor conductance (`g = 1/value`).
    Resistor(usize),
    /// Capacitor value.
    Capacitor(usize),
    /// Inductor value.
    Inductor(usize),
    /// Voltage-source dc value.
    VsourceDc(usize),
    /// Current-source dc value.
    IsourceDc(usize),
    /// VCVS gain.
    VcvsGain(usize),
    /// VCCS transconductance.
    VccsGm(usize),
    /// MOS gate width.
    MosW(usize),
    /// MOS gate length.
    MosL(usize),
    /// Bipolar emitter-area multiplier.
    BjtArea(usize),
    /// Diode area multiplier.
    DiodeArea(usize),
}

impl BindTarget {
    /// `true` for targets that stamp the linear part of the circuit —
    /// the values that determine the determined-voltage tree and the
    /// cached KCL conductance matrix.
    fn is_linear(self) -> bool {
        !matches!(
            self,
            BindTarget::MosW(_)
                | BindTarget::MosL(_)
                | BindTarget::BjtArea(_)
                | BindTarget::DiodeArea(_)
        )
    }
}

/// One variable-dependent element value: evaluate `expr`, validate and
/// clamp exactly as assembly does, write the result at `target`.
#[derive(Debug, Clone)]
struct Binding {
    /// Element name, for error-message parity with assembly.
    element: String,
    target: BindTarget,
    expr: Expr,
    /// User-variable indices the expression depends on.
    deps: Vec<usize>,
}

impl Binding {
    fn dirty(&self, dirty_user: &[bool]) -> bool {
        self.deps.iter().any(|&d| dirty_user[d])
    }

    /// Evaluates and writes the value, mirroring the validation and
    /// clamping (and their exact error strings) of
    /// [`SizedCircuit::build`].
    fn apply(&self, ckt: &mut SizedCircuit, ctx: &VarsCtx) -> Result<(), EvalFailure> {
        let v = self.expr.eval(ctx).map_err(|source| {
            EvalFailure::Build(format!("element `{}`: {source}", self.element))
        })?;
        match self.target {
            BindTarget::Resistor(i) => {
                if v <= 0.0 {
                    return Err(EvalFailure::Build(format!(
                        "element `{}`: resistance {v} must be positive",
                        self.element
                    )));
                }
                match &mut ckt.linear[i] {
                    LinElement::Resistor { g, .. } => *g = 1.0 / v,
                    _ => unreachable!("binding target is not a resistor"),
                }
            }
            BindTarget::Capacitor(i) => {
                if v < 0.0 {
                    return Err(EvalFailure::Build(format!(
                        "element `{}`: capacitance {v} must be non-negative",
                        self.element
                    )));
                }
                match &mut ckt.linear[i] {
                    LinElement::Capacitor { c, .. } => *c = v,
                    _ => unreachable!("binding target is not a capacitor"),
                }
            }
            BindTarget::Inductor(i) => match &mut ckt.linear[i] {
                LinElement::Inductor { l, .. } => *l = v,
                _ => unreachable!("binding target is not an inductor"),
            },
            BindTarget::VsourceDc(i) => match &mut ckt.linear[i] {
                LinElement::Vsource { dc, .. } => *dc = v,
                _ => unreachable!("binding target is not a vsource"),
            },
            BindTarget::IsourceDc(i) => match &mut ckt.linear[i] {
                LinElement::Isource { dc, .. } => *dc = v,
                _ => unreachable!("binding target is not an isource"),
            },
            BindTarget::VcvsGain(i) => match &mut ckt.linear[i] {
                LinElement::Vcvs { gain, .. } => *gain = v,
                _ => unreachable!("binding target is not a vcvs"),
            },
            BindTarget::VccsGm(i) => match &mut ckt.linear[i] {
                LinElement::Vccs { gm, .. } => *gm = v,
                _ => unreachable!("binding target is not a vccs"),
            },
            BindTarget::MosW(i) => ckt.mosfets[i].w = v.max(1e-9),
            BindTarget::MosL(i) => ckt.mosfets[i].l = v.max(1e-9),
            BindTarget::BjtArea(i) => ckt.bjts[i].area = v.max(1e-3),
            BindTarget::DiodeArea(i) => ckt.diodes[i].area = v.max(1e-3),
        }
        Ok(())
    }
}

/// Alloc-free [`EvalContext`] over the user-variable vector; resolves
/// exactly the names [`CompiledProblem::var_map`] would and nothing
/// else, so element expressions see identical environments on both
/// evaluation paths.
struct VarsCtx<'a> {
    names: &'a [String],
    values: &'a [f64],
}

impl EvalContext for VarsCtx<'_> {
    fn lookup_var(&self, name: &str) -> Result<f64, EvalError> {
        // `rposition`: a duplicated declaration resolves to the last
        // occurrence, matching HashMap insert order in `var_map`.
        self.names
            .iter()
            .rposition(|n| n == name)
            .map(|i| self.values[i])
            .ok_or_else(|| EvalError::UnknownVar(name.to_string()))
    }
}

/// One precompiled `.pz` analysis: stimulus vector and probe resolved
/// to index form.
#[derive(Debug, Clone)]
struct AnalysisPlan {
    /// Analysis handle, for AWE error messages.
    name: String,
    /// Index into the flat model table ([`Slot::models`]).
    flat: usize,
    /// Unit-stimulus input vector.
    b: Vec<f64>,
    out: OutputSelector,
}

/// One precompiled jig: bindings, device back-references into the bias
/// circuit, and analyses.
#[derive(Debug, Clone)]
struct JigPlan {
    bindings: Vec<Binding>,
    /// Bias-mosfet index for each jig mosfet, in jig order.
    mos_bind: Vec<usize>,
    bjt_bind: Vec<usize>,
    diode_bind: Vec<usize>,
    analyses: Vec<AnalysisPlan>,
    ckt_template: SizedCircuit,
    sys_template: LinearSystem,
    /// Analysis-engine template: dense for small jigs, otherwise the
    /// sparse engine with its **symbolic factorization already done** —
    /// slots clone it, so per move only a numeric refactor runs.
    engine_template: AweEngine,
}

impl JigPlan {
    /// `true` when re-evaluating this jig is required for the given
    /// dirty variables / dirty bias devices.
    fn dirty(
        &self,
        dirty_user: &[bool],
        mos_dirty: &[bool],
        bjt_dirty: &[bool],
        diode_dirty: &[bool],
    ) -> bool {
        self.bindings.iter().any(|b| b.dirty(dirty_user))
            || self.mos_bind.iter().any(|&i| mos_dirty[i])
            || self.bjt_bind.iter().any(|&i| bjt_dirty[i])
            || self.diode_bind.iter().any(|&i| diode_dirty[i])
    }
}

/// The precompiled evaluation plan for one [`CompiledProblem`].
#[derive(Debug, Clone)]
pub(crate) struct EvalPlan {
    /// User-variable names, parallel to the value vector.
    user_names: Vec<String>,
    bias_bindings: Vec<Binding>,
    /// Per user variable: `true` when it appears in a *linear* bias
    /// element value. Changing such a variable invalidates the
    /// determined-voltage tree and the cached KCL matrix, forcing a
    /// plan-full update.
    bias_linear_var: Vec<bool>,
    /// Free bias-node indices in node-variable order (structural:
    /// independent of element values).
    free_nodes: Vec<usize>,
    /// Analysis handles, parallel to [`Slot::models`].
    analysis_names: Vec<String>,
    jigs: Vec<JigPlan>,
    bias_template: SizedCircuit,
    awe_order: usize,
    /// Bias-device indices grouped by model card, for SoA batched
    /// evaluation: all devices of one group share identical model
    /// parameters, so one [`oblx_devices::MosModel`] drives the whole
    /// lane batch and its parameter block is read once per group.
    mos_groups: Vec<Vec<usize>>,
    bjt_groups: Vec<Vec<usize>>,
    diode_groups: Vec<Vec<usize>>,
}

impl EvalPlan {
    /// Builds the plan, or `None` when the problem cannot be planned —
    /// initial assembly fails, a jig device lacks a bias counterpart, a
    /// probe or stimulus is unknown — in which case the evaluator falls
    /// back to the cold path, which reproduces the corresponding error
    /// on every evaluation.
    pub(crate) fn build(compiled: &CompiledProblem, awe_order: usize) -> Option<EvalPlan> {
        let user_names: Vec<String> = compiled.user_vars.iter().map(|v| v.name.clone()).collect();
        let initial = compiled.initial_user_values();
        let vars = compiled.var_map(&initial);
        let bias = SizedCircuit::build(&compiled.bias_netlist, &vars, &compiled.lib).ok()?;
        let det = determined_voltages(&bias);
        let free_nodes: Vec<usize> = det
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| i)
            .collect();
        let bias_bindings = bindings_for(&compiled.bias_netlist, &bias, &user_names)?;
        let mut bias_linear_var = vec![false; user_names.len()];
        for b in &bias_bindings {
            if b.target.is_linear() {
                for &d in &b.deps {
                    bias_linear_var[d] = true;
                }
            }
        }

        // Template device operating points at the determined voltages
        // (free nodes at 0 V). Only the *structure* of the template
        // systems matters — every value is overwritten by `restamp`
        // before use.
        let mut x = vec![0.0; bias.dim()];
        for (i, dv) in det.iter().enumerate() {
            if let Some(v) = dv {
                x[i] = *v;
            }
        }
        let volt = |n: Option<usize>| n.map_or(0.0, |i| x[i]);
        let mos_ops: Vec<MosOp> = bias
            .mosfets
            .iter()
            .map(|m| {
                m.model
                    .op(m.w, m.l, volt(m.d), volt(m.g), volt(m.s), volt(m.b))
            })
            .collect();
        let bjt_ops: Vec<BjtOp> = bias
            .bjts
            .iter()
            .map(|q| q.model.op(q.area, volt(q.c), volt(q.b), volt(q.e)))
            .collect();
        let diode_ops: Vec<DiodeOp> = bias
            .diodes
            .iter()
            .map(|d| d.model.op(d.area, volt(d.a) - volt(d.k)))
            .collect();

        let mut jigs: Vec<JigPlan> = Vec::new();
        // Source netlists parallel to `jigs`, for structural dedup.
        let mut jig_sources: Vec<&Netlist> = Vec::new();
        let mut analysis_names = Vec::new();
        for jig in &compiled.jigs {
            // The cold path skips jigs without analyses entirely; so
            // does the plan (their elements are never even evaluated).
            if jig.analyses.is_empty() {
                continue;
            }
            let ckt = SizedCircuit::build(&jig.netlist, &vars, &compiled.lib).ok()?;
            let bindings = bindings_for(&jig.netlist, &ckt, &user_names)?;
            // `rposition`: with duplicate bias device names the cold
            // path's name map keeps the last insertion.
            let mos_bind: Vec<usize> = ckt
                .mosfets
                .iter()
                .map(|m| bias.mosfets.iter().rposition(|bm| bm.name == m.name))
                .collect::<Option<_>>()?;
            let bjt_bind: Vec<usize> = ckt
                .bjts
                .iter()
                .map(|q| bias.bjts.iter().rposition(|bq| bq.name == q.name))
                .collect::<Option<_>>()?;
            let diode_bind: Vec<usize> = ckt
                .diodes
                .iter()
                .map(|d| bias.diodes.iter().rposition(|bd| bd.name == d.name))
                .collect::<Option<_>>()?;
            let jm: Vec<MosOp> = mos_bind.iter().map(|&i| mos_ops[i]).collect();
            let jq: Vec<BjtOp> = bjt_bind.iter().map(|&i| bjt_ops[i]).collect();
            let jd: Vec<DiodeOp> = diode_bind.iter().map(|&i| diode_ops[i]).collect();
            let sys = LinearSystem::from_device_ops(&ckt, &jm, &jq, &jd);
            let mut analyses = Vec::new();
            for a in &jig.analyses {
                let out = sys.output_selector(&a.out_p, a.out_m.as_deref())?;
                let b = sys.input_vector(&a.source)?;
                analyses.push(AnalysisPlan {
                    name: a.name.clone(),
                    flat: analysis_names.len(),
                    b,
                    out,
                });
                analysis_names.push(a.name.clone());
            }
            // Structural dedup: jigs that differ only in which source
            // carries the ac excitation (the gain / PSRR⁺ / PSRR⁻ trio
            // of one amplifier) stamp bit-identical G/C systems, so one
            // restamp and one factorization per evaluation serves all
            // their analyses. The stimulus vectors and probes above
            // were built from this jig's own system; node numbering is
            // identical across such jigs, so they read correctly
            // against the canonical one.
            if let Some(k) = jig_sources
                .iter()
                .position(|n| same_system(n, &jig.netlist))
            {
                jigs[k].analyses.extend(analyses);
            } else {
                jig_sources.push(&jig.netlist);
                let engine_template = AweEngine::for_system(&sys);
                jigs.push(JigPlan {
                    bindings,
                    mos_bind,
                    bjt_bind,
                    diode_bind,
                    analyses,
                    ckt_template: ckt,
                    sys_template: sys,
                    engine_template,
                });
            }
        }

        let mos_groups = group_by_model(bias.mosfets.iter().map(|m| m.model.name()));
        let bjt_groups = group_by_model(bias.bjts.iter().map(|q| q.model.name()));
        let diode_groups = group_by_model(bias.diodes.iter().map(|d| d.model.name()));

        Some(EvalPlan {
            user_names,
            bias_bindings,
            bias_linear_var,
            free_nodes,
            analysis_names,
            jigs,
            bias_template: bias,
            awe_order,
            mos_groups,
            bjt_groups,
            diode_groups,
        })
    }

    /// User-variable count (for the caller's length assertion).
    pub(crate) fn user_len(&self) -> usize {
        self.user_names.len()
    }

    /// `true` when every changed user variable (bitwise, `slot_user`
    /// vs. `user`) avoids the linear bias elements — the precondition
    /// for an incremental update against that slot.
    pub(crate) fn incremental_ok(&self, slot_user: &[f64], user: &[f64]) -> bool {
        slot_user.len() == user.len()
            && slot_user
                .iter()
                .zip(user)
                .enumerate()
                .all(|(i, (a, b))| a.to_bits() == b.to_bits() || !self.bias_linear_var[i])
    }
}

/// Partitions device indices into groups sharing a model card. Devices
/// referencing the same `.model` card were built from one library entry
/// and carry identical parameters, so name equality is parameter
/// equality. First-appearance order keeps grouping deterministic.
fn group_by_model<'a>(names: impl Iterator<Item = &'a str>) -> Vec<Vec<usize>> {
    let mut keys: Vec<&str> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, name) in names.enumerate() {
        match keys.iter().position(|k| *k == name) {
            Some(g) => groups[g].push(i),
            None => {
                keys.push(name);
                groups.push(vec![i]);
            }
        }
    }
    groups
}

/// Structural equality of two flattened jig netlists *ignoring ac
/// excitation magnitudes*: such jigs build bit-identical
/// [`SizedCircuit`]s and stamp bit-identical G/C systems — the ac value
/// shapes only the per-analysis stimulus vector, which the plan
/// precomputes per analysis anyway — so their analyses can share one
/// materialized jig.
fn same_system(a: &Netlist, b: &Netlist) -> bool {
    a.instances == b.instances
        && a.elements.len() == b.elements.len()
        && a.elements.iter().zip(&b.elements).all(|(x, y)| {
            if x.name != y.name || x.nodes != y.nodes {
                return false;
            }
            match (&x.kind, &y.kind) {
                (ElementKind::Vsource { dc: xd, .. }, ElementKind::Vsource { dc: yd, .. })
                | (ElementKind::Isource { dc: xd, .. }, ElementKind::Isource { dc: yd, .. }) => {
                    xd == yd
                }
                (xk, yk) => xk == yk,
            }
        })
}

/// Walks `netlist` in the exact order of [`SizedCircuit::build`],
/// emitting a [`Binding`] for every variable-dependent element value.
/// Constant values are skipped — the skeleton already holds them.
/// Returns `None` when an expression references a name outside the
/// user-variable set (cannot happen when the skeleton built, but the
/// cold path is the safe fallback).
fn bindings_for(
    netlist: &Netlist,
    skeleton: &SizedCircuit,
    user_names: &[String],
) -> Option<Vec<Binding>> {
    let mut out = Vec::new();
    let mut li = 0usize; // next linear-element index
    let mut mi = 0usize; // next mosfet index
    let mut bi = 0usize; // next bjt index
    let mut di = 0usize; // next diode index
    for el in &netlist.elements {
        let mut push = |expr: &Expr, target: BindTarget| -> Option<()> {
            let vars = expr.variables();
            if vars.is_empty() {
                return Some(());
            }
            let deps = vars
                .iter()
                .map(|v| user_names.iter().rposition(|n| n == v))
                .collect::<Option<Vec<_>>>()?;
            out.push(Binding {
                element: el.name.clone(),
                target,
                expr: expr.clone(),
                deps,
            });
            Some(())
        };
        match &el.kind {
            ElementKind::Resistor { value } => {
                push(value, BindTarget::Resistor(li))?;
                li += 1;
            }
            ElementKind::Capacitor { value } => {
                push(value, BindTarget::Capacitor(li))?;
                li += 1;
            }
            ElementKind::Inductor { value } => {
                push(value, BindTarget::Inductor(li))?;
                li += 1;
            }
            ElementKind::Vsource { dc, .. } => {
                push(dc, BindTarget::VsourceDc(li))?;
                li += 1;
            }
            ElementKind::Isource { dc, .. } => {
                push(dc, BindTarget::IsourceDc(li))?;
                li += 1;
            }
            ElementKind::Vcvs { gain, .. } => {
                push(gain, BindTarget::VcvsGain(li))?;
                li += 1;
            }
            ElementKind::Vccs { gm, .. } => {
                push(gm, BindTarget::VccsGm(li))?;
                li += 1;
            }
            ElementKind::Mosfet { w, l, .. } => {
                push(w, BindTarget::MosW(mi))?;
                push(l, BindTarget::MosL(mi))?;
                // The device template inserts series resistors among
                // the linear elements; keep the counter in sync.
                let (rd, rs) = skeleton.mosfets[mi].model.series_resistance();
                if rd > 0.0 {
                    li += 1;
                }
                if rs > 0.0 {
                    li += 1;
                }
                mi += 1;
            }
            ElementKind::Bjt { area, .. } => {
                push(area, BindTarget::BjtArea(bi))?;
                if skeleton.bjts[bi].model.params().rb > 0.0 {
                    li += 1;
                }
                bi += 1;
            }
            ElementKind::Diode { area, .. } => {
                push(area, BindTarget::DiodeArea(di))?;
                di += 1;
            }
        }
    }
    Some(out)
}

/// One jig materialized in a slot.
#[derive(Debug, Clone)]
struct JigSlot {
    ckt: SizedCircuit,
    sys: LinearSystem,
    /// Cloned from the plan's template: symbolic structure shared, value
    /// arrays private to this slot.
    engine: AweEngine,
    mos_ops: Vec<MosOp>,
    bjt_ops: Vec<BjtOp>,
    diode_ops: Vec<DiodeOp>,
}

/// Reusable gather/scatter buffers for SoA batched device evaluation.
///
/// Selected devices of one model group are gathered into contiguous
/// lanes, evaluated in one [`oblx_devices::MosModel::op_batch`] call
/// (bit-identical to per-device scalar calls), and scattered back to
/// the slot's ops arrays through the recorded indices. All buffers keep
/// their capacity across updates, so the steady state allocates nothing.
#[derive(Debug, Clone, Default)]
struct BatchWs {
    mos_lanes: MosLanes,
    bjt_lanes: BjtLanes,
    diode_lanes: DiodeLanes,
    /// Device indices gathered for the current group, parallel to the
    /// lanes; drives the scatter of batch results.
    idx: Vec<usize>,
    mos_out: Vec<MosOp>,
    bjt_out: Vec<BjtOp>,
    diode_out: Vec<DiodeOp>,
}

impl BatchWs {
    fn eval_mos(
        &mut self,
        bias: &SizedCircuit,
        x: &[f64],
        groups: &[Vec<usize>],
        ops: &mut [MosOp],
        select: impl Fn(usize) -> bool,
    ) {
        let volt = |n: Option<usize>| n.map_or(0.0, |i| x[i]);
        for g in groups {
            self.mos_lanes.clear();
            self.idx.clear();
            for &i in g {
                if select(i) {
                    let m = &bias.mosfets[i];
                    self.mos_lanes
                        .push(m.w, m.l, volt(m.d), volt(m.g), volt(m.s), volt(m.b));
                    self.idx.push(i);
                }
            }
            if self.idx.is_empty() {
                continue;
            }
            self.mos_out.clear();
            bias.mosfets[g[0]]
                .model
                .op_batch(&self.mos_lanes, &mut self.mos_out);
            for (&i, op) in self.idx.iter().zip(&self.mos_out) {
                ops[i] = *op;
            }
        }
    }

    fn eval_bjt(
        &mut self,
        bias: &SizedCircuit,
        x: &[f64],
        groups: &[Vec<usize>],
        ops: &mut [BjtOp],
        select: impl Fn(usize) -> bool,
    ) {
        let volt = |n: Option<usize>| n.map_or(0.0, |i| x[i]);
        for g in groups {
            self.bjt_lanes.clear();
            self.idx.clear();
            for &i in g {
                if select(i) {
                    let q = &bias.bjts[i];
                    self.bjt_lanes.push(q.area, volt(q.c), volt(q.b), volt(q.e));
                    self.idx.push(i);
                }
            }
            if self.idx.is_empty() {
                continue;
            }
            self.bjt_out.clear();
            bias.bjts[g[0]]
                .model
                .op_batch(&self.bjt_lanes, &mut self.bjt_out);
            for (&i, op) in self.idx.iter().zip(&self.bjt_out) {
                ops[i] = *op;
            }
        }
    }

    fn eval_diode(
        &mut self,
        bias: &SizedCircuit,
        x: &[f64],
        groups: &[Vec<usize>],
        ops: &mut [DiodeOp],
        select: impl Fn(usize) -> bool,
    ) {
        let volt = |n: Option<usize>| n.map_or(0.0, |i| x[i]);
        for g in groups {
            self.diode_lanes.clear();
            self.idx.clear();
            for &i in g {
                if select(i) {
                    let d = &bias.diodes[i];
                    self.diode_lanes.push(d.area, volt(d.a) - volt(d.k));
                    self.idx.push(i);
                }
            }
            if self.idx.is_empty() {
                continue;
            }
            self.diode_out.clear();
            bias.diodes[g[0]]
                .model
                .op_batch(&self.diode_lanes, &mut self.diode_out);
            for (&i, op) in self.idx.iter().zip(&self.diode_out) {
                ops[i] = *op;
            }
        }
    }
}

/// One materialized configuration: everything derived from a specific
/// `(user, nodes)` pair. `valid == false` means a previous update
/// failed partway and nothing here may be reused except as a target
/// for a plan-full update (which rewrites every bound value).
#[derive(Debug, Clone)]
pub(crate) struct Slot {
    valid: bool,
    /// LRU clock stamp, maintained by the evaluator.
    pub(crate) stamp: u64,
    user: Vec<f64>,
    nodes: Vec<f64>,
    bias: SizedCircuit,
    det: Vec<Option<f64>>,
    x: Vec<f64>,
    mos_ops: Vec<MosOp>,
    bjt_ops: Vec<BjtOp>,
    diode_ops: Vec<DiodeOp>,
    /// SoA gather/scatter workspace for batched device evaluation
    /// (reused across updates; see [`oblx_devices::batch`]).
    batch: BatchWs,
    /// KCL conductance matrix and source vector (stamped with unit
    /// source scale, exactly as [`crate::cost::kcl_residual`]); reused
    /// across incremental updates because linear values are frozen on
    /// that path.
    kcl_g: Mat<f64>,
    kcl_rhs: Vec<f64>,
    residual: Vec<f64>,
    jigs: Vec<JigSlot>,
    /// AWE models in flat analysis order. All `Some` once any update
    /// has completed (`valid == true`).
    models: Vec<Option<ReducedModel>>,
}

impl Slot {
    pub(crate) fn new(plan: &EvalPlan) -> Slot {
        let dim = plan.bias_template.dim();
        Slot {
            valid: false,
            stamp: 0,
            user: Vec::new(),
            nodes: Vec::new(),
            bias: plan.bias_template.clone(),
            det: Vec::new(),
            x: vec![0.0; dim],
            mos_ops: Vec::new(),
            bjt_ops: Vec::new(),
            diode_ops: Vec::new(),
            batch: BatchWs::default(),
            kcl_g: Mat::zeros(dim, dim),
            kcl_rhs: vec![0.0; dim],
            residual: vec![0.0; dim],
            jigs: plan
                .jigs
                .iter()
                .map(|j| JigSlot {
                    ckt: j.ckt_template.clone(),
                    sys: j.sys_template.clone(),
                    engine: j.engine_template.clone(),
                    mos_ops: Vec::new(),
                    bjt_ops: Vec::new(),
                    diode_ops: Vec::new(),
                })
                .collect(),
            models: vec![None; plan.analysis_names.len()],
        }
    }

    pub(crate) fn valid(&self) -> bool {
        self.valid
    }

    /// `true` when the slot holds exactly this state (bitwise).
    pub(crate) fn matches(&self, user: &[f64], nodes: &[f64]) -> bool {
        self.valid
            && self.user.len() == user.len()
            && self.nodes.len() == nodes.len()
            && self
                .user
                .iter()
                .zip(user)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self
                .nodes
                .iter()
                .zip(nodes)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// `true` when an incremental update against this slot is legal for
    /// the proposed state.
    pub(crate) fn can_increment(&self, plan: &EvalPlan, user: &[f64], nodes: &[f64]) -> bool {
        self.valid && self.nodes.len() == nodes.len() && plan.incremental_ok(&self.user, user)
    }

    /// Re-applies every binding and recomputes everything. Mirrors the
    /// cold path operation for operation; the only work skipped is the
    /// structural kind (interning, name maps, model lookup).
    pub(crate) fn update_full(
        &mut self,
        plan: &EvalPlan,
        user: &[f64],
        nodes: &[f64],
    ) -> Result<(), EvalFailure> {
        self.valid = false;
        self.user.clear();
        self.user.extend_from_slice(user);
        self.nodes.clear();
        self.nodes.extend_from_slice(nodes);
        let ctx = VarsCtx {
            names: &plan.user_names,
            values: user,
        };
        for b in &plan.bias_bindings {
            b.apply(&mut self.bias, &ctx)?;
        }
        self.det = determined_voltages(&self.bias);
        debug_assert!(
            self.det
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_none())
                .map(|(i, _)| i)
                .eq(plan.free_nodes.iter().copied()),
            "free-node pattern must be value-independent"
        );
        for v in self.x.iter_mut() {
            *v = 0.0;
        }
        let mut free_i = 0usize;
        for (i, dv) in self.det.iter().enumerate() {
            match dv {
                Some(v) => self.x[i] = *v,
                None => {
                    self.x[i] = nodes.get(free_i).copied().unwrap_or(0.0);
                    free_i += 1;
                }
            }
        }
        self.recompute_all_ops(plan);
        // KCL linear part: unit source scale, identical stamp order to
        // `cost::kcl_residual`.
        let n = self.bias.nodes.len();
        self.kcl_g.clear();
        for r in self.kcl_rhs.iter_mut() {
            *r = 0.0;
        }
        for el in &self.bias.linear {
            el.stamp_dc(&mut self.kcl_g, &mut self.kcl_rhs, n, 1.0);
        }
        self.recompute_residual();
        let Slot {
            jigs,
            mos_ops,
            bjt_ops,
            diode_ops,
            models,
            ..
        } = self;
        for (jp, js) in plan.jigs.iter().zip(jigs.iter_mut()) {
            for b in &jp.bindings {
                b.apply(&mut js.ckt, &ctx)?;
            }
            js.rerun(jp, mos_ops, bjt_ops, diode_ops, models, plan.awe_order)?;
        }
        self.valid = true;
        Ok(())
    }

    /// Recomputes only what the bitwise state diff shows to be dirty.
    ///
    /// Precondition (checked by [`Slot::can_increment`]): the slot is
    /// valid and no changed user variable feeds a linear bias element,
    /// so the determined-voltage tree and the KCL matrix carry over.
    /// The residual is nonetheless always recomputed in full from the
    /// cached matrix — incremental column updates would accumulate
    /// floating-point drift and break bit-identity with the cold path.
    pub(crate) fn update_incremental(
        &mut self,
        plan: &EvalPlan,
        user: &[f64],
        nodes: &[f64],
    ) -> Result<(), EvalFailure> {
        let dirty_user: Vec<bool> = self
            .user
            .iter()
            .zip(user)
            .map(|(a, b)| a.to_bits() != b.to_bits())
            .collect();
        let dirty_node: Vec<bool> = self
            .nodes
            .iter()
            .zip(nodes)
            .map(|(a, b)| a.to_bits() != b.to_bits())
            .collect();
        self.valid = false;
        self.user.copy_from_slice(user);
        self.nodes.copy_from_slice(nodes);
        let ctx = VarsCtx {
            names: &plan.user_names,
            values: user,
        };
        // 1. Dirty bias bindings. Only geometry targets can appear here
        //    (linear targets force a plan-full update).
        let mut mos_dirty = vec![false; self.bias.mosfets.len()];
        let mut bjt_dirty = vec![false; self.bias.bjts.len()];
        let mut diode_dirty = vec![false; self.bias.diodes.len()];
        for b in &plan.bias_bindings {
            if b.dirty(&dirty_user) {
                b.apply(&mut self.bias, &ctx)?;
                match b.target {
                    BindTarget::MosW(i) | BindTarget::MosL(i) => mos_dirty[i] = true,
                    BindTarget::BjtArea(i) => bjt_dirty[i] = true,
                    BindTarget::DiodeArea(i) => diode_dirty[i] = true,
                    _ => unreachable!("linear bias binding on the incremental path"),
                }
            }
        }
        // 2. Dirty free-node voltages.
        let mut node_changed = vec![false; self.bias.nodes.len()];
        for (k, &ni) in plan.free_nodes.iter().enumerate() {
            if k < dirty_node.len() && dirty_node[k] {
                self.x[ni] = nodes[k];
                node_changed[ni] = true;
            }
        }
        // 3. Re-evaluate devices whose geometry or terminal voltages
        //    changed; operating points are pure functions of both.
        //    Two passes: flag the dirty set, then batch-evaluate it per
        //    model group through the SoA lanes (bit-identical to the
        //    scalar calls this replaced).
        {
            let Slot {
                bias,
                x,
                mos_ops,
                bjt_ops,
                diode_ops,
                batch,
                ..
            } = &mut *self;
            let x: &[f64] = x;
            let moved = |n: Option<usize>| n.is_some_and(|i| node_changed[i]);
            for (i, m) in bias.mosfets.iter().enumerate() {
                if moved(m.d) || moved(m.g) || moved(m.s) || moved(m.b) {
                    mos_dirty[i] = true;
                }
            }
            for (i, q) in bias.bjts.iter().enumerate() {
                if moved(q.c) || moved(q.b) || moved(q.e) {
                    bjt_dirty[i] = true;
                }
            }
            for (i, d) in bias.diodes.iter().enumerate() {
                if moved(d.a) || moved(d.k) {
                    diode_dirty[i] = true;
                }
            }
            batch.eval_mos(bias, x, &plan.mos_groups, mos_ops, |i| mos_dirty[i]);
            batch.eval_bjt(bias, x, &plan.bjt_groups, bjt_ops, |i| bjt_dirty[i]);
            batch.eval_diode(bias, x, &plan.diode_groups, diode_ops, |i| diode_dirty[i]);
        }
        // 4. Residual: full recompute from the cached linear stamps.
        self.recompute_residual();
        // 5. Jigs intersecting the dirty set: rebind, restamp, re-AWE.
        //    A clean jig's models are untouched — its inputs are
        //    bitwise identical to when they were last computed.
        let Slot {
            jigs,
            mos_ops,
            bjt_ops,
            diode_ops,
            models,
            ..
        } = self;
        for (jp, js) in plan.jigs.iter().zip(jigs.iter_mut()) {
            if !jp.dirty(&dirty_user, &mos_dirty, &bjt_dirty, &diode_dirty) {
                continue;
            }
            for b in &jp.bindings {
                if b.dirty(&dirty_user) {
                    b.apply(&mut js.ckt, &ctx)?;
                }
            }
            js.rerun(jp, mos_ops, bjt_ops, diode_ops, models, plan.awe_order)?;
        }
        self.valid = true;
        Ok(())
    }

    /// Recomputes every device operating point (plan-full path) through
    /// the SoA batch evaluators, one batch per model group.
    fn recompute_all_ops(&mut self, plan: &EvalPlan) {
        let Slot {
            bias,
            x,
            mos_ops,
            bjt_ops,
            diode_ops,
            batch,
            ..
        } = self;
        let x: &[f64] = x;
        mos_ops.clear();
        mos_ops.resize(bias.mosfets.len(), MosOp::default());
        bjt_ops.clear();
        bjt_ops.resize(bias.bjts.len(), BjtOp::default());
        diode_ops.clear();
        diode_ops.resize(bias.diodes.len(), DiodeOp::default());
        batch.eval_mos(bias, x, &plan.mos_groups, mos_ops, |_| true);
        batch.eval_bjt(bias, x, &plan.bjt_groups, bjt_ops, |_| true);
        batch.eval_diode(bias, x, &plan.diode_groups, diode_ops, |_| true);
    }

    /// `f = G·x − rhs + device currents`, identical arithmetic and
    /// order to [`crate::cost::kcl_residual`].
    fn recompute_residual(&mut self) {
        self.kcl_g.mul_vec_into(&self.x, &mut self.residual);
        for (fi, r) in self.residual.iter_mut().zip(self.kcl_rhs.iter()) {
            *fi -= r;
        }
        let f = &mut self.residual;
        for (m, op) in self.bias.mosfets.iter().zip(self.mos_ops.iter()) {
            if let Some(d) = m.d {
                f[d] += op.id;
            }
            if let Some(s) = m.s {
                f[s] -= op.id;
            }
        }
        for (q, op) in self.bias.bjts.iter().zip(self.bjt_ops.iter()) {
            if let Some(c) = q.c {
                f[c] += op.ic;
            }
            if let Some(b) = q.b {
                f[b] += op.ib;
            }
            if let Some(e) = q.e {
                f[e] -= op.ic + op.ib;
            }
        }
        for (d, op) in self.bias.diodes.iter().zip(self.diode_ops.iter()) {
            if let Some(a) = d.a {
                f[a] += op.id;
            }
            if let Some(k) = d.k {
                f[k] -= op.id;
            }
        }
    }
}

impl JigSlot {
    /// Copies the bias operating points through the device bindings,
    /// restamps the small-signal system, and re-runs every analysis.
    fn rerun(
        &mut self,
        jp: &JigPlan,
        mos_ops: &[MosOp],
        bjt_ops: &[BjtOp],
        diode_ops: &[DiodeOp],
        models: &mut [Option<ReducedModel>],
        awe_order: usize,
    ) -> Result<(), EvalFailure> {
        self.mos_ops.clear();
        self.mos_ops.extend(jp.mos_bind.iter().map(|&i| mos_ops[i]));
        self.bjt_ops.clear();
        self.bjt_ops.extend(jp.bjt_bind.iter().map(|&i| bjt_ops[i]));
        self.diode_ops.clear();
        self.diode_ops
            .extend(jp.diode_bind.iter().map(|&i| diode_ops[i]));
        // Sparse engines re-stamp element values straight into the
        // engine's slot arrays — no dense matrix is touched on the hot
        // path. (Slot replay is bit-identical to dense stamping, so the
        // cold path, which gathers from its dense restamp, factors the
        // same numbers.) Dense engines keep the dense restamp.
        if let Some((map, g_vals, c_vals)) = self.engine.sparse_parts_mut() {
            map.stamp(
                &self.ckt,
                &self.mos_ops,
                &self.bjt_ops,
                &self.diode_ops,
                g_vals,
                c_vals,
            );
        } else {
            self.sys
                .restamp(&self.ckt, &self.mos_ops, &self.bjt_ops, &self.diode_ops);
        }
        // One factorization serves every analysis of the jig; each
        // fitted model is bit-identical to a standalone `analyze_with`.
        let jobs: Vec<(&[f64], OutputSelector)> = jp
            .analyses
            .iter()
            .map(|a| (a.b.as_slice(), a.out))
            .collect();
        match oblx_awe::analyze_batch_with(&mut self.engine, &self.sys, &jobs, awe_order) {
            Ok(fitted) => {
                for (a, model) in jp.analyses.iter().zip(fitted) {
                    models[a.flat] = Some(model);
                }
                Ok(())
            }
            Err((i, e)) => Err(EvalFailure::Awe(format!("{}: {e}", jp.analyses[i].name))),
        }
    }
}

/// Expression-evaluation context over a slot: the plan-path counterpart
/// of the cold path's record-backed context, with all name resolution
/// done by linear scans over precompiled tables instead of freshly
/// built hash maps.
struct PlanCtx<'a> {
    user_names: &'a [String],
    user: &'a [f64],
    bias: &'a SizedCircuit,
    residual: &'a [f64],
    mos_ops: &'a [MosOp],
    bjt_ops: &'a [BjtOp],
    diode_ops: &'a [DiodeOp],
    analysis_names: &'a [String],
    models: &'a [Option<ReducedModel>],
}

/// Compares a flattened device name against dotted-path segments
/// without joining the segments into a fresh string.
fn seg_match(name: &str, segs: &[String]) -> bool {
    name.split('.').eq(segs.iter().map(|s| s.as_str()))
}

impl MeasureSource for PlanCtx<'_> {
    fn model(&self, handle: &str) -> Option<&ReducedModel> {
        let i = self.analysis_names.iter().position(|n| n == handle)?;
        self.models[i].as_ref()
    }

    fn power(&self) -> f64 {
        power_of(self.bias, self.residual)
    }

    fn area(&self) -> f64 {
        area_of(self.bias)
    }
}

impl EvalContext for PlanCtx<'_> {
    fn lookup_var(&self, name: &str) -> Result<f64, EvalError> {
        self.user_names
            .iter()
            .rposition(|n| n == name)
            .map(|i| self.user[i])
            .ok_or_else(|| EvalError::UnknownVar(name.to_string()))
    }

    fn lookup_path(&self, path: &[String]) -> Result<f64, EvalError> {
        if path.len() >= 2 {
            let segs = &path[..path.len() - 1];
            let quantity = &path[path.len() - 1];
            // Same resolution order and first-match semantics as the
            // cold path's by-name lookup.
            let q = if let Some(i) = self
                .bias
                .mosfets
                .iter()
                .position(|m| seg_match(&m.name, segs))
            {
                self.mos_ops[i].quantity(quantity)
            } else if let Some(i) = self.bias.bjts.iter().position(|b| seg_match(&b.name, segs)) {
                self.bjt_ops[i].quantity(quantity)
            } else if let Some(i) = self
                .bias
                .diodes
                .iter()
                .position(|d| seg_match(&d.name, segs))
            {
                self.diode_ops[i].quantity(quantity)
            } else {
                None
            };
            if let Some(v) = q {
                return Ok(v);
            }
        }
        Err(EvalError::UnknownPath(path.join(".")))
    }

    fn call(&self, name: &str, args: &[Expr], values: &[Option<f64>]) -> Result<f64, EvalError> {
        crate::cost::measure_call(self, name, args, values)
    }
}

/// Scores a valid slot under the current weights: the shared summation
/// in `cost::score_with`, fed from the slot's precomputed state.
pub(crate) fn score_slot(
    compiled: &CompiledProblem,
    plan: &EvalPlan,
    slot: &Slot,
    weights: &AdaptiveWeights,
    user: &[f64],
) -> Result<CostBreakdown, EvalFailure> {
    debug_assert!(slot.valid, "scoring an invalid slot");
    let ctx = PlanCtx {
        user_names: &plan.user_names,
        user,
        bias: &slot.bias,
        residual: &slot.residual,
        mos_ops: &slot.mos_ops,
        bjt_ops: &slot.bjt_ops,
        diode_ops: &slot.diode_ops,
        analysis_names: &plan.analysis_names,
        models: &slot.models,
    };
    score_with(
        compiled,
        weights,
        &ctx,
        &slot.bias.mosfets,
        &slot.mos_ops,
        &slot.bjt_ops,
        &plan.free_nodes,
        &slot.residual,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astrx::compile;
    use crate::bench_suite;
    use crate::cost::AWE_ORDER;

    /// The Two-Stage supply-rejection jigs differ only in which source
    /// carries the ac excitation; the plan must merge them into a
    /// single materialized system serving all three analyses.
    #[test]
    fn two_stage_supply_jigs_share_one_system() {
        let b = bench_suite::by_name("Two-Stage").expect("Two-Stage exists");
        let compiled = compile(b.problem().expect("parses")).expect("compiles");
        let plan = EvalPlan::build(&compiled, AWE_ORDER).expect("plannable");
        assert_eq!(plan.analysis_names.len(), 3, "three analyses expected");
        assert_eq!(plan.jigs.len(), 1, "structurally identical jigs merged");
        assert_eq!(plan.jigs[0].analyses.len(), 3);
    }

    /// Engine crossover: the Simple OTA jig (dim 24) must stay on the
    /// dense path — its synthesis results are bit-identical to the
    /// pre-sparse code — while the Two-Stage jig (dim 29) gets the
    /// sparse engine with its symbolic factorization done at
    /// plan-compile time.
    #[test]
    fn engine_crossover_matches_bench_dims() {
        let ota = compile(
            bench_suite::by_name("Simple OTA")
                .unwrap()
                .problem()
                .unwrap(),
        )
        .unwrap();
        let plan = EvalPlan::build(&ota, AWE_ORDER).expect("plannable");
        assert!(
            plan.jigs.iter().all(|j| !j.engine_template.is_sparse()),
            "Simple OTA must stay dense"
        );
        let ts = compile(
            bench_suite::by_name("Two-Stage")
                .unwrap()
                .problem()
                .unwrap(),
        )
        .unwrap();
        let plan = EvalPlan::build(&ts, AWE_ORDER).expect("plannable");
        assert!(
            plan.jigs.iter().all(|j| j.engine_template.is_sparse()),
            "Two-Stage must use the sparse engine"
        );
    }
}
