//! `astrx` — the command-line front end.
//!
//! ```text
//! astrx compile <file.ox> [--emit-c]        analyze a description
//! astrx synth <file.ox> [--moves N] [--seeds N|a,b,c] [--threads T]
//!                       [--checkpoint-dir DIR] [--checkpoint-interval N]
//!                       [--resume] [--corners] [--yield]
//! astrx bench <name> [same options]         run a built-in benchmark
//! astrx list                                list built-in benchmarks
//! astrx submit (<file.ox>|--bench NAME) --spool DIR
//!              [--seeds …] [--moves N] [--priority P] [--name NAME]
//! astrx jobs --spool DIR                    list an oblxd spool
//! astrx profile [<file.ox>|--bench NAME] [--moves N] [--seed S] [--json]
//! ```
//!
//! `--seeds` takes either a count (`--seeds 8` runs seeds 1..=8) or an
//! explicit comma list (`--seeds 2,7,19`); `--threads` distributes the
//! per-seed runs over worker threads without changing any result.
//!
//! With `--checkpoint-dir` every per-seed run periodically snapshots
//! its full annealing state; a later run with `--resume` continues
//! from those snapshots bit-identically. `submit`/`jobs` are the thin
//! client of the `oblxd` job runtime (see the `oblx-runtime` crate).

use astrx_oblx::jobs;
use astrx_oblx::oblx::{synthesize_multi, SynthesisOptions};
use astrx_oblx::report::{eng, pair, TextTable};
use astrx_oblx::verify::verify_result;
use astrx_oblx::{bench_suite, corners, CompiledProblem};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage:
  astrx compile <file.ox> [--emit-c]
  astrx synth <file.ox> [--moves N] [--seeds N|a,b,c] [--threads T]
              [--checkpoint-dir DIR] [--checkpoint-interval N] [--resume]
              [--corners] [--yield]
  astrx bench <name> [same options as synth]
  astrx list
  astrx submit (<file.ox> | --bench NAME) --spool DIR
               [--seeds N|a,b,c] [--moves N] [--priority P] [--name NAME]
  astrx jobs --spool DIR
  astrx profile [<file.ox> | --bench NAME] [--moves N] [--seed S] [--json]
               (default: the Two-Stage benchmark; prints the telemetry
                report — accept rates, cost terms, AWE/LU health)

options:
  --checkpoint-dir DIR       snapshot each per-seed run's full annealing
                             state into DIR (atomic, versioned files)
  --checkpoint-interval N    proposals between snapshots (default 2000)
  --resume                   continue from the checkpoints already in
                             --checkpoint-dir; the completed run is
                             bit-identical to one never interrupted
  --spool DIR                an oblxd spool directory (see `oblxd run`)";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return usage();
    };
    let rest: Vec<&String> = it.collect();
    match cmd.as_str() {
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        "compile" => cmd_compile(&rest),
        "synth" => cmd_synth(&rest, None),
        "bench" => {
            let Some(name) = rest.first() else {
                return usage();
            };
            let Some(b) = bench_suite::by_name(name) else {
                eprintln!("unknown benchmark `{name}` — try `astrx list`");
                return ExitCode::FAILURE;
            };
            cmd_synth(&rest[1..], Some(b))
        }
        "list" => {
            for b in bench_suite::all() {
                println!("{:<22} {}", b.name, b.description);
            }
            ExitCode::SUCCESS
        }
        "submit" => cmd_submit(&rest),
        "jobs" => cmd_jobs(&rest),
        "profile" => cmd_profile(&rest),
        _ => usage(),
    }
}

fn flag(rest: &[&String], name: &str) -> bool {
    rest.iter().any(|a| a.as_str() == name)
}

fn opt<'a>(rest: &'a [&String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a.as_str() == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn load(rest: &[&String]) -> Result<CompiledProblem, String> {
    let Some(path) = rest.iter().find(|a| !a.starts_with("--")) else {
        return Err("no input file given".into());
    };
    let source = std::fs::read_to_string(path.as_str()).map_err(|e| format!("{path}: {e}"))?;
    astrx_oblx::astrx::compile_source(&source).map_err(|e| format!("{path}: {e}"))
}

fn print_stats(compiled: &CompiledProblem) {
    let s = &compiled.stats;
    println!("ASTRX analysis:");
    println!(
        "  input lines         : {} netlist + {} synthesis-specific",
        s.netlist_lines, s.synthesis_lines
    );
    println!("  user variables      : {}", s.user_vars);
    println!("  relaxed-dc nodes    : {}", s.node_vars);
    println!("  cost-function terms : {}", s.terms);
    println!("  equivalent C lines  : {}", s.c_lines);
    println!(
        "  bias circuit        : {} nodes, {} elements",
        s.bias_size.0, s.bias_size.1
    );
    for (i, (n, e)) in s.awe_sizes.iter().enumerate() {
        println!("  awe circuit #{i}      : {n} nodes, {e} elements");
    }
}

/// Removes stale per-seed checkpoints so a non-`--resume` run starts
/// fresh rather than silently continuing an old one.
fn clear_checkpoints(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("seed_") && name.ends_with(".ckpt.json") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn parse_seeds(rest: &[&String]) -> Result<Vec<u64>, String> {
    match opt(rest, "--seeds") {
        Some(s) if !s.contains(',') => match s.trim().parse::<u64>() {
            Ok(n) if n > 0 => Ok((1..=n).collect()),
            _ => Err(format!("--seeds wants a count or a comma list, got `{s}`")),
        },
        Some(s) => {
            let seeds: Vec<u64> = s.split(',').filter_map(|x| x.trim().parse().ok()).collect();
            if seeds.is_empty() {
                Err(format!("--seeds parsed to an empty list from `{s}`"))
            } else {
                Ok(seeds)
            }
        }
        None => Ok(vec![1, 2, 3]),
    }
}

/// `astrx submit` — the thin client of the `oblxd` runtime: writes a
/// job file into a spool directory for a daemon to pick up.
fn cmd_submit(rest: &[&String]) -> ExitCode {
    let Some(spool) = opt(rest, "--spool") else {
        eprintln!("error: submit needs --spool DIR");
        return ExitCode::from(2);
    };
    let (source, deck, default_name) = if let Some(name) = opt(rest, "--bench") {
        let Some(b) = bench_suite::by_name(name) else {
            eprintln!("error: unknown benchmark `{name}` — try `astrx list`");
            return ExitCode::FAILURE;
        };
        (
            b.source.to_string(),
            b.deck.label().to_string(),
            b.name.to_string(),
        )
    } else {
        let Some(path) = rest.iter().enumerate().find_map(|(i, a)| {
            let is_opt_value = i > 0 && rest[i - 1].starts_with("--");
            (!a.starts_with("--") && !is_opt_value).then_some(a.as_str())
        }) else {
            eprintln!("error: submit needs a .ox file or --bench NAME");
            return ExitCode::from(2);
        };
        match std::fs::read_to_string(path) {
            Ok(text) => (text, String::new(), path.to_string()),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let seeds = match parse_seeds(rest) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let request = jobs::JobRequest {
        name: opt(rest, "--name")
            .map(str::to_string)
            .unwrap_or(default_name),
        source,
        deck,
        options: SynthesisOptions {
            moves_budget: opt(rest, "--moves")
                .and_then(|s| s.parse().ok())
                .unwrap_or(60_000),
            ..SynthesisOptions::default()
        },
        seeds,
        priority: opt(rest, "--priority")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0),
    };
    // Validate before spooling: a malformed deck is the submitter's
    // error and should be rejected here with line/column diagnostics,
    // not discovered later by an oblxd worker. Benchmark submissions
    // carry a process-deck label only the daemon can resolve, so only
    // plain-file sources are compiled here — which is exactly the
    // untrusted path.
    if request.deck.is_empty() {
        if let Err(e) = astrx_oblx::astrx::compile_source(&request.source) {
            eprintln!("error: {}: {e}", request.name);
            return ExitCode::FAILURE;
        }
    }
    match jobs::spool_submit(Path::new(spool), request) {
        Ok(job) => {
            println!("{}", job.id);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: submit failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `astrx jobs` — lists a spool's queue, running set, and results.
fn cmd_jobs(rest: &[&String]) -> ExitCode {
    let Some(spool) = opt(rest, "--spool") else {
        eprintln!("error: jobs needs --spool DIR");
        return ExitCode::from(2);
    };
    let spool = Path::new(spool);
    for (label, dir) in [("queued", "queue"), ("running", "running")] {
        let mut jobs_in_dir: Vec<jobs::JobFile> = std::fs::read_dir(spool.join(dir))
            .map(|entries| {
                entries
                    .flatten()
                    .filter_map(|e| std::fs::read_to_string(e.path()).ok())
                    .filter_map(|text| jobs::job_from_json(&text).ok())
                    .collect()
            })
            .unwrap_or_default();
        jobs_in_dir.sort_by(|a, b| {
            b.request
                .priority
                .cmp(&a.request.priority)
                .then(a.seq.cmp(&b.seq))
        });
        for job in jobs_in_dir {
            println!(
                "{label:<8} {} ({}): {} seed(s) × {} moves, priority {}",
                job.id,
                job.request.name,
                job.request.seeds.len(),
                job.request.options.moves_budget,
                job.request.priority
            );
        }
    }
    if let Ok(entries) = std::fs::read_dir(spool.join("done")) {
        for entry in entries.flatten() {
            let Ok(text) = std::fs::read_to_string(entry.path()) else {
                continue;
            };
            let Ok(record) = astrx_oblx::json::parse(&text) else {
                continue;
            };
            let get = |k: &str| {
                record
                    .get(k)
                    .and_then(astrx_oblx::json::Value::as_str)
                    .unwrap_or("?")
                    .to_string()
            };
            let cost = record
                .get("fixed_cost")
                .and_then(|v| jobs::f64_from_value(v).ok())
                .map(|c| format!(", cost {c:.4}"))
                .unwrap_or_default();
            println!(
                "done     {} ({}): {}{cost}",
                get("id"),
                get("name"),
                get("status")
            );
        }
    }
    ExitCode::SUCCESS
}

/// `astrx profile` — runs one synthesis with telemetry enabled and
/// prints the recorded report: per-move-class accept rates, cost-term
/// breakdown, AWE fit/instability counts, LU conditioning, and eval
/// latency histograms. `--json` emits the snapshot as one JSON object
/// (the same schema `oblxd` appends to `events/metrics.jsonl`).
fn cmd_profile(rest: &[&String]) -> ExitCode {
    let compiled = if let Some(name) = opt(rest, "--bench") {
        let Some(b) = bench_suite::by_name(name) else {
            eprintln!("error: unknown benchmark `{name}` — try `astrx list`");
            return ExitCode::FAILURE;
        };
        match b
            .problem()
            .map_err(|e| e.to_string())
            .and_then(|p| astrx_oblx::astrx::compile(p).map_err(|e| e.to_string()))
        {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if rest.iter().enumerate().any(|(i, a)| {
        let is_opt_value = i > 0 && rest[i - 1].starts_with("--");
        !a.starts_with("--") && !is_opt_value
    }) {
        match load(rest) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        // The paper's flagship circuit makes a representative default.
        let b = bench_suite::by_name("Two-Stage").expect("built-in benchmark");
        match b
            .problem()
            .map_err(|e| e.to_string())
            .and_then(|p| astrx_oblx::astrx::compile(p).map_err(|e| e.to_string()))
        {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let moves: usize = opt(rest, "--moves")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let seed: u64 = opt(rest, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    oblx_telemetry::reset();
    oblx_telemetry::set_enabled(true);
    let opts = SynthesisOptions {
        moves_budget: moves,
        seed,
        ..SynthesisOptions::default()
    };
    let outcome = astrx_oblx::oblx::synthesize(&compiled, &opts);
    oblx_telemetry::set_enabled(false);
    let snap = oblx_telemetry::Snapshot::capture();
    if flag(rest, "--json") {
        println!("{}", snap.to_json());
    } else {
        match &outcome {
            Ok(r) => println!(
                "profiled {} moves, seed {}: final cost {:.3}, kcl {:.2e} A\n",
                moves, seed, r.breakdown.total, r.kcl_max
            ),
            Err(e) => println!("profiled {moves} moves, seed {seed}: run failed ({e})\n"),
        }
        print!("{}", snap.render());
    }
    ExitCode::SUCCESS
}

fn cmd_compile(rest: &[&String]) -> ExitCode {
    match load(rest) {
        Ok(compiled) => {
            print_stats(&compiled);
            if flag(rest, "--emit-c") {
                println!("\n{}", astrx_oblx::emit::emit_c(&compiled));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_synth(rest: &[&String], benchmark: Option<bench_suite::Benchmark>) -> ExitCode {
    let compiled = match benchmark {
        Some(b) => match b
            .problem()
            .map_err(|e| e.to_string())
            .and_then(|p| astrx_oblx::astrx::compile(p).map_err(|e| e.to_string()))
        {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match load(rest) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    print_stats(&compiled);

    let moves: usize = opt(rest, "--moves")
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    let seeds: Vec<u64> = match opt(rest, "--seeds") {
        Some(s) if !s.contains(',') => match s.trim().parse::<u64>() {
            Ok(n) if n > 0 => (1..=n).collect(),
            _ => {
                eprintln!("error: --seeds wants a count or a comma list, got `{s}`");
                return ExitCode::from(2);
            }
        },
        Some(s) => s.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
        None => vec![1, 2, 3],
    };
    if seeds.is_empty() {
        eprintln!("error: --seeds parsed to an empty list");
        return ExitCode::from(2);
    }
    let threads: usize = opt(rest, "--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    println!(
        "\nOBLX: {} moves × {} seed(s) on {} thread(s)…",
        moves,
        seeds.len(),
        threads.max(1).min(seeds.len())
    );
    let opts = SynthesisOptions {
        moves_budget: moves,
        ..SynthesisOptions::default()
    };
    let checkpoint_dir = opt(rest, "--checkpoint-dir").map(PathBuf::from);
    let checkpoint_every: usize = opt(rest, "--checkpoint-interval")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let resume = flag(rest, "--resume");
    if resume && checkpoint_dir.is_none() {
        eprintln!("error: --resume needs --checkpoint-dir DIR");
        return ExitCode::from(2);
    }
    if checkpoint_every == 0 {
        eprintln!("error: --checkpoint-interval must be positive");
        return ExitCode::from(2);
    }
    let outcome = match &checkpoint_dir {
        Some(dir) => {
            if !resume {
                clear_checkpoints(dir);
            }
            jobs::synthesize_multi_resumable(
                &compiled,
                &opts,
                &seeds,
                threads,
                dir,
                checkpoint_every,
            )
        }
        None => synthesize_multi(&compiled, &opts, &seeds, threads),
    };
    let multi = match outcome {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: every seed failed — first failure: {e}");
            return ExitCode::FAILURE;
        }
    };
    for run in &multi.runs {
        if run.failed {
            println!("  seed {}: failed (best state unevaluable)", run.seed);
        } else {
            println!(
                "  seed {}: cost {:.3}, kcl {:.2e} A, {:.1} s, {:.0} eval/s, \
                 {:.0}% incremental-or-cached",
                run.seed,
                run.fixed_cost,
                run.kcl_max,
                run.wall_seconds,
                run.evals_per_sec,
                100.0 * run.cache_hit_ratio
            );
        }
    }
    println!(
        "best seed {} — {:.1} s wall total, throughput {:.0} evals/s, \
         {:.0} moves/s, cache hit ratio {:.1}%",
        multi.best_seed,
        multi.wall_seconds,
        multi.best.evals_per_sec,
        multi.best.moves_per_sec,
        100.0 * multi.best.cache_hit_ratio
    );
    let result = multi.best;

    println!("\nDesign variables:");
    for (name, value) in &result.variables {
        println!("  {name:<8} = {}", eng(*value));
    }
    match verify_result(&compiled, &result) {
        Ok(v) => {
            let mut t = TextTable::new(vec!["goal", "OBLX / simulation"]);
            for (name, p, s) in &v.rows {
                t.row(vec![name.clone(), pair(*p, *s)]);
            }
            println!("\n{}", t.render());
            println!(
                "worst prediction error {:.2}%  power {}  area {} m^2",
                100.0 * v.worst_relative_error(),
                eng(v.power),
                eng(v.area)
            );
        }
        Err(e) => eprintln!("verification failed: {e}"),
    }

    if flag(rest, "--yield") {
        println!("\nMonte-Carlo mismatch yield (60 samples, A_vt = 25 mV*um):");
        match astrx_oblx::yield_mc::yield_mc(
            &compiled,
            &result.state,
            &astrx_oblx::yield_mc::YieldOptions::default(),
        ) {
            Ok(y) => {
                println!(
                    "  yield {:.1}%  ({} passed / {} samples, {} bias failures)",
                    100.0 * y.yield_fraction(),
                    y.passed,
                    y.samples,
                    y.bias_failures
                );
                for (goal, fails) in &y.failures_by_goal {
                    if *fails > 0 {
                        println!("  {goal}: {fails} failures");
                    }
                }
            }
            Err(e) => eprintln!("yield analysis failed: {e}"),
        }
    }

    if flag(rest, "--corners") {
        println!("\nOperating corners:");
        match corners::verify_corners(
            &compiled,
            &result.state,
            &result.measured,
            &corners::standard_corners(),
        ) {
            Ok(results) => {
                let mut t = TextTable::new(vec!["corner", "goal", "simulated"]);
                for cr in &results {
                    for (name, _, sim) in &cr.verified.rows {
                        t.row(vec![cr.name.to_string(), name.clone(), eng(*sim)]);
                    }
                }
                println!("{}", t.render());
            }
            Err(e) => eprintln!("corner analysis failed: {e}"),
        }
    }
    ExitCode::SUCCESS
}
