//! Job and checkpoint serialization — the on-disk contract of the
//! `oblxd` runtime.
//!
//! Two file kinds are defined here so that both the service
//! (`crates/runtime`) and thin clients (`astrx submit`) can speak them:
//!
//! * **Job files** (`format: "oblx-job"`): a synthesis request — name,
//!   `.ox` source text, [`SynthesisOptions`], seed list, priority.
//! * **Checkpoint files** (`format: "oblx-checkpoint"`): a full
//!   [`SynthesisCheckpoint`] image of one per-seed run in flight.
//!
//! Both carry a `version` field. The rule is strict equality: a reader
//! refuses any version other than its own ([`CHECKPOINT_VERSION`] /
//! [`JOB_VERSION`]) rather than guessing at field semantics — a stale
//! checkpoint then costs one restarted run instead of a silently
//! corrupted one.
//!
//! Every quantity whose bits matter (costs, RNG words, seeds) is
//! hex-encoded in strings, never written as a JSON number, so a
//! serialize → parse round trip is exactly the identity on the
//! in-memory structs. The round-trip property test in `crates/runtime`
//! holds this module to that contract.

use crate::cost::EvalFailure;
use crate::json::{self, ObjBuilder, Value};
use crate::oblx::{
    synthesize_controlled, synthesize_multi_with, MultiSynthesisResult, OblxState,
    SynthesisCheckpoint, SynthesisOptions, SynthesisOutcome,
};
use crate::weights::WeightsSnapshot;
use crate::CompiledProblem;
use oblx_anneal::{
    AnnealCheckpoint, ClassStats, Directive, MoveStatsSnapshot, Phase, ScheduleSnapshot, Trace,
    TracePoint,
};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version written into and required of checkpoint files.
pub const CHECKPOINT_VERSION: i64 = 1;
/// Version written into and required of job files.
pub const JOB_VERSION: i64 = 1;

/// A serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerError(pub String);

impl std::fmt::Display for SerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serialization error: {}", self.0)
    }
}

impl std::error::Error for SerError {}

impl From<json::ParseError> for SerError {
    fn from(e: json::ParseError) -> Self {
        SerError(e.to_string())
    }
}

fn err(msg: impl Into<String>) -> SerError {
    SerError(msg.into())
}

// ---------------------------------------------------------------------
// Bit-exact scalar encoding.

/// Encodes an `f64` as its 16-hex-digit bit pattern (bit-exact for
/// every value, including NaN payloads and infinities).
pub fn f64_to_value(v: f64) -> Value {
    Value::Str(format!("{:016x}", v.to_bits()))
}

/// Encodes a `u64` as a hex string (JSON numbers are lossy past 2⁵³).
pub fn u64_to_value(v: u64) -> Value {
    Value::Str(format!("{v:x}"))
}

/// Decodes an [`f64_to_value`] bit string.
///
/// # Errors
///
/// [`SerError`] when the value is not a 16-hex-digit string.
pub fn f64_from_value(v: &Value) -> Result<f64, SerError> {
    let s = v.as_str().ok_or_else(|| err("expected f64 bit string"))?;
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| err(format!("bad f64 bits `{s}`")))
}

/// Decodes a [`u64_to_value`] hex string.
///
/// # Errors
///
/// [`SerError`] when the value is not a hex string.
pub fn u64_from_value(v: &Value) -> Result<u64, SerError> {
    let s = v.as_str().ok_or_else(|| err("expected u64 hex string"))?;
    u64::from_str_radix(s, 16).map_err(|_| err(format!("bad u64 `{s}`")))
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, SerError> {
    v.get(key)
        .ok_or_else(|| err(format!("missing field `{key}`")))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, SerError> {
    field(v, key)?
        .as_int()
        .and_then(|i| usize::try_from(i).ok())
        .ok_or_else(|| err(format!("field `{key}` is not a count")))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, SerError> {
    f64_from_value(field(v, key)?)
}

fn u64_field(v: &Value, key: &str) -> Result<u64, SerError> {
    u64_from_value(field(v, key)?)
}

fn str_field(v: &Value, key: &str) -> Result<String, SerError> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| err(format!("field `{key}` is not a string")))
}

fn bool_field(v: &Value, key: &str) -> Result<bool, SerError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| err(format!("field `{key}` is not a bool")))
}

fn f64_vec(v: &Value, key: &str) -> Result<Vec<f64>, SerError> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| err(format!("field `{key}` is not an array")))?
        .iter()
        .map(f64_from_value)
        .collect()
}

fn f64_vec_value(vals: &[f64]) -> Value {
    Value::Arr(vals.iter().map(|&v| f64_to_value(v)).collect())
}

fn check_format(v: &Value, format: &str, version: i64) -> Result<(), SerError> {
    let got = str_field(v, "format")?;
    if got != format {
        return Err(err(format!("expected format `{format}`, got `{got}`")));
    }
    let ver = field(v, "version")?
        .as_int()
        .ok_or_else(|| err("version is not an integer"))?;
    if ver != version {
        return Err(err(format!(
            "unsupported {format} version {ver} (this build reads {version})"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// SynthesisOptions.

/// Serializes [`SynthesisOptions`].
pub fn options_to_value(o: &SynthesisOptions) -> Value {
    ObjBuilder::new()
        .field("moves_budget", o.moves_budget)
        .field("seed", u64_to_value(o.seed))
        .field("trace_every", o.trace_every)
        .field("weight_update_every", o.weight_update_every)
        .field("points_per_decade", o.points_per_decade)
        .field("quench_patience", o.quench_patience)
        .field("awe_order", o.awe_order)
        .field("disable_newton_moves", o.disable_newton_moves)
        .field("disable_adaptive_weights", o.disable_adaptive_weights)
        .build()
}

/// Deserializes [`SynthesisOptions`].
///
/// # Errors
///
/// [`SerError`] on missing or mistyped fields.
pub fn options_from_value(v: &Value) -> Result<SynthesisOptions, SerError> {
    Ok(SynthesisOptions {
        moves_budget: usize_field(v, "moves_budget")?,
        seed: u64_field(v, "seed")?,
        trace_every: usize_field(v, "trace_every")?,
        weight_update_every: usize_field(v, "weight_update_every")?,
        points_per_decade: usize_field(v, "points_per_decade")?,
        quench_patience: usize_field(v, "quench_patience")?,
        awe_order: usize_field(v, "awe_order")?,
        disable_newton_moves: bool_field(v, "disable_newton_moves")?,
        disable_adaptive_weights: bool_field(v, "disable_adaptive_weights")?,
    })
}

// ---------------------------------------------------------------------
// OblxState.

fn state_to_value(s: &OblxState) -> Value {
    ObjBuilder::new()
        .field("user", f64_vec_value(&s.user))
        .field("nodes", f64_vec_value(&s.nodes))
        .build()
}

fn state_from_value(v: &Value) -> Result<OblxState, SerError> {
    Ok(OblxState {
        user: f64_vec(v, "user")?,
        nodes: f64_vec(v, "nodes")?,
    })
}

// ---------------------------------------------------------------------
// Engine-side snapshots.

fn stats_to_value(s: &MoveStatsSnapshot) -> Value {
    ObjBuilder::new()
        .field("window", s.window)
        .field("seen", s.seen)
        .field("p_min", f64_to_value(s.p_min))
        .field(
            "classes",
            Value::Arr(
                s.classes
                    .iter()
                    .map(|c| {
                        ObjBuilder::new()
                            .field("attempts", c.attempts)
                            .field("accepts", c.accepts)
                            .field("accepted_delta", f64_to_value(c.accepted_delta))
                            .field("probability", f64_to_value(c.probability))
                            .field("scale", f64_to_value(c.scale))
                            .field("total_attempts", c.total_attempts)
                            .field("total_accepts", c.total_accepts)
                            .build()
                    })
                    .collect(),
            ),
        )
        .build()
}

fn stats_from_value(v: &Value) -> Result<MoveStatsSnapshot, SerError> {
    let classes = field(v, "classes")?
        .as_arr()
        .ok_or_else(|| err("classes is not an array"))?
        .iter()
        .map(|c| {
            Ok(ClassStats {
                attempts: usize_field(c, "attempts")?,
                accepts: usize_field(c, "accepts")?,
                accepted_delta: f64_field(c, "accepted_delta")?,
                probability: f64_field(c, "probability")?,
                scale: f64_field(c, "scale")?,
                total_attempts: usize_field(c, "total_attempts")?,
                total_accepts: usize_field(c, "total_accepts")?,
            })
        })
        .collect::<Result<Vec<_>, SerError>>()?;
    Ok(MoveStatsSnapshot {
        classes,
        window: usize_field(v, "window")?,
        seen: usize_field(v, "seen")?,
        p_min: f64_field(v, "p_min")?,
    })
}

fn schedule_to_value(s: &ScheduleSnapshot) -> Value {
    ObjBuilder::new()
        .field("temperature", f64_to_value(s.temperature))
        .field("accept_est", f64_to_value(s.accept_est))
        .field("total_moves", s.total_moves)
        .field("done_moves", s.done_moves)
        .field("smoothing", f64_to_value(s.smoothing))
        .build()
}

fn schedule_from_value(v: &Value) -> Result<ScheduleSnapshot, SerError> {
    Ok(ScheduleSnapshot {
        temperature: f64_field(v, "temperature")?,
        accept_est: f64_field(v, "accept_est")?,
        total_moves: usize_field(v, "total_moves")?,
        done_moves: usize_field(v, "done_moves")?,
        smoothing: f64_field(v, "smoothing")?,
    })
}

fn trace_to_value(t: &Trace) -> Value {
    ObjBuilder::new()
        .field(
            "names",
            t.names.iter().map(String::as_str).collect::<Value>(),
        )
        .field(
            "points",
            Value::Arr(
                t.points
                    .iter()
                    .map(|p| {
                        ObjBuilder::new()
                            .field("move_index", p.move_index)
                            .field("cost", f64_to_value(p.cost))
                            .field("best_cost", f64_to_value(p.best_cost))
                            .field("temperature", f64_to_value(p.temperature))
                            .field("acceptance", f64_to_value(p.acceptance))
                            .field("telemetry", f64_vec_value(&p.telemetry))
                            .build()
                    })
                    .collect(),
            ),
        )
        .build()
}

fn trace_from_value(v: &Value) -> Result<Trace, SerError> {
    let names = field(v, "names")?
        .as_arr()
        .ok_or_else(|| err("names is not an array"))?
        .iter()
        .map(|n| {
            n.as_str()
                .map(str::to_string)
                .ok_or_else(|| err("trace name is not a string"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let points = field(v, "points")?
        .as_arr()
        .ok_or_else(|| err("points is not an array"))?
        .iter()
        .map(|p| {
            Ok(TracePoint {
                move_index: usize_field(p, "move_index")?,
                cost: f64_field(p, "cost")?,
                best_cost: f64_field(p, "best_cost")?,
                temperature: f64_field(p, "temperature")?,
                acceptance: f64_field(p, "acceptance")?,
                telemetry: f64_vec(p, "telemetry")?,
            })
        })
        .collect::<Result<Vec<_>, SerError>>()?;
    Ok(Trace { names, points })
}

fn engine_to_value(e: &AnnealCheckpoint<OblxState>) -> Value {
    ObjBuilder::new()
        .field(
            "phase",
            match e.phase {
                Phase::Main => "main",
                Phase::Quench => "quench",
            },
        )
        .field(
            "rng",
            Value::Arr(e.rng.iter().map(|&w| u64_to_value(w)).collect()),
        )
        .field("stats", stats_to_value(&e.stats))
        .field("schedule", schedule_to_value(&e.schedule))
        .field("state", state_to_value(&e.state))
        .field("cost", f64_to_value(e.cost))
        .field("best_state", state_to_value(&e.best_state))
        .field("best_cost", f64_to_value(e.best_cost))
        .field("attempted", e.attempted)
        .field("accepted", e.accepted)
        .field("since_improvement", e.since_improvement)
        .field("trace", trace_to_value(&e.trace))
        .build()
}

fn engine_from_value(v: &Value) -> Result<AnnealCheckpoint<OblxState>, SerError> {
    let phase = match str_field(v, "phase")?.as_str() {
        "main" => Phase::Main,
        "quench" => Phase::Quench,
        other => return Err(err(format!("unknown phase `{other}`"))),
    };
    let rng_words = field(v, "rng")?
        .as_arr()
        .ok_or_else(|| err("rng is not an array"))?
        .iter()
        .map(u64_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let rng: [u64; 4] = rng_words
        .try_into()
        .map_err(|_| err("rng must hold 4 words"))?;
    Ok(AnnealCheckpoint {
        phase,
        rng,
        stats: stats_from_value(field(v, "stats")?)?,
        schedule: schedule_from_value(field(v, "schedule")?)?,
        state: state_from_value(field(v, "state")?)?,
        cost: f64_field(v, "cost")?,
        best_state: state_from_value(field(v, "best_state")?)?,
        best_cost: f64_field(v, "best_cost")?,
        attempted: usize_field(v, "attempted")?,
        accepted: usize_field(v, "accepted")?,
        since_improvement: usize_field(v, "since_improvement")?,
        trace: trace_from_value(field(v, "trace")?)?,
    })
}

fn weights_to_value(w: &WeightsSnapshot) -> Value {
    ObjBuilder::new()
        .field("goal_w", f64_vec_value(&w.goal_w))
        .field("adaptable", w.adaptable.iter().copied().collect::<Value>())
        .field("kcl_w", f64_vec_value(&w.kcl_w))
        .field("device_w", f64_to_value(w.device_w))
        .field("kcl_ramp", f64_to_value(w.kcl_ramp))
        .field("violation_acc", f64_vec_value(&w.violation_acc))
        .field("kcl_acc", f64_vec_value(&w.kcl_acc))
        .field("samples", w.samples)
        .build()
}

fn weights_from_value(v: &Value) -> Result<WeightsSnapshot, SerError> {
    let adaptable = field(v, "adaptable")?
        .as_arr()
        .ok_or_else(|| err("adaptable is not an array"))?
        .iter()
        .map(|b| b.as_bool().ok_or_else(|| err("adaptable entry not bool")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WeightsSnapshot {
        goal_w: f64_vec(v, "goal_w")?,
        adaptable,
        kcl_w: f64_vec(v, "kcl_w")?,
        device_w: f64_field(v, "device_w")?,
        kcl_ramp: f64_field(v, "kcl_ramp")?,
        violation_acc: f64_vec(v, "violation_acc")?,
        kcl_acc: f64_vec(v, "kcl_acc")?,
        samples: usize_field(v, "samples")?,
    })
}

// ---------------------------------------------------------------------
// SynthesisCheckpoint envelope.

/// Serializes a [`SynthesisCheckpoint`] into its versioned JSON
/// envelope.
pub fn checkpoint_to_json(ck: &SynthesisCheckpoint) -> String {
    ObjBuilder::new()
        .field("format", "oblx-checkpoint")
        .field("version", CHECKPOINT_VERSION)
        .field("seed", u64_to_value(ck.seed))
        .field("moves_budget", ck.moves_budget)
        .field("evals", ck.evals)
        .field("wall_seconds", f64_to_value(ck.wall_seconds))
        .field("weights", weights_to_value(&ck.weights))
        .field("engine", engine_to_value(&ck.engine))
        .build()
        .to_json()
}

/// Parses a checkpoint envelope.
///
/// # Errors
///
/// [`SerError`] on malformed JSON, a different `format`/`version`, or
/// missing fields — callers treat any of these as "no usable
/// checkpoint" and restart the run from scratch.
pub fn checkpoint_from_json(text: &str) -> Result<SynthesisCheckpoint, SerError> {
    let v = json::parse(text)?;
    check_format(&v, "oblx-checkpoint", CHECKPOINT_VERSION)?;
    Ok(SynthesisCheckpoint {
        seed: u64_field(&v, "seed")?,
        moves_budget: usize_field(&v, "moves_budget")?,
        evals: usize_field(&v, "evals")?,
        wall_seconds: f64_field(&v, "wall_seconds")?,
        weights: weights_from_value(field(&v, "weights")?)?,
        engine: engine_from_value(field(&v, "engine")?)?,
    })
}

// ---------------------------------------------------------------------
// Job files.

/// A synthesis job: everything a worker needs to run one design.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Human-readable job name (shown in status output).
    pub name: String,
    /// The `.ox` problem description source.
    pub source: String,
    /// Process-deck label (see `oblx_devices::process::ProcessDeck::
    /// label`) whose `.model` cards are appended before compiling, or
    /// empty when `source` is self-contained.
    pub deck: String,
    /// Synthesis options (the per-seed runs override only `seed`).
    pub options: SynthesisOptions,
    /// Seeds to run; the best frozen-weight result wins.
    pub seeds: Vec<u64>,
    /// Scheduling priority: higher runs first; ties are FIFO.
    pub priority: i64,
}

/// A job request plus its queue identity, as stored in a spool
/// directory.
#[derive(Debug, Clone, PartialEq)]
pub struct JobFile {
    /// Unique job id (also the file stem).
    pub id: String,
    /// Submission sequence number (FIFO tie-break within a priority).
    pub seq: u64,
    /// The request itself.
    pub request: JobRequest,
}

impl SynthesisOptions {
    fn eq_fields(&self, other: &Self) -> bool {
        self.moves_budget == other.moves_budget
            && self.seed == other.seed
            && self.trace_every == other.trace_every
            && self.weight_update_every == other.weight_update_every
            && self.points_per_decade == other.points_per_decade
            && self.quench_patience == other.quench_patience
            && self.awe_order == other.awe_order
            && self.disable_newton_moves == other.disable_newton_moves
            && self.disable_adaptive_weights == other.disable_adaptive_weights
    }
}

impl PartialEq for SynthesisOptions {
    fn eq(&self, other: &Self) -> bool {
        self.eq_fields(other)
    }
}

/// Serializes a [`JobFile`].
pub fn job_to_json(job: &JobFile) -> String {
    ObjBuilder::new()
        .field("format", "oblx-job")
        .field("version", JOB_VERSION)
        .field("id", job.id.as_str())
        .field("seq", u64_to_value(job.seq))
        .field("name", job.request.name.as_str())
        .field("priority", job.request.priority)
        .field(
            "seeds",
            Value::Arr(job.request.seeds.iter().map(|&s| u64_to_value(s)).collect()),
        )
        .field("options", options_to_value(&job.request.options))
        .field("deck", job.request.deck.as_str())
        .field("source", job.request.source.as_str())
        .build()
        .to_json()
}

/// Parses a [`JobFile`].
///
/// # Errors
///
/// [`SerError`] on malformed JSON, a different `format`/`version`, or
/// missing fields.
pub fn job_from_json(text: &str) -> Result<JobFile, SerError> {
    let v = json::parse(text)?;
    check_format(&v, "oblx-job", JOB_VERSION)?;
    let seeds = field(&v, "seeds")?
        .as_arr()
        .ok_or_else(|| err("seeds is not an array"))?
        .iter()
        .map(u64_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    if seeds.is_empty() {
        return Err(err("job has no seeds"));
    }
    Ok(JobFile {
        id: str_field(&v, "id")?,
        seq: u64_field(&v, "seq")?,
        request: JobRequest {
            name: str_field(&v, "name")?,
            source: str_field(&v, "source")?,
            deck: str_field(&v, "deck")?,
            options: options_from_value(field(&v, "options")?)?,
            seeds,
            priority: field(&v, "priority")?
                .as_int()
                .ok_or_else(|| err("priority is not an integer"))?,
        },
    })
}

// ---------------------------------------------------------------------
// Atomic file IO.

/// Writes `contents` to `path` atomically: the bytes land in a
/// temporary sibling first and are renamed into place, so a reader (or
/// a crash) never observes a torn file.
///
/// # Errors
///
/// Any I/O error from the write or rename.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    name.push_str(".tmp");
    path.with_file_name(name)
}

/// Loads a checkpoint file, returning `None` when the file is missing,
/// torn, or of a foreign version — every case where the only safe
/// answer is "start over".
pub fn load_checkpoint(path: &Path) -> Option<SynthesisCheckpoint> {
    let text = std::fs::read_to_string(path).ok()?;
    checkpoint_from_json(&text).ok()
}

/// The checkpoint file path for one per-seed run.
pub fn checkpoint_path(dir: &Path, seed: u64) -> PathBuf {
    dir.join(format!("seed_{seed}.ckpt.json"))
}

/// The fence-qualified checkpoint path for one per-seed run. Fence 0 is
/// the legacy unfenced name; positive fences embed the token in the
/// filename (`seed_<s>.f<fence>.ckpt.json`). The token makes stale
/// writers harmless on shared storage: a claim-holder that lost its
/// lease keeps writing its *own* fence's file, which can never shadow
/// the file of the higher-fence holder that took over — readers always
/// prefer the highest fence present ([`load_latest_checkpoint`]).
pub fn fenced_checkpoint_path(dir: &Path, seed: u64, fence: u64) -> PathBuf {
    if fence == 0 {
        checkpoint_path(dir, seed)
    } else {
        dir.join(format!("seed_{seed}.f{fence}.ckpt.json"))
    }
}

/// Fence tokens that have a checkpoint file for `seed` in `dir` (0 for
/// the legacy unfenced file), in no particular order.
fn checkpoint_fences(dir: &Path, seed: u64) -> Vec<u64> {
    let legacy = format!("seed_{seed}.ckpt.json");
    let fenced_prefix = format!("seed_{seed}.f");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut fences = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name == legacy {
            fences.push(0);
        } else if let Some(mid) = name
            .strip_prefix(&fenced_prefix)
            .and_then(|rest| rest.strip_suffix(".ckpt.json"))
        {
            if let Ok(fence) = mid.parse::<u64>() {
                fences.push(fence);
            }
        }
    }
    fences
}

/// Loads the newest (highest-fence) valid checkpoint of `seed` in
/// `dir`, returning it with its fence token. Torn or foreign-version
/// files are skipped in favor of the next-newest fence.
pub fn load_latest_checkpoint(dir: &Path, seed: u64) -> Option<(u64, SynthesisCheckpoint)> {
    let mut fences = checkpoint_fences(dir, seed);
    fences.sort_unstable_by(|a, b| b.cmp(a));
    fences.into_iter().find_map(|fence| {
        load_checkpoint(&fenced_checkpoint_path(dir, seed, fence)).map(|ck| (fence, ck))
    })
}

/// Removes every checkpoint file of `seed` in `dir`, at every fence.
/// Called once the seed has a durable done-record.
pub fn remove_checkpoints(dir: &Path, seed: u64) {
    for fence in checkpoint_fences(dir, seed) {
        let _ = std::fs::remove_file(fenced_checkpoint_path(dir, seed, fence));
    }
}

// ---------------------------------------------------------------------
// Spool submission — the client side of the `oblxd` on-disk protocol.
// The full queue/worker machinery lives in the runtime crate; the
// submit path is here so thin clients (`astrx submit`) need only the
// core library.

/// Allocates the next submission sequence number in a spool root,
/// protected against concurrent submitters by a lock file (stale locks
/// older than 5 s are broken).
///
/// # Errors
///
/// Any I/O error, or lock starvation.
pub fn spool_next_seq(root: &Path) -> std::io::Result<u64> {
    use std::io;
    let lock = root.join("seq.lock");
    let seq_path = root.join("seq");
    for _ in 0..5000 {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock)
        {
            Ok(_) => {
                let next = std::fs::read_to_string(&seq_path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u64>().ok())
                    .unwrap_or(0)
                    + 1;
                let res = write_atomic(&seq_path, &next.to_string());
                let _ = std::fs::remove_file(&lock);
                return res.map(|()| next);
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let stale = std::fs::metadata(&lock)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|m| m.elapsed().ok())
                    .is_some_and(|age| age.as_secs() >= 5);
                if stale {
                    let _ = std::fs::remove_file(&lock);
                } else {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(std::io::Error::other("seq lock busy"))
}

/// Submits a job into the spool rooted at `root`: assigns the next id
/// and writes `queue/<id>.json` atomically. Creates the spool
/// directories as needed — a client can submit before the daemon's
/// first start.
///
/// # Errors
///
/// Any I/O error.
pub fn spool_submit(root: &Path, request: JobRequest) -> std::io::Result<JobFile> {
    let queue = root.join("queue");
    std::fs::create_dir_all(&queue)?;
    let seq = spool_next_seq(root)?;
    let job = JobFile {
        id: format!("j{seq:06}"),
        seq,
        request,
    };
    write_atomic(&queue.join(format!("{}.json", job.id)), &job_to_json(&job))?;
    Ok(job)
}

// ---------------------------------------------------------------------
// Checkpointed multi-seed synthesis.

/// [`crate::oblx::synthesize_multi`] with per-seed checkpointing: every
/// `every` proposals each per-seed run writes its checkpoint to
/// `dir/seed_<seed>.ckpt.json` (atomically), and any run whose
/// checkpoint file already exists resumes from it instead of starting
/// over. Checkpoints of completed seeds are removed. A run killed at
/// any instant therefore loses at most `every` proposals of work, and
/// the final result is bit-identical to an uninterrupted run.
///
/// # Panics
///
/// If `seeds` is empty or `every` is zero.
///
/// # Errors
///
/// As for [`crate::oblx::synthesize_multi`].
pub fn synthesize_multi_resumable(
    compiled: &CompiledProblem,
    opts: &SynthesisOptions,
    seeds: &[u64],
    threads: usize,
    dir: &Path,
    every: usize,
) -> Result<MultiSynthesisResult, EvalFailure> {
    assert!(every > 0, "checkpoint interval must be positive");
    std::fs::create_dir_all(dir).ok();
    synthesize_multi_with(compiled, opts, seeds, threads, |seed, run_opts| {
        let outcome = run_seed_resumable(compiled, run_opts, dir, every, |_| Directive::Continue)?;
        match outcome {
            SynthesisOutcome::Complete(r) => {
                let _ = std::fs::remove_file(checkpoint_path(dir, seed));
                Ok(*r)
            }
            SynthesisOutcome::Interrupted(_) => {
                unreachable!("control always continues")
            }
        }
    })
}

/// Runs one seed with checkpointing into `dir`, resuming from an
/// existing checkpoint file when present. `control` is consulted at
/// every checkpoint (after it has been persisted); returning
/// [`Directive::Stop`] aborts the run, yielding
/// [`SynthesisOutcome::Interrupted`] — the checkpoint file stays behind
/// for the next resume.
///
/// # Errors
///
/// [`EvalFailure`] as for [`synthesize_controlled`].
pub fn run_seed_resumable(
    compiled: &CompiledProblem,
    run_opts: &SynthesisOptions,
    dir: &Path,
    every: usize,
    control: impl FnMut(&SynthesisCheckpoint) -> Directive,
) -> Result<SynthesisOutcome, EvalFailure> {
    run_seed_resumable_fenced(compiled, run_opts, dir, every, 0, control)
}

/// [`run_seed_resumable`] under a fencing token: checkpoints are
/// written to [`fenced_checkpoint_path`] for `fence`, and the run
/// resumes from the highest-fence valid checkpoint present — which is
/// at most `fence` itself for the current claim-holder, or a lower
/// fence left by a previous (possibly still-zombie) holder. Resuming
/// from a zombie's last checkpoint is always safe: resume is
/// bit-identical, so redoing the zombie's unpublished tail work
/// reproduces it exactly.
///
/// # Errors
///
/// [`EvalFailure`] as for [`synthesize_controlled`].
pub fn run_seed_resumable_fenced(
    compiled: &CompiledProblem,
    run_opts: &SynthesisOptions,
    dir: &Path,
    every: usize,
    fence: u64,
    mut control: impl FnMut(&SynthesisCheckpoint) -> Directive,
) -> Result<SynthesisOutcome, EvalFailure> {
    let path = fenced_checkpoint_path(dir, run_opts.seed, fence);
    let resume = load_latest_checkpoint(dir, run_opts.seed)
        .filter(|(f, ck)| {
            *f <= fence && ck.seed == run_opts.seed && ck.moves_budget == run_opts.moves_budget
        })
        .map(|(_, ck)| ck);
    synthesize_controlled(compiled, run_opts, resume.as_ref(), every, |ck| {
        let _ = write_atomic(&path, &checkpoint_to_json(ck));
        control(ck)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> JobRequest {
        JobRequest {
            name: "diffamp".into(),
            source: "* a netlist\n.end\n".into(),
            deck: "BSIM/2u".into(),
            options: SynthesisOptions {
                moves_budget: 1234,
                seed: u64::MAX - 3,
                ..SynthesisOptions::default()
            },
            seeds: vec![1, 2, u64::MAX],
            priority: -2,
        }
    }

    #[test]
    fn job_roundtrip_is_identity() {
        let job = JobFile {
            id: "job-00ab".into(),
            seq: 7,
            request: request(),
        };
        let text = job_to_json(&job);
        let back = job_from_json(&text).unwrap();
        assert_eq!(job, back);
    }

    #[test]
    fn job_version_gate() {
        let text = job_to_json(&JobFile {
            id: "x".into(),
            seq: 1,
            request: request(),
        })
        .replace("\"version\":1", "\"version\":2");
        assert!(job_from_json(&text).is_err());
        assert!(job_from_json("{\"format\":\"oblx-job\"}").is_err());
        assert!(job_from_json("not json").is_err());
    }

    #[test]
    fn options_roundtrip_extreme_values() {
        let o = SynthesisOptions {
            moves_budget: usize::MAX >> 12,
            seed: u64::MAX,
            trace_every: 0,
            weight_update_every: 1,
            points_per_decade: 99,
            quench_patience: 0,
            awe_order: 7,
            disable_newton_moves: true,
            disable_adaptive_weights: true,
        };
        let back = options_from_value(&options_to_value(&o)).unwrap();
        assert_eq!(o, back);
    }

    #[test]
    fn atomic_write_replaces_not_tears() {
        let dir = std::env::temp_dir().join(format!("oblx-jobs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.json");
        write_atomic(&path, "first").unwrap();
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        // A stray tmp file from a crashed writer is not the real file.
        std::fs::write(tmp_sibling(&path), "garbage").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_loads_as_none() {
        let dir = std::env::temp_dir().join(format!("oblx-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = checkpoint_path(&dir, 3);
        assert!(load_checkpoint(&path).is_none(), "missing file");
        std::fs::write(&path, "{\"format\":\"oblx-checkpoint\",\"version\":1,").unwrap();
        assert!(load_checkpoint(&path).is_none(), "torn file");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
