//! C-code emission.
//!
//! The 1994 implementation of ASTRX *generated C source* implementing
//! `C(x)` for each synthesis problem, compiled it, and linked it
//! against OBLX. In this reproduction OBLX interprets the compiled
//! structure directly (Rust closures beat 1994-era codegen), but the
//! emitter below produces the equivalent C text — fully unrolled
//! stamp-level code, as the original did — so that Table 1's
//! "Lines of C" statistic can be measured the same way.

use crate::astrx::CompiledProblem;
use oblx_mna::{LinElement, SizedCircuit};
use oblx_netlist::SpecKind;
use std::fmt::Write as _;

fn node_ref(n: Option<usize>) -> String {
    match n {
        None => "GND".to_string(),
        Some(i) => format!("{i}"),
    }
}

/// Emits the unrolled stamps of one linear element into matrix `mat`
/// (`G` or `C`), mimicking the generated evaluators of the original
/// tool: one line per non-zero matrix update.
fn emit_two_terminal(s: &mut String, mat: &str, p: Option<usize>, m: Option<usize>, val: &str) {
    if let Some(p) = p {
        let _ = writeln!(s, "  {mat}[{p}][{p}] += {val};");
    }
    if let Some(m) = m {
        let _ = writeln!(s, "  {mat}[{m}][{m}] += {val};");
    }
    if let (Some(p), Some(m)) = (p, m) {
        let _ = writeln!(s, "  {mat}[{p}][{m}] -= {val};");
        let _ = writeln!(s, "  {mat}[{m}][{p}] -= {val};");
    }
}

fn emit_vccs(
    s: &mut String,
    mat: &str,
    p: Option<usize>,
    m: Option<usize>,
    cp: Option<usize>,
    cm: Option<usize>,
    val: &str,
) {
    for (out, sign_out) in [(p, "+"), (m, "-")] {
        let Some(o) = out else { continue };
        for (ctl, sign_ctl) in [(cp, "+"), (cm, "-")] {
            let Some(c) = ctl else { continue };
            let op = if sign_out == sign_ctl { "+=" } else { "-=" };
            let _ = writeln!(s, "  {mat}[{o}][{c}] {op} {val};");
        }
    }
}

fn emit_linear(s: &mut String, el: &LinElement, name: &str, n: usize) {
    let _ = writeln!(s, "  /* {name} */");
    match *el {
        LinElement::Resistor { p, m, g } => {
            emit_two_terminal(s, "G", p, m, &format!("{g:.6e}"));
        }
        LinElement::Capacitor { p, m, c } => {
            emit_two_terminal(s, "C", p, m, &format!("{c:.6e}"));
        }
        LinElement::Inductor { p, m, l, branch } => {
            let b = n + branch;
            let _ = writeln!(s, "  G[{}][{b}] += 1.0;", node_ref(p));
            let _ = writeln!(s, "  G[{}][{b}] -= 1.0;", node_ref(m));
            let _ = writeln!(s, "  G[{b}][{}] += 1.0;", node_ref(p));
            let _ = writeln!(s, "  G[{b}][{}] -= 1.0;", node_ref(m));
            let _ = writeln!(s, "  C[{b}][{b}] -= {l:.6e};");
        }
        LinElement::Vsource {
            p,
            m,
            dc,
            ac,
            branch,
        } => {
            let b = n + branch;
            if let Some(p) = p {
                let _ = writeln!(s, "  G[{p}][{b}] += 1.0;");
                let _ = writeln!(s, "  G[{b}][{p}] += 1.0;");
            }
            if let Some(m) = m {
                let _ = writeln!(s, "  G[{m}][{b}] -= 1.0;");
                let _ = writeln!(s, "  G[{b}][{m}] -= 1.0;");
            }
            let _ = writeln!(s, "  rhs[{b}] += {dc:.6e} * src_scale;");
            if ac != 0.0 {
                let _ = writeln!(s, "  b_ac[{b}] += {ac:.6e};");
            }
        }
        LinElement::Isource { p, m, dc, ac } => {
            if let Some(p) = p {
                let _ = writeln!(s, "  rhs[{p}] -= {dc:.6e} * src_scale;");
                if ac != 0.0 {
                    let _ = writeln!(s, "  b_ac[{p}] -= {ac:.6e};");
                }
            }
            if let Some(m) = m {
                let _ = writeln!(s, "  rhs[{m}] += {dc:.6e} * src_scale;");
                if ac != 0.0 {
                    let _ = writeln!(s, "  b_ac[{m}] += {ac:.6e};");
                }
            }
        }
        LinElement::Vcvs {
            p,
            m,
            cp,
            cm,
            gain,
            branch,
        } => {
            let b = n + branch;
            if let Some(p) = p {
                let _ = writeln!(s, "  G[{p}][{b}] += 1.0;");
                let _ = writeln!(s, "  G[{b}][{p}] += 1.0;");
            }
            if let Some(m) = m {
                let _ = writeln!(s, "  G[{m}][{b}] -= 1.0;");
                let _ = writeln!(s, "  G[{b}][{m}] -= 1.0;");
            }
            if let Some(cp) = cp {
                let _ = writeln!(s, "  G[{b}][{cp}] -= {gain:.6e};");
            }
            if let Some(cm) = cm {
                let _ = writeln!(s, "  G[{b}][{cm}] += {gain:.6e};");
            }
        }
        LinElement::Vccs { p, m, cp, cm, gm } => {
            emit_vccs(s, "G", p, m, cp, cm, &format!("{gm:.6e}"));
        }
    }
}

/// Emits the C implementation of the compiled cost function.
///
/// The code is complete and self-consistent: runtime declarations,
/// bias-state unpacking, one fully unrolled block per device evaluation
/// and Jacobian stamp, per-element small-signal stamps for every jig,
/// the AWE driver per `.pz` card, and per-goal normalization.
pub fn emit_c(compiled: &CompiledProblem) -> String {
    let mut s = String::new();
    let p = |s: &mut String, line: &str| {
        s.push_str(line);
        s.push('\n');
    };

    p(&mut s, "/* generated by astrx: cost function C(x) */");
    p(&mut s, "#include <math.h>");
    p(&mut s, "#include \"oblx_runtime.h\"");
    p(&mut s, "");
    p(&mut s, "/* independent variable map */");
    for (i, v) in compiled.user_vars.iter().enumerate() {
        let _ = writeln!(s, "#define X_{} x[{}] /* user var `{}` */", i, i, v.name);
    }
    let nu = compiled.user_vars.len();
    for (k, n) in compiled.node_vars.iter().enumerate() {
        let _ = writeln!(
            s,
            "#define V_{} x[{}] /* relaxed-dc node `{}` */",
            k,
            nu + k,
            n
        );
    }
    p(&mut s, "");
    p(
        &mut s,
        "double astrx_cost(const double *x, oblx_ctx *ctx) {",
    );
    p(
        &mut s,
        "  double c_obj = 0.0, c_perf = 0.0, c_dev = 0.0, c_dc = 0.0;",
    );
    p(&mut s, "  const double src_scale = 1.0;");

    // Bias circuit: device evaluations and KCL accumulation.
    let vars = compiled.var_map(&compiled.initial_user_values());
    if let Ok(bias) = SizedCircuit::build(&compiled.bias_netlist, &vars, &compiled.lib) {
        p(&mut s, "");
        p(
            &mut s,
            "  /* --- large-signal bias circuit (relaxed dc) --- */",
        );
        let node = |n: Option<usize>| -> String {
            match n {
                None => "0.0".to_string(),
                Some(i) => format!("bias_v[{i}]"),
            }
        };
        let dim = bias.dim();
        let _ = writeln!(s, "  double bias_v[{}];", bias.nodes.len());
        p(&mut s, "  oblx_unpack_bias(x, bias_v, ctx);");
        let _ = writeln!(s, "  double kcl[{dim}];");
        let _ = writeln!(s, "  double G[{dim}][{dim}], C[{dim}][{dim}];");
        let _ = writeln!(s, "  double rhs[{dim}], b_ac[{dim}];");
        p(&mut s, "  oblx_clear(G, C, rhs, b_ac, kcl);");
        p(&mut s, "");
        p(&mut s, "  /* linear-element stamps */");
        for (el, name) in bias.linear.iter().zip(bias.linear_names.iter()) {
            emit_linear(&mut s, el, name, bias.nodes.len());
        }
        p(&mut s, "");
        p(&mut s, "  /* encapsulated device evaluations */");
        for (i, m) in bias.mosfets.iter().enumerate() {
            let _ = writeln!(s, "  /* mosfet `{}` ({}) */", m.name, m.model.name());
            let _ = writeln!(
                s,
                "  mos_op op_m{i} = mos_eval(ctx->mos[{i}], {:.6e}, {:.6e},",
                m.w, m.l
            );
            let _ = writeln!(
                s,
                "      {}, {}, {}, {});",
                node(m.d),
                node(m.g),
                node(m.s),
                node(m.b)
            );
            if let Some(d) = m.d {
                let _ = writeln!(s, "  kcl[{d}] += op_m{i}.id;");
            }
            if let Some(src) = m.s {
                let _ = writeln!(s, "  kcl[{src}] -= op_m{i}.id;");
            }
            // Jacobian stamps, one line per entry as the generated
            // evaluators wrote them.
            let gsum = format!("(op_m{i}.gm + op_m{i}.gds + op_m{i}.gmbs)");
            if let Some(d) = m.d {
                let _ = writeln!(s, "  J[{d}][{}] += op_m{i}.gds;", node_ref(m.d));
                if let Some(g) = m.g {
                    let _ = writeln!(s, "  J[{d}][{g}] += op_m{i}.gm;");
                }
                if let Some(b) = m.b {
                    let _ = writeln!(s, "  J[{d}][{b}] += op_m{i}.gmbs;");
                }
                if let Some(sn) = m.s {
                    let _ = writeln!(s, "  J[{d}][{sn}] -= {gsum};");
                }
            }
            if let Some(sn) = m.s {
                let _ = writeln!(s, "  J[{sn}][{}] -= op_m{i}.gds;", node_ref(m.d));
                if let Some(g) = m.g {
                    let _ = writeln!(s, "  J[{sn}][{g}] -= op_m{i}.gm;");
                }
                if let Some(b) = m.b {
                    let _ = writeln!(s, "  J[{sn}][{b}] -= op_m{i}.gmbs;");
                }
                let _ = writeln!(s, "  J[{sn}][{sn}] += {gsum};");
            }
            let _ = writeln!(s, "  c_dev += w_dev * region_penalty(&op_m{i});");
        }
        for (i, q) in bias.bjts.iter().enumerate() {
            let _ = writeln!(s, "  /* bjt `{}` */", q.name);
            let _ = writeln!(
                s,
                "  bjt_op op_q{i} = bjt_eval(ctx->bjt[{i}], {:.3}, {}, {}, {});",
                q.area,
                node(q.c),
                node(q.b),
                node(q.e)
            );
            if let Some(c) = q.c {
                let _ = writeln!(s, "  kcl[{c}] += op_q{i}.ic;");
            }
            if let Some(b) = q.b {
                let _ = writeln!(s, "  kcl[{b}] += op_q{i}.ib;");
            }
            if let Some(e) = q.e {
                let _ = writeln!(s, "  kcl[{e}] -= op_q{i}.ic + op_q{i}.ib;");
            }
            for (row, cur) in [(q.c, "ic"), (q.b, "ib")] {
                let Some(r) = row else { continue };
                if let Some(b) = q.b {
                    let _ = writeln!(s, "  J[{r}][{b}] += d_{cur}_dvbe(&op_q{i});");
                }
                if let Some(c) = q.c {
                    let _ = writeln!(s, "  J[{r}][{c}] += d_{cur}_dvce(&op_q{i});");
                }
                if let Some(e) = q.e {
                    let _ = writeln!(s, "  J[{r}][{e}] -= d_{cur}_dve(&op_q{i});");
                }
            }
            let _ = writeln!(s, "  c_dev += w_dev * bjt_region_penalty(&op_q{i});");
        }
        p(&mut s, "");
        p(
            &mut s,
            "  /* accumulate linear-element currents into kcl */",
        );
        let _ = writeln!(s, "  oblx_accumulate_kcl(G, bias_v, rhs, kcl, {dim});");
        p(&mut s, "  /* KCL penalty per free node */");
        for (k, n) in compiled.node_vars.iter().enumerate() {
            let _ = writeln!(
                s,
                "  c_dc += w_kcl[{k}] * kcl_penalty(kcl_at(ctx, {k}, kcl)); /* node `{n}` */"
            );
        }
    }

    // Jigs: fully unrolled AWE circuits.
    for jig in &compiled.jigs {
        p(&mut s, "");
        let _ = writeln!(s, "  /* --- small-signal jig `{}` (awe) --- */", jig.name);
        if let Ok(ckt) = SizedCircuit::build(&jig.netlist, &vars, &compiled.lib) {
            let dim = ckt.dim();
            let _ = writeln!(s, "  {{");
            let _ = writeln!(s, "  double G[{dim}][{dim}], C[{dim}][{dim}];");
            let _ = writeln!(s, "  double rhs[{dim}], b_ac[{dim}];");
            p(&mut s, "  oblx_clear_ac(G, C, rhs, b_ac);");
            for (el, name) in ckt.linear.iter().zip(ckt.linear_names.iter()) {
                emit_linear(&mut s, el, name, ckt.nodes.len());
            }
            for m in &ckt.mosfets {
                let _ = writeln!(s, "  /* small-signal template of `{}` */", m.name);
                let _ = writeln!(
                    s,
                    "  mos_op *ss_{} = mos_small_signal(ctx, \"{}\");",
                    mangle(&m.name),
                    m.name
                );
                let v = |q: &str| format!("ss_{}->{}", mangle(&m.name), q);
                emit_vccs(&mut s, "G", m.d, m.s, m.g, m.s, &v("gm"));
                emit_two_terminal(&mut s, "G", m.d, m.s, &v("gds"));
                emit_vccs(&mut s, "G", m.d, m.s, m.b, m.s, &v("gmbs"));
                emit_two_terminal(&mut s, "C", m.g, m.s, &v("cgs"));
                emit_two_terminal(&mut s, "C", m.g, m.d, &v("cgd"));
                emit_two_terminal(&mut s, "C", m.g, m.b, &v("cgb"));
                emit_two_terminal(&mut s, "C", m.b, m.d, &v("cbd"));
                emit_two_terminal(&mut s, "C", m.b, m.s, &v("cbs"));
            }
            for q in &ckt.bjts {
                let _ = writeln!(s, "  /* small-signal template of `{}` */", q.name);
                let _ = writeln!(
                    s,
                    "  bjt_op *ss_{} = bjt_small_signal(ctx, \"{}\");",
                    mangle(&q.name),
                    q.name
                );
                let v = |f: &str| format!("ss_{}->{}", mangle(&q.name), f);
                emit_vccs(&mut s, "G", q.c, q.e, q.b, q.e, &v("gm"));
                emit_two_terminal(&mut s, "G", q.c, q.e, &v("go"));
                emit_two_terminal(&mut s, "G", q.b, q.e, &v("gpi"));
                emit_vccs(&mut s, "G", q.b, q.e, q.c, q.e, &v("gmu"));
                emit_two_terminal(&mut s, "C", q.b, q.e, &v("cpi"));
                emit_two_terminal(&mut s, "C", q.b, q.c, &v("cmu"));
            }
            for a in &jig.analyses {
                let outm = a.out_m.clone().unwrap_or_else(|| "0".to_string());
                let _ = writeln!(
                    s,
                    "  /* .pz {}: v({},{}) / {} */",
                    a.name, a.out_p, outm, a.source
                );
                let _ = writeln!(s, "  awe_lu_factor(G, {dim});");
                let _ = writeln!(
                    s,
                    "  awe_moments(G, C, b_ac, mu_{}, {});",
                    a.name,
                    2 * crate::cost::AWE_ORDER
                );
                let _ = writeln!(
                    s,
                    "  awe_model {} = awe_pade(mu_{}, {});",
                    a.name,
                    a.name,
                    crate::cost::AWE_ORDER
                );
            }
            let _ = writeln!(s, "  }}");
        }
    }

    // Goals.
    p(&mut s, "");
    p(&mut s, "  /* --- performance goals --- */");
    for (gi, goal) in compiled.problem.specs.iter().enumerate() {
        let _ = writeln!(
            s,
            "  /* {} `{}`: {} */",
            kind_label(goal.kind),
            goal.name,
            goal.expr
        );
        let _ = writeln!(s, "  double v_{} = eval_expr(ctx, {gi});", goal.name);
        let _ = writeln!(
            s,
            "  double z_{} = (v_{} - {:.6e}) / ({:.6e});",
            goal.name,
            goal.name,
            goal.good,
            goal.bad - goal.good
        );
        match goal.kind {
            SpecKind::Objective => {
                let _ = writeln!(s, "  c_obj += w_goal[{gi}] * fmax(z_{}, -3.0);", goal.name);
            }
            SpecKind::Constraint => {
                let _ = writeln!(s, "  c_perf += w_goal[{gi}] * fmax(z_{}, 0.0);", goal.name);
            }
        }
    }

    p(&mut s, "");
    p(&mut s, "  return c_obj + c_perf + c_dev + c_dc;");
    p(&mut s, "}");
    s
}

fn mangle(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn kind_label(kind: SpecKind) -> &'static str {
    match kind {
        SpecKind::Objective => "objective",
        SpecKind::Constraint => "constraint",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astrx::compile_source;

    #[test]
    fn emits_complete_function() {
        let c = compile_source(include_str!("testdata/diffamp.ox")).unwrap();
        let code = emit_c(&c);
        assert!(code.contains("double astrx_cost"));
        assert!(code.contains("return c_obj + c_perf + c_dev + c_dc;"));
        // One define per variable.
        assert!(code.contains("user var `w`"));
        assert!(code.contains("relaxed-dc node `out+`"));
        // Device evals, Jacobian stamps, and KCL lines present.
        assert!(code.contains("mos_eval"));
        assert!(code.contains("kcl_penalty"));
        assert!(code.contains("J["));
        // Unrolled small-signal stamps per jig and the AWE driver.
        assert!(code.contains("mos_small_signal"));
        assert!(code.contains("awe_pade"));
        // Goal normalization encodes good/bad.
        assert!(code.contains("z_adm"));
        // Balanced braces.
        let open = code.matches('{').count();
        let close = code.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn line_count_scales_with_circuit_size() {
        let small = compile_source(include_str!("testdata/diffamp.ox")).unwrap();
        let small_lines = emit_c(&small).lines().count();
        assert!(small_lines > 150, "got {small_lines}");
        // A benchmark circuit has more devices/nodes, so more lines.
        let big = crate::bench_suite::by_name("Folded Cascode").unwrap();
        let big_c = crate::astrx::compile(big.problem().unwrap()).unwrap();
        assert!(
            big_c.stats.c_lines > 2 * small_lines,
            "{} vs {}",
            big_c.stats.c_lines,
            small_lines
        );
    }
}
