//! The §VI benchmark suite: seven circuit topologies that blanket the
//! previously published analog synthesis results.
//!
//! Each benchmark carries its complete ASTRX description (topology,
//! test jigs, bias circuit, variables, specifications) plus the
//! corresponding row of the paper's Table 1 for shape comparison. The
//! process decks are the representative stand-ins of
//! [`oblx_devices::process`] (the paper's foundry decks are
//! proprietary), so *absolute* numbers differ while the workload
//! *structure* — device counts, variable counts, spec mixes — tracks
//! the paper.

use oblx_devices::process::ProcessDeck;
use oblx_netlist::{parse_problem, ParseError, Problem};

/// The paper's Table 1 row for a benchmark (for side-by-side reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperTable1 {
    /// Netlist/model input lines.
    pub netlist_lines: usize,
    /// Synthesis-specific input lines.
    pub synthesis_lines: usize,
    /// User-supplied variables.
    pub user_vars: usize,
    /// Added node-voltage variables.
    pub node_vars: usize,
    /// Cost-function terms.
    pub terms: usize,
    /// Lines of generated C.
    pub c_lines: usize,
    /// Bias circuit (nodes, elements).
    pub bias: (usize, usize),
    /// First AWE circuit (nodes, elements).
    pub awe: (usize, usize),
}

/// One benchmark circuit.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name (matches the paper's column heading).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Process/model deck to synthesize against.
    pub deck: ProcessDeck,
    /// The ASTRX problem description (models come from the deck).
    pub source: &'static str,
    /// The paper's Table 1 row.
    pub paper: PaperTable1,
    /// The paper's CPU minutes per annealing run (Table 2/3), if
    /// reported.
    pub paper_cpu_minutes: Option<f64>,
    /// The paper's per-evaluation time (ms), if reported.
    pub paper_ms_per_eval: Option<f64>,
}

impl Benchmark {
    /// Parses the description and attaches the deck's model cards.
    ///
    /// # Errors
    ///
    /// [`ParseError`] if the embedded source is malformed (a bug —
    /// covered by tests).
    pub fn problem(&self) -> Result<Problem, ParseError> {
        self.problem_with_deck(self.deck)
    }

    /// Parses the description against an alternative process deck (the
    /// §VI model-choice experiment).
    ///
    /// # Errors
    ///
    /// [`ParseError`] as for [`Benchmark::problem`].
    pub fn problem_with_deck(&self, deck: ProcessDeck) -> Result<Problem, ParseError> {
        let mut p = parse_problem(self.source)?;
        p.models.extend(deck.cards());
        Ok(p)
    }
}

/// All seven benchmarks, in the paper's column order.
pub fn all() -> Vec<Benchmark> {
    vec![
        simple_ota(),
        ota(),
        two_stage(),
        folded_cascode(),
        comparator(),
        bicmos_two_stage(),
        novel_folded_cascode(),
    ]
}

/// Looks up a benchmark by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

/// Simple OTA: the 5-transistor transconductance amplifier plus tail
/// mirror — the most-published synthesis benchmark.
pub fn simple_ota() -> Benchmark {
    Benchmark {
        name: "Simple OTA",
        description: "5T OTA with tail mirror, single-ended output",
        deck: ProcessDeck::C2Bsim,
        source: r#"
.title simple ota
.var W1 4u 400u log
.var L1 2u 20u log
.var W3 4u 400u log
.var L3 2u 20u log
.var W5 4u 400u log
.var L5 2u 20u log
.var IB 5u 1m log

.subckt ota in+ in- out nvdd nvss
m1 x1 in+ t nvss nmos w='W1' l='L1'
m2 out in- t nvss nmos w='W1' l='L1'
m3 x1 x1 nvdd nvdd pmos w='W3' l='L3'
m4 out x1 nvdd nvdd pmos w='W3' l='L3'
m5 t bg nvss nvss nmos w='W5' l='L5'
m6 bg bg nvss nvss nmos w='W5' l='L5'
ib nvdd bg 'IB'
.ends

.jig acjig
xamp in+ in- out nvdd nvss ota
vdd nvdd 0 5
vss nvss 0 0
vin in+ 0 2.5 ac 1
vip in- 0 2.5
cl out 0 1p
.pz tf v(out) vin
.endjig

.jig vddjig
xamp in+ in- out nvdd nvss ota
vdd nvdd 0 5 ac 1
vss nvss 0 0
vin in+ 0 2.5
vip in- 0 2.5
cl out 0 1p
.pz tfvdd v(out) vdd
.endjig

.jig vssjig
xamp in+ in- out nvdd nvss ota
vdd nvdd 0 5
vss nvss 0 0 ac 1
vin in+ 0 2.5
vip in- 0 2.5
cl out 0 1p
.pz tfvss v(out) vss
.endjig

.bias
xamp in+ in- out nvdd nvss ota
vdd nvdd 0 5
vss nvss 0 0
vc1 in+ 0 2.5
vc2 in- 0 2.5
.endbias

.obj adm 'db(dc_gain(tf))' good=40 bad=10
.spec gbw 'ugf(tf)' good=50Meg bad=500k
.spec pm 'phase_margin(tf)' good=60 bad=20
.spec psrrvss 'db(dc_gain(tf))-db(dc_gain(tfvss))' good=20 bad=0
.spec psrrvdd 'db(dc_gain(tf))-db(dc_gain(tfvdd))' good=20 bad=0
.spec swing '5-xamp.m4.vdsat-xamp.m2.vdsat-xamp.m5.vdsat-0.4' good=2.3 bad=1
.spec sr 'IB/(1p+xamp.m2.cd+xamp.m4.cd)' good=10Meg bad=100k
.spec pwr 'power()' good=1m bad=10m
.obj area 'area()' good=1n bad=100n
"#,
        paper: PaperTable1 {
            netlist_lines: 30,
            synthesis_lines: 28,
            user_vars: 7,
            node_vars: 14,
            terms: 56,
            c_lines: 1443,
            bias: (20, 31),
            awe: (20, 67),
        },
        paper_cpu_minutes: Some(6.0),
        paper_ms_per_eval: Some(36.0),
    }
}

/// OTA: the symmetrical (mirror) OTA — two extra mirror legs.
pub fn ota() -> Benchmark {
    Benchmark {
        name: "OTA",
        description: "symmetrical mirror OTA, single-ended output",
        deck: ProcessDeck::C2Bsim,
        source: r#"
.title mirror ota
.var W1 4u 400u log
.var L1 2u 20u log
.var W3 4u 400u log
.var L3 2u 20u log
.var W5 4u 400u log
.var L5 2u 20u log
.var W7 4u 400u log
.var L7 2u 20u log
.var W9 4u 400u log
.var L9 2u 20u log
.var IB 5u 1m log

.subckt ota in+ in- out nvdd nvss
m1 y1 in+ t nvss nmos w='W1' l='L1'
m2 y2 in- t nvss nmos w='W1' l='L1'
m3 y1 y1 nvdd nvdd pmos w='W3' l='L3'
m4 y2 y2 nvdd nvdd pmos w='W3' l='L3'
m5 z y1 nvdd nvdd pmos w='W5' l='L5'
m6 out y2 nvdd nvdd pmos w='W5' l='L5'
m7 z z nvss nvss nmos w='W7' l='L7'
m8 out z nvss nvss nmos w='W7' l='L7'
m9 t bg nvss nvss nmos w='W9' l='L9'
m10 bg bg nvss nvss nmos w='W9' l='L9'
ib nvdd bg 'IB'
.ends

.jig acjig
xamp in+ in- out nvdd nvss ota
vdd nvdd 0 5
vss nvss 0 0
vin in+ 0 2.5 ac 1
vip in- 0 2.5
cl out 0 1p
.pz tf v(out) vin
.endjig

.jig vddjig
xamp in+ in- out nvdd nvss ota
vdd nvdd 0 5 ac 1
vss nvss 0 0
vin in+ 0 2.5
vip in- 0 2.5
cl out 0 1p
.pz tfvdd v(out) vdd
.endjig

.jig vssjig
xamp in+ in- out nvdd nvss ota
vdd nvdd 0 5
vss nvss 0 0 ac 1
vin in+ 0 2.5
vip in- 0 2.5
cl out 0 1p
.pz tfvss v(out) vss
.endjig

.bias
xamp in+ in- out nvdd nvss ota
vdd nvdd 0 5
vss nvss 0 0
vc1 in+ 0 2.5
vc2 in- 0 2.5
.endbias

.obj adm 'db(dc_gain(tf))' good=40 bad=10
.spec gbw 'ugf(tf)' good=25Meg bad=250k
.spec pm 'phase_margin(tf)' good=45 bad=15
.spec psrrvss 'db(dc_gain(tf))-db(dc_gain(tfvss))' good=40 bad=0
.spec psrrvdd 'db(dc_gain(tf))-db(dc_gain(tfvdd))' good=40 bad=0
.spec swing '5-xamp.m6.vdsat-xamp.m8.vdsat-0.4' good=2.5 bad=1
.spec sr '2*IB/(1p+xamp.m6.cd+xamp.m8.cd)' good=10Meg bad=100k
.spec pwr 'power()' good=1m bad=10m
.obj area 'area()' good=0.9n bad=90n
"#,
        paper: PaperTable1 {
            netlist_lines: 34,
            synthesis_lines: 33,
            user_vars: 11,
            node_vars: 24,
            terms: 85,
            c_lines: 1809,
            bias: (28, 49),
            awe: (29, 114),
        },
        paper_cpu_minutes: Some(9.0),
        paper_ms_per_eval: Some(37.0),
    }
}

/// Two-Stage: the Miller-compensated two-stage op-amp.
pub fn two_stage() -> Benchmark {
    Benchmark {
        name: "Two-Stage",
        description: "Miller-compensated two-stage op-amp",
        deck: ProcessDeck::C2Bsim,
        source: r#"
.title two-stage miller opamp
.var W1 4u 400u log
.var L1 2u 20u log
.var W3 4u 400u log
.var L3 2u 20u log
.var W6 4u 800u log
.var L6 2u 20u log
.var W7 4u 800u log
.var L7 2u 20u log
.var W8 4u 400u log
.var L8 2u 20u log
.var IB 5u 1m log
.var CC 0.5p 30p log

.subckt opamp in+ in- out nvdd nvss
m1 y1 in+ t nvss nmos w='W1' l='L1'
m2 y2 in- t nvss nmos w='W1' l='L1'
m3 y1 y1 nvdd nvdd pmos w='W3' l='L3'
m4 y2 y1 nvdd nvdd pmos w='W3' l='L3'
m6 out y2 nvdd nvdd pmos w='W6' l='L6'
m7 out bg nvss nvss nmos w='W7' l='L7'
m8 t bg nvss nvss nmos w='W8' l='L8'
m9 bg bg nvss nvss nmos w='W8' l='L8'
ib nvdd bg 'IB'
cc out y2 'CC'
.ends

.jig acjig
xamp in+ in- out nvdd nvss opamp
vdd nvdd 0 5
vss nvss 0 0
vin in+ 0 2.5 ac 1
vip in- 0 2.5
cl out 0 1p
.pz tf v(out) vin
.endjig

.jig vddjig
xamp in+ in- out nvdd nvss opamp
vdd nvdd 0 5 ac 1
vss nvss 0 0
vin in+ 0 2.5
vip in- 0 2.5
cl out 0 1p
.pz tfvdd v(out) vdd
.endjig

.jig vssjig
xamp in+ in- out nvdd nvss opamp
vdd nvdd 0 5
vss nvss 0 0 ac 1
vin in+ 0 2.5
vip in- 0 2.5
cl out 0 1p
.pz tfvss v(out) vss
.endjig

.bias
xamp in+ in- out nvdd nvss opamp
vdd nvdd 0 5
vss nvss 0 0
vc1 in+ 0 2.5
vc2 in- 0 2.5
.endbias

.obj adm 'db(dc_gain(tf))' good=60 bad=20
.spec gbw 'ugf(tf)' good=10Meg bad=100k
.spec pm 'phase_margin(tf)' good=45 bad=15
.spec psrrvss 'db(dc_gain(tf))-db(dc_gain(tfvss))' good=20 bad=0
.spec psrrvdd 'db(dc_gain(tf))-db(dc_gain(tfvdd))' good=40 bad=0
.spec swing '5-xamp.m6.vdsat-xamp.m7.vdsat-0.4' good=2 bad=0.8
.spec sr 'min(IB/(CC+1f), 2*IB/(1p+xamp.m6.cd+xamp.m7.cd))' good=2Meg bad=20k
.spec pwr 'power()' good=1m bad=10m
.obj area 'area()' good=2.1n bad=210n
"#,
        paper: PaperTable1 {
            netlist_lines: 43,
            synthesis_lines: 40,
            user_vars: 19,
            node_vars: 26,
            terms: 88,
            c_lines: 1894,
            bias: (34, 54),
            awe: (33, 118),
        },
        paper_cpu_minutes: Some(16.0),
        paper_ms_per_eval: Some(38.0),
    }
}

/// Folded Cascode: p-input folded cascode with cascoded mirror load.
pub fn folded_cascode() -> Benchmark {
    Benchmark {
        name: "Folded Cascode",
        description: "p-input folded cascode, cascoded mirror load",
        deck: ProcessDeck::C2Bsim,
        source: r#"
.title folded cascode opamp
.var W1 8u 800u log
.var L1 2u 20u log
.var WT 8u 800u log
.var LT 2u 20u log
.var W5 4u 400u log
.var L5 2u 20u log
.var W3 4u 400u log
.var L3 2u 20u log
.var W9 4u 400u log
.var L9 2u 20u log
.var W7 4u 400u log
.var L7 2u 20u log
.var IB 10u 2m log
.var VBN2 0.8 2.5 lin cont
.var VBP2 2.5 4.2 lin cont

.subckt fc in+ in- out nvdd nvss
* p input pair and tail
mt tp bp nvdd nvdd pmos w='WT' l='LT'
m1 f1 in+ tp nvdd pmos w='W1' l='L1'
m2 f2 in- tp nvdd pmos w='W1' l='L1'
* tail reference
mr bp bp nvdd nvdd pmos w='WT' l='LT'
ir bp nvss 'IB'
* n current sinks at the fold nodes
m5 f1 bn1 nvss nvss nmos w='W5' l='L5'
m6 f2 bn1 nvss nvss nmos w='W5' l='L5'
* sink bias reference
mn bn1 bn1 nvss nvss nmos w='W5' l='L5'
in nvdd bn1 'IB'
* n cascodes
m3 c1 vn2 f1 nvss nmos w='W3' l='L3'
m4 out vn2 f2 nvss nmos w='W3' l='L3'
* cascoded p mirror on top
m9 y9 c1 nvdd nvdd pmos w='W9' l='L9'
m10 y10 c1 nvdd nvdd pmos w='W9' l='L9'
m7 c1 vp2 y9 nvdd pmos w='W7' l='L7'
m8 out vp2 y10 nvdd pmos w='W7' l='L7'
* cascode gate biases (designed voltages)
vbn2 vn2 0 'VBN2'
vbp2 vp2 0 'VBP2'
.ends

.jig acjig
xamp in+ in- out nvdd nvss fc
vdd nvdd 0 5
vss nvss 0 0
vin in+ 0 2.5 ac 1
vip in- 0 2.5
cl out 0 1.25p
.pz tf v(out) vin
.endjig

.jig vddjig
xamp in+ in- out nvdd nvss fc
vdd nvdd 0 5 ac 1
vss nvss 0 0
vin in+ 0 2.5
vip in- 0 2.5
cl out 0 1.25p
.pz tfvdd v(out) vdd
.endjig

.jig vssjig
xamp in+ in- out nvdd nvss fc
vdd nvdd 0 5
vss nvss 0 0 ac 1
vin in+ 0 2.5
vip in- 0 2.5
cl out 0 1.25p
.pz tfvss v(out) vss
.endjig

.bias
xamp in+ in- out nvdd nvss fc
vdd nvdd 0 5
vss nvss 0 0
vc1 in+ 0 2.5
vc2 in- 0 2.5
.endbias

.spec adm 'db(dc_gain(tf))' good=70 bad=30
.obj gbw 'ugf(tf)' good=70Meg bad=500k
.spec pm 'phase_margin(tf)' good=60 bad=20
.spec psrrvss 'db(dc_gain(tf))-db(dc_gain(tfvss))' good=40 bad=0
.spec psrrvdd 'db(dc_gain(tf))-db(dc_gain(tfvdd))' good=40 bad=0
.spec swing '5-xamp.m8.vdsat-xamp.m10.vdsat-xamp.m4.vdsat-xamp.m6.vdsat-0.4' good=2 bad=0.8
.spec sr 'IB/(1.25p+xamp.m4.cd+xamp.m8.cd)' good=50Meg bad=500k
.spec pwr 'power()' good=15m bad=60m
.obj area 'area()' good=46n bad=4600n
"#,
        paper: PaperTable1 {
            netlist_lines: 65,
            synthesis_lines: 56,
            user_vars: 28,
            node_vars: 70,
            terms: 212,
            c_lines: 3408,
            bias: (75, 138),
            awe: (75, 324),
        },
        paper_cpu_minutes: Some(120.0),
        paper_ms_per_eval: Some(116.0),
    }
}

/// Comparator: a three-stage open-loop comparator (the paper's large
/// benchmark from the companion CICC paper, reduced to its linear
/// measurement set).
pub fn comparator() -> Benchmark {
    Benchmark {
        name: "Comparator",
        description: "three-stage open-loop comparator",
        deck: ProcessDeck::C2Bsim,
        source: r#"
.title three-stage comparator
.var W1 4u 400u log
.var L1 2u 20u log
.var W3 4u 400u log
.var L3 2u 20u log
.var W5 4u 400u log
.var L5 2u 20u log
.var W6 4u 800u log
.var L6 2u 20u log
.var W8 4u 800u log
.var L8 2u 20u log
.var W9 4u 800u log
.var L9 2u 20u log
.var WT 4u 400u log
.var LT 2u 20u log
.var IB 5u 1m log

.subckt cmp in+ in- out nvdd nvss
* stage 1: 5T OTA
m1 x1 in+ t1 nvss nmos w='W1' l='L1'
m2 o1 in- t1 nvss nmos w='W1' l='L1'
m3 x1 x1 nvdd nvdd pmos w='W3' l='L3'
m4 o1 x1 nvdd nvdd pmos w='W3' l='L3'
mt1 t1 bg nvss nvss nmos w='WT' l='LT'
* stage 2: second diff pair taking o1 against a replica reference
m5 x2 o1 t2 nvss nmos w='W5' l='L5'
m5b o2 ref t2 nvss nmos w='W5' l='L5'
m6 x2 x2 nvdd nvdd pmos w='W6' l='L6'
m6b o2 x2 nvdd nvdd pmos w='W6' l='L6'
mt2 t2 bg nvss nvss nmos w='WT' l='LT'
* replica reference: diode-loaded half stage sets the trip point
mrp ref ref nvdd nvdd pmos w='W3' l='L3'
mrn ref bg nvss nvss nmos w='WT' l='LT'
* stage 3: class-A output
m8 out o2 nvdd nvdd pmos w='W8' l='L8'
m9 out bg nvss nvss nmos w='W9' l='L9'
* bias mirror
mb bg bg nvss nvss nmos w='WT' l='LT'
ib nvdd bg 'IB'
.ends

.jig acjig
xamp in+ in- out nvdd nvss cmp
vdd nvdd 0 5
vss nvss 0 0
vin in+ 0 2.5 ac 1
vip in- 0 2.5
cl out 0 0.5p
.pz tf v(out) vin
.endjig

.jig vddjig
xamp in+ in- out nvdd nvss cmp
vdd nvdd 0 5 ac 1
vss nvss 0 0
vin in+ 0 2.5
vip in- 0 2.5
cl out 0 0.5p
.pz tfvdd v(out) vdd
.endjig

.bias
xamp in+ in- out nvdd nvss cmp
vdd nvdd 0 5
vss nvss 0 0
vc1 in+ 0 2.5
vc2 in- 0 2.5
.endbias

.obj gain 'db(dc_gain(tf))' good=80 bad=30
.spec bw 'pole(tf,1)' good=10Meg bad=100k
.spec psrrvdd 'db(dc_gain(tf))-db(dc_gain(tfvdd))' good=20 bad=0
.spec pwr 'power()' good=5m bad=50m
.obj area 'area()' good=5n bad=500n
"#,
        paper: PaperTable1 {
            netlist_lines: 131,
            synthesis_lines: 68,
            user_vars: 19,
            node_vars: 57,
            terms: 169,
            c_lines: 3088,
            bias: (65, 126),
            awe: (63, 265),
        },
        paper_cpu_minutes: None,
        paper_ms_per_eval: None,
    }
}

/// BiCMOS Two-Stage: MOS input pair, bipolar second stage.
pub fn bicmos_two_stage() -> Benchmark {
    Benchmark {
        name: "BiCMOS Two-Stage",
        description: "MOS diff input, npn common-emitter second stage",
        deck: ProcessDeck::BicmosC2,
        source: r#"
.title bicmos two-stage
.var W1 4u 400u log
.var L1 2u 20u log
.var W3 4u 400u log
.var L3 2u 20u log
.var W6 4u 800u log
.var L6 2u 20u log
.var WT 4u 800u log
.var LT 2u 20u log
.var AQ 1 40 log
.var IB 5u 1m log
.var CC 0.5p 30p log

.subckt bic in+ in- out nvdd nvss
* p-input first stage with nmos mirror load, so the second-stage npn
* base (y2) naturally sits near one vbe above ground
mt t pb nvdd nvdd pmos w='WT' l='LT'
m1 y1 in+ t nvdd pmos w='W1' l='L1'
m2 y2 in- t nvdd pmos w='W1' l='L1'
m3 y1 y1 nvss nvss nmos w='W3' l='L3'
m4 y2 y1 nvss nvss nmos w='W3' l='L3'
* npn common-emitter second stage with pmos current-source load
q1 out y2 nvss npn area='AQ'
m6 out pb nvdd nvdd pmos w='W6' l='L6'
* shared pmos bias reference
mpd pb pb nvdd nvdd pmos w='WT' l='LT'
ipd pb nvss 'IB'
cc out y2 'CC'
.ends

.jig acjig
xamp in+ in- out nvdd nvss bic
vdd nvdd 0 5
vss nvss 0 0
vin in+ 0 2.5 ac 1
vip in- 0 2.5
cl out 0 1p
.pz tf v(out) vin
.endjig

.jig vddjig
xamp in+ in- out nvdd nvss bic
vdd nvdd 0 5 ac 1
vss nvss 0 0
vin in+ 0 2.5
vip in- 0 2.5
cl out 0 1p
.pz tfvdd v(out) vdd
.endjig

.jig vssjig
xamp in+ in- out nvdd nvss bic
vdd nvdd 0 5
vss nvss 0 0 ac 1
vin in+ 0 2.5
vip in- 0 2.5
cl out 0 1p
.pz tfvss v(out) vss
.endjig

.bias
xamp in+ in- out nvdd nvss bic
vdd nvdd 0 5
vss nvss 0 0
vc1 in+ 0 2.5
vc2 in- 0 2.5
.endbias

.obj adm 'db(dc_gain(tf))' good=90 bad=30
.spec gbw 'ugf(tf)' good=50Meg bad=500k
.spec pm 'phase_margin(tf)' good=45 bad=15
.spec psrrvss 'db(dc_gain(tf))-db(dc_gain(tfvss))' good=60 bad=0
.spec psrrvdd 'db(dc_gain(tf))-db(dc_gain(tfvdd))' good=40 bad=0
.spec swing '5-xamp.m6.vdsat-0.5' good=2 bad=0.8
.spec sr 'min(IB/(CC+1f), 2*IB/(1p+xamp.m6.cd))' good=10Meg bad=100k
.spec pwr 'power()' good=20m bad=100m
.obj area 'area()' good=11.9n bad=1190n
"#,
        paper: PaperTable1 {
            netlist_lines: 39,
            synthesis_lines: 33,
            user_vars: 12,
            node_vars: 26,
            terms: 86,
            c_lines: 1723,
            bias: (33, 54),
            awe: (32, 105),
        },
        paper_cpu_minutes: Some(12.0),
        paper_ms_per_eval: Some(38.0),
    }
}

/// Novel Folded Cascode: the fully differential folded cascode with
/// cross-coupled positive-feedback loads and resistive CMFB, after
/// Nakamura & Carley — the paper's "no textbook equations exist"
/// stress test.
pub fn novel_folded_cascode() -> Benchmark {
    Benchmark {
        name: "Novel Folded Cascode",
        description: "fully differential folded cascode with positive-feedback loads",
        deck: ProcessDeck::C2Bsim,
        source: r#"
.title novel folded cascode (positive-feedback loads)
.var W1 8u 800u log
.var L1 2u 20u log
.var WT 8u 800u log
.var LT 2u 20u log
.var W5 4u 400u log
.var L5 2u 20u log
.var W3 4u 400u log
.var L3 2u 20u log
.var W9 4u 400u log
.var L9 2u 20u log
.var W7 4u 400u log
.var L7 2u 20u log
.var WX 4u 200u log
.var LX 2u 20u log
.var IB 10u 2m log
.var VBN2 0.8 2.5 lin cont
.var VBP2 2.5 4.2 lin cont

.subckt nfc in+ in- out+ out- nvdd nvss
* p input pair and tail
mt tp bp nvdd nvdd pmos w='WT' l='LT'
m1 f1 in+ tp nvdd pmos w='W1' l='L1'
m2 f2 in- tp nvdd pmos w='W1' l='L1'
mr bp bp nvdd nvdd pmos w='WT' l='LT'
ir bp nvss 'IB'
* n sinks at fold nodes, gates on the CMFB node
m5 f1 cmfb nvss nvss nmos w='W5' l='L5'
m6 f2 cmfb nvss nvss nmos w='W5' l='L5'
* CMFB: diode reference plus resistive common-mode sense
mcf cmfb cmfb nvss nvss nmos w='W5' l='L5'
icf nvdd cmfb 'IB'
rc1 out+ cmfb 1meg
rc2 out- cmfb 1meg
* n cascodes to the differential outputs
m3 out- vn2 f1 nvss nmos w='W3' l='L3'
m4 out+ vn2 f2 nvss nmos w='W3' l='L3'
* p cascode current sources
m9 y9 vbpt nvdd nvdd pmos w='W9' l='L9'
m10 y10 vbpt nvdd nvdd pmos w='W9' l='L9'
m7 out- vp2 y9 nvdd pmos w='W7' l='L7'
m8 out+ vp2 y10 nvdd pmos w='W7' l='L7'
* top-source gate bias from a replica diode
mrp vbpt vbpt nvdd nvdd pmos w='W9' l='L9'
irp vbpt nvss 'IB'
* positive-feedback cross-coupled pair (the novel load)
mx1 out- out+ nvdd nvdd pmos w='WX' l='LX'
mx2 out+ out- nvdd nvdd pmos w='WX' l='LX'
* cascode gate biases
vbn2 vn2 0 'VBN2'
vbp2 vp2 0 'VBP2'
.ends

.jig acjig
xamp in+ in- out+ out- nvdd nvss nfc
vdd nvdd 0 5
vss nvss 0 0
vin in+ 0 0 ac 1
ein in- 0 0 in+ 1
cl1 out+ 0 1p
cl2 out- 0 1p
.pz tf v(out+,out-) vin
.endjig

.jig vddjig
xamp in+ in- out+ out- nvdd nvss nfc
vdd nvdd 0 5 ac 1
vss nvss 0 0
vin in+ 0 2.5
vip in- 0 2.5
cl1 out+ 0 1p
cl2 out- 0 1p
.pz tfvdd v(out+,out-) vdd
.endjig

.jig vssjig
xamp in+ in- out+ out- nvdd nvss nfc
vdd nvdd 0 5
vss nvss 0 0 ac 1
vin in+ 0 2.5
vip in- 0 2.5
cl1 out+ 0 1p
cl2 out- 0 1p
.pz tfvss v(out+,out-) vss
.endjig

.bias
xamp in+ in- out+ out- nvdd nvss nfc
vdd nvdd 0 5
vss nvss 0 0
vc1 in+ 0 2.5
vc2 in- 0 2.5
.endbias

.spec adm 'db(dc_gain(tf))' good=71.2 bad=30
.obj gbw 'ugf(tf)' good=47.8Meg bad=500k
.spec pm 'phase_margin(tf)' good=60 bad=20
.spec psrrvss 'db(dc_gain(tf))-db(dc_gain(tfvss))' good=93 bad=10
.spec psrrvdd 'db(dc_gain(tf))-db(dc_gain(tfvdd))' good=73 bad=10
.spec swing '5-xamp.m8.vdsat-xamp.m10.vdsat-xamp.m4.vdsat-xamp.m6.vdsat-0.4' good=2.8 bad=1
.spec sr 'IB/(1p+xamp.m4.cd+xamp.m8.cd+xamp.mx1.cd)' good=76Meg bad=760k
.spec pwr 'power()' good=25m bad=100m
.obj area 'area()' good=68.7n bad=6870n
"#,
        paper: PaperTable1 {
            netlist_lines: 68,
            synthesis_lines: 51,
            user_vars: 27,
            node_vars: 84,
            terms: 246,
            c_lines: 3960,
            bias: (90, 167),
            awe: (90, 395),
        },
        paper_cpu_minutes: Some(116.0),
        paper_ms_per_eval: Some(83.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblx_devices::ModelLibrary;
    use oblx_mna::SizedCircuit;
    use std::collections::HashMap;

    #[test]
    fn all_benchmarks_parse() {
        for b in all() {
            let p = b.problem().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(!p.jigs.is_empty(), "{}", b.name);
            assert!(!p.bias.is_empty(), "{}", b.name);
            assert!(!p.specs.is_empty(), "{}", b.name);
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("simple ota").is_some());
        assert!(by_name("Novel Folded Cascode").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn device_counts_track_paper_complexity_order() {
        // Device counts must increase from Simple OTA through the
        // Novel Folded Cascode, mirroring Table 1's complexity spread.
        let mut counts = Vec::new();
        for b in [
            simple_ota(),
            ota(),
            folded_cascode(),
            novel_folded_cascode(),
        ] {
            let p = b.problem().unwrap();
            let lib = ModelLibrary::from_cards(&p.models).unwrap();
            let vars: HashMap<String, f64> = p
                .vars
                .iter()
                .map(|v| (v.name.clone(), v.default_initial()))
                .collect();
            let flat = p.bias.flatten(&p.subckts).unwrap();
            let ckt = SizedCircuit::build(&flat, &vars, &lib).unwrap();
            counts.push((b.name, ckt.mosfets.len() + ckt.bjts.len()));
        }
        for pair in counts.windows(2) {
            assert!(
                pair[1].1 > pair[0].1,
                "{:?} should have more devices than {:?}",
                pair[1],
                pair[0]
            );
        }
    }

    #[test]
    fn user_var_counts_match_declarations() {
        for b in all() {
            let p = b.problem().unwrap();
            assert!(
                p.vars.len() >= 7,
                "{}: too few variables ({})",
                b.name,
                p.vars.len()
            );
        }
    }

    #[test]
    fn bicmos_uses_bjt() {
        let p = bicmos_two_stage().problem().unwrap();
        let lib = ModelLibrary::from_cards(&p.models).unwrap();
        assert!(lib.bjt("npn").is_ok());
        let flat = p.bias.flatten(&p.subckts).unwrap();
        let vars: HashMap<String, f64> = p
            .vars
            .iter()
            .map(|v| (v.name.clone(), v.default_initial()))
            .collect();
        let ckt = SizedCircuit::build(&flat, &vars, &lib).unwrap();
        assert_eq!(ckt.bjts.len(), 1);
    }

    #[test]
    fn model_experiment_decks_swap() {
        let b = simple_ota();
        for deck in [
            ProcessDeck::C2Bsim,
            ProcessDeck::C12Bsim,
            ProcessDeck::C12Level3,
        ] {
            let p = b.problem_with_deck(deck).unwrap();
            let lib = ModelLibrary::from_cards(&p.models).unwrap();
            assert!(lib.mos("nmos").is_ok(), "{}", deck.label());
        }
    }
}
