//! A minimal JSON reader/writer.
//!
//! The runtime persists jobs, checkpoints, and event logs as JSON, and
//! the build environment has no network access to a serde stack — so
//! this module provides the small, dependency-free codec the workspace
//! needs. Design points:
//!
//! * Integers parse into [`Value::Int`] (exact for `i64`), everything
//!   else numeric into [`Value::Num`]. Quantities that must round-trip
//!   **bit-exactly** (costs, RNG words, `u64` seeds) are *not* written
//!   as JSON numbers at all — checkpoint serializers hex-encode them as
//!   strings (see `jobs::bits`), sidestepping every float-printing
//!   pitfall.
//! * The writer emits deterministic output (object keys keep insertion
//!   order), so identical checkpoints are byte-identical files — which
//!   lets tests compare snapshots textually.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that parsed exactly as an integer.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload ([`Value::Int`], or a [`Value::Num`] that is
    /// exactly integral).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Num(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(53) => Some(*f as i64),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Num(f) => {
                // JSON has no non-finite literals; map them to null.
                // (Bit-critical floats are hex-encoded strings instead.)
                if f.is_finite() {
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::Int(i64::try_from(i).expect("count fits i64"))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Num(f)
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Value {
        Value::Arr(iter.into_iter().map(Into::into).collect())
    }
}

/// Builder for an object with insertion-ordered keys.
#[derive(Debug, Default)]
pub struct ObjBuilder {
    members: Vec<(String, Value)>,
}

impl ObjBuilder {
    /// An empty object builder.
    pub fn new() -> Self {
        ObjBuilder::default()
    }

    /// Adds a member.
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.members.push((key.to_string(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Value {
        Value::Obj(self.members)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset at which it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing
/// else).
///
/// # Errors
///
/// [`ParseError`] on malformed input.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected {")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected :")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any of
                            // our writers; reject them for simplicity.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("non-scalar \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty by construction");
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice by construction");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parses a JSONL stream: one JSON value per non-empty line. Lines that
/// fail to parse are skipped (a torn final line after a crash must not
/// poison the log).
pub fn parse_lines(input: &str) -> Vec<Value> {
    input
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| parse(l).ok())
        .collect()
}

/// Sorts object keys recursively (useful when comparing documents from
/// writers with different insertion orders).
pub fn canonicalize(v: &Value) -> Value {
    match v {
        Value::Arr(items) => Value::Arr(items.iter().map(canonicalize).collect()),
        Value::Obj(members) => {
            let sorted: BTreeMap<&String, &Value> = members.iter().map(|(k, v)| (k, v)).collect();
            Value::Obj(
                sorted
                    .into_iter()
                    .map(|(k, v)| (k.clone(), canonicalize(v)))
                    .collect(),
            )
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic_document() {
        let v = ObjBuilder::new()
            .field("name", "two-stage \"amp\"\n")
            .field("count", 42usize)
            .field("neg", -7i64)
            .field("ratio", 0.1f64)
            .field("ok", true)
            .field("none", Value::Null)
            .field("list", [1i64, 2, 3].into_iter().collect::<Value>())
            .build();
        let text = v.to_json();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back.get("count").unwrap().as_int(), Some(42));
        assert_eq!(back.get("ratio").unwrap().as_f64(), Some(0.1));
        assert_eq!(
            back.get("name").unwrap().as_str(),
            Some("two-stage \"amp\"\n")
        );
    }

    #[test]
    fn shortest_float_repr_roundtrips_exactly() {
        for f in [
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            -2.2250738585072014e-308,
            123_456_789.123_456_79,
            1e300,
        ] {
            let text = Value::Num(f).to_json();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} via {text}");
        }
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "1 2", "nul", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn jsonl_skips_torn_lines() {
        let lines = "{\"a\":1}\n{\"b\":2}\n{\"c\":"; // torn final line
        let parsed = parse_lines(lines);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].get("b").unwrap().as_int(), Some(2));
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Value::Str("µ-amp \t ∆".into());
        let back = parse(&v.to_json()).unwrap();
        assert_eq!(v, back);
        assert_eq!(parse("\"\\u00b5\"").unwrap().as_str(), Some("µ"));
    }

    #[test]
    fn canonicalize_orders_keys() {
        let a = parse("{\"b\":1,\"a\":{\"z\":1,\"y\":2}}").unwrap();
        let b = parse("{\"a\":{\"y\":2,\"z\":1},\"b\":1}").unwrap();
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }
}
