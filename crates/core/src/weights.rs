//! Adaptive constraint weights.
//!
//! The paper replaces the hand-tuned scalar weights of equation (2)
//! with adaptive algorithms so that "an analog circuit designer can use
//! ASTRX/OBLX without understanding its internal architecture". The
//! scheme here follows the standard adaptive-penalty recipe: a
//! constraint that stays violated across an update window has its
//! weight multiplied up; a constraint comfortably satisfied drifts back
//! down toward 1. KCL constraints additionally ramp with annealing
//! progress, mirroring Fig. 2's requirement that dc-correctness is only
//! *eventually* enforced.

use crate::astrx::CompiledProblem;

/// Per-term adaptive weights for the cost function.
#[derive(Debug, Clone)]
pub struct AdaptiveWeights {
    goal_w: Vec<f64>,
    adaptable: Vec<bool>,
    kcl_w: Vec<f64>,
    device_w: f64,
    kcl_ramp: f64,
    violation_acc: Vec<f64>,
    kcl_acc: Vec<f64>,
    samples: usize,
}

impl AdaptiveWeights {
    /// Upper cap for any adapted weight. A fully violated, fully
    /// railed constraint then costs `MAX_WEIGHT × z` with `z ≤ 100` —
    /// dominant over any objective, but not so steep that the
    /// landscape collapses into all-or-nothing cliffs.
    pub const MAX_WEIGHT: f64 = 300.0;

    /// Uniform initial weights for a compiled problem.
    ///
    /// Only *constraint* goals adapt. Objectives keep weight 1 — an
    /// objective whose weight had been boosted while unmet would later
    /// reward the annealer arbitrarily for overshooting it, corrupting
    /// the cost landscape.
    pub fn new(compiled: &CompiledProblem) -> Self {
        AdaptiveWeights {
            goal_w: vec![1.0; compiled.problem.specs.len()],
            adaptable: compiled
                .problem
                .specs
                .iter()
                .map(|g| g.kind == oblx_netlist::SpecKind::Constraint)
                .collect(),
            kcl_w: vec![1.0; compiled.node_vars.len()],
            device_w: 1.0,
            kcl_ramp: 1.0,
            violation_acc: vec![0.0; compiled.problem.specs.len()],
            kcl_acc: vec![0.0; compiled.node_vars.len()],
            samples: 0,
        }
    }

    /// A frozen end-of-run weight set: uniform goal weights, full KCL
    /// ramp. Used to compare configurations *across* annealing runs,
    /// where each run's adapted weights would otherwise make the costs
    /// incommensurable.
    pub fn frozen_final(compiled: &CompiledProblem) -> Self {
        let mut w = AdaptiveWeights::new(compiled);
        w.kcl_ramp = 30.0;
        w
    }

    /// Weight of goal term `i`.
    pub fn goal(&self, i: usize) -> f64 {
        self.goal_w.get(i).copied().unwrap_or(1.0)
    }

    /// Weight of the KCL term for free node `k`, including the
    /// progress ramp.
    pub fn kcl(&self, k: usize) -> f64 {
        self.kcl_w.get(k).copied().unwrap_or(1.0) * self.kcl_ramp
    }

    /// Weight of the device-region terms.
    pub fn device(&self) -> f64 {
        self.device_w
    }

    /// Captures the full adaptive state for checkpointing.
    pub fn snapshot(&self) -> WeightsSnapshot {
        WeightsSnapshot {
            goal_w: self.goal_w.clone(),
            adaptable: self.adaptable.clone(),
            kcl_w: self.kcl_w.clone(),
            device_w: self.device_w,
            kcl_ramp: self.kcl_ramp,
            violation_acc: self.violation_acc.clone(),
            kcl_acc: self.kcl_acc.clone(),
            samples: self.samples,
        }
    }

    /// Rebuilds the weights from a [`AdaptiveWeights::snapshot`],
    /// continuing the exact adaptation trajectory.
    pub fn from_snapshot(s: WeightsSnapshot) -> Self {
        AdaptiveWeights {
            goal_w: s.goal_w,
            adaptable: s.adaptable,
            kcl_w: s.kcl_w,
            device_w: s.device_w,
            kcl_ramp: s.kcl_ramp,
            violation_acc: s.violation_acc,
            kcl_acc: s.kcl_acc,
            samples: s.samples,
        }
    }

    /// Accumulates the violation profile of an accepted configuration
    /// (`violation` / `kcl_violation` as produced by
    /// [`crate::cost::CostBreakdown`]).
    pub fn observe(&mut self, violation: &[f64], kcl_violation: &[f64]) {
        for (acc, v) in self.violation_acc.iter_mut().zip(violation.iter()) {
            *acc += v.max(0.0);
        }
        for (acc, v) in self.kcl_acc.iter_mut().zip(kcl_violation.iter()) {
            *acc += v.max(0.0);
        }
        self.samples += 1;
    }

    /// Applies one adaptation step from the accumulated observations
    /// and clears them. `progress ∈ [0, 1]` scales the KCL ramp from
    /// 1 up to 30× so dc-correctness dominates late in the run.
    pub fn adapt(&mut self, progress: f64) {
        self.kcl_ramp = 1.0 + 29.0 * progress.clamp(0.0, 1.0).powi(2);
        if self.samples == 0 {
            return;
        }
        let n = self.samples as f64;
        for ((w, acc), adaptable) in self
            .goal_w
            .iter_mut()
            .zip(self.violation_acc.iter_mut())
            .zip(self.adaptable.iter())
        {
            if *adaptable {
                let mean = *acc / n;
                if mean > 0.01 {
                    *w = (*w * 1.3).min(Self::MAX_WEIGHT);
                } else {
                    *w = (*w * 0.9).max(1.0);
                }
            }
            *acc = 0.0;
        }
        // KCL constraints adapt per node like any other constraint —
        // dc-correctness must never be out-shouted by a railed
        // performance weight (the paper drives KCL error to simulator
        // tolerance by freeze-out, Fig. 2).
        for (w, acc) in self.kcl_w.iter_mut().zip(self.kcl_acc.iter_mut()) {
            let mean = *acc / n;
            if mean > 0.01 {
                *w = (*w * 1.3).min(Self::MAX_WEIGHT);
            } else {
                *w = (*w * 0.9).max(1.0);
            }
            *acc = 0.0;
        }
        self.samples = 0;
    }
}

/// A plain-data image of an [`AdaptiveWeights`], for checkpoint/
/// restore. All fields are public so external serializers can write any
/// format.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightsSnapshot {
    /// Per-goal weights.
    pub goal_w: Vec<f64>,
    /// Which goals adapt (constraints, not objectives).
    pub adaptable: Vec<bool>,
    /// Per-free-node KCL weights (without the ramp).
    pub kcl_w: Vec<f64>,
    /// Device-region term weight.
    pub device_w: f64,
    /// Current KCL progress ramp multiplier.
    pub kcl_ramp: f64,
    /// Accumulated goal violations since the last adaptation.
    pub violation_acc: Vec<f64>,
    /// Accumulated KCL violations since the last adaptation.
    pub kcl_acc: Vec<f64>,
    /// Observations accumulated since the last adaptation.
    pub samples: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astrx::compile_source;

    fn compiled() -> CompiledProblem {
        compile_source(include_str!("testdata/diffamp.ox")).unwrap()
    }

    #[test]
    fn starts_uniform() {
        let c = compiled();
        let w = AdaptiveWeights::new(&c);
        assert_eq!(w.goal(0), 1.0);
        assert_eq!(w.kcl(0), 1.0);
        assert_eq!(w.device(), 1.0);
    }

    #[test]
    fn violated_constraints_gain_weight() {
        let c = compiled();
        let mut w = AdaptiveWeights::new(&c);
        for _ in 0..10 {
            w.observe(&[0.0, 0.5, 0.0], &[]);
        }
        w.adapt(0.0);
        assert!(w.goal(1) > 1.0);
        assert_eq!(w.goal(0), 1.0);
        assert_eq!(w.goal(2), 1.0);
    }

    #[test]
    fn satisfied_constraints_relax_back() {
        let c = compiled();
        let mut w = AdaptiveWeights::new(&c);
        for _ in 0..10 {
            w.observe(&[0.0, 1.0, 0.0], &[]);
        }
        w.adapt(0.0);
        let peak = w.goal(1);
        for _ in 0..10 {
            w.observe(&[0.0, 0.0, 0.0], &[]);
            w.adapt(0.0);
        }
        assert!(w.goal(1) < peak);
        assert!(w.goal(1) >= 1.0);
    }

    #[test]
    fn weights_capped() {
        let c = compiled();
        let mut w = AdaptiveWeights::new(&c);
        for _ in 0..200 {
            w.observe(&[1.0, 1.0, 1.0], &[1.0]);
            w.adapt(0.5);
        }
        assert!(w.goal(0) <= AdaptiveWeights::MAX_WEIGHT);
    }

    #[test]
    fn kcl_nodes_adapt_like_constraints() {
        let c = compiled();
        let mut w = AdaptiveWeights::new(&c);
        for _ in 0..10 {
            w.observe(&[0.0, 0.0, 0.0], &[5.0, 0.0, 0.0]);
        }
        w.adapt(0.0);
        assert!(w.kcl(0) > w.kcl(1), "violated node gains weight");
    }

    #[test]
    fn frozen_final_is_uniform_with_full_ramp() {
        let c = compiled();
        let w = AdaptiveWeights::frozen_final(&c);
        assert_eq!(w.goal(0), 1.0);
        assert_eq!(w.kcl(0), 30.0);
    }

    #[test]
    fn kcl_ramp_grows_with_progress() {
        let c = compiled();
        let mut w = AdaptiveWeights::new(&c);
        w.adapt(0.0);
        let early = w.kcl(0);
        w.adapt(1.0);
        let late = w.kcl(0);
        assert!(late > 10.0 * early);
    }
}
