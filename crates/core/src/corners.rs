//! Operating-corner verification — the paper's stated "highest
//! priority for future effort": checking a synthesized design's
//! performance *over varying operating conditions*, which the manual
//! designer of Table 3 traded nominal performance for.
//!
//! A [`Corner`] perturbs the device-model parameter deck (slow/fast
//! carrier mobility, threshold-voltage shifts) the way foundry corner
//! files do; [`verify_corners`] re-runs the full simulator-side
//! verification at each corner and reports the spread.

use crate::astrx::CompiledProblem;
use crate::cost::EvalFailure;
use crate::oblx::OblxState;
use crate::verify::{verify_design, VerifiedDesign};
use oblx_devices::ModelLibrary;
use oblx_netlist::ModelCard;

/// A process corner: multiplicative/additive perturbations applied to
/// every MOS model card (and proportionally to bipolar `bf`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Display name (`tt`, `ss`, `ff`, …).
    pub name: &'static str,
    /// Multiplier on carrier mobility / transconductance (`kp`, `u0`,
    /// and bipolar `bf`).
    pub gain_scale: f64,
    /// Additive shift on threshold magnitude (V): positive = slower.
    pub vth_shift: f64,
}

/// The classic five-corner set (typical, slow, fast, and the two
/// skewed corners).
pub fn standard_corners() -> Vec<Corner> {
    vec![
        Corner {
            name: "tt",
            gain_scale: 1.0,
            vth_shift: 0.0,
        },
        Corner {
            name: "ss",
            gain_scale: 0.85,
            vth_shift: 0.05,
        },
        Corner {
            name: "ff",
            gain_scale: 1.15,
            vth_shift: -0.05,
        },
        Corner {
            name: "sf",
            gain_scale: 0.925,
            vth_shift: -0.025,
        },
        Corner {
            name: "fs",
            gain_scale: 1.075,
            vth_shift: 0.025,
        },
    ]
}

/// Applies a corner to one model card.
fn perturb_card(card: &ModelCard, corner: &Corner) -> ModelCard {
    let mut out = card.clone();
    let scale = |p: &mut std::collections::HashMap<String, f64>, key: &str, f: f64| {
        if let Some(v) = p.get_mut(key) {
            *v *= f;
        }
    };
    match card.kind.as_str() {
        "nmos" | "pmos" => {
            scale(&mut out.params, "kp", corner.gain_scale);
            scale(&mut out.params, "u0", corner.gain_scale);
            // Threshold: |vto| grows when slow. NMOS vto > 0, PMOS
            // vto < 0 on the card (SPICE convention).
            if let Some(v) = out.params.get_mut("vto") {
                *v += corner.vth_shift * v.signum();
            }
            // BSIM-style cards encode the threshold via vfb (more
            // negative = higher NMOS vth in the normalized frame).
            if let Some(v) = out.params.get_mut("vfb") {
                *v -= corner.vth_shift;
            }
        }
        "npn" | "pnp" => {
            scale(&mut out.params, "bf", corner.gain_scale);
            scale(&mut out.params, "is", corner.gain_scale);
        }
        _ => {}
    }
    out
}

/// A compiled problem re-targeted at a perturbed model deck.
///
/// # Errors
///
/// [`EvalFailure::Build`] when the perturbed deck cannot build a model
/// library (should not happen for the standard corners).
pub fn at_corner(
    compiled: &CompiledProblem,
    corner: &Corner,
) -> Result<CompiledProblem, EvalFailure> {
    let cards: Vec<ModelCard> = compiled
        .problem
        .models
        .iter()
        .map(|c| perturb_card(c, corner))
        .collect();
    let lib = ModelLibrary::from_cards(&cards).map_err(|e| EvalFailure::Build(e.to_string()))?;
    let mut out = compiled.clone();
    out.lib = lib;
    out.problem.models = cards;
    Ok(out)
}

/// One corner's verification outcome.
#[derive(Debug, Clone)]
pub struct CornerResult {
    /// Corner name.
    pub name: &'static str,
    /// Simulator-side verification at this corner (predictions are the
    /// nominal OBLX numbers, so the rows show nominal-vs-corner drift).
    pub verified: VerifiedDesign,
}

/// Verifies a synthesized configuration at every given corner.
///
/// The bias is re-solved per corner — devices shift regions, currents
/// move — and every goal is re-measured through the simulator path.
///
/// # Errors
///
/// [`EvalFailure`] if any corner fails to bias or measure (a design
/// that cannot even bias at a corner has failed that corner).
pub fn verify_corners(
    compiled: &CompiledProblem,
    state: &OblxState,
    nominal_predictions: &[(String, f64)],
    corners: &[Corner],
) -> Result<Vec<CornerResult>, EvalFailure> {
    let mut out = Vec::with_capacity(corners.len());
    for corner in corners {
        let cp = at_corner(compiled, corner)?;
        let verified = verify_design(&cp, state, nominal_predictions)?;
        out.push(CornerResult {
            name: corner.name,
            verified,
        });
    }
    Ok(out)
}

/// Worst-case value of a goal across corners: the minimum for
/// larger-is-better goals, the maximum otherwise.
pub fn worst_case(results: &[CornerResult], goal: &str, maximize: bool) -> Option<f64> {
    let values = results.iter().filter_map(|r| {
        r.verified
            .rows
            .iter()
            .find(|(n, _, _)| n == goal)
            .map(|(_, _, sim)| *sim)
    });
    if maximize {
        values.min_by(|a, b| a.partial_cmp(b).expect("finite"))
    } else {
        values.max_by(|a, b| a.partial_cmp(b).expect("finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite;
    use crate::oblx::{synthesize, SynthesisOptions};

    #[test]
    fn corners_shift_performance_but_design_still_biases() {
        let b = bench_suite::simple_ota();
        let compiled = crate::astrx::compile(b.problem().unwrap()).unwrap();
        let result = synthesize(
            &compiled,
            &SynthesisOptions {
                moves_budget: 6_000,
                seed: 1,
                quench_patience: 300,
                ..SynthesisOptions::default()
            },
        )
        .unwrap();

        let corners = standard_corners();
        let results = verify_corners(&compiled, &result.state, &result.measured, &corners).unwrap();
        assert_eq!(results.len(), 5);

        // Bandwidth tracks mobility (gm/Cl), so it must spread across
        // corners. (dc gain can be corner-insensitive here: with
        // DIBL-dominated output conductance, gm and gds track.)
        let gbws: Vec<f64> = results
            .iter()
            .map(|r| {
                r.verified
                    .rows
                    .iter()
                    .find(|(n, _, _)| n == "gbw")
                    .map(|(_, _, s)| *s)
                    .unwrap()
            })
            .collect();
        let hi = gbws.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let lo = gbws.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(
            (hi - lo) / hi > 0.02,
            "corner gbw spread = {:.2}%: {gbws:?}",
            100.0 * (hi - lo) / hi
        );

        // Worst case is no better than the best corner.
        let wc = worst_case(&results, "gbw", true).unwrap();
        assert!((wc - lo).abs() < 1e-9 * lo.abs().max(1.0));
    }

    #[test]
    fn slow_corner_reduces_current() {
        // A slow corner must reduce a fixed-bias device current.
        let b = bench_suite::simple_ota();
        let compiled = crate::astrx::compile(b.problem().unwrap()).unwrap();
        let ss = Corner {
            name: "ss",
            gain_scale: 0.85,
            vth_shift: 0.05,
        };
        let cp = at_corner(&compiled, &ss).unwrap();
        let nom = compiled.lib.mos("nmos").unwrap();
        let slow = cp.lib.mos("nmos").unwrap();
        let id_nom = nom.op(20e-6, 2e-6, 2.5, 2.0, 0.0, 0.0).id;
        let id_slow = slow.op(20e-6, 2e-6, 2.5, 2.0, 0.0, 0.0).id;
        assert!(
            id_slow < 0.95 * id_nom,
            "slow corner current {id_slow} vs nominal {id_nom}"
        );
    }

    #[test]
    fn standard_corner_set_shape() {
        let c = standard_corners();
        assert_eq!(c.len(), 5);
        assert_eq!(c[0].name, "tt");
        assert_eq!(c[0].gain_scale, 1.0);
        assert!(c.iter().any(|x| x.gain_scale < 1.0));
        assert!(c.iter().any(|x| x.gain_scale > 1.0));
    }
}
