//! **astrx-oblx** — equation-free synthesis of high-performance analog
//! circuits.
//!
//! A from-scratch Rust reproduction of Ochotta, Rutenbar & Carley,
//! *"ASTRX/OBLX: Tools for Rapid Synthesis of High-Performance Analog
//! Circuits"*, DAC 1994. The system sizes and biases a fixed circuit
//! topology to meet user-supplied linear performance specifications
//! **without designer-derived performance equations**:
//!
//! * [`astrx::compile`] (**ASTRX**) translates a SPICE-flavoured problem
//!   description — topology, test jigs, bias circuit, `.var`/`.obj`/
//!   `.spec` cards — into an executable cost function `C(x)`. It
//!   determines the independent variable set `x` (user variables plus
//!   the bias-circuit node voltages that a tree–link analysis cannot pin
//!   down), writes Kirchhoff-law penalty terms for the **relaxed-dc
//!   formulation**, builds the small-signal AWE circuits for each jig,
//!   and can emit the equivalent C code (the 1994 implementation
//!   compiled and linked this; we interpret the same structure and emit
//!   the text for Table 1's statistics).
//! * [`oblx::synthesize`] (**OBLX**) minimizes `C(x)` by simulated
//!   annealing: a Lam-scheduled Metropolis loop over a move set mixing
//!   random perturbations of discrete (log-grid) device sizes and
//!   continuous node voltages with full and partial Newton–Raphson
//!   dc moves, selected adaptively by Hustin statistics, with adaptive
//!   constraint weights in place of hand-tuned scalar constants.
//! * [`verify`] replays the synthesized design through the independent
//!   SPICE-class simulator (`oblx-mna`) — full Newton–Raphson bias solve
//!   plus direct per-frequency ac analysis — producing the
//!   "OBLX / Simulation" comparison columns of the paper's Tables 2–3.
//! * [`bench_suite`] ships the seven benchmark topologies of §VI.
//!
//! # Quickstart
//!
//! ```no_run
//! use astrx_oblx::{astrx, oblx};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = std::fs::read_to_string("amp.ox")?;
//! let compiled = astrx::compile_source(&source)?;
//! let result = oblx::synthesize(&compiled, &oblx::SynthesisOptions::default())?;
//! println!("best cost {:.4}", result.best_cost);
//! for (name, value) in &result.measured {
//!     println!("{name}: {value:.4e}");
//! }
//! # Ok(())
//! # }
//! ```

pub mod astrx;
pub mod bench_suite;
pub mod corners;
pub mod cost;
pub mod emit;
pub mod jobs;
pub mod json;
pub mod oblx;
mod plan;
pub mod report;
pub mod verify;
mod weights;
pub mod yield_mc;

pub use astrx::{compile, compile_source, CompileError, CompileStats, CompiledProblem};
pub use corners::{standard_corners, verify_corners, Corner, CornerResult};
pub use cost::{CostBreakdown, CostEvaluator, EvalFailure, EvalStats};
pub use jobs::JobRequest;
pub use oblx::{
    synthesize, synthesize_controlled, synthesize_multi, MultiSynthesisResult, OblxProblem,
    SeedRunStats, SynthesisCheckpoint, SynthesisOptions, SynthesisOutcome, SynthesisResult,
};
pub use verify::{verify_design, verify_design_with, VerifiedDesign};
pub use weights::{AdaptiveWeights, WeightsSnapshot};
pub use yield_mc::{yield_mc, YieldOptions, YieldResult};
