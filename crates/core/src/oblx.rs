//! OBLX — the annealing solution library.
//!
//! OBLX minimizes the cost function ASTRX compiled. The annealing state
//! is the variable vector `x`: discrete (log-grid) device geometries and
//! continuous values among the user variables, plus the continuous
//! relaxed-dc node voltages. The move set mixes random perturbations
//! with full and partial Newton–Raphson jumps on the node voltages
//! (paper §V.A); Hustin statistics in `oblx-anneal` decide the mix.

use crate::astrx::{determined_voltages, CompiledProblem};
use crate::cost::{CostBreakdown, CostEvaluator};
use crate::weights::{AdaptiveWeights, WeightsSnapshot};
use oblx_anneal::{
    AnnealCheckpoint, AnnealOptions, AnnealProblem, Annealer, ControlledOutcome, Directive,
    DirtySet, Trace,
};
use oblx_linalg::{Lu, Mat};
use oblx_mna::{dc::linearize_at, SizedCircuit};
use oblx_netlist::VarScale;
use rand::{Rng, RngExt};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Synthesis run options.
#[derive(Debug, Clone)]
pub struct SynthesisOptions {
    /// Annealing move budget.
    pub moves_budget: usize,
    /// RNG seed.
    pub seed: u64,
    /// Trace sampling interval (0 disables).
    pub trace_every: usize,
    /// Evaluations between adaptive-weight updates.
    pub weight_update_every: usize,
    /// Discrete grid density (points per decade on log variables).
    pub points_per_decade: usize,
    /// Quench patience (greedy attempts without improvement).
    pub quench_patience: usize,
    /// AWE model order used inside the cost function.
    pub awe_order: usize,
    /// Ablation switch: disable the Newton–Raphson move classes
    /// (forces purely random node-voltage exploration).
    pub disable_newton_moves: bool,
    /// Ablation switch: freeze all weights at 1 (no adaptation, no
    /// KCL ramp).
    pub disable_adaptive_weights: bool,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            moves_budget: 40_000,
            seed: 1,
            trace_every: 0,
            weight_update_every: 500,
            points_per_decade: 25,
            quench_patience: 2_000,
            awe_order: crate::cost::AWE_ORDER,
            disable_newton_moves: false,
            disable_adaptive_weights: false,
        }
    }
}

/// The annealing state: user-variable values plus relaxed-dc node
/// voltages.
#[derive(Debug, Clone, PartialEq)]
pub struct OblxState {
    /// User variable values in declaration order.
    pub user: Vec<f64>,
    /// Free bias-node voltages in node-var order.
    pub nodes: Vec<f64>,
}

/// Result of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// Best configuration found.
    pub state: OblxState,
    /// Its cost.
    pub best_cost: f64,
    /// Cost decomposition at the best configuration (final weights).
    pub breakdown: CostBreakdown,
    /// `(goal name, measured value)` pairs at the best configuration.
    pub measured: Vec<(String, f64)>,
    /// `(variable name, value)` pairs.
    pub variables: Vec<(String, f64)>,
    /// Worst KCL residual at the best configuration (A).
    pub kcl_max: f64,
    /// Annealing trace (empty unless tracing was enabled).
    pub trace: Trace,
    /// Total proposals.
    pub attempted: usize,
    /// Total cost evaluations.
    pub evaluations: usize,
    /// Wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Mean milliseconds per circuit evaluation — Table 2's
    /// "time/ckt. eval" row.
    pub ms_per_eval: f64,
    /// Cost evaluations per wall-clock second.
    pub evals_per_sec: f64,
    /// Annealing proposals per wall-clock second.
    pub moves_per_sec: f64,
    /// Fraction of evaluations served without a full plan update
    /// (incremental re-evaluations plus exact-state cache hits). Zero
    /// when the evaluator runs without a precompiled plan.
    pub cache_hit_ratio: f64,
}

impl SynthesisResult {
    /// The value of a named user variable.
    pub fn var(&self, name: &str) -> Option<f64> {
        self.variables
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The measured value of a named goal.
    pub fn measure(&self, name: &str) -> Option<f64> {
        self.measured
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// The OBLX annealing problem: binds the compiled cost function to the
/// generic annealing engine.
pub struct OblxProblem<'a> {
    compiled: &'a CompiledProblem,
    evaluator: CostEvaluator<'a>,
    weights: AdaptiveWeights,
    opts: SynthesisOptions,
    evals: usize,
    grid_steps: Vec<f64>,
    node_lo: f64,
    node_hi: f64,
}

/// Move-class indices (public so diagnostics can name them).
pub mod move_class {
    /// Perturb one user variable (grid step for discrete, range step
    /// for continuous).
    pub const USER_SINGLE: usize = 0;
    /// Perturb a couple of user variables together.
    pub const USER_MULTI: usize = 1;
    /// Perturb one relaxed-dc node voltage.
    pub const NODE_SINGLE: usize = 2;
    /// Jitter all node voltages slightly.
    pub const NODE_ALL: usize = 3;
    /// Full Newton–Raphson jump toward dc-correctness.
    pub const NEWTON_FULL: usize = 4;
    /// Damped (30%) Newton–Raphson step.
    pub const NEWTON_PARTIAL: usize = 5;
    /// Compound move: perturb one user variable, then immediately
    /// Newton-correct the node voltages. Without this, any geometry
    /// change late in the run breaks Kirchhoff correctness and is
    /// rejected by the (by-then dominant) KCL weights — the compound
    /// move keeps geometry exploration alive after dc lock-in.
    pub const USER_WITH_NEWTON: usize = 6;
    /// Number of classes.
    pub const COUNT: usize = 7;

    /// Human-readable class names, indexed by class constant (used by
    /// telemetry snapshots and diagnostics).
    pub const NAMES: [&str; COUNT] = [
        "user_single",
        "user_multi",
        "node_single",
        "node_all",
        "newton_full",
        "newton_partial",
        "user_with_newton",
    ];
}

impl<'a> OblxProblem<'a> {
    /// Creates the problem for a compiled description.
    pub fn new(compiled: &'a CompiledProblem, opts: SynthesisOptions) -> Self {
        // Cold path, once per problem: label the telemetry move-class
        // slots so snapshots render real names instead of `class<i>`.
        oblx_telemetry::set_class_names(&move_class::NAMES);
        // Node-voltage exploration range: span of determined voltages
        // (the supplies) widened by a volt on each side.
        let vars = compiled.var_map(&compiled.initial_user_values());
        let (mut lo, mut hi) = (0.0f64, 0.0f64);
        if let Ok(bias) = SizedCircuit::build(&compiled.bias_netlist, &vars, &compiled.lib) {
            for v in determined_voltages(&bias).into_iter().flatten() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        let grid_steps = compiled
            .user_vars
            .iter()
            .map(|v| match v.scale {
                VarScale::Log => {
                    (v.max / v.min).ln()
                        / ((v.max / v.min).log10() * opts.points_per_decade as f64).max(1.0)
                }
                VarScale::Lin => (v.max - v.min) / 100.0,
            })
            .collect();
        OblxProblem {
            compiled,
            evaluator: CostEvaluator::with_awe_order(compiled, opts.awe_order),
            weights: AdaptiveWeights::new(compiled),
            opts,
            evals: 0,
            grid_steps,
            node_lo: lo - 1.0,
            node_hi: hi + 1.0,
        }
    }

    /// The adaptive weights (final values after a run).
    pub fn weights(&self) -> &AdaptiveWeights {
        &self.weights
    }

    /// Number of cost evaluations so far.
    pub fn evaluations(&self) -> usize {
        self.evals
    }

    /// Snaps a user-variable value onto its grid and range.
    fn clamp_user(&self, i: usize, value: f64) -> f64 {
        let decl = &self.compiled.user_vars[i];
        let v = value.clamp(decl.min, decl.max);
        if decl.continuous {
            return v;
        }
        match decl.scale {
            VarScale::Log => {
                let step = self.grid_steps[i];
                let k = ((v / decl.min).ln() / step).round();
                (decl.min * (k * step).exp()).clamp(decl.min, decl.max)
            }
            VarScale::Lin => {
                let step = self.grid_steps[i];
                let k = ((v - decl.min) / step).round();
                (decl.min + k * step).clamp(decl.min, decl.max)
            }
        }
    }

    fn perturb_user(&self, state: &OblxState, i: usize, scale: f64, rng: &mut dyn Rng) -> f64 {
        let decl = &self.compiled.user_vars[i];
        let r = rng.random::<f64>() * 2.0 - 1.0;
        let value = match decl.scale {
            VarScale::Log => {
                // Multiplicative walk: up to 2 decades at full scale.
                let span = (decl.max / decl.min).log10().min(2.0);
                state.user[i] * 10f64.powf(r * scale * span)
            }
            VarScale::Lin => state.user[i] + r * scale * (decl.max - decl.min) * 0.5,
        };
        self.clamp_user(i, value)
    }

    /// Newton–Raphson move on node voltages: solve the free-node block
    /// of `J·Δ = −F` at the current configuration.
    fn newton_move(&self, state: &OblxState, alpha: f64) -> Option<OblxState> {
        let vars = self.compiled.var_map(&state.user);
        let bias =
            SizedCircuit::build(&self.compiled.bias_netlist, &vars, &self.compiled.lib).ok()?;
        let det = determined_voltages(&bias);
        let mut x = vec![0.0; bias.dim()];
        let mut free = Vec::new();
        let mut fi = 0usize;
        for (i, dv) in det.iter().enumerate() {
            match dv {
                Some(v) => x[i] = *v,
                None => {
                    x[i] = state.nodes.get(fi).copied().unwrap_or(0.0);
                    free.push(i);
                    fi += 1;
                }
            }
        }
        let (jac, f) = linearize_at(&bias, &x, 1.0, 1e-12);
        let nf = free.len();
        if nf == 0 {
            return None;
        }
        let mut jff = Mat::zeros(nf, nf);
        let mut rhs = vec![0.0; nf];
        for (r, &nr) in free.iter().enumerate() {
            rhs[r] = -f[nr];
            for (c, &nc) in free.iter().enumerate() {
                jff[(r, c)] = jac.get(nr, nc);
            }
        }
        let delta = Lu::factor(jff).ok()?.solve(&rhs);
        let mut next = state.clone();
        for (k, d) in delta.iter().enumerate() {
            let step = (alpha * d).clamp(-1.0, 1.0);
            next.nodes[k] = (next.nodes[k] + step).clamp(self.node_lo, self.node_hi);
        }
        Some(next)
    }
}

impl AnnealProblem for OblxProblem<'_> {
    type State = OblxState;

    fn initial_state(&mut self) -> OblxState {
        let user = self.compiled.initial_user_values();
        let mid = 0.5 * (self.node_lo + self.node_hi);
        OblxState {
            user: user
                .iter()
                .enumerate()
                .map(|(i, &v)| self.clamp_user(i, v))
                .collect(),
            nodes: vec![mid; self.compiled.node_vars.len()],
        }
    }

    fn cost(&mut self, state: &OblxState) -> f64 {
        self.evals += 1;
        let b = self
            .evaluator
            .evaluate(&state.user, &state.nodes, &self.weights);
        if !b.failed {
            self.weights.observe(&b.violation, &b.kcl_violation);
        }
        if !self.opts.disable_adaptive_weights
            && self.evals.is_multiple_of(self.opts.weight_update_every)
        {
            let progress = self.evals as f64 / self.opts.moves_budget.max(1) as f64;
            self.weights.adapt(progress.min(1.0));
        }
        b.total
    }

    fn move_classes(&self) -> usize {
        move_class::COUNT
    }

    fn propose(
        &mut self,
        state: &OblxState,
        class: usize,
        scale: f64,
        rng: &mut dyn Rng,
    ) -> Option<OblxState> {
        self.propose_dirty(state, class, scale, rng).map(|(s, _)| s)
    }

    /// Proposes a move together with the set of variables it touched.
    /// The dirty set is a *superset* declaration: every variable whose
    /// value may differ from `state` is listed (validated in debug
    /// builds), which is what lets an incremental evaluator skip
    /// untouched devices and jigs downstream.
    fn propose_dirty(
        &mut self,
        state: &OblxState,
        class: usize,
        scale: f64,
        rng: &mut dyn Rng,
    ) -> Option<(OblxState, DirtySet)> {
        let nu = state.user.len();
        let nn = state.nodes.len();
        let proposed = match class {
            move_class::USER_SINGLE if nu > 0 => {
                let i = (rng.next_u64() as usize) % nu;
                let mut next = state.clone();
                next.user[i] = self.perturb_user(state, i, scale, rng);
                Some((next, DirtySet::of(vec![i], Vec::new())))
            }
            move_class::USER_MULTI if nu > 1 => {
                let mut next = state.clone();
                let count = 2 + (rng.next_u64() as usize) % nu.min(3);
                let mut touched = Vec::with_capacity(count);
                for _ in 0..count {
                    let i = (rng.next_u64() as usize) % nu;
                    next.user[i] = self.perturb_user(&next, i, scale * 0.5, rng);
                    touched.push(i);
                }
                Some((next, DirtySet::of(touched, Vec::new())))
            }
            move_class::NODE_SINGLE if nn > 0 => {
                let k = (rng.next_u64() as usize) % nn;
                let mut next = state.clone();
                let r = rng.random::<f64>() * 2.0 - 1.0;
                next.nodes[k] = (next.nodes[k] + r * scale * 0.5 * (self.node_hi - self.node_lo))
                    .clamp(self.node_lo, self.node_hi);
                Some((next, DirtySet::of(Vec::new(), vec![k])))
            }
            move_class::NODE_ALL if nn > 0 => {
                let mut next = state.clone();
                for v in next.nodes.iter_mut() {
                    let r = rng.random::<f64>() * 2.0 - 1.0;
                    *v = (*v + r * scale * 0.1 * (self.node_hi - self.node_lo))
                        .clamp(self.node_lo, self.node_hi);
                }
                Some((next, DirtySet::of(Vec::new(), (0..nn).collect())))
            }
            move_class::NEWTON_FULL if nn > 0 && !self.opts.disable_newton_moves => self
                .newton_move(state, 1.0)
                .map(|s| (s, DirtySet::of(Vec::new(), (0..nn).collect()))),
            move_class::NEWTON_PARTIAL if nn > 0 && !self.opts.disable_newton_moves => self
                .newton_move(state, 0.3)
                .map(|s| (s, DirtySet::of(Vec::new(), (0..nn).collect()))),
            move_class::USER_WITH_NEWTON if nu > 0 && nn > 0 && !self.opts.disable_newton_moves => {
                let i = (rng.next_u64() as usize) % nu;
                let mut next = state.clone();
                next.user[i] = self.perturb_user(state, i, scale, rng);
                // Two Newton sweeps re-establish dc at the new geometry.
                let mut corrected = self.newton_move(&next, 1.0)?;
                corrected.user = next.user;
                if let Some(again) = self.newton_move(&corrected, 1.0) {
                    corrected.nodes = again.nodes;
                }
                Some((corrected, DirtySet::of(vec![i], (0..nn).collect())))
            }
            _ => None,
        };
        #[cfg(debug_assertions)]
        if let Some((next, dirty)) = &proposed {
            validate_dirty(state, next, dirty);
        }
        proposed
    }

    fn telemetry_names(&self) -> Vec<String> {
        vec![
            "kcl_max".into(),
            "c_dc".into(),
            "c_perf".into(),
            "c_obj".into(),
        ]
    }

    fn telemetry(&mut self, state: &OblxState) -> Vec<f64> {
        let b = self
            .evaluator
            .evaluate(&state.user, &state.nodes, &self.weights);
        vec![b.kcl_max, b.c_dc, b.c_perf, b.c_obj]
    }
}

/// Debug check of the dirty-set contract: every variable whose value
/// differs (bitwise) between `state` and `next` must be declared.
#[cfg(debug_assertions)]
fn validate_dirty(state: &OblxState, next: &OblxState, dirty: &DirtySet) {
    if dirty.all {
        return;
    }
    for (i, (a, b)) in state.user.iter().zip(next.user.iter()).enumerate() {
        assert!(
            a.to_bits() == b.to_bits() || dirty.primary_dirty(i),
            "move changed user var {i} without declaring it dirty"
        );
    }
    for (k, (a, b)) in state.nodes.iter().zip(next.nodes.iter()).enumerate() {
        assert!(
            a.to_bits() == b.to_bits() || dirty.aux_dirty(k),
            "move changed node voltage {k} without declaring it dirty"
        );
    }
}

/// A complete, serializable image of a synthesis run in flight: the
/// engine-side [`AnnealCheckpoint`] plus the problem-side state the
/// engine cannot see (adaptive weights, the evaluation counter that
/// paces weight adaptation, accumulated wall time). Both halves are cut
/// at the same instant, so restoring the pair continues the run
/// **bit-identically** — the determinism contract is verified by the
/// runtime crate's round-trip property test.
#[derive(Debug, Clone)]
pub struct SynthesisCheckpoint {
    /// Seed of the run this checkpoint belongs to (sanity-checked on
    /// resume: resuming under different options is a caller bug).
    pub seed: u64,
    /// Move budget of the run this checkpoint belongs to.
    pub moves_budget: usize,
    /// Engine state (RNG, schedule, move statistics, configurations).
    pub engine: AnnealCheckpoint<OblxState>,
    /// Adaptive-weight state.
    pub weights: WeightsSnapshot,
    /// Cost evaluations so far (paces the weight-adaptation cadence).
    pub evals: usize,
    /// Wall-clock seconds consumed before this checkpoint, across all
    /// resumed segments.
    pub wall_seconds: f64,
}

/// Outcome of [`synthesize_controlled`].
#[derive(Debug, Clone)]
pub enum SynthesisOutcome {
    /// The run finished.
    Complete(Box<SynthesisResult>),
    /// A hook stopped the run; resume later from this checkpoint.
    Interrupted(Box<SynthesisCheckpoint>),
}

/// Runs a full OBLX synthesis on a compiled problem.
///
/// # Errors
///
/// [`crate::cost::EvalFailure`] if even the *best* configuration found
/// cannot be evaluated — which indicates a structurally broken problem
/// rather than a poor optimum.
pub fn synthesize(
    compiled: &CompiledProblem,
    opts: &SynthesisOptions,
) -> Result<SynthesisResult, crate::cost::EvalFailure> {
    match synthesize_controlled(compiled, opts, None, 0, |_| Directive::Continue)? {
        SynthesisOutcome::Complete(r) => Ok(*r),
        SynthesisOutcome::Interrupted(_) => unreachable!("no hook ever issued Stop"),
    }
}

/// Runs an OBLX synthesis under external control: every
/// `checkpoint_every` proposals a [`SynthesisCheckpoint`] is cut and
/// handed to `hook`, which may persist it and/or stop the run
/// ([`Directive::Stop`]). Passing a previously cut checkpoint as
/// `resume` continues that run bit-identically — the warm-up probe is
/// skipped and the RNG, schedule, move statistics, adaptive weights and
/// evaluation counters all pick up exactly where they stood.
///
/// With `checkpoint_every == 0` and no `resume` this is exactly
/// [`synthesize`].
///
/// # Panics
///
/// If `resume` was cut under a different seed or move budget than
/// `opts` carries — mixing checkpoints across runs would silently
/// produce garbage, so it is rejected loudly.
///
/// # Errors
///
/// [`crate::cost::EvalFailure`] as for [`synthesize`].
pub fn synthesize_controlled(
    compiled: &CompiledProblem,
    opts: &SynthesisOptions,
    resume: Option<&SynthesisCheckpoint>,
    checkpoint_every: usize,
    mut hook: impl FnMut(&SynthesisCheckpoint) -> Directive,
) -> Result<SynthesisOutcome, crate::cost::EvalFailure> {
    let start = Instant::now();
    let mut problem = OblxProblem::new(compiled, opts.clone());
    let prior_wall = resume.map_or(0.0, |c| c.wall_seconds);
    let engine_resume = resume.map(|c| {
        assert_eq!(c.seed, opts.seed, "checkpoint cut under a different seed");
        assert_eq!(
            c.moves_budget, opts.moves_budget,
            "checkpoint cut under a different move budget"
        );
        problem.weights = AdaptiveWeights::from_snapshot(c.weights.clone());
        problem.evals = c.evals;
        c.engine.clone()
    });
    let mut annealer = Annealer::new(AnnealOptions {
        moves_budget: opts.moves_budget,
        seed: opts.seed,
        trace_every: opts.trace_every,
        quench_patience: opts.quench_patience,
        ..AnnealOptions::default()
    });
    let (seed, budget) = (opts.seed, opts.moves_budget);
    let mut stopped: Option<SynthesisCheckpoint> = None;
    let outcome = annealer.run_controlled(
        &mut problem,
        engine_resume,
        checkpoint_every,
        |p, engine_ck| {
            let ck = SynthesisCheckpoint {
                seed,
                moves_budget: budget,
                engine: engine_ck.clone(),
                weights: p.weights.snapshot(),
                evals: p.evals,
                wall_seconds: prior_wall + start.elapsed().as_secs_f64(),
            };
            let directive = hook(&ck);
            if directive == Directive::Stop {
                stopped = Some(ck);
            }
            directive
        },
    );
    let result = match outcome {
        ControlledOutcome::Interrupted(_) => {
            let ck = stopped.expect("Stop directive recorded its checkpoint");
            return Ok(SynthesisOutcome::Interrupted(Box::new(ck)));
        }
        ControlledOutcome::Complete(result) => result,
    };
    let wall = prior_wall + start.elapsed().as_secs_f64();
    let evaluations = problem.evaluations();
    let stats = problem.evaluator.stats();

    // Final scoring with the final weights, surfacing any failure.
    let record = problem
        .evaluator
        .record(&result.best_state.user, &result.best_state.nodes)?;
    let breakdown = problem
        .evaluator
        .cost_of_record(&record, &problem.weights)?;

    let measured: Vec<(String, f64)> = compiled
        .problem
        .specs
        .iter()
        .zip(breakdown.measured.iter())
        .map(|(g, &v)| (g.name.clone(), v))
        .collect();
    let variables: Vec<(String, f64)> = compiled
        .user_vars
        .iter()
        .zip(result.best_state.user.iter())
        .map(|(d, &v)| (d.name.clone(), v))
        .collect();

    Ok(SynthesisOutcome::Complete(Box::new(SynthesisResult {
        kcl_max: breakdown.kcl_max,
        best_cost: result.best_cost,
        breakdown,
        measured,
        variables,
        state: result.best_state,
        trace: result.trace,
        attempted: result.attempted,
        evaluations,
        wall_seconds: wall,
        ms_per_eval: if evaluations > 0 {
            1000.0 * wall / evaluations as f64
        } else {
            0.0
        },
        evals_per_sec: if wall > 0.0 {
            evaluations as f64 / wall
        } else {
            0.0
        },
        moves_per_sec: if wall > 0.0 {
            result.attempted as f64 / wall
        } else {
            0.0
        },
        cache_hit_ratio: stats.cache_hit_ratio(),
    })))
}

/// Per-seed summary from [`synthesize_multi`].
#[derive(Debug, Clone)]
pub struct SeedRunStats {
    /// The RNG seed of the run.
    pub seed: u64,
    /// Frozen-final-weight cost of the run's best state (the
    /// cross-run commensurable score); `+inf` if the run failed.
    pub fixed_cost: f64,
    /// Best annealing cost the run reported (`NaN` if it failed).
    pub best_cost: f64,
    /// Worst KCL residual at the run's best state (`NaN` if failed).
    pub kcl_max: f64,
    /// Cost evaluations spent by the run.
    pub evaluations: usize,
    /// Wall-clock seconds of the run.
    pub wall_seconds: f64,
    /// Cost evaluations per second of the run.
    pub evals_per_sec: f64,
    /// Fraction of evaluations served incrementally or from cache.
    pub cache_hit_ratio: f64,
    /// Whether the run failed (its best state was unevaluable).
    pub failed: bool,
}

/// Result of a multi-seed synthesis.
#[derive(Debug, Clone)]
pub struct MultiSynthesisResult {
    /// The winning run's full result.
    pub best: SynthesisResult,
    /// The seed that produced [`MultiSynthesisResult::best`].
    pub best_seed: u64,
    /// Per-seed statistics, in the order the seeds were given.
    pub runs: Vec<SeedRunStats>,
    /// Wall-clock seconds for the whole multi-seed run.
    pub wall_seconds: f64,
    /// Worker threads actually used.
    pub threads: usize,
}

/// Runs [`synthesize`] once per seed, distributing the runs over up to
/// `threads` worker threads, and returns the best result under the
/// frozen end-of-run weights — the paper's best-of-several-overnight-
/// runs protocol, parallelized.
///
/// Each per-seed run is completely independent (its own evaluator,
/// weights and RNG), so the outcome is bit-identical for any thread
/// count; ties on `fixed_cost` break toward the earlier seed in
/// `seeds`.
///
/// # Panics
///
/// If `seeds` is empty.
///
/// # Errors
///
/// The first failing seed's [`crate::cost::EvalFailure`] if *every*
/// seed fails.
pub fn synthesize_multi(
    compiled: &CompiledProblem,
    opts: &SynthesisOptions,
    seeds: &[u64],
    threads: usize,
) -> Result<MultiSynthesisResult, crate::cost::EvalFailure> {
    synthesize_multi_with(compiled, opts, seeds, threads, |_, run_opts| {
        synthesize(compiled, run_opts)
    })
}

/// The generalized multi-seed driver behind [`synthesize_multi`]:
/// `run_one(seed, opts)` performs one per-seed run (it may checkpoint,
/// resume, or emit events around the core synthesis — the runtime crate
/// does all three), and the driver distributes seeds over up to
/// `threads` workers and aggregates outcomes exactly as
/// [`synthesize_multi`] does, preserving its thread-invariance
/// guarantee as long as `run_one` is per-seed deterministic.
///
/// # Panics
///
/// If `seeds` is empty.
///
/// # Errors
///
/// The first failing seed's [`crate::cost::EvalFailure`] if *every*
/// seed fails.
pub fn synthesize_multi_with<F>(
    compiled: &CompiledProblem,
    opts: &SynthesisOptions,
    seeds: &[u64],
    threads: usize,
    run_one: F,
) -> Result<MultiSynthesisResult, crate::cost::EvalFailure>
where
    F: Fn(u64, &SynthesisOptions) -> Result<SynthesisResult, crate::cost::EvalFailure> + Sync,
{
    assert!(
        !seeds.is_empty(),
        "synthesize_multi needs at least one seed"
    );
    let start = Instant::now();
    let workers = threads.max(1).min(seeds.len());
    type SeedOutcome = Result<SynthesisResult, crate::cost::EvalFailure>;
    let slots: Vec<Mutex<Option<SeedOutcome>>> = seeds.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= seeds.len() {
                    break;
                }
                let run_opts = SynthesisOptions {
                    seed: seeds[i],
                    ..opts.clone()
                };
                let outcome = run_one(seeds[i], &run_opts);
                *slots[i].lock().unwrap() = Some(outcome);
            });
        }
    });

    let mut runs = Vec::with_capacity(seeds.len());
    let mut best: Option<(f64, usize, SynthesisResult)> = None;
    let mut first_err = None;
    for (i, (&seed, slot)) in seeds.iter().zip(slots).enumerate() {
        let outcome = slot
            .into_inner()
            .unwrap()
            .expect("worker pool covered every seed");
        match outcome {
            Ok(r) => {
                let fc = fixed_cost(compiled, &r.state);
                runs.push(SeedRunStats {
                    seed,
                    fixed_cost: fc,
                    best_cost: r.best_cost,
                    kcl_max: r.kcl_max,
                    evaluations: r.evaluations,
                    wall_seconds: r.wall_seconds,
                    evals_per_sec: r.evals_per_sec,
                    cache_hit_ratio: r.cache_hit_ratio,
                    failed: false,
                });
                let key = if fc.is_nan() { f64::INFINITY } else { fc };
                if best.as_ref().is_none_or(|(bk, _, _)| key < *bk) {
                    best = Some((key, i, r));
                }
            }
            Err(e) => {
                runs.push(SeedRunStats {
                    seed,
                    fixed_cost: f64::INFINITY,
                    best_cost: f64::NAN,
                    kcl_max: f64::NAN,
                    evaluations: 0,
                    wall_seconds: 0.0,
                    evals_per_sec: 0.0,
                    cache_hit_ratio: 0.0,
                    failed: true,
                });
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match best {
        Some((_, i, r)) => Ok(MultiSynthesisResult {
            best: r,
            best_seed: seeds[i],
            runs,
            wall_seconds: start.elapsed().as_secs_f64(),
            threads: workers,
        }),
        None => Err(first_err.expect("no best implies at least one error")),
    }
}

/// The user-variable assignment of a state, as a map.
pub fn state_vars(compiled: &CompiledProblem, state: &OblxState) -> HashMap<String, f64> {
    compiled.var_map(&state.user)
}

/// Evaluates a configuration under the *frozen end-of-run* weight set
/// (uniform goal weights, full KCL ramp) — the commensurable score for
/// comparing results across independent annealing runs, as in the
/// paper's best-of-several-overnight-runs protocol.
pub fn fixed_cost(compiled: &CompiledProblem, state: &OblxState) -> f64 {
    let mut ev = CostEvaluator::new(compiled);
    let w = AdaptiveWeights::frozen_final(compiled);
    ev.evaluate(&state.user, &state.nodes, &w).total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astrx::compile_source;

    fn compiled() -> CompiledProblem {
        compile_source(include_str!("testdata/diffamp.ox")).unwrap()
    }

    #[test]
    fn grid_snapping_log() {
        let c = compiled();
        let p = OblxProblem::new(&c, SynthesisOptions::default());
        // W in [2u, 500u] log grid.
        let snapped = p.clamp_user(0, 37.3e-6);
        assert!((2e-6..=500e-6).contains(&snapped));
        // Snapping twice is identity.
        assert_eq!(p.clamp_user(0, snapped), snapped);
        // Out of range clamps.
        assert_eq!(p.clamp_user(0, 1e-3), 500e-6);
        assert_eq!(p.clamp_user(0, 0.0), 2e-6);
    }

    #[test]
    fn continuous_vars_not_snapped() {
        let c = compiled();
        let p = OblxProblem::new(&c, SynthesisOptions::default());
        // Vb (index 3) is continuous.
        assert_eq!(p.clamp_user(3, 1.2345), 1.2345);
    }

    #[test]
    fn newton_move_reduces_kcl_error() {
        let c = compiled();
        let mut p = OblxProblem::new(&c, SynthesisOptions::default());
        let state = p.initial_state();
        let w = AdaptiveWeights::new(&c);
        let before = p
            .evaluator
            .try_evaluate(&state.user, &state.nodes, &w)
            .unwrap()
            .kcl_max;
        let mut s = state.clone();
        for _ in 0..20 {
            match p.newton_move(&s, 1.0) {
                Some(next) => s = next,
                None => break,
            }
        }
        let after = p
            .evaluator
            .try_evaluate(&s.user, &s.nodes, &w)
            .unwrap()
            .kcl_max;
        assert!(
            after < before * 1e-3,
            "newton must slash kcl error: {before} -> {after}"
        );
        assert!(after < 1e-7, "converged to dc point: {after}");
    }

    #[test]
    fn short_synthesis_run_improves_cost_and_converges_dc() {
        let c = compiled();
        let opts = SynthesisOptions {
            moves_budget: 3_000,
            seed: 11,
            trace_every: 100,
            quench_patience: 300,
            ..SynthesisOptions::default()
        };
        // Initial cost for comparison.
        let mut p0 = OblxProblem::new(&c, opts.clone());
        let init = p0.initial_state();
        let init_cost = p0.cost(&init);

        let result = synthesize(&c, &opts).unwrap();
        assert!(
            result.best_cost < init_cost,
            "synthesis must improve: {init_cost} -> {}",
            result.best_cost
        );
        // Relaxed dc must have annealed to near-correctness.
        assert!(
            result.kcl_max < 1e-6,
            "kcl residual at best = {}",
            result.kcl_max
        );
        // Trace recorded the Fig. 2 series.
        assert!(result.trace.series("kcl_max").is_some());
        assert!(result.evaluations > 1000);
        assert!(result.ms_per_eval > 0.0);
        // Throughput telemetry is populated, and the precompiled plan
        // served a nonzero share of evaluations without full updates.
        assert!(result.evals_per_sec > 0.0);
        assert!(result.moves_per_sec > 0.0);
        assert!(
            result.cache_hit_ratio > 0.0 && result.cache_hit_ratio <= 1.0,
            "cache hit ratio = {}",
            result.cache_hit_ratio
        );
        // Variables within their declared ranges.
        for (decl, (_, v)) in c.user_vars.iter().zip(result.variables.iter()) {
            assert!(*v >= decl.min && *v <= decl.max);
        }
    }

    #[test]
    fn multi_seed_is_thread_invariant_and_picks_best() {
        let c = compiled();
        let opts = SynthesisOptions {
            moves_budget: 600,
            quench_patience: 100,
            ..SynthesisOptions::default()
        };
        let seeds = [3u64, 5, 9];
        let seq = synthesize_multi(&c, &opts, &seeds, 1).unwrap();
        let par = synthesize_multi(&c, &opts, &seeds, 3).unwrap();
        assert_eq!(seq.threads, 1);
        assert_eq!(par.threads, 3);
        // Identical outcome regardless of thread count.
        assert_eq!(seq.best_seed, par.best_seed);
        assert_eq!(seq.best.best_cost.to_bits(), par.best.best_cost.to_bits());
        assert_eq!(seq.best.state, par.best.state);
        assert_eq!(seq.runs.len(), seeds.len());
        for (a, b) in seq.runs.iter().zip(par.runs.iter()) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.fixed_cost.to_bits(), b.fixed_cost.to_bits());
            assert!(!a.failed && !b.failed);
        }
        // The winner carries the minimum frozen-final cost.
        let min = seq
            .runs
            .iter()
            .map(|r| r.fixed_cost)
            .fold(f64::INFINITY, f64::min);
        let winner = seq.runs.iter().find(|r| r.seed == seq.best_seed).unwrap();
        assert_eq!(winner.fixed_cost.to_bits(), min.to_bits());
    }

    #[test]
    fn interrupted_synthesis_resumes_bit_identically() {
        let c = compiled();
        let opts = SynthesisOptions {
            moves_budget: 900,
            seed: 7,
            quench_patience: 150,
            trace_every: 100,
            ..SynthesisOptions::default()
        };
        let full = synthesize(&c, &opts).unwrap();

        // Stop after ~a third of the budget, then resume to completion.
        let outcome = synthesize_controlled(&c, &opts, None, 50, |ck| {
            if ck.engine.attempted >= 300 {
                Directive::Stop
            } else {
                Directive::Continue
            }
        })
        .unwrap();
        let ck = match outcome {
            SynthesisOutcome::Interrupted(ck) => *ck,
            SynthesisOutcome::Complete(_) => panic!("must stop mid-run"),
        };
        assert_eq!(ck.engine.attempted, 300);
        assert!(ck.evals > 0);

        let resumed = match synthesize_controlled(&c, &opts, Some(&ck), 0, |_| Directive::Continue)
            .unwrap()
        {
            SynthesisOutcome::Complete(r) => *r,
            SynthesisOutcome::Interrupted(_) => unreachable!(),
        };
        assert_eq!(full.best_cost.to_bits(), resumed.best_cost.to_bits());
        assert_eq!(full.state, resumed.state);
        assert_eq!(full.attempted, resumed.attempted);
        assert_eq!(full.evaluations, resumed.evaluations);
        assert_eq!(full.kcl_max.to_bits(), resumed.kcl_max.to_bits());
        assert_eq!(full.trace.points, resumed.trace.points);
        for ((na, va), (nb, vb)) in full.measured.iter().zip(resumed.measured.iter()) {
            assert_eq!(na, nb);
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let c = compiled();
        let opts = SynthesisOptions {
            moves_budget: 800,
            seed: 3,
            quench_patience: 100,
            ..SynthesisOptions::default()
        };
        let a = synthesize(&c, &opts).unwrap();
        let b = synthesize(&c, &opts).unwrap();
        assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
        assert_eq!(a.state, b.state);
    }
}
