//! Independent verification — the "Simulation" columns of Tables 2/3.
//!
//! A synthesized design is replayed through the SPICE-class path: a
//! full Newton–Raphson bias solve (`oblx-mna::solve_dc`), jig
//! linearization at *that* operating point, and direct per-frequency
//! complex ac measurements. Every goal expression is then re-evaluated
//! against the simulator-side quantities, giving the
//! `OBLX prediction / simulation` pairs the paper uses to demonstrate
//! accuracy.

use crate::astrx::CompiledProblem;
use crate::cost::EvalFailure;
use crate::oblx::{OblxState, SynthesisResult};
use oblx_mna::{ac, solve_dc_with, DcOptions, LinearSystem, OpPoint, SizedCircuit};
use oblx_netlist::{builtin_call, EvalContext, EvalError, Expr};
use std::collections::HashMap;

/// A verified design: simulator-side measurements for each goal.
#[derive(Debug, Clone)]
pub struct VerifiedDesign {
    /// `(goal name, OBLX prediction, simulated value)` triples.
    pub rows: Vec<(String, f64, f64)>,
    /// The Newton-solved bias operating point.
    pub op_residual: f64,
    /// Simulated static power (W).
    pub power: f64,
    /// Active area (m²).
    pub area: f64,
}

impl VerifiedDesign {
    /// Worst relative discrepancy between prediction and simulation
    /// over all goals (the paper's "prediction error" axis of Fig. 3).
    pub fn worst_relative_error(&self) -> f64 {
        self.rows
            .iter()
            .map(|(_, p, s)| {
                let denom = s.abs().max(1e-12);
                (p - s).abs() / denom
            })
            .fold(0.0, f64::max)
    }
}

/// A jig system with its stimulus source name and output probe.
type JigSystem = (LinearSystem, String, oblx_mna::OutputSelector);

struct SimContext<'a> {
    vars: &'a HashMap<String, f64>,
    op: &'a OpPoint,
    systems: &'a HashMap<String, JigSystem>,
    power: f64,
    area: f64,
}

impl EvalContext for SimContext<'_> {
    fn lookup_var(&self, name: &str) -> Result<f64, EvalError> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| EvalError::UnknownVar(name.to_string()))
    }

    fn lookup_path(&self, path: &[String]) -> Result<f64, EvalError> {
        if path.len() >= 2 {
            let device = path[..path.len() - 1].join(".");
            let quantity = &path[path.len() - 1];
            if let Some(v) = self.op.device_quantity(&device, quantity) {
                return Ok(v);
            }
        }
        Err(EvalError::UnknownPath(path.join(".")))
    }

    fn call(&self, name: &str, args: &[Expr], values: &[Option<f64>]) -> Result<f64, EvalError> {
        let sys = |k: usize| -> Result<&JigSystem, EvalError> {
            let handle = match args.get(k) {
                Some(Expr::Var(h)) => h,
                _ => return Err(EvalError::BadArguments(name.to_string())),
            };
            self.systems
                .get(handle)
                .ok_or_else(|| EvalError::UnknownVar(handle.clone()))
        };
        let bad = || EvalError::BadArguments(name.to_string());
        match name {
            "dc_gain" => {
                let (s, src, out) = sys(0)?;
                ac::dc_gain(s, src, *out).map_err(|_| bad())
            }
            "dcv" => {
                let (s, src, out) = sys(0)?;
                Ok(s.transfer(src, *out, 0.0).map_err(|_| bad())?.re)
            }
            "ugf" => {
                let (s, src, out) = sys(0)?;
                ac::unity_gain_frequency(s, src, *out).map_err(|_| bad())
            }
            "phase_margin" => {
                let (s, src, out) = sys(0)?;
                ac::phase_margin(s, src, *out).map_err(|_| bad())
            }
            "gain_at" => {
                let (s, src, out) = sys(0)?;
                let f = values.get(1).copied().flatten().ok_or_else(bad)?;
                ac::gain_at(s, src, *out, f).map_err(|_| bad())
            }
            "pole" => {
                // The simulator has no pole extraction; approximate the
                // k-th pole as the −3 dB knee found by sweeping — only
                // k = 1 is supported on the simulator side.
                let (s, src, out) = sys(0)?;
                let k = values.get(1).copied().flatten().ok_or_else(bad)?;
                if k as usize != 1 {
                    return Err(bad());
                }
                let a0 = ac::dc_gain(s, src, *out).map_err(|_| bad())?;
                let target = a0 / 2.0f64.sqrt();
                let mut lo = 1.0e-1f64;
                let mut hi = 1.0e12f64;
                for _ in 0..60 {
                    let mid = (lo * hi).sqrt();
                    if ac::gain_at(s, src, *out, mid).map_err(|_| bad())? > target {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                Ok((lo * hi).sqrt())
            }
            "zero" => {
                // The direct simulator has no zero extraction; build a
                // reduced-order model at the Newton-solved operating
                // point (simulation-grade bias) and read its zeros.
                let (sys_ref, src, out) = sys(0)?;
                let k = values.get(1).copied().flatten().ok_or_else(bad)?;
                let model = oblx_awe::analyze(sys_ref, src, *out, crate::cost::AWE_ORDER)
                    .map_err(|_| bad())?;
                let z = model.zero(k as usize).ok_or_else(bad)?;
                let f = z.norm() / (2.0 * std::f64::consts::PI);
                Ok(if z.re > 0.0 { -f } else { f })
            }
            "power" => Ok(self.power),
            "area" => Ok(self.area),
            _ => builtin_call(name, args, values),
        }
    }
}

/// Verifies a synthesized configuration through the full simulator.
///
/// # Errors
///
/// [`EvalFailure`] when the design cannot be assembled, bias-solved, or
/// measured.
pub fn verify_design(
    compiled: &CompiledProblem,
    state: &OblxState,
    predictions: &[(String, f64)],
) -> Result<VerifiedDesign, EvalFailure> {
    verify_design_with(compiled, state, predictions, &|_| {})
}

/// [`verify_design`] with a perturbation hook applied to **every**
/// assembled circuit (bias and jigs) before analysis — the injection
/// point for Monte-Carlo mismatch (`yield_mc`) and similar what-if
/// studies. The hook sees each [`SizedCircuit`] after assembly, so
/// per-instance device edits are possible.
///
/// # Errors
///
/// As for [`verify_design`].
pub fn verify_design_with(
    compiled: &CompiledProblem,
    state: &OblxState,
    predictions: &[(String, f64)],
    perturb: &dyn Fn(&mut SizedCircuit),
) -> Result<VerifiedDesign, EvalFailure> {
    let vars = compiled.var_map(&state.user);
    let mut bias = SizedCircuit::build(&compiled.bias_netlist, &vars, &compiled.lib)
        .map_err(|e| EvalFailure::Build(e.to_string()))?;
    perturb(&mut bias);

    // Full Newton solve, warm-started from the annealed node voltages.
    let det = crate::astrx::determined_voltages(&bias);
    let mut x0 = vec![0.0; bias.dim()];
    let mut fi = 0usize;
    for (i, dv) in det.iter().enumerate() {
        x0[i] = match dv {
            Some(v) => *v,
            None => {
                let v = state.nodes.get(fi).copied().unwrap_or(0.0);
                fi += 1;
                v
            }
        };
    }
    // BSIM-style models carry numeric derivatives, so the achievable
    // Newton floor is looser than for analytic level-1; 10 nA residual
    // is far below any measured quantity's sensitivity.
    let dc_opts = DcOptions {
        max_iters: 300,
        abstol_i: 1e-8,
        ..DcOptions::default()
    };
    let op = solve_dc_with(&bias, &dc_opts, Some(&x0))
        .map_err(|e| EvalFailure::Build(format!("bias solve: {e}")))?;

    // Jig systems at the solved operating point.
    let mos_by_name: HashMap<&str, usize> = bias
        .mosfets
        .iter()
        .enumerate()
        .map(|(i, m)| (m.name.as_str(), i))
        .collect();
    let bjt_by_name: HashMap<&str, usize> = bias
        .bjts
        .iter()
        .enumerate()
        .map(|(i, q)| (q.name.as_str(), i))
        .collect();
    let diode_by_name: HashMap<&str, usize> = bias
        .diodes
        .iter()
        .enumerate()
        .map(|(i, d)| (d.name.as_str(), i))
        .collect();

    let mut systems = HashMap::new();
    for jig in &compiled.jigs {
        if jig.analyses.is_empty() {
            continue;
        }
        let mut ckt = SizedCircuit::build(&jig.netlist, &vars, &compiled.lib)
            .map_err(|e| EvalFailure::Build(e.to_string()))?;
        perturb(&mut ckt);
        let jig_mos: Vec<_> = ckt
            .mosfets
            .iter()
            .map(|m| {
                mos_by_name
                    .get(m.name.as_str())
                    .map(|&i| op.mos_ops[i])
                    .ok_or_else(|| EvalFailure::UnbiasedDevice(m.name.clone()))
            })
            .collect::<Result<_, _>>()?;
        let jig_bjt: Vec<_> = ckt
            .bjts
            .iter()
            .map(|q| {
                bjt_by_name
                    .get(q.name.as_str())
                    .map(|&i| op.bjt_ops[i])
                    .ok_or_else(|| EvalFailure::UnbiasedDevice(q.name.clone()))
            })
            .collect::<Result<_, _>>()?;
        let jig_diode: Vec<_> = ckt
            .diodes
            .iter()
            .map(|d| {
                diode_by_name
                    .get(d.name.as_str())
                    .map(|&i| op.diode_ops[i])
                    .ok_or_else(|| EvalFailure::UnbiasedDevice(d.name.clone()))
            })
            .collect::<Result<_, _>>()?;
        let sys = LinearSystem::from_device_ops(&ckt, &jig_mos, &jig_bjt, &jig_diode);
        for a in &jig.analyses {
            let out = sys
                .output_selector(&a.out_p, a.out_m.as_deref())
                .ok_or_else(|| EvalFailure::Awe(format!("bad probe in `{}`", a.name)))?;
            systems.insert(a.name.clone(), (sys.clone(), a.source.clone(), out));
        }
    }

    let power = op.static_power(&bias);
    let area: f64 = bias.mosfets.iter().map(|m| m.w * m.l).sum::<f64>()
        + bias.bjts.iter().map(|q| q.area * 500e-12).sum::<f64>();
    let ctx = SimContext {
        vars: &vars,
        op: &op,
        systems: &systems,
        power,
        area,
    };

    let mut rows = Vec::new();
    for goal in &compiled.problem.specs {
        let sim = goal
            .expr
            .eval(&ctx)
            .map_err(|e| EvalFailure::Goal(format!("{}: {e}", goal.name)))?;
        let pred = predictions
            .iter()
            .find(|(n, _)| n == &goal.name)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        rows.push((goal.name.clone(), pred, sim));
    }

    Ok(VerifiedDesign {
        rows,
        op_residual: op.residual,
        power,
        area,
    })
}

/// Measures the **actual slew rate** of a synthesized design by a
/// nonlinear transient step response in the named jig — the measurement
/// the paper replaces with a designer expression inside the loop. The
/// stimulus is the jig's first `.pz` source, stepped by `delta` volts;
/// the readout is the maximum |dv/dt| at the analysis output.
///
/// # Errors
///
/// [`EvalFailure`] when the jig cannot be assembled, a `.pz` card is
/// missing, or the transient fails to converge.
pub fn transient_slew(
    compiled: &CompiledProblem,
    state: &OblxState,
    jig_name: &str,
    delta: f64,
) -> Result<f64, EvalFailure> {
    let vars = compiled.var_map(&state.user);
    let jig = compiled
        .jigs
        .iter()
        .find(|j| j.name == jig_name)
        .ok_or_else(|| EvalFailure::Build(format!("no jig `{jig_name}`")))?;
    let analysis = jig
        .analyses
        .first()
        .ok_or_else(|| EvalFailure::Build(format!("jig `{jig_name}` has no .pz card")))?;
    let ckt = SizedCircuit::build(&jig.netlist, &vars, &compiled.lib)
        .map_err(|e| EvalFailure::Build(e.to_string()))?;
    let out_idx = ckt
        .nodes
        .get(&analysis.out_p)
        .ok_or_else(|| EvalFailure::Build(format!("no node `{}`", analysis.out_p)))?;

    // Time scale from the load at the output: assume tens of µA into
    // ~1 pF ⇒ sub-µs events; 1000 steps across 2 µs resolves slews
    // from ~10 kV/s up.
    let opts = oblx_mna::TranOptions {
        dt: 2.0e-9,
        t_stop: 2.0e-6,
        ..oblx_mna::TranOptions::default()
    };
    let w = oblx_mna::step_response(&ckt, &analysis.source, delta, &opts)
        .map_err(|e| EvalFailure::Build(format!("transient: {e}")))?;
    let mut slew = w.max_slew(out_idx);
    if let Some(m) = &analysis.out_m {
        if let Some(mi) = ckt.nodes.get(m) {
            slew += w.max_slew(mi);
        }
    }
    Ok(slew)
}

/// Measures the **actual output swing** of a synthesized design by a
/// dc transfer sweep in the named jig: the stimulus source walks
/// ±`span` volts around its bias and the output excursion is taken over
/// the region where the incremental gain stays above 25% of its peak.
///
/// # Errors
///
/// [`EvalFailure`] as for [`transient_slew`].
pub fn swept_swing(
    compiled: &CompiledProblem,
    state: &OblxState,
    jig_name: &str,
    span: f64,
) -> Result<f64, EvalFailure> {
    let vars = compiled.var_map(&state.user);
    let jig = compiled
        .jigs
        .iter()
        .find(|j| j.name == jig_name)
        .ok_or_else(|| EvalFailure::Build(format!("no jig `{jig_name}`")))?;
    let analysis = jig
        .analyses
        .first()
        .ok_or_else(|| EvalFailure::Build(format!("jig `{jig_name}` has no .pz card")))?;
    let ckt = SizedCircuit::build(&jig.netlist, &vars, &compiled.lib)
        .map_err(|e| EvalFailure::Build(e.to_string()))?;
    let out_idx = ckt
        .nodes
        .get(&analysis.out_p)
        .ok_or_else(|| EvalFailure::Build(format!("no node `{}`", analysis.out_p)))?;
    // Source bias value.
    let src_idx = ckt
        .linear_names
        .iter()
        .position(|n| n == &analysis.source)
        .ok_or_else(|| EvalFailure::Build(format!("no source `{}`", analysis.source)))?;
    let bias = match ckt.linear[src_idx] {
        oblx_mna::LinElement::Vsource { dc, .. } => dc,
        _ => return Err(EvalFailure::Build("stimulus is not a V source".into())),
    };
    let points = oblx_mna::dc_sweep(&ckt, &analysis.source, bias - span, bias + span, 81)
        .map_err(|e| EvalFailure::Build(format!("sweep: {e}")))?;
    Ok(oblx_mna::sweep::swing_from_sweep(&points, out_idx, 0.25))
}

/// Convenience: verify a [`SynthesisResult`] directly.
///
/// # Errors
///
/// As for [`verify_design`].
pub fn verify_result(
    compiled: &CompiledProblem,
    result: &SynthesisResult,
) -> Result<VerifiedDesign, EvalFailure> {
    verify_design(compiled, &result.state, &result.measured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astrx::compile_source;
    use crate::oblx::{synthesize, SynthesisOptions};

    #[test]
    fn oblx_prediction_matches_simulation() {
        // The paper's central accuracy claim: after synthesis, AWE-based
        // predictions of the small-signal specs match the independent
        // simulator almost exactly (Table 2).
        let c = compile_source(include_str!("testdata/diffamp.ox")).unwrap();
        let result = synthesize(
            &c,
            &SynthesisOptions {
                moves_budget: 4_000,
                seed: 2,
                quench_patience: 500,
                ..SynthesisOptions::default()
            },
        )
        .unwrap();
        let verified = verify_result(&c, &result).unwrap();
        assert_eq!(verified.rows.len(), 3);
        for (name, pred, sim) in &verified.rows {
            let rel = (pred - sim).abs() / sim.abs().max(1e-12);
            assert!(
                rel < 0.05,
                "{name}: oblx {pred} vs sim {sim} ({:.2}% off)",
                rel * 100.0
            );
        }
        assert!(verified.op_residual < 1e-9);
        assert!(verified.power > 0.0 && verified.area > 0.0);
        assert!(verified.worst_relative_error() < 0.05);
    }
}
