//! ASTRX — the synthesis-problem compiler.
//!
//! Compilation performs the steps of paper §V.A: (a) determine the
//! independent variables `x`, (b) generate the large-signal bias
//! circuit, (c) write the KCL constraints of the relaxed-dc
//! formulation, (d) generate the small-signal AWE circuits for each
//! jig, (e) generate a cost term per performance specification, and
//! (f) assemble the executable cost function (an interpretable
//! [`crate::CostEvaluator`]; the equivalent C text is available from
//! [`crate::emit::emit_c`]).

use oblx_devices::{ModelError, ModelLibrary};
use oblx_mna::{BuildError, SizedCircuit};
use oblx_netlist::{parse_problem, Analysis, Netlist, ParseError, Problem, SpecKind, VarDecl};
use std::collections::{HashMap, HashSet};

/// A device's required operating region (from `.region` cards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegionRequirement {
    /// Saturation with margin — the default for analog devices.
    #[default]
    Saturation,
    /// Triode (switch/resistor duty).
    Triode,
    /// Cut off.
    Off,
    /// Unconstrained.
    Any,
}
use std::error::Error;
use std::fmt;

/// Error from ASTRX compilation.
#[derive(Debug)]
pub enum CompileError {
    /// The description failed to parse.
    Parse(ParseError),
    /// A model card is unusable.
    Model(ModelError),
    /// A circuit could not be assembled at the initial point.
    Build(BuildError),
    /// An expression in a goal referenced an unknown name.
    Goal {
        /// Goal name.
        goal: String,
        /// What went wrong.
        what: String,
    },
    /// Structural problem in the description.
    Structure(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse: {e}"),
            CompileError::Model(e) => write!(f, "model: {e}"),
            CompileError::Build(e) => write!(f, "assembly: {e}"),
            CompileError::Goal { goal, what } => write!(f, "goal `{goal}`: {what}"),
            CompileError::Structure(s) => write!(f, "{s}"),
        }
    }
}

impl Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}
impl From<ModelError> for CompileError {
    fn from(e: ModelError) -> Self {
        CompileError::Model(e)
    }
}
impl From<BuildError> for CompileError {
    fn from(e: BuildError) -> Self {
        CompileError::Build(e)
    }
}

/// One jig after compilation: its flattened netlist and analyses.
#[derive(Debug, Clone)]
pub struct CompiledJig {
    /// Jig name.
    pub name: String,
    /// Flattened netlist (instances expanded).
    pub netlist: Netlist,
    /// The `.pz` transfer functions requested in this jig.
    pub analyses: Vec<Analysis>,
    /// Size of the assembled AWE circuit at the initial point:
    /// `(nodes, elements)` — Table 1's type-A rows.
    pub awe_size: (usize, usize),
}

/// Statistics of an ASTRX analysis — the rows of Table 1.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompileStats {
    /// Input lines describing netlists and models.
    pub netlist_lines: usize,
    /// Input lines describing variables and specifications.
    pub synthesis_lines: usize,
    /// User-supplied independent variables.
    pub user_vars: usize,
    /// Node-voltage variables added by the relaxed-dc formulation.
    pub node_vars: usize,
    /// Cost-function terms (objectives + performance constraints +
    /// device-region constraints + KCL constraints).
    pub terms: usize,
    /// Lines of the emitted C implementation of `C(x)`.
    pub c_lines: usize,
    /// Bias-circuit size `(nodes, elements)` — Table 1's type-B row.
    pub bias_size: (usize, usize),
    /// Per-jig AWE circuit sizes `(nodes, elements)` — type-A rows.
    pub awe_sizes: Vec<(usize, usize)>,
}

/// The compiled synthesis problem: everything OBLX needs to evaluate
/// `C(x)`.
#[derive(Debug, Clone)]
pub struct CompiledProblem {
    /// The parsed description.
    pub problem: Problem,
    /// Device evaluator library.
    pub lib: ModelLibrary,
    /// User-declared variables, in declaration order.
    pub user_vars: Vec<VarDecl>,
    /// Names of the free bias-circuit nodes (relaxed-dc variables), in
    /// bias-circuit node order.
    pub node_vars: Vec<String>,
    /// Flattened bias netlist.
    pub bias_netlist: Netlist,
    /// Compiled jigs.
    pub jigs: Vec<CompiledJig>,
    /// Per-device operating-region requirements (flattened names);
    /// devices absent from the map default to saturation.
    pub region_reqs: HashMap<String, RegionRequirement>,
    /// Table 1 statistics.
    pub stats: CompileStats,
}

impl CompiledProblem {
    /// Total number of annealing variables.
    pub fn dim(&self) -> usize {
        self.user_vars.len() + self.node_vars.len()
    }

    /// The initial user-variable vector (declared `ic=` or range
    /// midpoints).
    pub fn initial_user_values(&self) -> Vec<f64> {
        self.user_vars
            .iter()
            .map(|v| v.initial.unwrap_or_else(|| v.default_initial()))
            .collect()
    }

    /// The user-variable assignment map for a value vector.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.user_vars.len()`.
    pub fn var_map(&self, values: &[f64]) -> HashMap<String, f64> {
        assert_eq!(values.len(), self.user_vars.len(), "var vector mismatch");
        self.user_vars
            .iter()
            .zip(values.iter())
            .map(|(v, &x)| (v.name.clone(), x))
            .collect()
    }
}

/// Compiles a problem description from source text.
///
/// # Errors
///
/// [`CompileError`] on parse, model, assembly, or structural problems.
pub fn compile_source(source: &str) -> Result<CompiledProblem, CompileError> {
    compile(parse_problem(source)?)
}

/// Compiles a parsed [`Problem`].
///
/// # Errors
///
/// See [`compile_source`].
pub fn compile(problem: Problem) -> Result<CompiledProblem, CompileError> {
    let lib = ModelLibrary::from_cards(&problem.models)?;
    if problem.bias.is_empty() {
        return Err(CompileError::Structure(
            "a bias circuit (.bias … .endbias) is required".into(),
        ));
    }
    if problem.jigs.is_empty() {
        return Err(CompileError::Structure(
            "at least one test jig (.jig … .endjig) is required".into(),
        ));
    }

    // Flatten all circuits against the subcircuit library.
    let bias_netlist = problem.bias.flatten(&problem.subckts)?;
    let mut jigs = Vec::new();

    // Assemble circuits once at the initial point to (1) validate and
    // (2) size everything for Table 1. Values do not matter for
    // structure.
    let user_vars = problem.vars.clone();
    let init_map: HashMap<String, f64> = user_vars
        .iter()
        .map(|v| {
            (
                v.name.clone(),
                v.initial.unwrap_or_else(|| v.default_initial()),
            )
        })
        .collect();

    let bias_ckt = SizedCircuit::build(&bias_netlist, &init_map, &lib)?;

    // Tree–link analysis on the bias circuit: node voltages reachable
    // from ground through independent voltage sources are determined;
    // every other node voltage joins x (paper §V.A).
    let determined = determined_nodes(&bias_ckt);

    // Structural restrictions of the relaxed-dc formulation: the bias
    // circuit may not contain branch elements whose current equations
    // would couple into free-node KCL (a V source floating between two
    // undetermined nodes, controlled voltage sources, inductors).
    for el in &bias_ckt.linear {
        match el {
            oblx_mna::LinElement::Vsource { p, m, .. } => {
                let p_det = p.is_none_or(|i| determined.contains(&i));
                let m_det = m.is_none_or(|i| determined.contains(&i));
                if !p_det || !m_det {
                    return Err(CompileError::Structure(
                        "bias circuit has a voltage source floating between \
                         undetermined nodes"
                            .into(),
                    ));
                }
            }
            oblx_mna::LinElement::Vcvs { .. } | oblx_mna::LinElement::Inductor { .. } => {
                return Err(CompileError::Structure(
                    "bias circuits may not contain controlled voltage sources \
                     or inductors (relaxed-dc restriction)"
                        .into(),
                ));
            }
            _ => {}
        }
    }
    let node_vars: Vec<String> = bias_ckt
        .nodes
        .iter()
        .filter(|(i, _)| !determined.contains(i))
        .map(|(_, n)| n.to_string())
        .collect();

    for jig in &problem.jigs {
        let flat = jig.netlist.flatten(&problem.subckts)?;
        let ckt = SizedCircuit::build(&flat, &init_map, &lib)?;
        // Validate analyses against the circuit.
        for a in &jig.analyses {
            let known = |n: &str| oblx_mna::NodeMap::is_ground(n) || ckt.nodes.get(n).is_some();
            if !known(&a.out_p) {
                return Err(CompileError::Structure(format!(
                    "jig `{}` analysis `{}`: unknown output node `{}`",
                    jig.name, a.name, a.out_p
                )));
            }
            if let Some(m) = &a.out_m {
                if !known(m) {
                    return Err(CompileError::Structure(format!(
                        "jig `{}` analysis `{}`: unknown output node `{m}`",
                        jig.name, a.name
                    )));
                }
            }
            if !ckt.linear_names.iter().any(|n| n == &a.source) {
                return Err(CompileError::Structure(format!(
                    "jig `{}` analysis `{}`: unknown source `{}`",
                    jig.name, a.name, a.source
                )));
            }
        }
        // The paper's type-A element count is for the *linearized*
        // circuit: each MOS contributes its small-signal template
        // (gm, gds, gmbs + five capacitances), each BJT four
        // conductances and two capacitances.
        let awe_elements = ckt.linear.len() + 8 * ckt.mosfets.len() + 6 * ckt.bjts.len();
        jigs.push(CompiledJig {
            name: jig.name.clone(),
            netlist: flat,
            analyses: jig.analyses.clone(),
            awe_size: (ckt.nodes.len(), awe_elements),
        });
    }

    // Validate goal expressions: every referenced plain identifier must
    // be a variable, an analysis handle, or a known builtin function.
    let analysis_names: HashSet<String> = problem
        .jigs
        .iter()
        .flat_map(|j| j.analyses.iter().map(|a| a.name.clone()))
        .collect();
    for goal in &problem.specs {
        for var in goal.expr.variables() {
            let known = init_map.contains_key(&var) || analysis_names.contains(&var);
            if !known {
                return Err(CompileError::Goal {
                    goal: goal.name.clone(),
                    what: format!("unknown identifier `{var}`"),
                });
            }
        }
        for call in goal.expr.calls() {
            if !crate::cost::is_known_function(&call) {
                return Err(CompileError::Goal {
                    goal: goal.name.clone(),
                    what: format!("unknown function `{call}`"),
                });
            }
        }
    }

    // Cost-term count: one per objective + per constraint + one device
    // region constraint per device + one KCL constraint per free node.
    let objectives = problem
        .specs
        .iter()
        .filter(|g| g.kind == SpecKind::Objective)
        .count();
    let constraints = problem.specs.len() - objectives;
    let device_terms = bias_ckt.mosfets.len() + bias_ckt.bjts.len();
    let terms = objectives + constraints + device_terms + node_vars.len();

    let mut stats = CompileStats {
        netlist_lines: problem.line_stats.netlist_lines,
        synthesis_lines: problem.line_stats.synthesis_lines,
        user_vars: user_vars.len(),
        node_vars: node_vars.len(),
        terms,
        c_lines: 0,
        // Type-B (large-signal) element count: each MOS large-signal
        // template is a controlled current source plus three
        // conductances; a BJT contributes two sources and three
        // conductances.
        bias_size: (
            bias_ckt.nodes.len(),
            bias_ckt.linear.len() + 4 * bias_ckt.mosfets.len() + 5 * bias_ckt.bjts.len(),
        ),
        awe_sizes: jigs.iter().map(|j| j.awe_size).collect(),
    };

    // Region requirements: validate device names against the bias
    // circuit.
    let mut region_reqs = HashMap::new();
    for r in &problem.regions {
        let exists = bias_ckt.mosfets.iter().any(|m| m.name == r.device)
            || bias_ckt.bjts.iter().any(|q| q.name == r.device)
            || bias_ckt.diodes.iter().any(|d| d.name == r.device);
        if !exists {
            return Err(CompileError::Structure(format!(
                ".region names unknown device `{}`",
                r.device
            )));
        }
        let req = match r.region.as_str() {
            "triode" => RegionRequirement::Triode,
            "off" => RegionRequirement::Off,
            "any" => RegionRequirement::Any,
            _ => RegionRequirement::Saturation,
        };
        region_reqs.insert(r.device.clone(), req);
    }

    let mut compiled = CompiledProblem {
        problem,
        lib,
        user_vars,
        node_vars,
        bias_netlist,
        jigs,
        region_reqs,
        stats: stats.clone(),
    };
    stats.c_lines = crate::emit::emit_c(&compiled).lines().count();
    compiled.stats = stats;
    Ok(compiled)
}

/// Identifies bias-circuit nodes whose voltage is fixed by a chain of
/// independent voltage sources from ground (the "trivially determined"
/// nodes of the tree–link analysis).
pub fn determined_nodes(ckt: &SizedCircuit) -> HashSet<usize> {
    let mut det: HashSet<usize> = HashSet::new();
    // Iterate to a fixed point: a V source with one side determined
    // (or ground) determines the other side.
    loop {
        let mut changed = false;
        for el in &ckt.linear {
            if let oblx_mna::LinElement::Vsource { p, m, .. } = el {
                let p_det = p.is_none_or(|i| det.contains(&i));
                let m_det = m.is_none_or(|i| det.contains(&i));
                if p_det && !m_det {
                    det.insert(m.expect("non-ground because !m_det"));
                    changed = true;
                } else if m_det && !p_det {
                    det.insert(p.expect("non-ground because !p_det"));
                    changed = true;
                }
            }
        }
        if !changed {
            return det;
        }
    }
}

/// Computes the determined node voltages for a concrete bias circuit
/// (dc source values already resolved against the variable map).
///
/// Returns `None` for free nodes.
pub fn determined_voltages(ckt: &SizedCircuit) -> Vec<Option<f64>> {
    let mut v: Vec<Option<f64>> = vec![None; ckt.nodes.len()];
    loop {
        let mut changed = false;
        for el in &ckt.linear {
            if let oblx_mna::LinElement::Vsource { p, m, dc, .. } = el {
                let vp = p.map_or(Some(0.0), |i| v[i]);
                let vm = m.map_or(Some(0.0), |i| v[i]);
                match (vp, vm) {
                    (Some(a), None) => {
                        if let Some(i) = *m {
                            v[i] = Some(a - dc);
                            changed = true;
                        }
                    }
                    (None, Some(b)) => {
                        if let Some(i) = *p {
                            v[i] = Some(b + dc);
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        if !changed {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite;

    const DIFFAMP: &str = r#"
.title section-iv diff amp
.var W 2u 500u log
.var L 1u 20u log
.var I 2u 2m log
.var Vb 0.8 4.2 lin cont

.model nmos nmos level=1 vto=0.75 kp=5.2e-5 gamma=0.55 lambda=0.03
.model pmos pmos level=1 vto=-0.85 kp=1.8e-5 gamma=0.5 lambda=0.045

.subckt amp in+ in- out+ out- nvdd nvss
m1 out- in+ t nvss nmos w='W' l='L'
m2 out+ in- t nvss nmos w='W' l='L'
m3 out- bias nvdd nvdd pmos w=40u l=2u
m4 out+ bias nvdd nvdd pmos w=40u l=2u
vb bias nvdd '0-Vb'
ib t nvss 'I'
.ends

.jig acjig
xamp in+ in- out+ out- nvdd nvss amp
vdd nvdd 0 5
vss nvss 0 0
vin in+ 0 0 ac 1
ein in- 0 0 in+ 1
cl1 out+ 0 1p
cl2 out- 0 1p
.pz tf v(out+) vin
.endjig

.bias
xamp in+ in- out+ out- nvdd nvss amp
vdd nvdd 0 5
vss nvss 0 0
vc1 in+ 0 2.5
vc2 in- 0 2.5
.endbias

.obj adm 'db(dc_gain(tf))' good=40 bad=5
.spec ugf 'ugf(tf)' good=1Meg bad=10k
.spec sr 'I/(2*(1p+xamp.m1.cd+xamp.m3.cd))' good=1Meg bad=10k
"#;

    #[test]
    fn compiles_diffamp() {
        let c = compile_source(DIFFAMP).unwrap();
        assert_eq!(c.user_vars.len(), 4);
        assert_eq!(c.jigs.len(), 1);
        // Bias free nodes: out+, out-, t (bias node is V-determined
        // relative to nvdd; in+/in-/nvdd/nvss determined).
        assert_eq!(c.node_vars.len(), 3, "{:?}", c.node_vars);
        assert!(c.node_vars.contains(&"out+".to_string()));
        assert!(c.node_vars.contains(&"out-".to_string()));
        assert!(c.node_vars.contains(&"xamp.t".to_string()));
        // Terms: 1 obj + 2 spec + 4 devices + 3 KCL = 10.
        assert_eq!(c.stats.terms, 10);
        assert_eq!(c.stats.user_vars, 4);
        assert!(c.stats.c_lines > 60, "c_lines = {}", c.stats.c_lines);
        assert!(c.stats.bias_size.0 >= 6);
        assert_eq!(c.dim(), 7);
    }

    #[test]
    fn determined_voltage_chains() {
        let c = compile_source(DIFFAMP).unwrap();
        let vars = c.var_map(&c.initial_user_values());
        let ckt = SizedCircuit::build(&c.bias_netlist, &vars, &c.lib).unwrap();
        let det = determined_voltages(&ckt);
        let idx = |n: &str| ckt.nodes.get(n).unwrap();
        assert_eq!(det[idx("nvdd")], Some(5.0));
        assert_eq!(det[idx("nvss")], Some(0.0));
        assert_eq!(det[idx("in+")], Some(2.5));
        // Chained through vb: bias = nvdd + (0 − Vb) = 5 − Vb.
        let vb = vars["vb"];
        assert!((det[idx("xamp.bias")].unwrap() - (5.0 - vb)).abs() < 1e-12);
        assert_eq!(det[idx("out+")], None);
    }

    #[test]
    fn missing_bias_is_structural_error() {
        let src = DIFFAMP
            .replace(".bias", ".jig dummy")
            .replace(".endbias", ".endjig");
        match compile_source(&src) {
            Err(CompileError::Structure(s)) => assert!(s.contains("bias")),
            other => panic!("expected structure error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_identifier_in_goal() {
        let src = DIFFAMP.replace("'ugf(tf)'", "'ugf(tf)+Bogus'");
        match compile_source(&src) {
            Err(CompileError::Goal { what, .. }) => assert!(what.contains("bogus")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_function_in_goal() {
        let src = DIFFAMP.replace("'ugf(tf)'", "'settling(tf)'");
        assert!(matches!(
            compile_source(&src),
            Err(CompileError::Goal { .. })
        ));
    }

    #[test]
    fn unknown_pz_source_rejected() {
        let src = DIFFAMP.replace(".pz tf v(out+) vin", ".pz tf v(out+) nosource");
        assert!(matches!(
            compile_source(&src),
            Err(CompileError::Structure(_))
        ));
    }

    #[test]
    fn unknown_pz_node_rejected() {
        let src = DIFFAMP.replace(".pz tf v(out+) vin", ".pz tf v(nowhere) vin");
        assert!(matches!(
            compile_source(&src),
            Err(CompileError::Structure(_))
        ));
    }

    #[test]
    fn whole_bench_suite_compiles() {
        for b in bench_suite::all() {
            let c = compile(b.problem().expect("parses")).unwrap_or_else(|e| {
                panic!("{} failed to compile: {e}", b.name);
            });
            assert!(c.dim() > 0, "{}", b.name);
            assert!(
                c.stats.node_vars >= c.stats.user_vars / 2,
                "{}: relaxed-dc should add many node vars ({} vs {})",
                b.name,
                c.stats.node_vars,
                c.stats.user_vars
            );
        }
    }
}
