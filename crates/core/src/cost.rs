//! The executable cost function `C(x) = C^obj + C^perf + C^dev + C^dc`.
//!
//! One evaluation, given user-variable values and the relaxed-dc node
//! voltages:
//!
//! 1. assemble the bias circuit at the proposed geometry,
//! 2. ask the encapsulated device evaluators for operating points at
//!    the proposed node voltages (no Newton solve — this is the
//!    relaxed-dc formulation),
//! 3. sum Kirchhoff-law residuals at every free node → `C^dc`,
//! 4. stamp each jig's small-signal circuit from those device models
//!    and run AWE per `.pz` card,
//! 5. evaluate every `.obj`/`.spec` expression against the AWE models,
//!    device quantities, and built-in `power()`/`area()` measures,
//!    normalizing by the goal's `good`/`bad` values → `C^obj`, `C^perf`,
//! 6. penalize devices out of their required operating region → `C^dev`.

use crate::astrx::{determined_voltages, CompiledProblem, RegionRequirement};
use crate::plan::{score_slot, EvalPlan, Slot};
use crate::weights::AdaptiveWeights;
use oblx_awe::ReducedModel;
use oblx_devices::{BjtOp, DiodeOp, MosOp, Region};
use oblx_mna::{LinElement, LinearSystem, MosInstance, SizedCircuit};
use oblx_netlist::{builtin_call, EvalContext, EvalError, Expr, Goal, SpecKind};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Current-scale used to normalize KCL residuals (A). A residual equal
/// to this contributes 1.0 (pre-weight) to `C^dc`.
pub const KCL_NORM: f64 = 1.0e-6;
/// Absolute KCL tolerance below which a node contributes nothing —
/// `τ_abs` of paper equation (3).
pub const KCL_TOL: f64 = 1.0e-9;
/// Required saturation margin for MOS devices (V).
pub const SAT_MARGIN: f64 = 0.05;
/// Cost assigned to configurations that cannot be evaluated at all.
pub const FAILURE_COST: f64 = 1.0e7;
/// Maximum AWE model order requested per transfer function. The
/// parsimony rule in `oblx-awe` keeps simple circuits at low order
/// automatically; the larger cascode benchmarks need up to 8 poles for
/// the phase at the unity crossing to be trustworthy.
pub const AWE_ORDER: usize = 8;

/// Reasons an evaluation can fail outright.
#[derive(Debug)]
pub enum EvalFailure {
    /// Circuit assembly failed (bad element value, missing model…).
    Build(String),
    /// A device present in a jig has no counterpart in the bias circuit.
    UnbiasedDevice(String),
    /// AWE could not model a requested transfer function.
    Awe(String),
    /// A goal expression failed to evaluate.
    Goal(String),
}

impl fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalFailure::Build(s) => write!(f, "assembly failed: {s}"),
            EvalFailure::UnbiasedDevice(s) => {
                write!(f, "device `{s}` in a jig has no bias counterpart")
            }
            EvalFailure::Awe(s) => write!(f, "awe failed: {s}"),
            EvalFailure::Goal(s) => write!(f, "goal evaluation failed: {s}"),
        }
    }
}

impl Error for EvalFailure {}

/// The decomposed cost of one configuration (paper equation (5)).
#[derive(Debug, Clone)]
pub struct CostBreakdown {
    /// Objective component (normalized; smaller is better, may be
    /// negative when objectives are exceeded).
    pub c_obj: f64,
    /// Performance-constraint penalty (0 when all specs met).
    pub c_perf: f64,
    /// Device-region penalty.
    pub c_dev: f64,
    /// Relaxed-dc (KCL) penalty.
    pub c_dc: f64,
    /// The scalar total `C(x)` including adaptive weights.
    pub total: f64,
    /// Measured value of each goal, in goal order.
    pub measured: Vec<f64>,
    /// Per-goal normalized violation `max(0, z)` (objectives report
    /// `z`), in goal order — drives the adaptive weights.
    pub violation: Vec<f64>,
    /// Per-free-node normalized KCL violations (drives per-node
    /// adaptive weights), in node-var order.
    pub kcl_violation: Vec<f64>,
    /// Worst KCL residual over free nodes (A) — the Fig. 2 series.
    pub kcl_max: f64,
    /// `true` when the configuration could not be evaluated and
    /// `total` is the failure cost.
    pub failed: bool,
}

impl CostBreakdown {
    fn failure() -> CostBreakdown {
        CostBreakdown {
            c_obj: 0.0,
            c_perf: 0.0,
            c_dev: 0.0,
            c_dc: 0.0,
            total: FAILURE_COST,
            measured: Vec::new(),
            violation: Vec::new(),
            kcl_violation: Vec::new(),
            kcl_max: f64::INFINITY,
            failed: true,
        }
    }
}

/// `true` when `name` is a function usable in goal expressions.
pub fn is_known_function(name: &str) -> bool {
    matches!(
        name,
        "dc_gain"
            | "dcv"
            | "ugf"
            | "phase_margin"
            | "gain_at"
            | "pole"
            | "zero"
            | "power"
            | "area"
            | "min"
            | "max"
            | "abs"
            | "sqrt"
            | "log10"
            | "ln"
            | "exp"
            | "db"
            | "par"
    )
}

/// Everything computed about one configuration that expression
/// evaluation may reference.
pub struct EvalRecord {
    /// The assembled bias circuit.
    pub bias: SizedCircuit,
    /// Full bias MNA vector (node voltages + zeroed branch currents).
    pub x: Vec<f64>,
    /// KCL residuals at every bias node (+ branch rows).
    pub residual: Vec<f64>,
    /// Free-node indices into the bias node table, in node-var order.
    pub free_nodes: Vec<usize>,
    /// Device operating points by flattened name.
    pub mos_ops: Vec<MosOp>,
    /// Bipolar operating points.
    pub bjt_ops: Vec<BjtOp>,
    /// Diode operating points.
    pub diode_ops: Vec<DiodeOp>,
    /// AWE models by analysis handle.
    pub models: HashMap<String, ReducedModel>,
    /// The user-variable map.
    pub vars: HashMap<String, f64>,
}

impl EvalRecord {
    /// Worst KCL residual over free nodes (A).
    pub fn kcl_max(&self) -> f64 {
        self.free_nodes
            .iter()
            .map(|&i| self.residual[i].abs())
            .fold(0.0, f64::max)
    }

    /// The built-in `power()` measure: Σ over dc voltage sources of
    /// `|dc| · |KCL residual at the attached node|` — exact at
    /// dc-correctness, approximate during relaxation.
    pub fn power(&self) -> f64 {
        power_of(&self.bias, &self.residual)
    }

    /// The built-in `area()` measure: Σ gate areas (m²) plus a fixed
    /// 500 µm² per bipolar device.
    pub fn area(&self) -> f64 {
        area_of(&self.bias)
    }

    fn device_quantity(&self, device: &str, quantity: &str) -> Option<f64> {
        if let Some(i) = self.bias.mosfets.iter().position(|m| m.name == device) {
            return self.mos_ops[i].quantity(quantity);
        }
        if let Some(i) = self.bias.bjts.iter().position(|q| q.name == device) {
            return self.bjt_ops[i].quantity(quantity);
        }
        if let Some(i) = self.bias.diodes.iter().position(|d| d.name == device) {
            return self.diode_ops[i].quantity(quantity);
        }
        None
    }
}

/// The AWE-model / power / area surface that measurement functions
/// draw from — implemented by the cold path's record-backed context
/// and the plan path's slot-backed context, so the dispatch table in
/// [`measure_call`] exists exactly once.
pub(crate) trait MeasureSource {
    /// Resolves an analysis handle to its reduced model.
    fn model(&self, handle: &str) -> Option<&ReducedModel>;
    /// The built-in `power()` measure.
    fn power(&self) -> f64;
    /// The built-in `area()` measure.
    fn area(&self) -> f64;
}

/// Dispatches the measurement functions goal expressions may call.
pub(crate) fn measure_call(
    src: &dyn MeasureSource,
    name: &str,
    args: &[Expr],
    values: &[Option<f64>],
) -> Result<f64, EvalError> {
    let model = |k: usize| -> Result<&ReducedModel, EvalError> {
        let handle = match args.get(k) {
            Some(Expr::Var(h)) => h,
            _ => return Err(EvalError::BadArguments(name.to_string())),
        };
        src.model(handle)
            .ok_or_else(|| EvalError::UnknownVar(handle.clone()))
    };
    match name {
        "dc_gain" => Ok(model(0)?.dc_gain()),
        "dcv" => Ok(model(0)?.dc_value()),
        "ugf" => Ok(oblx_awe::unity_gain_frequency(model(0)?)),
        "phase_margin" => Ok(oblx_awe::phase_margin(model(0)?)),
        "gain_at" => {
            let f = values
                .get(1)
                .copied()
                .flatten()
                .ok_or_else(|| EvalError::BadArguments(name.into()))?;
            Ok(oblx_awe::gain_at(model(0)?, f))
        }
        "pole" => {
            let k = values
                .get(1)
                .copied()
                .flatten()
                .ok_or_else(|| EvalError::BadArguments(name.into()))?;
            let p = model(0)?
                .pole(k as usize)
                .ok_or_else(|| EvalError::BadArguments(name.into()))?;
            Ok(p.norm() / (2.0 * std::f64::consts::PI))
        }
        "zero" => {
            let k = values
                .get(1)
                .copied()
                .flatten()
                .ok_or_else(|| EvalError::BadArguments(name.into()))?;
            let z = model(0)?
                .zero(k as usize)
                .ok_or_else(|| EvalError::BadArguments(name.into()))?;
            // Signed by half-plane: negative frequency magnitude
            // flags a RHP zero so specs can forbid it.
            let f = z.norm() / (2.0 * std::f64::consts::PI);
            Ok(if z.re > 0.0 { -f } else { f })
        }
        "power" => Ok(src.power()),
        "area" => Ok(src.area()),
        _ => builtin_call(name, args, values),
    }
}

struct SpecContext<'a> {
    record: &'a EvalRecord,
}

impl MeasureSource for SpecContext<'_> {
    fn model(&self, handle: &str) -> Option<&ReducedModel> {
        self.record.models.get(handle)
    }

    fn power(&self) -> f64 {
        self.record.power()
    }

    fn area(&self) -> f64 {
        self.record.area()
    }
}

impl EvalContext for SpecContext<'_> {
    fn lookup_var(&self, name: &str) -> Result<f64, EvalError> {
        self.record
            .vars
            .get(name)
            .copied()
            .ok_or_else(|| EvalError::UnknownVar(name.to_string()))
    }

    fn lookup_path(&self, path: &[String]) -> Result<f64, EvalError> {
        if path.len() >= 2 {
            let device = path[..path.len() - 1].join(".");
            let quantity = &path[path.len() - 1];
            if let Some(v) = self.record.device_quantity(&device, quantity) {
                return Ok(v);
            }
        }
        Err(EvalError::UnknownPath(path.join(".")))
    }

    fn call(&self, name: &str, args: &[Expr], values: &[Option<f64>]) -> Result<f64, EvalError> {
        measure_call(self, name, args, values)
    }
}

/// How the evaluator has serviced its calls — the cache telemetry the
/// synthesis loop reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Full netlist rebuilds (no plan available).
    pub cold: u64,
    /// Plan-based full updates (every binding re-applied, everything
    /// recomputed — but no string work).
    pub full: u64,
    /// Incremental updates (only dirty bindings/devices/jigs redone).
    pub incremental: u64,
    /// Exact state matches rescored from a cached slot.
    pub cached: u64,
}

impl EvalStats {
    /// Total evaluator calls.
    pub fn total(&self) -> u64 {
        self.cold + self.full + self.incremental + self.cached
    }

    /// Fraction of calls that avoided a full recomputation (incremental
    /// or cached); 0 when nothing has been evaluated.
    pub fn cache_hit_ratio(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.incremental + self.cached) as f64 / t as f64
        }
    }
}

impl std::ops::Sub for EvalStats {
    type Output = EvalStats;

    /// Per-path call-count delta between two snapshots of the same
    /// evaluator (`later - earlier`).
    fn sub(self, earlier: EvalStats) -> EvalStats {
        EvalStats {
            cold: self.cold - earlier.cold,
            full: self.full - earlier.full,
            incremental: self.incremental - earlier.incremental,
            cached: self.cached - earlier.cached,
        }
    }
}

/// The compiled, executable cost function.
///
/// Construction precompiles an evaluation plan (circuit skeletons,
/// bindings, analysis vectors — see [`crate::plan`]); evaluation then
/// only writes values into preallocated structures, with no hash-map
/// construction or string allocation on the hot path. Two recent
/// configurations are kept as slots so that a proposal differing from
/// one of them in a few variables is re-evaluated incrementally.
pub struct CostEvaluator<'a> {
    compiled: &'a CompiledProblem,
    awe_order: usize,
    /// `None` when the problem cannot be planned (e.g. the initial
    /// assembly fails); evaluation then uses the cold path, which
    /// reproduces the underlying error per call.
    plan: Option<EvalPlan>,
    slots: Vec<Slot>,
    clock: u64,
    stats: EvalStats,
}

impl<'a> CostEvaluator<'a> {
    /// Wraps a compiled problem.
    pub fn new(compiled: &'a CompiledProblem) -> Self {
        Self::with_awe_order(compiled, AWE_ORDER)
    }

    /// Wraps a compiled problem with a non-default AWE model order
    /// (used by the ablation benches).
    pub fn with_awe_order(compiled: &'a CompiledProblem, awe_order: usize) -> Self {
        let awe_order = awe_order.clamp(1, 12);
        CostEvaluator {
            compiled,
            awe_order,
            plan: EvalPlan::build(compiled, awe_order),
            slots: Vec::new(),
            clock: 0,
            stats: EvalStats::default(),
        }
    }

    /// The compiled problem.
    pub fn compiled(&self) -> &CompiledProblem {
        self.compiled
    }

    /// Cache/incremental telemetry accumulated so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// `true` when a precompiled plan is active (false only for
    /// problems whose initial configuration cannot be assembled).
    pub fn has_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// Computes the full evaluation record for a configuration.
    ///
    /// # Errors
    ///
    /// [`EvalFailure`] when the configuration is structurally
    /// unevaluable (assembly failure, missing bias ops, AWE collapse).
    pub fn record(
        &self,
        user_values: &[f64],
        node_values: &[f64],
    ) -> Result<EvalRecord, EvalFailure> {
        let compiled = self.compiled;
        let vars = compiled.var_map(user_values);

        let bias = SizedCircuit::build(&compiled.bias_netlist, &vars, &compiled.lib)
            .map_err(|e| EvalFailure::Build(e.to_string()))?;

        // Assemble the full voltage vector: determined nodes from the
        // V-source tree, free nodes from the annealing state.
        let det = determined_voltages(&bias);
        let mut x = vec![0.0; bias.dim()];
        let mut free_nodes = Vec::with_capacity(compiled.node_vars.len());
        let mut free_i = 0usize;
        for (i, dv) in det.iter().enumerate() {
            match dv {
                Some(v) => x[i] = *v,
                None => {
                    x[i] = node_values.get(free_i).copied().unwrap_or(0.0);
                    free_nodes.push(i);
                    free_i += 1;
                }
            }
        }

        // Device evaluations at the proposed voltages.
        let volt = |n: Option<usize>| n.map_or(0.0, |i| x[i]);
        let mos_ops: Vec<MosOp> = bias
            .mosfets
            .iter()
            .map(|m| {
                m.model
                    .op(m.w, m.l, volt(m.d), volt(m.g), volt(m.s), volt(m.b))
            })
            .collect();
        let bjt_ops: Vec<BjtOp> = bias
            .bjts
            .iter()
            .map(|q| q.model.op(q.area, volt(q.c), volt(q.b), volt(q.e)))
            .collect();
        let diode_ops: Vec<DiodeOp> = bias
            .diodes
            .iter()
            .map(|d| d.model.op(d.area, volt(d.a) - volt(d.k)))
            .collect();

        // KCL residuals: linear part via stamps, devices from the ops.
        let residual = kcl_residual(&bias, &x, &mos_ops, &bjt_ops, &diode_ops);

        // Jig small-signal systems stamped from the bias-device models.
        let mos_by_name: HashMap<&str, usize> = bias
            .mosfets
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.as_str(), i))
            .collect();
        let bjt_by_name: HashMap<&str, usize> = bias
            .bjts
            .iter()
            .enumerate()
            .map(|(i, q)| (q.name.as_str(), i))
            .collect();
        let diode_by_name: HashMap<&str, usize> = bias
            .diodes
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.as_str(), i))
            .collect();

        let mut models = HashMap::new();
        for jig in &compiled.jigs {
            if jig.analyses.is_empty() {
                continue;
            }
            let ckt = SizedCircuit::build(&jig.netlist, &vars, &compiled.lib)
                .map_err(|e| EvalFailure::Build(e.to_string()))?;
            let jig_mos: Vec<MosOp> = ckt
                .mosfets
                .iter()
                .map(|m| {
                    mos_by_name
                        .get(m.name.as_str())
                        .map(|&i| mos_ops[i])
                        .ok_or_else(|| EvalFailure::UnbiasedDevice(m.name.clone()))
                })
                .collect::<Result<_, _>>()?;
            let jig_bjt: Vec<BjtOp> = ckt
                .bjts
                .iter()
                .map(|q| {
                    bjt_by_name
                        .get(q.name.as_str())
                        .map(|&i| bjt_ops[i])
                        .ok_or_else(|| EvalFailure::UnbiasedDevice(q.name.clone()))
                })
                .collect::<Result<_, _>>()?;
            let jig_diode: Vec<DiodeOp> = ckt
                .diodes
                .iter()
                .map(|d| {
                    diode_by_name
                        .get(d.name.as_str())
                        .map(|&i| diode_ops[i])
                        .ok_or_else(|| EvalFailure::UnbiasedDevice(d.name.clone()))
                })
                .collect::<Result<_, _>>()?;
            let sys = LinearSystem::from_device_ops(&ckt, &jig_mos, &jig_bjt, &jig_diode);
            for a in &jig.analyses {
                let out = sys
                    .output_selector(&a.out_p, a.out_m.as_deref())
                    .ok_or_else(|| EvalFailure::Awe(format!("bad probe in `{}`", a.name)))?;
                let model = oblx_awe::analyze(&sys, &a.source, out, self.awe_order)
                    .map_err(|e| EvalFailure::Awe(format!("{}: {e}", a.name)))?;
                models.insert(a.name.clone(), model);
            }
        }

        Ok(EvalRecord {
            bias,
            x,
            residual,
            free_nodes,
            mos_ops,
            bjt_ops,
            diode_ops,
            models,
            vars,
        })
    }

    /// Evaluates the scalar cost; structural failures map to the large
    /// [`FAILURE_COST`] so the annealer simply walks away from them.
    pub fn evaluate(
        &mut self,
        user_values: &[f64],
        node_values: &[f64],
        weights: &AdaptiveWeights,
    ) -> CostBreakdown {
        match self.try_evaluate(user_values, node_values, weights) {
            Ok(b) => b,
            Err(_) => CostBreakdown::failure(),
        }
    }

    /// Evaluates the scalar cost, surfacing failures.
    ///
    /// Uses the precompiled plan when available; debug builds
    /// cross-check every plan-path result against a from-scratch
    /// evaluation.
    ///
    /// # Errors
    ///
    /// [`EvalFailure`] as for [`CostEvaluator::record`].
    pub fn try_evaluate(
        &mut self,
        user_values: &[f64],
        node_values: &[f64],
        weights: &AdaptiveWeights,
    ) -> Result<CostBreakdown, EvalFailure> {
        let _span = oblx_telemetry::span(oblx_telemetry::SpanKind::CostEval);
        let result = if self.plan.is_none() {
            self.stats.cold += 1;
            oblx_telemetry::incr(oblx_telemetry::Counter::EvalCold);
            self.record(user_values, node_values)
                .and_then(|record| self.cost_of_record(&record, weights))
        } else {
            let result = self.plan_evaluate(user_values, node_values, weights);
            #[cfg(debug_assertions)]
            self.cross_check(user_values, node_values, weights, &result);
            result
        };
        if oblx_telemetry::enabled() {
            match &result {
                Ok(b) if !b.failed => {
                    oblx_telemetry::record_cost_terms(b.c_obj, b.c_perf, b.c_dev, b.c_dc);
                }
                _ => oblx_telemetry::incr(oblx_telemetry::Counter::EvalFailure),
            }
        }
        result
    }

    /// The plan path: exact-match rescore, incremental update, or
    /// plan-full update — in that order of preference.
    fn plan_evaluate(
        &mut self,
        user: &[f64],
        nodes: &[f64],
        weights: &AdaptiveWeights,
    ) -> Result<CostBreakdown, EvalFailure> {
        let CostEvaluator {
            compiled,
            plan,
            slots,
            clock,
            stats,
            ..
        } = self;
        let plan = plan.as_ref().expect("caller checked the plan exists");
        assert_eq!(user.len(), plan.user_len(), "var vector mismatch");
        *clock += 1;
        // Exact state already materialized: rescore it (weights may
        // have changed since it was computed; the state data has not).
        if let Some(slot) = slots.iter_mut().find(|s| s.matches(user, nodes)) {
            slot.stamp = *clock;
            stats.cached += 1;
            oblx_telemetry::incr(oblx_telemetry::Counter::EvalCached);
            return score_slot(compiled, plan, slot, weights, user);
        }
        // Victim: a failed slot first (nothing in it is reusable),
        // then grow to the two-slot working set, then the LRU slot —
        // in the accept/propose rhythm of annealing that is the slot
        // closest to the proposal's parent state.
        let vi = if let Some(i) = slots.iter().position(|s| !s.valid()) {
            i
        } else if slots.len() < 2 {
            slots.push(Slot::new(plan));
            slots.len() - 1
        } else {
            slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, _)| i)
                .expect("slots is non-empty")
        };
        let slot = &mut slots[vi];
        slot.stamp = *clock;
        if slot.can_increment(plan, user, nodes) {
            stats.incremental += 1;
            oblx_telemetry::incr(oblx_telemetry::Counter::EvalIncremental);
            slot.update_incremental(plan, user, nodes)?;
        } else {
            stats.full += 1;
            oblx_telemetry::incr(oblx_telemetry::Counter::EvalFull);
            slot.update_full(plan, user, nodes)?;
        }
        score_slot(compiled, plan, slot, weights, user)
    }

    /// Debug-build invariant: the plan path is bit-compatible with a
    /// from-scratch evaluation (1e-12 relative tolerance per component;
    /// in practice the two paths agree exactly).
    #[cfg(debug_assertions)]
    fn cross_check(
        &self,
        user: &[f64],
        nodes: &[f64],
        weights: &AdaptiveWeights,
        got: &Result<CostBreakdown, EvalFailure>,
    ) {
        fn close(a: f64, b: f64) -> bool {
            a.to_bits() == b.to_bits() || (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
        }
        fn all_close(a: &[f64], b: &[f64]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| close(*x, *y))
        }
        let want = self
            .record(user, nodes)
            .and_then(|r| self.cost_of_record(&r, weights));
        match (got, &want) {
            (Ok(g), Ok(w)) => {
                let ok = close(g.c_obj, w.c_obj)
                    && close(g.c_perf, w.c_perf)
                    && close(g.c_dev, w.c_dev)
                    && close(g.c_dc, w.c_dc)
                    && close(g.total, w.total)
                    && close(g.kcl_max, w.kcl_max)
                    && all_close(&g.measured, &w.measured)
                    && all_close(&g.violation, &w.violation)
                    && all_close(&g.kcl_violation, &w.kcl_violation)
                    && g.failed == w.failed;
                assert!(
                    ok,
                    "plan path diverged from full evaluation:\nplan {g:?}\nfull {w:?}"
                );
            }
            (Err(_), Err(_)) => {}
            (Ok(_), Err(e)) => panic!("plan path succeeded but full evaluation failed: {e}"),
            (Err(e), Ok(_)) => panic!("plan path failed but full evaluation succeeded: {e}"),
        }
    }

    /// Scores an existing evaluation record.
    ///
    /// # Errors
    ///
    /// [`EvalFailure::Goal`] when a goal expression fails to evaluate.
    pub fn cost_of_record(
        &self,
        record: &EvalRecord,
        weights: &AdaptiveWeights,
    ) -> Result<CostBreakdown, EvalFailure> {
        let ctx = SpecContext { record };
        score_with(
            self.compiled,
            weights,
            &ctx,
            &record.bias.mosfets,
            &record.mos_ops,
            &record.bjt_ops,
            &record.free_nodes,
            &record.residual,
        )
    }
}

/// The weighted cost summation shared by the cold path
/// ([`CostEvaluator::cost_of_record`]) and the plan path. A single
/// implementation guarantees both paths add the same terms in the same
/// order, so their totals agree bit for bit.
///
/// # Errors
///
/// [`EvalFailure::Goal`] when a goal expression fails to evaluate.
#[allow(clippy::too_many_arguments)]
pub(crate) fn score_with(
    compiled: &CompiledProblem,
    weights: &AdaptiveWeights,
    ctx: &dyn EvalContext,
    mosfets: &[MosInstance],
    mos_ops: &[MosOp],
    bjt_ops: &[BjtOp],
    free_nodes: &[usize],
    residual: &[f64],
) -> Result<CostBreakdown, EvalFailure> {
    let mut c_obj = 0.0;
    let mut c_perf = 0.0;
    let mut measured = Vec::with_capacity(compiled.problem.specs.len());
    let mut violation = Vec::with_capacity(compiled.problem.specs.len());
    for (gi, goal) in compiled.problem.specs.iter().enumerate() {
        let value = goal
            .expr
            .eval(ctx)
            .map_err(|e| EvalFailure::Goal(format!("{}: {e}", goal.name)))?;
        measured.push(value);
        let z = normalized(goal, value);
        match goal.kind {
            SpecKind::Objective => {
                // Objectives keep pulling past `good`, but bounded so
                // a single runaway objective cannot drown the rest.
                let zc = z.max(-3.0);
                violation.push(z);
                c_obj += weights.goal(gi) * zc;
            }
            SpecKind::Constraint => {
                let v = z.clamp(0.0, 100.0);
                violation.push(v);
                c_perf += weights.goal(gi) * v;
            }
        }
    }

    // C^dev: region penalties over all bias-circuit devices,
    // honouring `.region` overrides.
    let mut c_dev = 0.0;
    for (m, op) in mosfets.iter().zip(mos_ops.iter()) {
        let req = compiled
            .region_reqs
            .get(&m.name)
            .copied()
            .unwrap_or_default();
        c_dev += weights.device() * mos_region_penalty_for(op, req);
    }
    for op in bjt_ops {
        if !op.forward_active {
            c_dev += weights.device() * 0.3;
        }
    }

    // C^dc: KCL penalties at free nodes.
    let mut c_dc = 0.0;
    let mut kcl_max = 0.0f64;
    let mut kcl_violation = Vec::with_capacity(free_nodes.len());
    for (k, &node) in free_nodes.iter().enumerate() {
        let r = residual[node].abs();
        kcl_max = kcl_max.max(r);
        let v = if r > KCL_TOL {
            ((r - KCL_TOL) / KCL_NORM).min(1e6)
        } else {
            0.0
        };
        kcl_violation.push(v);
        c_dc += weights.kcl(k) * v;
    }

    let total = c_obj + c_perf + c_dev + c_dc;
    Ok(CostBreakdown {
        c_obj,
        c_perf,
        c_dev,
        c_dc,
        total: if total.is_finite() {
            total
        } else {
            FAILURE_COST
        },
        measured,
        violation,
        kcl_violation,
        kcl_max,
        failed: false,
    })
}

/// The built-in `power()` measure over a bias circuit and its KCL
/// residual: Σ over dc voltage sources of `|dc| · |residual at the
/// attached node|`.
pub(crate) fn power_of(bias: &SizedCircuit, residual: &[f64]) -> f64 {
    let mut p = 0.0;
    for el in &bias.linear {
        if let LinElement::Vsource {
            p: np, m: nm, dc, ..
        } = el
        {
            if *dc == 0.0 {
                continue;
            }
            let i = match (np, nm) {
                (Some(i), _) => residual[*i].abs(),
                (None, Some(i)) => residual[*i].abs(),
                _ => 0.0,
            };
            p += dc.abs() * i;
        }
    }
    p
}

/// The built-in `area()` measure: Σ gate areas (m²) plus a fixed
/// 500 µm² per bipolar device.
pub(crate) fn area_of(bias: &SizedCircuit) -> f64 {
    let mos: f64 = bias.mosfets.iter().map(|m| m.w * m.l).sum();
    let bjt: f64 = bias.bjts.iter().map(|q| q.area * 500e-12).sum();
    mos + bjt
}

/// The `good`/`bad` normalization of paper §IV.B (after
/// DELIGHT.SPICE): 0 at `good`, 1 at `bad`, negative beyond `good`.
pub fn normalized(goal: &Goal, value: f64) -> f64 {
    (value - goal.good) / (goal.bad - goal.good)
}

/// Saturation-region penalty for a MOS operating point (volts of
/// margin shortfall, continuous across the region boundaries).
pub fn mos_region_penalty(op: &MosOp) -> f64 {
    mos_region_penalty_for(op, RegionRequirement::Saturation)
}

/// Region penalty for a MOS operating point against a required region.
pub fn mos_region_penalty_for(op: &MosOp, req: RegionRequirement) -> f64 {
    match req {
        RegionRequirement::Any => 0.0,
        RegionRequirement::Saturation => match op.region {
            Region::Saturation => (SAT_MARGIN - op.sat_margin).max(0.0),
            Region::Triode => SAT_MARGIN + (op.vdsat - op.vds_n.abs()).max(0.0),
            Region::Cutoff => SAT_MARGIN + 0.2 + (op.vth - op.vgs_n).clamp(0.0, 5.0),
        },
        RegionRequirement::Triode => match op.region {
            Region::Triode => 0.0,
            // Want vds < vdsat: penalize the excess.
            _ => (op.vds_n.abs() - op.vdsat).max(0.0) + 0.05,
        },
        RegionRequirement::Off => {
            // Want vgs below threshold with margin.
            (op.vgs_n - op.vth + 0.05).max(0.0)
        }
    }
}

/// KCL residual vector for a bias circuit at MNA vector `x` (branch
/// currents zeroed) with device currents from the supplied ops.
pub fn kcl_residual(
    bias: &SizedCircuit,
    x: &[f64],
    mos_ops: &[MosOp],
    bjt_ops: &[BjtOp],
    diode_ops: &[DiodeOp],
) -> Vec<f64> {
    let n = bias.nodes.len();
    let dim = bias.dim();
    let mut g = oblx_linalg::Mat::zeros(dim, dim);
    let mut rhs = vec![0.0; dim];
    for el in &bias.linear {
        el.stamp_dc(&mut g, &mut rhs, n, 1.0);
    }
    let mut f = g.mul_vec(x);
    for (fi, r) in f.iter_mut().zip(rhs.iter()) {
        *fi -= r;
    }
    for (m, op) in bias.mosfets.iter().zip(mos_ops.iter()) {
        if let Some(d) = m.d {
            f[d] += op.id;
        }
        if let Some(s) = m.s {
            f[s] -= op.id;
        }
    }
    for (q, op) in bias.bjts.iter().zip(bjt_ops.iter()) {
        if let Some(c) = q.c {
            f[c] += op.ic;
        }
        if let Some(b) = q.b {
            f[b] += op.ib;
        }
        if let Some(e) = q.e {
            f[e] -= op.ic + op.ib;
        }
    }
    for (d, op) in bias.diodes.iter().zip(diode_ops.iter()) {
        if let Some(a) = d.a {
            f[a] += op.id;
        }
        if let Some(k) = d.k {
            f[k] -= op.id;
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astrx::compile_source;
    use crate::weights::AdaptiveWeights;
    use oblx_mna::solve_dc;

    const DIFFAMP: &str = include_str!("testdata/diffamp.ox");

    fn setup() -> CompiledProblem {
        compile_source(DIFFAMP).expect("compiles")
    }

    /// Node values copied from a converged Newton solve must yield a
    /// near-zero C^dc; wild values must not.
    #[test]
    fn relaxed_dc_matches_newton_at_solution() {
        let compiled = setup();
        let mut ev = CostEvaluator::new(&compiled);
        let user = compiled.initial_user_values();
        let vars = compiled.var_map(&user);
        let bias = SizedCircuit::build(&compiled.bias_netlist, &vars, &compiled.lib).unwrap();
        let op = solve_dc(&bias).unwrap();

        // Extract the free-node voltages from the Newton solution.
        let det = determined_voltages(&bias);
        let node_vals: Vec<f64> = det
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| op.v[i])
            .collect();
        assert_eq!(node_vals.len(), compiled.node_vars.len());

        let w = AdaptiveWeights::new(&compiled);
        let at_solution = ev.try_evaluate(&user, &node_vals, &w).unwrap();
        assert!(
            at_solution.kcl_max < 1e-7,
            "kcl at newton point = {}",
            at_solution.kcl_max
        );
        assert!(at_solution.c_dc < 1.0);

        let wild: Vec<f64> = node_vals.iter().map(|v| v + 1.0).collect();
        let off = ev.try_evaluate(&user, &wild, &w).unwrap();
        assert!(off.kcl_max > 1e-5, "kcl off solution = {}", off.kcl_max);
        assert!(off.c_dc > at_solution.c_dc * 10.0);
    }

    #[test]
    fn measured_values_are_physical() {
        let compiled = setup();
        let mut ev = CostEvaluator::new(&compiled);
        let user = compiled.initial_user_values();
        // Start from the Newton point so the AWE models are meaningful.
        let vars = compiled.var_map(&user);
        let bias = SizedCircuit::build(&compiled.bias_netlist, &vars, &compiled.lib).unwrap();
        let op = solve_dc(&bias).unwrap();
        let det = determined_voltages(&bias);
        let node_vals: Vec<f64> = det
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| op.v[i])
            .collect();
        let w = AdaptiveWeights::new(&compiled);
        let b = ev.try_evaluate(&user, &node_vals, &w).unwrap();
        // Goals: adm (dB), ugf (Hz), sr (V/s).
        let names: Vec<&str> = compiled
            .problem
            .specs
            .iter()
            .map(|g| g.name.as_str())
            .collect();
        assert_eq!(names, vec!["adm", "ugf", "sr"]);
        assert!(
            b.measured[0] > -60.0 && b.measured[0] < 120.0,
            "adm = {} dB",
            b.measured[0]
        );
        // At the arbitrary initial sizing the gain may be below unity,
        // in which case ugf is 0 by convention.
        assert!(
            b.measured[1].is_finite() && b.measured[1] >= 0.0 && b.measured[1] < 1e12,
            "ugf = {}",
            b.measured[1]
        );
        assert!(b.measured[2] > 1e3, "sr = {}", b.measured[2]);
        assert!(!b.failed);
    }

    #[test]
    fn failure_cost_for_unevaluable_geometry() {
        let compiled = setup();
        let mut ev = CostEvaluator::new(&compiled);
        let w = AdaptiveWeights::new(&compiled);
        // NaN geometry → assembly failure → failure cost.
        let mut user = compiled.initial_user_values();
        user[0] = f64::NAN;
        let b = ev.evaluate(&user, &vec![0.0; compiled.node_vars.len()], &w);
        assert!(b.failed);
        assert_eq!(b.total, FAILURE_COST);
    }

    #[test]
    fn region_penalty_shape() {
        let compiled = setup();
        let mut ev = CostEvaluator::new(&compiled);
        let user = compiled.initial_user_values();
        let w = AdaptiveWeights::new(&compiled);
        // All node voltages at 0: transistors cut off → c_dev positive.
        let b = ev
            .try_evaluate(&user, &vec![0.0; compiled.node_vars.len()], &w)
            .unwrap();
        assert!(b.c_dev > 0.0);
    }

    #[test]
    fn region_card_changes_dev_penalty() {
        // Declare the tail device `any`: a state that cuts it off must
        // then cost strictly less C^dev than under the default
        // all-saturation policy.
        let base = setup();
        let src = include_str!("testdata/diffamp.ox").to_string()
            + ".region xamp.m1 any
.region xamp.m2 any
";
        let relaxed = compile_source(&src).expect("compiles with region cards");
        assert_eq!(relaxed.region_reqs.len(), 2);

        let user = base.initial_user_values();
        let zeros = vec![0.0; base.node_vars.len()];
        let wb = AdaptiveWeights::new(&base);
        let wr = AdaptiveWeights::new(&relaxed);
        let b = CostEvaluator::new(&base)
            .try_evaluate(&user, &zeros, &wb)
            .unwrap();
        let r = CostEvaluator::new(&relaxed)
            .try_evaluate(&user, &zeros, &wr)
            .unwrap();
        assert!(
            r.c_dev < b.c_dev,
            "any-region devices must reduce C^dev: {} vs {}",
            r.c_dev,
            b.c_dev
        );

        // Unknown device names are rejected at compile time.
        let bad = include_str!("testdata/diffamp.ox").to_string()
            + ".region nosuch.m1 sat
";
        assert!(compile_source(&bad).is_err());
    }

    #[test]
    fn region_penalty_semantics() {
        use crate::astrx::RegionRequirement as R;
        let compiled = setup();
        let vars = compiled.var_map(&compiled.initial_user_values());
        let bias = SizedCircuit::build(&compiled.bias_netlist, &vars, &compiled.lib).unwrap();
        let m = &bias.mosfets[0];
        // Saturated device: sat → 0 penalty, triode-required → > 0.
        let sat_op = m.model.op(m.w, m.l, 3.0, 2.0, 0.0, 0.0);
        assert_eq!(mos_region_penalty_for(&sat_op, R::Saturation), 0.0);
        assert!(mos_region_penalty_for(&sat_op, R::Triode) > 0.0);
        assert!(mos_region_penalty_for(&sat_op, R::Off) > 0.0);
        assert_eq!(mos_region_penalty_for(&sat_op, R::Any), 0.0);
        // Triode device: triode-required → 0, sat-required → > 0.
        let tri_op = m.model.op(m.w, m.l, 0.1, 3.0, 0.0, 0.0);
        assert_eq!(mos_region_penalty_for(&tri_op, R::Triode), 0.0);
        assert!(mos_region_penalty_for(&tri_op, R::Saturation) > 0.0);
        // Cut-off device: off-required → 0.
        let off_op = m.model.op(m.w, m.l, 3.0, 0.0, 0.0, 0.0);
        assert_eq!(mos_region_penalty_for(&off_op, R::Off), 0.0);
    }

    #[test]
    fn normalization_direction() {
        use oblx_netlist::Expr;
        let maximize = Goal {
            name: "gain".into(),
            expr: Expr::num(0.0),
            good: 60.0,
            bad: 20.0,
            kind: SpecKind::Constraint,
        };
        assert!(normalized(&maximize, 70.0) < 0.0); // beyond good
        assert_eq!(normalized(&maximize, 60.0), 0.0);
        assert_eq!(normalized(&maximize, 20.0), 1.0);
        let minimize = Goal {
            name: "power".into(),
            expr: Expr::num(0.0),
            good: 1e-3,
            bad: 20e-3,
            kind: SpecKind::Constraint,
        };
        assert!(normalized(&minimize, 0.5e-3) < 0.0);
        assert!(normalized(&minimize, 10e-3) > 0.0);
    }
}
