.title section-iv diff amp
.var W 2u 500u log
.var L 1u 20u log
.var I 2u 2m log
.var Vb 0.8 4.2 lin cont

.model nmos nmos level=1 vto=0.75 kp=5.2e-5 gamma=0.55 lambda=0.03
.model pmos pmos level=1 vto=-0.85 kp=1.8e-5 gamma=0.5 lambda=0.045

.subckt amp in+ in- out+ out- nvdd nvss
m1 out- in+ t nvss nmos w='W' l='L'
m2 out+ in- t nvss nmos w='W' l='L'
m3 out- bias nvdd nvdd pmos w=40u l=2u
m4 out+ bias nvdd nvdd pmos w=40u l=2u
vb bias nvdd '0-Vb'
ib t nvss 'I'
.ends

.jig acjig
xamp in+ in- out+ out- nvdd nvss amp
vdd nvdd 0 5
vss nvss 0 0
vin in+ 0 0 ac 1
ein in- 0 0 in+ 1
cl1 out+ 0 1p
cl2 out- 0 1p
.pz tf v(out+) vin
.endjig

.bias
xamp in+ in- out+ out- nvdd nvss amp
vdd nvdd 0 5
vss nvss 0 0
vc1 in+ 0 2.5
vc2 in- 0 2.5
.endbias

.obj adm 'db(dc_gain(tf))' good=40 bad=5
.spec ugf 'ugf(tf)' good=1Meg bad=10k
.spec sr 'I/(2*(1p+xamp.m1.cd+xamp.m3.cd))' good=1Meg bad=10k
