//! Measurement functions over reduced-order models — the vocabulary
//! available to `.obj`/`.spec` expressions (`ugf(tf)`, `phase_margin(tf)`
//! …).
//!
//! Each evaluation costs `O(q)` per frequency point, so scanning for a
//! unity crossing is essentially free compared to re-solving the
//! circuit.

use crate::model::ReducedModel;
use oblx_linalg::Complex;

/// Gain magnitude `|H(j·2π·f)|` at frequency `f` (Hz).
pub fn gain_at(model: &ReducedModel, f: f64) -> f64 {
    model
        .eval(Complex::new(0.0, 2.0 * std::f64::consts::PI * f))
        .norm()
}

/// Unity-gain frequency (Hz): lowest `f` where `|H|` crosses 1.
///
/// Returns 0 when the dc gain is already ≤ 1, and `1e12` when no
/// crossing is found below a THz (an effectively-unbounded response —
/// the cost function treats it as "very fast").
///
/// A *pole-free* model (the `constant(µ0)` fit fallback, or a model
/// whose every pole was dropped as non-finite) carries no frequency
/// information at all, so it returns 0 rather than 1e12: "no pole
/// found" must never be scored as "infinitely fast circuit".
pub fn unity_gain_frequency(model: &ReducedModel) -> f64 {
    if let Some(f) = model.cached_ugf() {
        return f;
    }
    let f = unity_gain_frequency_uncached(model);
    model.store_ugf(f);
    f
}

fn unity_gain_frequency_uncached(model: &ReducedModel) -> f64 {
    const F_MAX: f64 = 1.0e12;
    if model.poles().is_empty() {
        return 0.0;
    }
    if model.dc_gain() <= 1.0 {
        return 0.0;
    }
    let mut lo = 1.0e-1;
    let mut hi = lo;
    let mut found = false;
    while hi < F_MAX {
        hi *= 10.0;
        if gain_at(model, hi) <= 1.0 {
            found = true;
            break;
        }
        lo = hi;
    }
    if !found {
        return F_MAX;
    }
    for _ in 0..60 {
        let mid = (lo * hi).sqrt();
        if gain_at(model, mid) > 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

/// Phase margin in degrees: `180° − (phase lag accumulated from dc to
/// the unity-gain crossing)`.
///
/// Measuring the lag *relative to the dc phase* makes the result
/// independent of the output sign convention — an inverting
/// single-ended probe (dc phase 180°) reports the same margin as the
/// non-inverted measurement.
///
/// By convention returns 90° when there is no unity crossing, and 0°
/// when the model is unstable (an unstable fit means the proposed
/// circuit is unusable, and the penalty must reflect that).
pub fn phase_margin(model: &ReducedModel) -> f64 {
    if !model.is_stable() {
        return 0.0;
    }
    let f = unity_gain_frequency(model);
    if f <= 0.0 || f >= 1.0e12 {
        return 90.0;
    }
    let h0 = model.eval(Complex::new(0.0, 0.0));
    let h = model.eval(Complex::new(0.0, 2.0 * std::f64::consts::PI * f));
    180.0 - phase_lag_degrees(h0.arg(), h.arg())
}

/// Principal-value phase lag `|∠H(jω) − ∠H(0)|` in degrees, wrapped
/// into `[0, 360)`.
pub(crate) fn phase_lag_degrees(arg0: f64, arg_f: f64) -> f64 {
    let mut d = (arg_f - arg0).to_degrees();
    while d > 180.0 {
        d -= 360.0;
    }
    while d < -180.0 {
        d += 360.0;
    }
    d.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ReducedModel;

    fn model(poles: &[(f64, f64)], residues: &[(f64, f64)], mu0: f64) -> ReducedModel {
        ReducedModel::new(
            poles.iter().map(|&(r, i)| Complex::new(r, i)).collect(),
            residues.iter().map(|&(r, i)| Complex::new(r, i)).collect(),
            mu0,
            vec![],
            poles.len(),
        )
    }

    #[test]
    fn single_pole_ugf_is_gbw() {
        // A0 = 1000, pole at 1 kHz ⇒ ugf ≈ 1 MHz (f_p·A0).
        let wp = 2.0 * std::f64::consts::PI * 1.0e3;
        let m = model(&[(-wp, 0.0)], &[(1000.0 * wp, 0.0)], 1000.0);
        let f = unity_gain_frequency(&m);
        assert!((f - 1.0e6).abs() / 1.0e6 < 1e-3, "ugf = {f}");
        // PM ≈ 90° for a single pole crossing a decade+ past the pole.
        let pm = phase_margin(&m);
        assert!((pm - 90.0).abs() < 1.0, "pm = {pm}");
    }

    #[test]
    fn two_pole_phase_margin() {
        // Poles at 1 kHz and 1 MHz, A0 = 1000: crossing at the second
        // pole gives PM ≈ 45–52°.
        let w1 = 2.0 * std::f64::consts::PI * 1.0e3;
        let w2 = 2.0 * std::f64::consts::PI * 1.0e6;
        // H = A0·w1·w2/((s+w1)(s+w2)) → residues via partial fractions.
        let a0 = 1000.0;
        let k1 = a0 * w1 * w2 / (w2 - w1);
        let k2 = -a0 * w1 * w2 / (w2 - w1);
        let m = model(&[(-w1, 0.0), (-w2, 0.0)], &[(k1, 0.0), (k2, 0.0)], a0);
        let pm = phase_margin(&m);
        assert!(pm > 40.0 && pm < 60.0, "pm = {pm}");
    }

    #[test]
    fn low_gain_has_no_crossing() {
        let m = model(&[(-1000.0, 0.0)], &[(500.0, 0.0)], 0.5);
        assert_eq!(unity_gain_frequency(&m), 0.0);
        assert_eq!(phase_margin(&m), 90.0);
    }

    #[test]
    fn unstable_model_zero_margin() {
        let m = model(&[(1000.0, 0.0)], &[(1e6, 0.0)], 1000.0);
        assert_eq!(phase_margin(&m), 0.0);
    }

    #[test]
    fn gain_at_matches_eval() {
        let wp = 1.0e4;
        let m = model(&[(-wp, 0.0)], &[(10.0 * wp, 0.0)], 10.0);
        let g = gain_at(&m, wp / (2.0 * std::f64::consts::PI));
        assert!((g - 10.0 / 2.0f64.sqrt()).abs() < 1e-9);
    }
}
