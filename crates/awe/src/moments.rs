//! Moment generation and the adaptive Padé fit.

use crate::model::{AweError, ReducedModel};
use oblx_linalg::{solve_hankel, solve_vandermonde, Complex, Lu, Mat, Poly, SparseLu};
use oblx_mna::{LinearSystem, OutputSelector, SparseStampMap};

/// Compressed rows of the transposed capacitance matrix (structural
/// nonzeros only), built once per factorization and shared by every
/// adjoint moment recurrence against it. MNA `C` matrices are
/// overwhelmingly zero — only capacitor and junction-capacitance stamps
/// populate them — so the recurrence's `Cᵀ·a_k` products collapse from
/// `n²` to a handful of terms per row.
struct SparseC {
    dim: usize,
    /// Row `r` owns `cols[starts[r]..starts[r+1]]` / same for `vals`.
    starts: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl SparseC {
    /// Compressed rows of `Cᵀ` (row `r` holds column `r` of `C`) — the
    /// operator the adjoint moment recurrence applies.
    fn build_transpose(c: &Mat<f64>) -> SparseC {
        let (rows, ncols) = (c.rows(), c.cols());
        let data = c.as_slice();
        let mut starts = Vec::with_capacity(ncols + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        starts.push(0);
        for tc in 0..ncols {
            for r in 0..rows {
                let v = data[r * ncols + tc];
                if v != 0.0 {
                    cols.push(r);
                    vals.push(v);
                }
            }
            starts.push(cols.len());
        }
        SparseC {
            dim: ncols,
            starts,
            cols,
            vals,
        }
    }

    /// `y = −(C·x)`: ascending-column accumulation identical to the
    /// dense product with its structural-zero terms dropped.
    fn mul_neg_into(&self, x: &[f64], y: &mut Vec<f64>) {
        y.clear();
        y.resize(self.dim, 0.0);
        for (r, yr) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.starts[r], self.starts[r + 1]);
            let mut acc = 0.0;
            for (c, v) in self.cols[lo..hi].iter().zip(self.vals[lo..hi].iter()) {
                acc += *v * x[*c];
            }
            *yr = -acc;
        }
    }
}

/// Structural compressed rows of `Cᵀ` over a [`SparseStampMap`] union
/// pattern: the sparse engine's counterpart of [`SparseC`]. Instead of
/// values it stores *slot indices* into the map's parallel `c_vals`
/// array, so the operator is built once per plan compile and every
/// re-stamp is picked up with zero rebuild cost.
#[derive(Debug, Clone)]
struct SlotCt {
    dim: usize,
    /// Row `r` of `Cᵀ` owns `cols[starts[r]..starts[r+1]]`.
    starts: Vec<u32>,
    cols: Vec<u32>,
    /// Slot of each `(cols[j], r)` entry in the union value arrays.
    slots: Vec<u32>,
}

impl SlotCt {
    /// Builds `Cᵀ` rows from the union pattern restricted to the
    /// entries the `C` stamping sequence touches (`c_idx`, sorted).
    fn build(dim: usize, entries: &[(usize, usize)], c_idx: &[u32]) -> SlotCt {
        // Row `tc` of `Cᵀ` holds column `tc` of `C`; within a row,
        // ascending source row — the same accumulation order as
        // [`SparseC::build_transpose`].
        let mut order: Vec<u32> = c_idx.to_vec();
        order.sort_by_key(|&i| {
            let (r, c) = entries[i as usize];
            (c, r)
        });
        let mut starts = Vec::with_capacity(dim + 1);
        let mut cols = Vec::with_capacity(order.len());
        starts.push(0u32);
        let mut pos = 0usize;
        for tc in 0..dim {
            while pos < order.len() && entries[order[pos] as usize].1 == tc {
                cols.push(entries[order[pos] as usize].0 as u32);
                pos += 1;
            }
            starts.push(cols.len() as u32);
        }
        SlotCt {
            dim,
            starts,
            cols,
            slots: order,
        }
    }

    /// `y = −(Cᵀ·x)ᵀ`-style product reading values through the slot
    /// indirection; same ascending accumulation as
    /// [`SparseC::mul_neg_into`].
    fn mul_neg_into(&self, vals: &[f64], x: &[f64], y: &mut Vec<f64>) {
        y.clear();
        y.resize(self.dim, 0.0);
        for (r, yr) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.starts[r] as usize, self.starts[r + 1] as usize);
            let mut acc = 0.0;
            for (c, s) in self.cols[lo..hi].iter().zip(self.slots[lo..hi].iter()) {
                acc += vals[*s as usize] * x[*c as usize];
            }
            *yr = -acc;
        }
    }
}

/// Systems below this MNA dimension stay on the dense LU path: at that
/// scale the dense factor's tight loops beat the sparse machinery's
/// indirection, and — just as important — small benchmark circuits
/// (Simple OTA's ac jig is dim 24) keep *bit-identical* behaviour with
/// the pre-sparse code.
pub const SPARSE_DIM_MIN: usize = 25;

/// A reusable analysis engine bound to one circuit *structure*.
///
/// Built once per [`LinearSystem`] topology (at plan-compile time in
/// the incremental evaluator), it decides dense vs sparse by dimension,
/// performs the sparse **symbolic** factorization exactly once, and
/// afterwards serves every re-stamped set of element values with an
/// allocation-free numeric refactor. The dense mode carries no state at
/// all — it is the exact pre-existing `Lu::factor`-per-call path.
#[derive(Debug, Clone)]
pub struct AweEngine {
    inner: EngineInner,
}

#[derive(Debug, Clone)]
enum EngineInner {
    Dense,
    Sparse(Box<SparseEngine>),
}

#[derive(Debug, Clone)]
struct SparseEngine {
    /// Owned copy of the stamping map: pattern + replay slots.
    map: SparseStampMap,
    /// Symbolic+numeric factor of `G` on the union pattern.
    lu: SparseLu,
    /// Same symbolic structure, refactored over `G + σC` values for
    /// the shifted re-expansion.
    shift_lu: SparseLu,
    /// Structural `Cᵀ` rows with slots into `c_vals`.
    ct: SlotCt,
    /// Values parallel to the union pattern, refreshed per re-stamp.
    g_vals: Vec<f64>,
    c_vals: Vec<f64>,
    shift_vals: Vec<f64>,
    /// Reused adjoint-chain buffers: after the first batch the steady
    /// state performs no heap allocation per move.
    ws: AdjointWs,
}

/// Reusable buffers for the sparse adjoint solve chain.
#[derive(Debug, Clone, Default)]
struct AdjointWs {
    /// One adjoint vector set (`2q` vectors) per distinct probe seen in
    /// a batch, indexed in probe-first-appearance order.
    pool: Vec<Vec<Vec<f64>>>,
    r: Vec<f64>,
    scratch: Vec<f64>,
}

impl AweEngine {
    /// Chooses and prepares the engine for one system's structure.
    ///
    /// Small systems (`dim < `[`SPARSE_DIM_MIN`]) stay dense. Larger
    /// ones get a one-time symbolic factorization of the `G ∪ C`
    /// pattern; should that pattern be structurally singular (it never
    /// is for well-posed MNA, whose diagonals carry GMIN ties), the
    /// engine falls back to dense, counted as `sparse_fallback`.
    pub fn for_system(sys: &LinearSystem) -> AweEngine {
        let map = sys.stamp_map();
        if map.dim() < SPARSE_DIM_MIN {
            return AweEngine {
                inner: EngineInner::Dense,
            };
        }
        match SparseLu::symbolic(map.dim(), map.entries()) {
            Ok(lu) => {
                let ct = SlotCt::build(map.dim(), map.entries(), &map.c_entry_indices());
                AweEngine {
                    inner: EngineInner::Sparse(Box::new(SparseEngine {
                        shift_lu: lu.clone(),
                        lu,
                        ct,
                        map: map.clone(),
                        g_vals: Vec::new(),
                        c_vals: Vec::new(),
                        shift_vals: Vec::new(),
                        ws: AdjointWs::default(),
                    })),
                }
            }
            Err(_) => {
                oblx_telemetry::incr(oblx_telemetry::Counter::SparseFallback);
                AweEngine {
                    inner: EngineInner::Dense,
                }
            }
        }
    }

    /// `true` when analyses run through the sparse refactor path.
    pub fn is_sparse(&self) -> bool {
        matches!(self.inner, EngineInner::Sparse(_))
    }

    /// Loads element values by gathering from the system's dense
    /// matrices — the cold path, where the system was just stamped
    /// densely anyway. Gathered values are bit-identical to a direct
    /// slot replay (see [`SparseStampMap`]). No-op in dense mode.
    pub fn load(&mut self, sys: &LinearSystem) {
        if let EngineInner::Sparse(se) = &mut self.inner {
            sys.sparse_vals_into(&mut se.g_vals, &mut se.c_vals);
        }
    }

    /// Direct access to the stamping map and the value arrays for the
    /// incremental path: the caller re-stamps moved element values
    /// straight into `(g_vals, c_vals)` via [`SparseStampMap::stamp`],
    /// touching no dense matrix at all. `None` in dense mode — the
    /// caller should dense-restamp its [`LinearSystem`] instead.
    pub fn sparse_parts_mut(&mut self) -> Option<(&SparseStampMap, &mut Vec<f64>, &mut Vec<f64>)> {
        match &mut self.inner {
            EngineInner::Dense => None,
            EngineInner::Sparse(se) => Some((&se.map, &mut se.g_vals, &mut se.c_vals)),
        }
    }
}

/// The raw transfer-function moments `µ_0 … µ_{2q_max−1}` of a system,
/// plus the shared LU factorization statistics.
#[derive(Debug, Clone)]
pub struct Moments {
    /// Output moments in ascending order.
    pub mu: Vec<f64>,
}

/// Computes `count` output moments of `probe(x(s))` for unit stimulus
/// from `source`.
///
/// Cost: one LU of `G` plus `count` back-substitutions — the complexity
/// claim of paper §IV.A.
///
/// # Errors
///
/// [`AweError::SingularG`] when the conductance matrix cannot be
/// factored (dc-floating node), [`AweError::UnknownSource`] for a bad
/// source name.
pub fn moments(
    sys: &LinearSystem,
    source: &str,
    out: OutputSelector,
    count: usize,
) -> Result<Moments, AweError> {
    let b = sys
        .input_vector(source)
        .ok_or_else(|| AweError::UnknownSource(source.to_string()))?;
    moments_with(sys, &b, out, count)
}

/// [`moments`] with a precomputed stimulus vector `b` — lets callers
/// that analyze the same source repeatedly (the incremental cost
/// evaluator) skip the per-call source-name lookup and allocation.
///
/// # Errors
///
/// [`AweError::SingularG`] when the conductance matrix cannot be
/// factored.
pub fn moments_with(
    sys: &LinearSystem,
    b: &[f64],
    out: OutputSelector,
    count: usize,
) -> Result<Moments, AweError> {
    let lu = Lu::factor(sys.g.clone()).map_err(|_| AweError::SingularG)?;
    Ok(moments_factored(
        &lu,
        &SparseC::build_transpose(&sys.c),
        b,
        out,
        count,
    ))
}

/// The adjoint moment row-vectors of one output probe against a
/// prefactored system matrix: `a_0 = G⁻ᵀ·out`,
/// `a_{k+1} = −G⁻ᵀ·Cᵀ·a_k`, so the `k`-th transfer-function moment of
/// *any* stimulus `b` through that probe is the dot product `a_k·b`.
/// This is the classic AWE adjoint formulation: the factorization cost
/// is per *output*, not per stimulus, which lets one factored system
/// serve a whole family of transfer functions (the gain / PSRR⁺ /
/// PSRR⁻ trio of an amplifier) with `2q` solves total.
fn adjoint_vectors(lu: &Lu<f64>, ct: &SparseC, out: OutputSelector, count: usize) -> Vec<Vec<f64>> {
    let n = lu.dim();
    let mut vecs: Vec<Vec<f64>> = Vec::with_capacity(count);
    let mut r = out.as_vector(n);
    let mut scratch = Vec::with_capacity(n);
    for k in 0..count {
        if k > 0 {
            ct.mul_neg_into(&vecs[k - 1], &mut r);
        }
        let mut a = Vec::with_capacity(n);
        lu.solve_transpose_into(&r, &mut a, &mut scratch);
        vecs.push(a);
    }
    vecs
}

/// Plain ascending-index dot product — the one reduction both the
/// job-at-a-time and the batch path use to turn an adjoint vector and a
/// stimulus into a moment, so they agree bit for bit.
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).fold(0.0, |acc, (x, y)| acc + x * y)
}

/// The moment sequence against a prefactored system matrix, via the
/// adjoint recurrence of [`adjoint_vectors`]. The single implementation
/// shared by the base, shifted and batch analyses, so every entry point
/// runs identical arithmetic.
fn moments_factored(
    lu: &Lu<f64>,
    ct: &SparseC,
    b: &[f64],
    out: OutputSelector,
    count: usize,
) -> Moments {
    let avs = adjoint_vectors(lu, ct, out, count);
    Moments {
        mu: avs.iter().map(|a| dot(a, b)).collect(),
    }
}

/// Builds a reduced-order model of the transfer function from `source`
/// to `out`, with at most `max_q` poles.
///
/// The order adapts downward when the moment sequence cannot support
/// `max_q` poles (rank-deficient Hankel) or when the fitted model fails
/// to reproduce its own moments.
///
/// # Errors
///
/// [`AweError`] as for [`moments`]. Degenerate moment sequences never
/// fail: they fall back to a forced one-pole or constant model so the
/// annealing cost function stays total.
pub fn analyze(
    sys: &LinearSystem,
    source: &str,
    out: OutputSelector,
    max_q: usize,
) -> Result<ReducedModel, AweError> {
    let b = sys
        .input_vector(source)
        .ok_or_else(|| AweError::UnknownSource(source.to_string()))?;
    analyze_with(sys, &b, out, max_q)
}

/// [`analyze`] with a precomputed stimulus vector `b`: the one and only
/// implementation of the base + shifted-expansion model fit, so the
/// precompiled-plan evaluation path and the cold path cannot diverge.
///
/// # Errors
///
/// [`AweError`] as for [`moments_with`].
pub fn analyze_with(
    sys: &LinearSystem,
    b: &[f64],
    out: OutputSelector,
    max_q: usize,
) -> Result<ReducedModel, AweError> {
    let mut models = analyze_batch(sys, &[(b, out)], max_q).map_err(|(_, e)| e)?;
    Ok(models.pop().expect("one job in, one model out"))
}

/// [`analyze_with`] over several stimulus/probe pairs of the *same*
/// system: factors `G` once and reuses it for every job, and — the
/// adjoint dividend — computes each distinct output probe's adjoint
/// vectors once, so all jobs sharing a probe (the gain / PSRR⁺ / PSRR⁻
/// trio of one amplifier, which differ only in stimulus) cost one dot
/// product per moment instead of a fresh solve chain. Each model is
/// bit-identical to a standalone [`analyze_with`] call, because the
/// adjoint vectors depend only on `(G, C, out)` — not on the stimulus —
/// and both paths take the same `a_k·b` reduction through the same
/// (deterministic) factorization.
///
/// Returns the reduced models in job order.
///
/// # Errors
///
/// The first failing job's index with its error. A singular `G` is
/// attributed to job 0 — the job-at-a-time path would hit the same
/// factorization failure on its first analysis.
#[allow(clippy::type_complexity)]
pub fn analyze_batch(
    sys: &LinearSystem,
    jobs: &[(&[f64], OutputSelector)],
    max_q: usize,
) -> Result<Vec<ReducedModel>, (usize, AweError)> {
    let mut engine = AweEngine::for_system(sys);
    engine.load(sys);
    analyze_batch_with(&mut engine, sys, jobs, max_q)
}

/// [`analyze_batch`] against a prebuilt [`AweEngine`], for callers that
/// re-analyze the same structure repeatedly (the precompiled evaluation
/// plan): the symbolic factorization is amortized across every call, so
/// each batch costs one numeric refactor plus the solve chain.
///
/// In sparse mode the system's dense matrices are **not read** — the
/// engine's value arrays (loaded via [`AweEngine::load`] or stamped via
/// [`AweEngine::sparse_parts_mut`]) are the source of truth. A numeric
/// refactor failure (zero pivot on the fixed pivot order) falls back to
/// a dense factorization *reconstructed from those same values* —
/// counted as `sparse_fallback` — so a value set that dense partial
/// pivoting can handle is never lost to pivot-order bad luck; only if
/// dense also fails does the batch report [`AweError::SingularG`].
///
/// # Errors
///
/// As for [`analyze_batch`].
#[allow(clippy::type_complexity)]
pub fn analyze_batch_with(
    engine: &mut AweEngine,
    sys: &LinearSystem,
    jobs: &[(&[f64], OutputSelector)],
    max_q: usize,
) -> Result<Vec<ReducedModel>, (usize, AweError)> {
    let max_q = max_q.clamp(1, 12);
    match &mut engine.inner {
        EngineInner::Dense => dense_batch_core(&sys.g, &sys.c, jobs, max_q),
        EngineInner::Sparse(se) => sparse_batch_core(se, jobs, max_q),
    }
}

/// The dense batch pipeline: factor `G` once, cache adjoint vectors per
/// distinct probe, fit each job. Shared verbatim by the dense engine
/// mode and the sparse engine's singular-refactor fallback (which feeds
/// it matrices reconstructed from the sparse value arrays).
#[allow(clippy::type_complexity)]
fn dense_batch_core(
    g: &Mat<f64>,
    c: &Mat<f64>,
    jobs: &[(&[f64], OutputSelector)],
    max_q: usize,
) -> Result<Vec<ReducedModel>, (usize, AweError)> {
    let lu = Lu::factor(g.clone()).map_err(|_| (0, AweError::SingularG))?;
    let ct = SparseC::build_transpose(c);
    // Adjoint vectors per distinct probe, computed lazily on first use.
    let mut outs: Vec<OutputSelector> = Vec::new();
    let mut avs_cache: Vec<Vec<Vec<f64>>> = Vec::new();
    let mut models = Vec::with_capacity(jobs.len());
    for (i, (b, out)) in jobs.iter().enumerate() {
        let k = match outs.iter().position(|o| *o == *out) {
            Some(k) => k,
            None => {
                outs.push(*out);
                avs_cache.push(adjoint_vectors(&lu, &ct, *out, 2 * max_q));
                outs.len() - 1
            }
        };
        let mm = Moments {
            mu: avs_cache[k].iter().map(|a| dot(a, b)).collect(),
        };
        let model = analyze_from_moments(mm, max_q, |sigma, mu0| {
            analyze_shifted_dense(g, c, &ct, b, *out, max_q, sigma, mu0)
        })
        .map_err(|e| (i, e))?;
        models.push(model);
    }
    Ok(models)
}

/// The sparse batch pipeline: one numeric refactor of `G` on the
/// precomputed symbolic structure, then the same adjoint-cached fit loop
/// as [`dense_batch_core`] with sparse transpose solves.
#[allow(clippy::type_complexity)]
fn sparse_batch_core(
    se: &mut SparseEngine,
    jobs: &[(&[f64], OutputSelector)],
    max_q: usize,
) -> Result<Vec<ReducedModel>, (usize, AweError)> {
    assert_eq!(
        se.g_vals.len(),
        se.map.nnz(),
        "engine values not loaded; call AweEngine::load or stamp via sparse_parts_mut"
    );
    if se.lu.refactor(&se.g_vals).is_err() {
        // The fixed pivot order met a zero/non-finite pivot. Dense
        // partial pivoting gets the final say over the same values.
        oblx_telemetry::incr(oblx_telemetry::Counter::SparseFallback);
        let g = se.dense_from(&se.g_vals);
        let c = se.dense_from(&se.c_vals);
        return dense_batch_core(&g, &c, jobs, max_q);
    }
    // The workspace moves out for the duration of the loop so the
    // shifted-fit closure can still borrow the engine mutably. An error
    // abandons the buffers (the evaluation is failing anyway).
    let mut ws = std::mem::take(&mut se.ws);
    let result = sparse_batch_jobs(se, &mut ws, jobs, max_q);
    se.ws = ws;
    result
}

/// The per-job fit loop of [`sparse_batch_core`], with all adjoint
/// buffers supplied by the caller-owned workspace.
#[allow(clippy::type_complexity)]
fn sparse_batch_jobs(
    se: &mut SparseEngine,
    ws: &mut AdjointWs,
    jobs: &[(&[f64], OutputSelector)],
    max_q: usize,
) -> Result<Vec<ReducedModel>, (usize, AweError)> {
    let mut outs: Vec<OutputSelector> = Vec::with_capacity(jobs.len());
    let mut models = Vec::with_capacity(jobs.len());
    for (i, (b, out)) in jobs.iter().enumerate() {
        let k = match outs.iter().position(|o| *o == *out) {
            Some(k) => k,
            None => {
                outs.push(*out);
                let k = outs.len() - 1;
                if ws.pool.len() <= k {
                    ws.pool.resize_with(k + 1, Vec::new);
                }
                sparse_adjoint_vectors_into(
                    &se.lu,
                    &se.ct,
                    &se.c_vals,
                    *out,
                    2 * max_q,
                    &mut ws.pool[k],
                    &mut ws.r,
                    &mut ws.scratch,
                );
                k
            }
        };
        let mm = Moments {
            mu: ws.pool[k].iter().map(|a| dot(a, b)).collect(),
        };
        let model = analyze_from_moments(mm, max_q, |sigma, mu0| {
            se.shifted_fit(b, *out, max_q, sigma, mu0)
        })
        .map_err(|e| (i, e))?;
        models.push(model);
    }
    Ok(models)
}

impl SparseEngine {
    /// Reconstructs a dense matrix from union-pattern values. Each cell
    /// receives exactly its slot value (entries are unique), which is
    /// bit-identical to the corresponding dense stamp — the fallback
    /// therefore factors *the same matrix* the dense path would have.
    fn dense_from(&self, vals: &[f64]) -> Mat<f64> {
        let dim = self.map.dim();
        let mut m = Mat::zeros(dim, dim);
        for (&(r, c), &v) in self.map.entries().iter().zip(vals.iter()) {
            m.add_at(r, c, v);
        }
        m
    }

    /// The shifted re-expansion on the sparse path: `G + σC` shares the
    /// union pattern, so its values are the elementwise
    /// `g_vals + σ·c_vals` and its factorization reuses the same
    /// symbolic structure through `shift_lu`.
    fn shifted_fit(
        &mut self,
        b: &[f64],
        out: OutputSelector,
        max_q: usize,
        sigma: f64,
        mu0_exact: f64,
    ) -> Result<ReducedModel, AweError> {
        self.shift_vals.clear();
        self.shift_vals.extend(
            self.g_vals
                .iter()
                .zip(self.c_vals.iter())
                .map(|(&g, &c)| g + sigma * c),
        );
        self.shift_lu
            .refactor(&self.shift_vals)
            .map_err(|_| AweError::SingularG)?;
        let avs = sparse_adjoint_vectors(&self.shift_lu, &self.ct, &self.c_vals, out, 2 * max_q);
        let mu: Vec<f64> = avs.iter().map(|a| dot(a, b)).collect();
        shifted_model_from(mu, max_q, sigma, mu0_exact)
    }
}

/// [`adjoint_vectors`] against a sparse factorization, reading `Cᵀ`
/// through the slot-indexed structural operator.
fn sparse_adjoint_vectors(
    lu: &SparseLu,
    ct: &SlotCt,
    c_vals: &[f64],
    out: OutputSelector,
    count: usize,
) -> Vec<Vec<f64>> {
    let mut vecs = Vec::new();
    let (mut r, mut scratch) = (Vec::new(), Vec::new());
    sparse_adjoint_vectors_into(lu, ct, c_vals, out, count, &mut vecs, &mut r, &mut scratch);
    vecs
}

/// [`sparse_adjoint_vectors`] into caller-owned buffers: `vecs` is
/// resized to `count` solutions with its inner allocations reused, so a
/// warm workspace runs the whole chain without touching the heap.
#[allow(clippy::too_many_arguments)]
fn sparse_adjoint_vectors_into(
    lu: &SparseLu,
    ct: &SlotCt,
    c_vals: &[f64],
    out: OutputSelector,
    count: usize,
    vecs: &mut Vec<Vec<f64>>,
    r: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
) {
    let n = lu.dim();
    vecs.resize_with(count, Vec::new);
    vecs.truncate(count);
    r.clear();
    r.resize(n, 0.0);
    if let Some(i) = out.p {
        r[i] += 1.0;
    }
    if let Some(i) = out.m {
        r[i] -= 1.0;
    }
    for k in 0..count {
        if k > 0 {
            let (prev, cur) = vecs.split_at_mut(k);
            ct.mul_neg_into(c_vals, &prev[k - 1], r);
            lu.solve_transpose_into(r, &mut cur[0], scratch);
        } else {
            lu.solve_transpose_into(r, &mut vecs[0], scratch);
        }
    }
}

/// Fits the model from already-computed base moments, re-expanding
/// about the estimated unity-gain crossing when the pole spread demands
/// it. The shift solve itself is supplied by the caller (`shifted_fit`,
/// invoked as `shifted_fit(σ, µ0_exact)`), so the dense and sparse
/// engines share every gate, threshold and arbitration decision in this
/// one implementation and cannot diverge.
fn analyze_from_moments<F>(
    mm: Moments,
    max_q: usize,
    shifted_fit: F,
) -> Result<ReducedModel, AweError>
where
    F: FnOnce(f64, f64) -> Result<ReducedModel, AweError>,
{
    let _span = oblx_telemetry::span(oblx_telemetry::SpanKind::AweAnalyze);
    let base = guard_model(fit_model(&mm.mu, max_q)?)?;

    // When the unity-gain crossing sits far above the dominant pole,
    // the poles governing the crossing are numerically invisible in
    // moments about s = 0 (their signature decays like (p1/p2)^k, below
    // f64 precision past ~3 decades of separation). Re-expand about a
    // real shift near the estimated crossing — the frequency-hopping
    // refinement of 1990s AWE practice — and keep whichever model
    // matches the exact response there. The dc value stays pinned to
    // the exact µ0 either way.
    let f_cross = crate::measure::unity_gain_frequency(&base);
    // A pole-free model (guarded above, so a genuinely static transfer
    // function rather than a failed fit) has nothing to re-expand.
    let Some(dominant) = base.dominant_pole().map(|p| p.norm()) else {
        return Ok(base);
    };
    let w_cross = 2.0 * std::f64::consts::PI * f_cross;
    if f_cross <= 0.0 || f_cross >= 1.0e12 || dominant <= 0.0 || w_cross < 100.0 * dominant {
        return Ok(base);
    }
    let mu0 = mm.mu[0];
    match shifted_fit(w_cross, mu0) {
        Ok(shifted) => {
            // Arbitration without extra solves: a trustworthy shifted
            // fit must also capture the dominant pole (it lies within a
            // few decades below σ), so its raw pole/residue sum at
            // s = 0 must reproduce the exact µ0. A spurious fit won't.
            let h0: Complex = shifted
                .poles()
                .iter()
                .zip(shifted.residues().iter())
                .map(|(&p, &k)| -k / p)
                .fold(Complex::ZERO, |a, b| a + b);
            let consistent = (h0.re - mu0).abs() <= 0.2 * mu0.abs().max(1e-12)
                && h0.im.abs() <= 0.05 * mu0.abs().max(1e-12);
            if consistent && shifted.is_stable() {
                oblx_telemetry::incr(oblx_telemetry::Counter::AweShiftApplied);
                Ok(shifted)
            } else {
                oblx_telemetry::incr(oblx_telemetry::Counter::AweShiftRejected);
                Ok(base)
            }
        }
        Err(_) => {
            oblx_telemetry::incr(oblx_telemetry::Counter::AweShiftRejected);
            Ok(base)
        }
    }
}

/// Rejects models with no trustworthy pole content: either every fitted
/// pole was dropped as non-finite during sanitization, or every retained
/// pole sits in the right half-plane — a response that is pure
/// exponential growth, whose `|H(jω)|` would otherwise alias onto a
/// healthy-looking bandwidth in the cost evaluator. A *partially* RHP
/// model is kept (phase margin and stability measures grade it) but
/// counted as unstable.
fn guard_model(model: ReducedModel) -> Result<ReducedModel, AweError> {
    let all_rhp = !model.poles().is_empty() && model.poles().iter().all(|p| p.re >= 0.0);
    let lost_all = model.poles().is_empty() && model.dropped() > 0;
    if all_rhp || lost_all {
        oblx_telemetry::incr(oblx_telemetry::Counter::AweNoModel);
        return Err(AweError::NoModel);
    }
    if !model.is_stable() {
        oblx_telemetry::incr(oblx_telemetry::Counter::AweUnstable);
    }
    Ok(model)
}

/// Builds a reduced model from moments expanded about the real shift
/// `sigma` (rad/s): writing `s = σ + u`, the moments of
/// `(G + σC + uC)⁻¹·b` in `u` are matched; fitted poles translate back
/// by `p = u + σ` (residues are frame-invariant) and the dc value is
/// pinned to the supplied exact `mu0`.
///
/// # Errors
///
/// [`AweError::SingularG`] when `(G + σC)` cannot be factored,
/// [`AweError::UnknownSource`] for a bad source name.
pub fn analyze_shifted(
    sys: &LinearSystem,
    source: &str,
    out: OutputSelector,
    max_q: usize,
    sigma: f64,
    mu0_exact: f64,
) -> Result<ReducedModel, AweError> {
    let b = sys
        .input_vector(source)
        .ok_or_else(|| AweError::UnknownSource(source.to_string()))?;
    analyze_shifted_dense(
        &sys.g,
        &sys.c,
        &SparseC::build_transpose(&sys.c),
        &b,
        out,
        max_q,
        sigma,
        mu0_exact,
    )
}

/// [`analyze_shifted`] on dense matrices with a precomputed stimulus
/// vector and compressed `Cᵀ` rows. The adjoint recurrence runs against
/// `(G + σC)ᵀ` via the transpose solve of the shifted factorization —
/// the same [`moments_factored`] implementation as the base expansion.
///
/// # Errors
///
/// [`AweError::SingularG`] when `(G + σC)` cannot be factored.
#[allow(clippy::too_many_arguments)]
fn analyze_shifted_dense(
    g: &Mat<f64>,
    c: &Mat<f64>,
    ct: &SparseC,
    b: &[f64],
    out: OutputSelector,
    max_q: usize,
    sigma: f64,
    mu0_exact: f64,
) -> Result<ReducedModel, AweError> {
    let max_q = max_q.clamp(1, 12);
    // Shifted system matrix G + σC (real for real σ).
    let dim = g.rows();
    let mut gs = g.clone();
    for r in 0..dim {
        for cc in 0..dim {
            let cv = c.get(r, cc);
            if cv != 0.0 {
                gs.add_at(r, cc, sigma * cv);
            }
        }
    }
    let lu = Lu::factor(gs).map_err(|_| AweError::SingularG)?;
    let mm = moments_factored(&lu, ct, b, out, 2 * max_q);
    shifted_model_from(mm.mu, max_q, sigma, mu0_exact)
}

/// The frame-translation tail of every shifted expansion: fit the local
/// (`u`-plane) moments, translate poles back by `p = u + σ` (residues
/// are frame-invariant) and pin the dc value to the exact `µ0`. Shared
/// by the dense and sparse shifted paths.
fn shifted_model_from(
    mu: Vec<f64>,
    max_q: usize,
    sigma: f64,
    mu0_exact: f64,
) -> Result<ReducedModel, AweError> {
    let local = fit_model(&mu, max_q)?;
    let poles: Vec<Complex> = local
        .poles()
        .iter()
        .map(|&u| u + Complex::from_real(sigma))
        .collect();
    let residues = local.residues().to_vec();
    let q = local.order();
    Ok(ReducedModel::new(poles, residues, mu0_exact, mu, q))
}

/// Fits a pole/residue model to a moment sequence (separated from
/// [`analyze`] for direct testing).
///
/// # Errors
///
/// [`AweError::NoModel`] when any moment is non-finite — the recurrence
/// itself produced garbage and nothing fitted from it can be trusted.
/// When the moments are finite but no order fits, the fallback chain is
/// the forced one-pole estimate, then a pole-free `constant(µ0)` model
/// (counted as `awe_constant`); degenerate cut-off states must stay
/// *gradable* so `C^dev` can anneal them out. The bandwidth measures
/// treat pole-free models pessimistically (no frequency information ⇒
/// no unity crossing), so the constant fallback can never silently
/// report a speed spec as met.
pub fn fit_model(mu: &[f64], max_q: usize) -> Result<ReducedModel, AweError> {
    oblx_telemetry::incr(oblx_telemetry::Counter::AweFit);
    let mu0 = mu.first().copied().unwrap_or(0.0);

    // Non-finite moments mean the recurrence itself overflowed or hit
    // garbage; nothing fitted from them can be trusted.
    if !mu.iter().all(|m| m.is_finite()) {
        oblx_telemetry::incr(oblx_telemetry::Counter::AweNoModel);
        return Err(AweError::NoModel);
    }

    // A transfer function that is zero to machine precision: model as a
    // constant zero.
    let mu_scale = mu.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    if mu_scale == 0.0 {
        return Ok(ReducedModel::constant(0.0));
    }

    // Frequency scaling: ω₀ from the first adjacent nonzero moment pair
    // conditions the Hankel solve (raw moments span hundreds of decades).
    let mut omega0 = 1.0f64;
    for k in 0..mu.len() - 1 {
        if mu[k].abs() > 1e-300 && mu[k + 1].abs() > 1e-300 {
            omega0 = (mu[k] / mu[k + 1]).abs();
            break;
        }
    }
    if !omega0.is_finite() || omega0 == 0.0 {
        omega0 = 1.0;
    }

    // Scaled moments µ'_k = µ_k · ω₀^k.
    let scaled: Vec<f64> = mu
        .iter()
        .enumerate()
        .map(|(k, &m)| m * omega0.powi(k as i32))
        .collect();

    // Ascending order: accept the smallest q whose model reproduces the
    // *entire* available moment sequence — a parsimony rule that keeps
    // spurious poles (rank-deficiency artifacts) out. When no order
    // explains every moment (the usual case for real amplifiers, whose
    // pole count exceeds max_q), keep the largest order that fitted its
    // own 2q moments — classic AWE behaviour.
    let mut best: Option<(Vec<Complex>, Vec<Complex>, usize)> = None;
    for q in 1..=max_q {
        if 2 * q > scaled.len() {
            break;
        }
        if let Some((poles_s, resid_s)) = try_order(&scaled, q) {
            let full_match = moments_reproduced(&poles_s, &resid_s, &scaled);
            best = Some((poles_s, resid_s, q));
            if full_match {
                break;
            }
        } else if best.is_some() {
            // Orders beyond the first failure are rank-deficiency
            // artifacts; stop scanning (classic AWE grows q until the
            // fit breaks down).
            break;
        }
    }
    match best {
        Some((poles_s, resid_s, q)) => {
            // Un-scale: p = p'·ω₀, k = k'·ω₀ (residues scale with s).
            let poles: Vec<Complex> = poles_s.iter().map(|&p| p * omega0).collect();
            let residues: Vec<Complex> = resid_s.iter().map(|&r| r * omega0).collect();
            oblx_telemetry::record_fit_order(q);
            Ok(ReducedModel::new(poles, residues, mu0, mu.to_vec(), q))
        }
        None => {
            // Degenerate moment sequences (e.g. every device cut off —
            // common early in an annealing run) can defeat every guarded
            // order. Fall back to the forced one-pole estimate
            // `p = µ0/µ1`, which always exists when both moments are
            // nonzero, so the cost function stays total.
            if mu.len() >= 2 && mu[0] != 0.0 && mu[1] != 0.0 && (mu[0] / mu[1]).is_finite() {
                let p = Complex::from_real(mu[0] / mu[1]);
                let k = -(p * mu0);
                oblx_telemetry::incr(oblx_telemetry::Counter::AweForcedOnePole);
                return Ok(ReducedModel::new(vec![p], vec![k], mu0, mu.to_vec(), 1));
            }
            // Nothing fits at all (µ0 or µ1 is exactly zero — typical
            // of cut-off states with a capacitively-decoupled output):
            // a pole-free dc-only model. The bandwidth measures treat
            // pole-free models as carrying *no* frequency information
            // (no unity crossing), so this fallback grades
            // pessimistically instead of reading as infinitely fast.
            oblx_telemetry::incr(oblx_telemetry::Counter::AweConstant);
            Ok(ReducedModel::constant(mu0))
        }
    }
}

/// Checks whether a pole/residue set reproduces the whole scaled moment
/// sequence to tight relative tolerance.
fn moments_reproduced(poles: &[Complex], residues: &[Complex], scaled: &[f64]) -> bool {
    let scale = scaled.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    // Running pole powers: `ppow[i]` holds `p_i^{j+1}` at moment `j`,
    // advanced by one multiplication per moment — the same
    // left-associated product chain as recomputing each power from
    // scratch, so the check is bit-identical to the naive loop.
    let mut ppow: Vec<Complex> = poles.to_vec();
    for (j, &target) in scaled.iter().enumerate() {
        if j > 0 {
            for (pw, p) in ppow.iter_mut().zip(poles.iter()) {
                *pw *= *p;
            }
        }
        let mut acc = Complex::ZERO;
        for (pw, k) in ppow.iter().zip(residues.iter()) {
            acc += *k / *pw;
        }
        let model_mu = -acc.re;
        if (model_mu - target).abs() > 1e-6 * scale.max(target.abs()) + 1e-300 {
            return false;
        }
    }
    true
}

/// Attempts a q-pole fit on scaled moments; `None` when the order is
/// unsupportable.
fn try_order(scaled: &[f64], q: usize) -> Option<(Vec<Complex>, Vec<Complex>)> {
    let b = solve_hankel(&scaled[..2 * q], q).ok()?;
    let mut coeffs = b;
    coeffs.push(1.0);
    if coeffs.iter().any(|c| !c.is_finite()) {
        return None;
    }
    let poles = Poly::from_real(&coeffs).roots();
    if poles.len() != q {
        return None;
    }
    // Reject exploding / zero poles — artifacts of rank deficiency.
    for p in &poles {
        let n = p.norm();
        if !n.is_finite() || !(1e-9..=1e9).contains(&n) {
            return None;
        }
    }
    // Residues in the complex field.
    let mu_c: Vec<Complex> = scaled[..q].iter().map(|&m| Complex::from_real(m)).collect();
    let residues = solve_vandermonde(&poles, &mu_c).ok()?;
    if residues.iter().any(|r| r.is_bad()) {
        return None;
    }
    // Self-check: the model must reproduce the moments it was fitted
    // to. Running pole powers, exactly as in [`moments_reproduced`].
    let tol = 1e-6 * scaled.iter().fold(0.0f64, |a, &b| a.max(b.abs())) + 1e-12;
    let mut ppow: Vec<Complex> = poles.to_vec();
    for (j, &target) in scaled[..2 * q].iter().enumerate() {
        if j > 0 {
            for (pw, p) in ppow.iter_mut().zip(poles.iter()) {
                *pw *= *p;
            }
        }
        // µ'_j = −Σ k/p^{j+1}
        let mut acc = Complex::ZERO;
        for (pw, k) in ppow.iter().zip(residues.iter()) {
            acc += *k / *pw;
        }
        let model_mu = -acc.re;
        if (model_mu - target).abs() > tol.max(1e-6 * target.abs()) * 10.0 {
            return None;
        }
    }
    Some((poles, residues))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblx_devices::ModelLibrary;
    use oblx_mna::{solve_dc, SizedCircuit};
    use oblx_netlist::parse_problem;
    use std::collections::HashMap;

    fn sys(src: &str) -> LinearSystem {
        let p = parse_problem(src).unwrap();
        let flat = p.jigs[0].netlist.flatten(&p.subckts).unwrap();
        let ckt = SizedCircuit::build(&flat, &HashMap::new(), &ModelLibrary::new()).unwrap();
        let op = solve_dc(&ckt).unwrap();
        LinearSystem::from_op(&ckt, &op)
    }

    #[test]
    fn rc_moments_are_analytic() {
        // H(s) = 1/(1 + sRC), µ_k = (−RC)^k, RC = 1e-3.
        let s = sys(".jig j\nvin in 0 0 ac 1\nr1 in out 1k\nc1 out 0 1u\n.endjig\n");
        let out = s.output_selector("out", None).unwrap();
        let mm = moments(&s, "vin", out, 6).unwrap();
        for (k, &mu) in mm.mu.iter().enumerate() {
            let expect = (-1e-3f64).powi(k as i32);
            assert!(
                (mu - expect).abs() < 1e-9 * expect.abs().max(1e-12),
                "µ_{k} = {mu}, expected {expect}"
            );
        }
    }

    #[test]
    fn rc_single_pole_model() {
        let s = sys(".jig j\nvin in 0 0 ac 1\nr1 in out 1k\nc1 out 0 1u\n.endjig\n");
        let out = s.output_selector("out", None).unwrap();
        let model = analyze(&s, "vin", out, 4).unwrap();
        // Adaptive order must collapse to q = 1 for a 1-pole circuit.
        assert_eq!(model.order(), 1);
        let p = model.poles()[0];
        assert!((p.re + 1000.0).abs() < 1e-6, "pole = {p}");
        assert!((model.dc_gain() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rc_ladder_multiple_poles() {
        // 3-section RC ladder: 3 real negative poles.
        let s = sys(
            ".jig j\nvin in 0 0 ac 1\nr1 in a 1k\nc1 a 0 1n\nr2 a b 1k\nc2 b 0 1n\nr3 b out 1k\nc3 out 0 1n\n.endjig\n",
        );
        let out = s.output_selector("out", None).unwrap();
        let model = analyze(&s, "vin", out, 3).unwrap();
        assert_eq!(model.order(), 3);
        for p in model.poles() {
            assert!(p.re < 0.0, "ladder poles are in the LHP: {p}");
            assert!(p.im.abs() < 1e-3 * p.re.abs(), "and real: {p}");
        }
        assert!((model.dc_gain() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn model_matches_direct_ac_solve() {
        // Behavioural two-pole amplifier: AWE magnitude must track the
        // per-frequency complex solve within a fraction of a percent
        // through the unity-gain region.
        let s = sys("\
.jig j
vin in 0 0 ac 1
g1 0 x in 0 1m
r1 x 0 1meg
c1 x 0 159.155p
g2 0 out x 0 1m
r2 out 0 1k
c2 out 0 159.155p
.endjig
");
        let out = s.output_selector("out", None).unwrap();
        let model = analyze(&s, "vin", out, 4).unwrap();
        for f in [10.0, 1e3, 1e4, 1e5, 1e6, 3e6] {
            let w = 2.0 * std::f64::consts::PI * f;
            let exact = s.transfer("vin", out, w).unwrap().norm();
            let approx = model.eval(oblx_linalg::Complex::new(0.0, w)).norm();
            assert!(
                (exact - approx).abs() / exact.max(1e-12) < 1e-3,
                "f={f}: exact {exact} vs awe {approx}"
            );
        }
    }

    #[test]
    fn zero_transfer_function() {
        // Output node disconnected from the input path (but dc-grounded).
        let s = sys(".jig j\nvin in 0 0 ac 1\nr1 in 0 1k\nr2 out 0 1k\n.endjig\n");
        let out = s.output_selector("out", None).unwrap();
        let model = analyze(&s, "vin", out, 3).unwrap();
        assert_eq!(model.dc_gain(), 0.0);
        assert!(model.poles().is_empty());
    }

    #[test]
    fn unknown_source_is_error() {
        let s = sys(".jig j\nvin in 0 0 ac 1\nr1 in 0 1k\n.endjig\n");
        let out = s.output_selector("in", None).unwrap();
        assert!(matches!(
            analyze(&s, "nosuch", out, 3),
            Err(AweError::UnknownSource(_))
        ));
    }

    fn exact_moments(poles: &[f64], resid: &[f64], count: usize) -> Vec<f64> {
        (0..count)
            .map(|j| {
                -poles
                    .iter()
                    .zip(resid.iter())
                    .map(|(&p, &k)| k / p.powi(j as i32 + 1))
                    .sum::<f64>()
            })
            .collect()
    }

    #[test]
    fn fit_model_recovers_amplifier_like_pole_pair() {
        // A two-stage-amplifier-shaped response: dominant pole −1e3,
        // second pole −1e6, dc gain 100 (the crossing sits between the
        // poles, which is the regime synthesis cares about).
        let poles: [f64; 2] = [-1.0e3, -1.0e6];
        let a0 = 100.0;
        let k1 = a0 * 1.0e3 * 1.0e6 / (1.0e6 - 1.0e3);
        let resid = [-k1, k1 * 1.0e3 / 1.0e6];
        let mu = exact_moments(&poles, &resid, 8);
        let model = fit_model(&mu, 4).unwrap();
        for expect in poles {
            let best = model
                .poles()
                .iter()
                .map(|p| (p.re - expect).abs() / expect.abs())
                .fold(f64::INFINITY, f64::min);
            assert!(best < 1e-6, "pole {expect} missing: {:?}", model.poles());
        }
    }

    /// A circuit whose crossing is governed by poles ~4 decades above
    /// the dominant one: Maclaurin moments alone cannot place them
    /// (f64), but the shifted re-expansion inside [`analyze`] must.
    #[test]
    fn shifted_expansion_recovers_crossing_region() {
        // Behavioural amp: A0 = 10^4, dominant pole 1 kHz, second and
        // third poles at 8 MHz and 20 MHz — crossing ≈ 6–8 MHz, nearly
        // 4 decades above dominant.
        let s = sys("\
.jig j
vin in 0 0 ac 1
g1 0 x in 0 1m
r1 x 0 10meg
c1 x 0 15.9155p
g2 0 y x 0 1m
r2 y 0 1k
c2 y 0 19.8944p
g3 0 out y 0 1m
r3 out 0 1k
c3 out 0 7.95775p
.endjig
");
        let out = s.output_selector("out", None).unwrap();
        let model = analyze(&s, "vin", out, 8).unwrap();
        let f_awe = crate::measure::unity_gain_frequency(&model);
        let f_ac = {
            // Direct bisection on the exact system.
            let mag = |f: f64| {
                s.transfer("vin", out, 2.0 * std::f64::consts::PI * f)
                    .unwrap()
                    .norm()
            };
            let mut lo = 1.0f64;
            let mut hi = 1.0e12f64;
            for _ in 0..80 {
                let mid = (lo * hi).sqrt();
                if mag(mid) > 1.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            (lo * hi).sqrt()
        };
        let rel = (f_awe - f_ac).abs() / f_ac;
        assert!(
            rel < 0.02,
            "crossing: awe {f_awe:.4e} vs exact {f_ac:.4e} ({:.2}%)",
            100.0 * rel
        );
        // And the dc gain stays exact.
        let a0 = s.transfer("vin", out, 0.0).unwrap().norm();
        assert!((model.dc_gain() - a0).abs() < 1e-6 * a0);
    }

    #[test]
    fn analyze_shifted_translates_poles() {
        // Single pole at -1000 rad/s; expanding about σ = 500 must
        // still report the pole at -1000 after translation.
        let s = sys(".jig j\nvin in 0 0 ac 1\nr1 in out 1k\nc1 out 0 1u\n.endjig\n");
        let out = s.output_selector("out", None).unwrap();
        let mm = moments(&s, "vin", out, 2).unwrap();
        let model = analyze_shifted(&s, "vin", out, 3, 500.0, mm.mu[0]).unwrap();
        let p = model
            .poles()
            .iter()
            .min_by(|a, b| a.norm().partial_cmp(&b.norm()).unwrap())
            .copied()
            .unwrap();
        assert!((p.re + 1000.0).abs() < 1e-3, "pole = {p}");
        assert!((model.dc_gain() - 1.0).abs() < 1e-9);
    }

    /// A ladder long enough to cross [`SPARSE_DIM_MIN`]: `sections` RC
    /// stages behind a unity vsource. Dim = sections + 2 (input node +
    /// branch row).
    fn ladder(sections: usize) -> LinearSystem {
        let mut src = String::from(".jig j\nvin in 0 0 ac 1\n");
        let mut prev = "in".to_string();
        for k in 0..sections {
            let node = format!("n{k}");
            src.push_str(&format!("r{k} {prev} {node} 1k\nc{k} {node} 0 1n\n"));
            prev = node;
        }
        src.push_str(".endjig\n");
        sys(&src)
    }

    #[test]
    fn small_system_stays_dense() {
        let s = sys(".jig j\nvin in 0 0 ac 1\nr1 in out 1k\nc1 out 0 1u\n.endjig\n");
        assert!(s.dim() < SPARSE_DIM_MIN);
        assert!(!AweEngine::for_system(&s).is_sparse());
    }

    #[test]
    fn big_system_goes_sparse() {
        let s = ladder(24);
        assert!(s.dim() >= SPARSE_DIM_MIN, "dim = {}", s.dim());
        assert!(AweEngine::for_system(&s).is_sparse());
    }

    #[test]
    fn sparse_engine_matches_dense_core_on_big_ladder() {
        let s = ladder(24);
        let out = s.output_selector("n23", None).unwrap();
        let b = s.input_vector("vin").unwrap();
        let jobs: Vec<(&[f64], OutputSelector)> = vec![(&b, out)];
        // Engine-routed (sparse) vs the dense pipeline on the same
        // dense-stamped matrices.
        let sparse = analyze_batch(&s, &jobs, 6).unwrap();
        let dense = dense_batch_core(&s.g, &s.c, &jobs, 6).unwrap();
        assert_eq!(sparse.len(), 1);
        let (ms, md) = (&sparse[0], &dense[0]);
        assert_eq!(ms.order(), md.order());
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
        assert!(rel(ms.dc_value(), md.dc_value()) < 1e-9);
        for (ps, pd) in ms.poles().iter().zip(md.poles().iter()) {
            assert!(
                (*ps - *pd).norm() < 1e-6 * pd.norm(),
                "pole drift: {ps} vs {pd}"
            );
        }
        // The two models evaluate identically across the band (the
        // reduced model itself is a q-pole approximation of the 20-pole
        // ladder, so exactness vs the direct ac solve is not the claim
        // here — engine equivalence is).
        for f in [10.0, 1e3, 1e4, 1e6] {
            let w = oblx_linalg::Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
            let (hs, hd) = (ms.eval(w).norm(), md.eval(w).norm());
            assert!(rel(hs, hd) < 1e-6, "f={f}: sparse {hs} vs dense {hd}");
        }
        // And near dc, where the fit is tight, both track the exact
        // response.
        let w = oblx_linalg::Complex::new(0.0, 2.0 * std::f64::consts::PI * 10.0);
        let exact = s.transfer("vin", out, w.im).unwrap().norm();
        assert!((ms.eval(w).norm() - exact).abs() / exact < 1e-3);
    }

    #[test]
    fn sparse_batch_shares_adjoints_bit_identically() {
        // Two jobs with the same probe but different stimuli must match
        // two independent single-job analyses bit for bit — the adjoint
        // dividend holds on the sparse path too.
        let s = ladder(24);
        let out = s.output_selector("n23", None).unwrap();
        let b1 = s.input_vector("vin").unwrap();
        let mut b2 = b1.clone();
        for v in &mut b2 {
            *v *= 2.0;
        }
        let jobs: Vec<(&[f64], OutputSelector)> = vec![(&b1, out), (&b2, out)];
        let batch = analyze_batch(&s, &jobs, 5).unwrap();
        let solo1 = analyze_with(&s, &b1, out, 5).unwrap();
        let solo2 = analyze_with(&s, &b2, out, 5).unwrap();
        for (m, solo) in batch.iter().zip([&solo1, &solo2]) {
            assert_eq!(m.dc_value().to_bits(), solo.dc_value().to_bits());
            assert_eq!(m.poles().len(), solo.poles().len());
            for (a, b) in m.poles().iter().zip(solo.poles().iter()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    /// Degenerate-jig regression: a sparse-sized system whose union
    /// pattern is structurally sound (node `x` has a diagonal entry via
    /// its capacitors) but whose `G` is numerically singular — `x`
    /// floats at dc, its `G` row is exactly zero. The sparse refactor
    /// must fail cleanly on the zero pivot, fall back to dense, and
    /// surface the same [`AweError::SingularG`] the dense path reports —
    /// never a panic or silent NaNs.
    #[test]
    fn degenerate_jig_reports_singular_not_panic() {
        let mut src = String::from(".jig j\nvin in 0 5 ac 1\n");
        let mut prev = "in".to_string();
        for k in 0..24 {
            let node = format!("n{k}");
            src.push_str(&format!("r{k} {prev} {node} 1k\n"));
            prev = node;
        }
        // Node x couples only capacitively: dc-floating.
        src.push_str("cx x n0 1p\ncy x 0 1p\n.endjig\n");
        let p = parse_problem(&src).unwrap();
        let flat = p.jigs[0].netlist.flatten(&p.subckts).unwrap();
        let ckt = SizedCircuit::build(&flat, &HashMap::new(), &ModelLibrary::new()).unwrap();
        // No dc solve (it would fail the same way): linear-only system.
        let s = LinearSystem::from_device_ops(&ckt, &[], &[], &[]);
        assert!(s.dim() >= SPARSE_DIM_MIN, "dim = {}", s.dim());
        assert!(AweEngine::for_system(&s).is_sparse());
        let out = s.output_selector("n23", None).unwrap();
        match analyze(&s, "vin", out, 4) {
            Err(AweError::SingularG) => {}
            other => panic!("expected SingularG, got {other:?}"),
        }
    }

    /// Structurally singular sparse-sized patterns (two ideal vsources
    /// in parallel: identical branch rows) are demoted to the dense
    /// engine at symbolic time, whose partial pivoting then reports the
    /// numeric singularity.
    #[test]
    fn structurally_singular_jig_demotes_to_dense() {
        let mut src = String::from(".jig j\nv1 in 0 5 ac 1\nv2 in 0 5\n");
        let mut prev = "in".to_string();
        for k in 0..24 {
            let node = format!("n{k}");
            src.push_str(&format!("r{k} {prev} {node} 1k\n"));
            prev = node;
        }
        src.push_str(".endjig\n");
        let p = parse_problem(&src).unwrap();
        let flat = p.jigs[0].netlist.flatten(&p.subckts).unwrap();
        let ckt = SizedCircuit::build(&flat, &HashMap::new(), &ModelLibrary::new()).unwrap();
        let s = LinearSystem::from_device_ops(&ckt, &[], &[], &[]);
        assert!(s.dim() >= SPARSE_DIM_MIN, "dim = {}", s.dim());
        assert!(!AweEngine::for_system(&s).is_sparse());
        let out = s.output_selector("n23", None).unwrap();
        match analyze(&s, "v1", out, 4) {
            Err(AweError::SingularG) => {}
            other => panic!("expected SingularG, got {other:?}"),
        }
    }

    #[test]
    fn far_away_negligible_pole_is_honestly_dropped() {
        // A pole 5 decades above the dominant one with a vanishing
        // residue is information-theoretically invisible in Maclaurin
        // moments; AWE must *not* hallucinate it, and the low-frequency
        // model must stay exact. (Classic AWE limitation, handled in
        // the paper's setting by the fact that specs live near the
        // unity-gain region.)
        let poles: [f64; 2] = [-1.0e3, -1.0e8];
        let resid = [-1.0e5, -1.0e3];
        let mu = exact_moments(&poles, &resid, 8);
        let model = fit_model(&mu, 4).unwrap();
        assert_eq!(model.order(), 1, "parsimony: one visible pole");
        let p = model.poles()[0];
        assert!((p.re + 1.0e3).abs() < 1.0, "dominant pole kept: {p}");
        // dc gain stays exact.
        assert!((model.dc_gain() - mu[0].abs()).abs() < 1e-12);
    }
}
