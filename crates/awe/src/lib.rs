//! Asymptotic Waveform Evaluation (AWE) for linear circuit analysis.
//!
//! AWE is the performance-prediction engine that lets ASTRX/OBLX work
//! *equation-free*: instead of designer-derived symbolic transfer
//! functions (which explode to 10,000+ terms for ten devices), it
//! matches the first `2q` Maclaurin **moments** of the exact response to
//! a reduced `q`-pole model. The cost is essentially **one LU
//! factorization of the conductance matrix plus `2q` back-substitutions**
//! — orders of magnitude cheaper than a per-frequency complex solve, and
//! the reason OBLX can afford tens of thousands of circuit evaluations
//! per annealing run.
//!
//! Pipeline (see [`analyze`]):
//!
//! 1. adjoint moments: `a₀ = G⁻ᵀ·l`, `a_{k+1} = −G⁻ᵀ·Cᵀ·a_k`, outputs
//!    `µ_k = a_k·b` — mathematically identical to the direct recurrence
//!    `m₀ = G⁻¹·b`, `µ_k = l·m_k`, but the solve chain depends only on
//!    the *output probe*, so every stimulus sharing a probe (gain and
//!    both PSRR analyses of one amplifier) reuses it ([`analyze_batch`]);
//! 2. frequency scaling by `ω₀ = |µ₀/µ₁|` to condition the Hankel
//!    system;
//! 3. Padé: Hankel solve for the denominator, Aberth roots for poles,
//!    Vandermonde solve for residues;
//! 4. adaptive order: start at the requested `q` and shrink until the
//!    model reproduces its own moments.
//!
//! The resulting [`ReducedModel`] answers the measurement requests that
//! specifications reference: `dc_gain`, `ugf`, `phase_margin`,
//! `gain_at`, poles and zeros.
//!
//! # Examples
//!
//! ```
//! use oblx_netlist::parse_problem;
//! use oblx_devices::ModelLibrary;
//! use oblx_mna::{SizedCircuit, solve_dc, LinearSystem};
//! use oblx_awe::analyze;
//! use std::collections::HashMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = parse_problem("\
//! .jig j
//! vin in 0 0 ac 1
//! r1 in out 1k
//! c1 out 0 1u
//! .endjig
//! ")?;
//! let flat = p.jigs[0].netlist.flatten(&p.subckts)?;
//! let ckt = SizedCircuit::build(&flat, &HashMap::new(), &ModelLibrary::new())?;
//! let op = solve_dc(&ckt)?;
//! let sys = LinearSystem::from_op(&ckt, &op);
//! let out = sys.output_selector("out", None).expect("node exists");
//! let model = analyze(&sys, "vin", out, 3)?;
//! // Single real pole at −1/RC = −1000 rad/s.
//! let p0 = model.poles()[0];
//! assert!((p0.re + 1000.0).abs() < 1e-6 && p0.im.abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

mod measure;
mod model;
pub mod moments;

pub use measure::{gain_at, phase_margin, unity_gain_frequency};
pub use model::{AweError, ReducedModel};
pub use moments::{
    analyze, analyze_batch, analyze_batch_with, analyze_shifted, analyze_with, moments,
    moments_with, AweEngine, Moments, SPARSE_DIM_MIN,
};
