//! The reduced-order (pole/residue) model produced by AWE.

use oblx_linalg::Complex;
use std::cell::Cell;
use std::error::Error;
use std::fmt;

/// Error from AWE analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AweError {
    /// The conductance matrix is singular (node floating at dc).
    SingularG,
    /// The stimulus source name is unknown.
    UnknownSource(String),
    /// No model of any order could be fitted to the moments.
    NoModel,
}

impl fmt::Display for AweError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AweError::SingularG => write!(f, "conductance matrix is singular at dc"),
            AweError::UnknownSource(s) => write!(f, "unknown stimulus source `{s}`"),
            AweError::NoModel => write!(f, "no reduced-order model could be fitted"),
        }
    }
}

impl Error for AweError {}

/// A `q`-pole reduced-order transfer-function model
/// `H(s) ≈ Σ kᵢ/(s − pᵢ)`, moment-matched to the exact response.
///
/// The dc value is corrected to the *exact* zeroth moment `µ₀`, so
/// [`ReducedModel::dc_gain`] is exact even when the pole fit is
/// approximate.
#[derive(Debug, Clone)]
pub struct ReducedModel {
    poles: Vec<Complex>,
    residues: Vec<Complex>,
    mu0: f64,
    moments: Vec<f64>,
    q: usize,
    dropped: usize,
    /// Precomputed dc-correction offset `µ0 − Σ −k/p` (see [`Self::eval`]).
    dc_corr: f64,
    /// Precomputed `|p_dominant|.max(1e-30)`; `None` for pole-free models.
    dom_w: Option<f64>,
    /// Lazily-cached unity-gain frequency. `phase_margin` re-derives the
    /// crossing `unity_gain_frequency` already found — a ~70-point gain
    /// scan — so the first caller stores it here. Poles/residues/µ0 are
    /// immutable after construction, making the cached value exact.
    ugf: Cell<Option<f64>>,
}

impl ReducedModel {
    /// Builds a model from fitted poles/residues, the exact `µ₀`, and
    /// the raw moment record.
    ///
    /// Pole/residue pairs with a non-finite component are **dropped**
    /// here — before any measurement can consume them — and counted in
    /// [`ReducedModel::dropped`]. A model that lost poles this way is
    /// reported unstable by [`ReducedModel::is_stable`]: its frequency
    /// response is not trustworthy even if the surviving poles look
    /// benign.
    pub(crate) fn new(
        poles: Vec<Complex>,
        residues: Vec<Complex>,
        mu0: f64,
        moments: Vec<f64>,
        q: usize,
    ) -> Self {
        let total = poles.len();
        let (poles, residues): (Vec<Complex>, Vec<Complex>) = poles
            .into_iter()
            .zip(residues)
            .filter(|(p, k)| {
                p.re.is_finite() && p.im.is_finite() && k.re.is_finite() && k.im.is_finite()
            })
            .unzip();
        let dropped = total - poles.len();
        if dropped > 0 {
            oblx_telemetry::add(oblx_telemetry::Counter::AweDroppedPoles, dropped as u64);
        }
        // H_pr(0) = Σ −k/p; correction = µ0 − H_pr(0). Both this and the
        // dominant-pole magnitude depend only on the (now-frozen) fit, so
        // hoisting them out of `eval` keeps every gain probe O(q) with no
        // per-call rescan.
        let mut h0 = Complex::ZERO;
        for (p, k) in poles.iter().zip(residues.iter()) {
            h0 += -(*k) / *p;
        }
        let dc_corr = mu0 - h0.re;
        let dom_w = poles
            .iter()
            .copied()
            .min_by(|a, b| a.re.abs().total_cmp(&b.re.abs()))
            .map(|pd| pd.norm().max(1e-30));
        ReducedModel {
            poles,
            residues,
            mu0,
            moments,
            q,
            dropped,
            dc_corr,
            dom_w,
            ugf: Cell::new(None),
        }
    }

    /// A constant (pole-free) model, used for zero transfer functions.
    pub(crate) fn constant(value: f64) -> Self {
        ReducedModel {
            poles: Vec::new(),
            residues: Vec::new(),
            mu0: value,
            moments: vec![value],
            q: 0,
            dropped: 0,
            dc_corr: value,
            dom_w: None,
            ugf: Cell::new(None),
        }
    }

    /// The cached unity-gain frequency, if a measurement stored one.
    pub(crate) fn cached_ugf(&self) -> Option<f64> {
        self.ugf.get()
    }

    /// Stores the unity-gain frequency for later measurements.
    pub(crate) fn store_ugf(&self, f: f64) {
        self.ugf.set(Some(f));
    }

    /// The model order `q`.
    pub fn order(&self) -> usize {
        self.q
    }

    /// Fitted poles (rad/s).
    pub fn poles(&self) -> &[Complex] {
        &self.poles
    }

    /// Fitted residues.
    pub fn residues(&self) -> &[Complex] {
        &self.residues
    }

    /// The raw moment sequence the model was fitted to.
    pub fn moments(&self) -> &[f64] {
        &self.moments
    }

    /// Evaluates `H(s)`.
    ///
    /// The pole/residue sum is dc-corrected: an offset term aligns
    /// `H(0)` with the exact zeroth moment, absorbing any truncation
    /// error of the fit. The offset is shaped as a one-pole low-pass at
    /// the dominant pole rather than a constant — a constant would give
    /// the model a fictitious high-frequency floor `|Δ|`, which an
    /// optimizer would happily exploit as infinite bandwidth.
    pub fn eval(&self, s: Complex) -> Complex {
        let mut acc = Complex::ZERO;
        for (p, k) in self.poles.iter().zip(self.residues.iter()) {
            acc += *k / (s - *p);
        }
        let delta = self.dc_corr;
        if delta != 0.0 {
            match self.dom_w {
                Some(w) => acc += Complex::from_real(delta) / (Complex::ONE + s / w),
                None => acc += Complex::from_real(delta),
            }
        }
        acc
    }

    /// The exact dc gain `|H(0)| = |µ₀|`.
    pub fn dc_gain(&self) -> f64 {
        self.mu0.abs()
    }

    /// The signed dc transfer `µ₀`.
    pub fn dc_value(&self) -> f64 {
        self.mu0
    }

    /// The dominant pole: smallest `|Re|` (rad/s), if any.
    pub fn dominant_pole(&self) -> Option<Complex> {
        self.poles
            .iter()
            .copied()
            .min_by(|a, b| a.re.abs().total_cmp(&b.re.abs()))
    }

    /// The k-th pole sorted by ascending magnitude (1-based, as in the
    /// `pole(tf, k)` specification function). `None` when out of range.
    pub fn pole(&self, k: usize) -> Option<Complex> {
        let mut sorted = self.poles.clone();
        sorted.sort_by(|a, b| a.norm().total_cmp(&b.norm()));
        sorted.get(k.checked_sub(1)?).copied()
    }

    /// Number of non-finite pole/residue pairs discarded at construction.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// `true` when every pole lies strictly in the left half-plane *and*
    /// no pole was dropped as non-finite during construction.
    pub fn is_stable(&self) -> bool {
        self.dropped == 0 && self.poles.iter().all(|p| p.re < 0.0)
    }

    /// The transfer function's zeros: roots of the numerator polynomial
    /// reconstructed from the pole/residue form,
    /// `N(s) = Σᵢ kᵢ·Πⱼ≠ᵢ (s − pⱼ)`.
    ///
    /// A right-half-plane zero from Miller feedthrough shows up here —
    /// the quantity the `zero(tf, k)` specification function reads.
    pub fn zeros(&self) -> Vec<Complex> {
        let q = self.poles.len();
        if q == 0 {
            return Vec::new();
        }
        // Numerator coefficients by expanding Σ k_i Π_{j≠i}(s - p_j).
        let mut num = vec![Complex::ZERO; q]; // degree ≤ q-1
        for i in 0..q {
            // Build Π_{j≠i}(s - p_j) incrementally.
            let mut part = vec![Complex::ONE];
            for (j, &pj) in self.poles.iter().enumerate() {
                if j == i {
                    continue;
                }
                let mut next = vec![Complex::ZERO; part.len() + 1];
                for (d, &c) in part.iter().enumerate() {
                    next[d + 1] += c;
                    next[d] += -pj * c;
                }
                part = next;
            }
            for (d, &c) in part.iter().enumerate() {
                num[d] += self.residues[i] * c;
            }
        }
        oblx_linalg::aberth_roots(&num)
    }

    /// The k-th zero sorted by ascending magnitude (1-based, matching
    /// `pole(tf, k)`), or `None` when out of range.
    pub fn zero(&self, k: usize) -> Option<Complex> {
        let mut z = self.zeros();
        z.sort_by(|a, b| a.norm().total_cmp(&b.norm()));
        z.get(k.checked_sub(1)?).copied()
    }
}

impl fmt::Display for ReducedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "q = {}, dc = {:.6e}", self.q, self.mu0)?;
        for (p, k) in self.poles.iter().zip(self.residues.iter()) {
            writeln!(f, "  pole {p}  residue {k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_pole() -> ReducedModel {
        // H(s) = 1000/(s + 1000): dc gain 1, pole −1000.
        ReducedModel::new(
            vec![Complex::from_real(-1000.0)],
            vec![Complex::from_real(1000.0)],
            1.0,
            vec![1.0, -1e-3],
            1,
        )
    }

    #[test]
    fn eval_at_dc_matches_mu0() {
        let m = one_pole();
        assert!((m.eval(Complex::ZERO).re - 1.0).abs() < 1e-12);
        assert_eq!(m.dc_gain(), 1.0);
    }

    #[test]
    fn eval_at_pole_frequency() {
        let m = one_pole();
        let h = m.eval(Complex::new(0.0, 1000.0));
        assert!((h.norm() - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dc_correction_absorbs_truncation() {
        // Model with mu0 deliberately different from pole/residue dc.
        let m = ReducedModel::new(
            vec![Complex::from_real(-10.0)],
            vec![Complex::from_real(5.0)],
            2.0, // exact µ0
            vec![2.0],
            1,
        );
        // Pole/residue dc = 0.5; correction pushes H(0) to 2.0.
        assert!((m.eval(Complex::ZERO).re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dominant_and_sorted_poles() {
        let m = ReducedModel::new(
            vec![Complex::from_real(-1e6), Complex::from_real(-100.0)],
            vec![Complex::from_real(1.0), Complex::from_real(1.0)],
            1.0,
            vec![],
            2,
        );
        assert_eq!(m.dominant_pole().unwrap().re, -100.0);
        assert_eq!(m.pole(1).unwrap().re, -100.0);
        assert_eq!(m.pole(2).unwrap().re, -1e6);
        assert_eq!(m.pole(3), None);
        assert_eq!(m.pole(0), None);
        assert!(m.is_stable());
    }

    #[test]
    fn instability_detected() {
        let m = ReducedModel::new(
            vec![Complex::from_real(5.0)],
            vec![Complex::from_real(1.0)],
            1.0,
            vec![],
            1,
        );
        assert!(!m.is_stable());
    }

    #[test]
    fn zeros_of_two_pole_one_zero_model() {
        // H(s) = 1/(s+1) + 1/(s+3) = (2s+4)/((s+1)(s+3)): zero at −2.
        let m = ReducedModel::new(
            vec![Complex::from_real(-1.0), Complex::from_real(-3.0)],
            vec![Complex::from_real(1.0), Complex::from_real(1.0)],
            4.0 / 3.0,
            vec![],
            2,
        );
        let z = m.zeros();
        assert_eq!(z.len(), 1);
        assert!((z[0] - Complex::from_real(-2.0)).norm() < 1e-9, "{z:?}");
        assert_eq!(m.zero(1).map(|z| z.re.round()), Some(-2.0));
        assert_eq!(m.zero(2), None);
    }

    #[test]
    fn rhp_zero_detected() {
        // H(s) = 2/(s+1) − 1/(s+10) = (s+19)/((s+1)(s+10))… adjust for a
        // RHP zero: H = 1/(s+1) − 0.5/(s+10) → N = 0.5s + 9.5 (LHP).
        // Use H = 1/(s+1) − 2/(s+10): N(s) = (s+10) − 2(s+1) = −s + 8 →
        // zero at +8 (RHP).
        let m = ReducedModel::new(
            vec![Complex::from_real(-1.0), Complex::from_real(-10.0)],
            vec![Complex::from_real(1.0), Complex::from_real(-2.0)],
            0.8,
            vec![],
            2,
        );
        let z = m.zeros();
        assert_eq!(z.len(), 1);
        assert!((z[0] - Complex::from_real(8.0)).norm() < 1e-9, "{z:?}");
    }

    #[test]
    fn non_finite_poles_are_dropped_and_flagged() {
        let m = ReducedModel::new(
            vec![Complex::from_real(-100.0), Complex::new(f64::NAN, 0.0)],
            vec![Complex::from_real(1.0), Complex::from_real(1.0)],
            1.0,
            vec![],
            2,
        );
        assert_eq!(m.poles().len(), 1);
        assert_eq!(m.dropped(), 1);
        assert!(!m.is_stable(), "a model that lost poles is not trustworthy");
        // The old comparator panicked on NaN; these must stay total.
        assert_eq!(m.dominant_pole().unwrap().re, -100.0);
        assert_eq!(m.pole(1).unwrap().re, -100.0);
    }

    #[test]
    fn constant_model() {
        let m = ReducedModel::constant(0.0);
        assert_eq!(m.order(), 0);
        assert_eq!(m.eval(Complex::new(0.0, 1e6)).norm(), 0.0);
        assert!(m.is_stable());
    }
}
