//! The Metropolis loop binding schedule, move statistics, and problem.

use crate::moves::{DirtySet, MoveStats, MoveStatsSnapshot};
use crate::schedule::{initial_temperature, LamSchedule, ScheduleSnapshot};
use crate::trace::{Trace, TracePoint};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// A problem the annealer can optimize.
///
/// The engine owns the Metropolis loop, the cooling schedule, and the
/// move-class statistics; the problem owns representation, cost, and
/// the semantics of each move class.
pub trait AnnealProblem {
    /// The configuration being optimized.
    type State: Clone;

    /// Produces the starting configuration. The annealer is starting-
    /// point independent by design (paper §III.A); this is just *some*
    /// valid state.
    fn initial_state(&mut self) -> Self::State;

    /// The scalar cost `C(x)` to minimize.
    fn cost(&mut self, state: &Self::State) -> f64;

    /// Number of move classes the problem offers.
    fn move_classes(&self) -> usize;

    /// Proposes a perturbed state using move class `class` with range
    /// scale `scale ∈ (0, 1]`. Returning `None` means the class is
    /// inapplicable right now (counted as a rejection at zero cost).
    fn propose(
        &mut self,
        state: &Self::State,
        class: usize,
        scale: f64,
        rng: &mut dyn Rng,
    ) -> Option<Self::State>;

    /// Proposes a move together with the [`DirtySet`] of variables it
    /// touched, enabling incremental cost evaluation downstream. The
    /// default wraps [`AnnealProblem::propose`] with the conservative
    /// everything-dirty set; problems with incremental evaluators
    /// override this (and make `propose` delegate to it) so the two
    /// stay consistent.
    fn propose_dirty(
        &mut self,
        state: &Self::State,
        class: usize,
        scale: f64,
        rng: &mut dyn Rng,
    ) -> Option<(Self::State, DirtySet)> {
        self.propose(state, class, scale, rng)
            .map(|s| (s, DirtySet::everything()))
    }

    /// The cost of a state the engine just obtained from
    /// [`AnnealProblem::propose_dirty`]; `dirty` says which variables
    /// the move declared touched relative to the previous state, so an
    /// incremental evaluator can skip unchanged work. Must return the
    /// same value as [`AnnealProblem::cost`] (the default simply
    /// delegates).
    fn cost_moved(&mut self, state: &Self::State, _dirty: &DirtySet) -> f64 {
        self.cost(state)
    }

    /// Names of the telemetry channels sampled into the trace.
    fn telemetry_names(&self) -> Vec<String> {
        Vec::new()
    }

    /// Telemetry values for a state (same order as
    /// [`AnnealProblem::telemetry_names`]).
    fn telemetry(&mut self, _state: &Self::State) -> Vec<f64> {
        Vec::new()
    }

    /// Problem-specific freezing test, consulted during the final
    /// quench: `true` ends the run (paper: discrete variables stopped
    /// changing and continuous deltas within tolerance).
    fn frozen(&mut self, _state: &Self::State) -> bool {
        false
    }
}

/// Engine options.
#[derive(Debug, Clone)]
pub struct AnnealOptions {
    /// Moves in the main (Lam-scheduled) phase.
    pub moves_budget: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Initial acceptance ratio targeted by the warm-up probe.
    pub chi0: f64,
    /// Number of warm-up probe moves for T₀ estimation.
    pub warmup_moves: usize,
    /// Sample the trace every this many moves (0 disables tracing).
    pub trace_every: usize,
    /// Maximum attempts in the final quench without improvement.
    pub quench_patience: usize,
    /// Re-evaluate the cached current/best costs every this many moves
    /// (0 disables). Needed when the problem's cost function drifts —
    /// OBLX's adaptive weights change `C(x)` during the run, and stale
    /// caches would otherwise freeze an early low-cost state as "best"
    /// forever.
    pub refresh_every: usize,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            moves_budget: 50_000,
            seed: 1,
            chi0: 0.95,
            warmup_moves: 200,
            trace_every: 0,
            quench_patience: 2_000,
            refresh_every: 512,
        }
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult<S> {
    /// Best configuration found.
    pub best_state: S,
    /// Its cost.
    pub best_cost: f64,
    /// Cost of the final (post-quench) state.
    pub final_cost: f64,
    /// Total proposals made.
    pub attempted: usize,
    /// Total proposals accepted.
    pub accepted: usize,
    /// Sampled trace (empty unless `trace_every > 0`).
    pub trace: Trace,
    /// Lifetime per-class acceptance counts, for move-set diagnostics.
    pub class_usage: Vec<(usize, usize)>,
}

/// The phase an interrupted run stood in when its checkpoint was cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The Lam-scheduled Metropolis phase.
    Main,
    /// The zero-temperature greedy quench.
    Quench,
}

/// A complete, serializable image of an annealing run in flight.
///
/// Restarting [`Annealer::run_controlled`] from a checkpoint continues
/// the run **bit-identically**: the RNG stream, the Hustin move
/// statistics, the Lam schedule's control loop, and every counter the
/// loop consults (`attempted` drives the `refresh_every`/`trace_every`
/// modulo tests) are all captured. The one thing deliberately *not*
/// captured is problem-side state — problems with internal state (cost
/// caches, adaptive weights) snapshot themselves in the same hook that
/// persists this struct, so the pair is cut at the same instant.
#[derive(Debug, Clone)]
pub struct AnnealCheckpoint<S> {
    /// Which loop the run was in.
    pub phase: Phase,
    /// Raw RNG state (xoshiro256++ words).
    pub rng: [u64; 4],
    /// Hustin move-class statistics, including in-window counters.
    pub stats: MoveStatsSnapshot,
    /// Lam schedule state (meaningful in the main phase; carried
    /// through the quench unchanged).
    pub schedule: ScheduleSnapshot,
    /// Current configuration.
    pub state: S,
    /// Its cached cost.
    pub cost: f64,
    /// Best configuration so far.
    pub best_state: S,
    /// Its cached cost.
    pub best_cost: f64,
    /// Total proposals so far.
    pub attempted: usize,
    /// Total acceptances so far.
    pub accepted: usize,
    /// Quench-phase moves since the last improvement.
    pub since_improvement: usize,
    /// Trace sampled so far.
    pub trace: Trace,
}

/// What a checkpoint hook tells the engine to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// Keep annealing.
    Continue,
    /// Stop now; the run is returned as
    /// [`ControlledOutcome::Interrupted`].
    Stop,
}

/// Outcome of [`Annealer::run_controlled`].
#[derive(Debug, Clone)]
pub enum ControlledOutcome<S> {
    /// The run finished (budget exhausted, quench frozen out).
    Complete(AnnealResult<S>),
    /// A hook returned [`Directive::Stop`]; the checkpoint resumes the
    /// run exactly where it stood.
    Interrupted(Box<AnnealCheckpoint<S>>),
}

/// The simulated-annealing engine.
#[derive(Debug)]
pub struct Annealer {
    opts: AnnealOptions,
    rng: StdRng,
}

impl Annealer {
    /// Creates an engine with the given options.
    pub fn new(opts: AnnealOptions) -> Self {
        let rng = StdRng::seed_from_u64(opts.seed);
        Annealer { opts, rng }
    }

    /// Runs the full anneal: warm-up probe → Lam-scheduled Metropolis →
    /// zero-temperature quench. Returns the best state visited.
    pub fn run<P: AnnealProblem>(&mut self, problem: &mut P) -> AnnealResult<P::State> {
        match self.run_controlled(problem, None, 0, |_, _| Directive::Continue) {
            ControlledOutcome::Complete(r) => r,
            ControlledOutcome::Interrupted(_) => {
                unreachable!("no hook ever issued Stop")
            }
        }
    }

    /// Runs the anneal under external control: every `checkpoint_every`
    /// proposals the engine cuts an [`AnnealCheckpoint`] and hands it to
    /// `hook` together with the problem (so the problem can snapshot its
    /// own state at the same instant). A [`Directive::Stop`] ends the
    /// run immediately; passing the returned checkpoint back as `resume`
    /// later continues it bit-identically, skipping the warm-up probe.
    ///
    /// With `checkpoint_every == 0` the hook is never called and the run
    /// is exactly [`Annealer::run`].
    pub fn run_controlled<P: AnnealProblem>(
        &mut self,
        problem: &mut P,
        resume: Option<AnnealCheckpoint<P::State>>,
        checkpoint_every: usize,
        mut hook: impl FnMut(&mut P, &AnnealCheckpoint<P::State>) -> Directive,
    ) -> ControlledOutcome<P::State> {
        let mut stats;
        let mut state;
        let mut cost;
        let mut best_state;
        let mut best_cost;
        let mut trace;
        let mut schedule;
        let mut attempted;
        let mut accepted_count;
        let mut since_improvement;
        let phase;

        match resume {
            Some(ck) => {
                // Continue exactly where the checkpoint was cut; the
                // warm-up probe already happened in the original run.
                self.rng = StdRng::from_state(ck.rng);
                stats = MoveStats::from_snapshot(ck.stats);
                schedule = LamSchedule::from_snapshot(ck.schedule);
                state = ck.state;
                cost = ck.cost;
                best_state = ck.best_state;
                best_cost = ck.best_cost;
                trace = ck.trace;
                attempted = ck.attempted;
                accepted_count = ck.accepted;
                since_improvement = ck.since_improvement;
                phase = ck.phase;
            }
            None => {
                stats = MoveStats::new(problem.move_classes());
                state = problem.initial_state();
                cost = problem.cost(&state);
                best_state = state.clone();
                best_cost = cost;
                trace = Trace::new(problem.telemetry_names());

                // Warm-up probe: sample deltas to set T₀.
                let mut deltas = Vec::with_capacity(self.opts.warmup_moves);
                for _ in 0..self.opts.warmup_moves {
                    let class = stats.pick(&mut self.rng);
                    if let Some((cand, dirty)) =
                        problem.propose_dirty(&state, class, 1.0, &mut self.rng)
                    {
                        let c = problem.cost_moved(&cand, &dirty);
                        deltas.push(c - cost);
                        // Drift through the probe (keeps it away from a
                        // single point) but only downhill, so T₀
                        // reflects the start.
                        if c < cost {
                            state = cand;
                            cost = c;
                            if c < best_cost {
                                best_cost = c;
                                best_state = state.clone();
                            }
                        }
                    }
                }
                let t0 = initial_temperature(&deltas, self.opts.chi0);
                schedule = LamSchedule::new(t0, self.opts.moves_budget);
                attempted = 0usize;
                accepted_count = 0usize;
                since_improvement = 0usize;
                phase = Phase::Main;
            }
        }

        macro_rules! cut_checkpoint {
            ($phase:expr) => {
                AnnealCheckpoint {
                    phase: $phase,
                    rng: self.rng.state(),
                    stats: stats.snapshot(),
                    schedule: schedule.snapshot(),
                    state: state.clone(),
                    cost,
                    best_state: best_state.clone(),
                    best_cost,
                    attempted,
                    accepted: accepted_count,
                    since_improvement,
                    trace: trace.clone(),
                }
            };
        }

        // Main Lam-scheduled phase.
        if phase == Phase::Main {
            while !schedule.exhausted() {
                let class = stats.pick(&mut self.rng);
                let scale = stats.scale(class);
                attempted += 1;
                let proposal = problem.propose_dirty(&state, class, scale, &mut self.rng);
                let accepted = match proposal {
                    None => {
                        stats.record(class, false, 0.0);
                        schedule.record(false);
                        false
                    }
                    Some((cand, dirty)) => {
                        let cand_cost = problem.cost_moved(&cand, &dirty);
                        let delta = cand_cost - cost;
                        let t = schedule.temperature();
                        let take = delta <= 0.0
                            || (t > 0.0 && self.rng.random::<f64>() < (-delta / t).exp());
                        stats.record(class, take, delta);
                        schedule.record(take);
                        if take {
                            state = cand;
                            cost = cand_cost;
                            accepted_count += 1;
                            if cost < best_cost {
                                best_cost = cost;
                                best_state = state.clone();
                            }
                        }
                        take
                    }
                };
                let _ = accepted;
                if self.opts.refresh_every > 0 && attempted.is_multiple_of(self.opts.refresh_every)
                {
                    cost = problem.cost(&state);
                    best_cost = problem.cost(&best_state);
                    if cost < best_cost {
                        best_cost = cost;
                        best_state = state.clone();
                    }
                }
                if self.opts.trace_every > 0 && attempted.is_multiple_of(self.opts.trace_every) {
                    trace.points.push(TracePoint {
                        move_index: attempted,
                        cost,
                        best_cost,
                        temperature: schedule.temperature(),
                        acceptance: schedule.acceptance(),
                        telemetry: problem.telemetry(&state),
                    });
                }
                if checkpoint_every > 0 && attempted.is_multiple_of(checkpoint_every) {
                    let ck = cut_checkpoint!(Phase::Main);
                    if hook(problem, &ck) == Directive::Stop {
                        return ControlledOutcome::Interrupted(Box::new(ck));
                    }
                }
            }

            // Quench entry: greedy descent starts from the best state
            // found, with the cached costs re-evaluated so a drifting
            // cost function cannot leave the quench comparing against a
            // stale number.
            state = best_state.clone();
            cost = problem.cost(&state);
            best_cost = cost;
            since_improvement = 0;
        }

        // Quench phase.
        while since_improvement < self.opts.quench_patience {
            if problem.frozen(&state) {
                break;
            }
            let class = stats.pick(&mut self.rng);
            let scale = stats.scale(class);
            attempted += 1;
            since_improvement += 1;
            if let Some((cand, dirty)) = problem.propose_dirty(&state, class, scale, &mut self.rng)
            {
                let cand_cost = problem.cost_moved(&cand, &dirty);
                let delta = cand_cost - cost;
                let take = delta < 0.0;
                stats.record(class, take, delta);
                if take {
                    state = cand;
                    cost = cand_cost;
                    accepted_count += 1;
                    since_improvement = 0;
                    if cost < best_cost {
                        best_cost = cost;
                        best_state = state.clone();
                    }
                }
            }
            if self.opts.trace_every > 0 && attempted.is_multiple_of(self.opts.trace_every) {
                trace.points.push(TracePoint {
                    move_index: attempted,
                    cost,
                    best_cost,
                    temperature: 0.0,
                    acceptance: 0.0,
                    telemetry: problem.telemetry(&state),
                });
            }
            if checkpoint_every > 0 && attempted.is_multiple_of(checkpoint_every) {
                let ck = cut_checkpoint!(Phase::Quench);
                if hook(problem, &ck) == Directive::Stop {
                    return ControlledOutcome::Interrupted(Box::new(ck));
                }
            }
        }

        ControlledOutcome::Complete(AnnealResult {
            final_cost: cost,
            best_state,
            best_cost,
            attempted,
            accepted: accepted_count,
            trace,
            class_usage: stats
                .classes()
                .iter()
                .map(|c| (c.total_attempts, c.total_accepts))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shifted sphere: unique minimum at (1.5, −2.5, 0.5, …).
    struct Sphere {
        dim: usize,
    }

    impl AnnealProblem for Sphere {
        type State = Vec<f64>;
        fn initial_state(&mut self) -> Vec<f64> {
            vec![5.0; self.dim]
        }
        fn cost(&mut self, x: &Vec<f64>) -> f64 {
            x.iter()
                .enumerate()
                .map(|(i, &v)| {
                    let target = [1.5, -2.5, 0.5][i % 3];
                    (v - target) * (v - target)
                })
                .sum()
        }
        fn move_classes(&self) -> usize {
            2
        }
        fn propose(
            &mut self,
            x: &Vec<f64>,
            class: usize,
            scale: f64,
            rng: &mut dyn Rng,
        ) -> Option<Vec<f64>> {
            let mut y = x.clone();
            let r = |rng: &mut dyn Rng| rng.next_u64() as f64 / u64::MAX as f64 - 0.5;
            match class {
                0 => {
                    let i = (rng.next_u64() as usize) % self.dim;
                    y[i] += 10.0 * scale * r(rng);
                }
                _ => {
                    for v in y.iter_mut() {
                        *v += 4.0 * scale * r(rng);
                    }
                }
            }
            Some(y)
        }
    }

    /// Rastrigin-style multimodal in 2-D: global minimum 0 at origin,
    /// many local minima on the integer lattice.
    struct Rastrigin;

    impl AnnealProblem for Rastrigin {
        type State = (f64, f64);
        fn initial_state(&mut self) -> (f64, f64) {
            (4.3, -3.7) // deliberately in a far local basin
        }
        fn cost(&mut self, &(x, y): &(f64, f64)) -> f64 {
            20.0 + x * x - 10.0 * (2.0 * std::f64::consts::PI * x).cos() + y * y
                - 10.0 * (2.0 * std::f64::consts::PI * y).cos()
        }
        fn move_classes(&self) -> usize {
            1
        }
        fn propose(
            &mut self,
            &(x, y): &(f64, f64),
            _class: usize,
            scale: f64,
            rng: &mut dyn Rng,
        ) -> Option<(f64, f64)> {
            let r = |rng: &mut dyn Rng| rng.next_u64() as f64 / u64::MAX as f64 - 0.5;
            Some((x + 10.0 * scale * r(rng), y + 10.0 * scale * r(rng)))
        }
        fn telemetry_names(&self) -> Vec<String> {
            vec!["radius".into()]
        }
        fn telemetry(&mut self, &(x, y): &(f64, f64)) -> Vec<f64> {
            vec![x.hypot(y)]
        }
    }

    #[test]
    fn sphere_converges_tightly() {
        let mut a = Annealer::new(AnnealOptions {
            moves_budget: 30_000,
            seed: 42,
            ..AnnealOptions::default()
        });
        let res = a.run(&mut Sphere { dim: 6 });
        assert!(res.best_cost < 1e-3, "best = {}", res.best_cost);
        assert!((res.best_state[0] - 1.5).abs() < 0.05);
        assert!((res.best_state[1] + 2.5).abs() < 0.05);
    }

    #[test]
    fn rastrigin_escapes_local_minima() {
        // A greedy optimizer started at (4.3, −3.7) stays near cost ≈ 30;
        // the annealer must find the global basin.
        let mut a = Annealer::new(AnnealOptions {
            moves_budget: 60_000,
            seed: 7,
            ..AnnealOptions::default()
        });
        let res = a.run(&mut Rastrigin);
        assert!(
            res.best_cost < 1.0,
            "should reach the global basin, got {}",
            res.best_cost
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut a = Annealer::new(AnnealOptions {
                moves_budget: 5_000,
                seed,
                ..AnnealOptions::default()
            });
            a.run(&mut Sphere { dim: 3 }).best_cost
        };
        assert_eq!(run(9).to_bits(), run(9).to_bits());
        assert_ne!(run(9).to_bits(), run(10).to_bits());
    }

    #[test]
    fn trace_is_sampled() {
        let mut a = Annealer::new(AnnealOptions {
            moves_budget: 5_000,
            seed: 3,
            trace_every: 100,
            ..AnnealOptions::default()
        });
        let res = a.run(&mut Rastrigin);
        assert!(res.trace.points.len() >= 50);
        assert_eq!(res.trace.names, vec!["radius".to_string()]);
        // Telemetry series exists and ends near the origin.
        let series = res.trace.series("radius").unwrap();
        assert!(series.last().unwrap().1 < 1.0);
        // Cost stored in points decreases overall.
        let first = res.trace.points.first().unwrap().cost;
        let last = res.trace.points.last().unwrap().cost;
        assert!(last <= first);
    }

    #[test]
    fn both_classes_used() {
        let mut a = Annealer::new(AnnealOptions {
            moves_budget: 10_000,
            seed: 5,
            ..AnnealOptions::default()
        });
        let res = a.run(&mut Sphere { dim: 4 });
        assert_eq!(res.class_usage.len(), 2);
        assert!(res.class_usage[0].0 > 100);
        assert!(res.class_usage[1].0 > 100);
    }

    /// A problem whose `frozen` hook fires immediately in quench.
    struct FreezeFast(Sphere);
    impl AnnealProblem for FreezeFast {
        type State = Vec<f64>;
        fn initial_state(&mut self) -> Vec<f64> {
            self.0.initial_state()
        }
        fn cost(&mut self, s: &Vec<f64>) -> f64 {
            self.0.cost(s)
        }
        fn move_classes(&self) -> usize {
            self.0.move_classes()
        }
        fn propose(
            &mut self,
            s: &Vec<f64>,
            c: usize,
            sc: f64,
            rng: &mut dyn Rng,
        ) -> Option<Vec<f64>> {
            self.0.propose(s, c, sc, rng)
        }
        fn frozen(&mut self, _s: &Vec<f64>) -> bool {
            true
        }
    }

    #[test]
    fn acceptance_tracks_lam_target_midrun() {
        // On a smooth problem the schedule's control loop must pull the
        // measured acceptance toward the 0.44 plateau through the
        // middle of the run.
        struct Probe {
            inner: Sphere,
        }
        impl AnnealProblem for Probe {
            type State = Vec<f64>;
            fn initial_state(&mut self) -> Vec<f64> {
                self.inner.initial_state()
            }
            fn cost(&mut self, s: &Vec<f64>) -> f64 {
                self.inner.cost(s)
            }
            fn move_classes(&self) -> usize {
                self.inner.move_classes()
            }
            fn propose(
                &mut self,
                s: &Vec<f64>,
                c: usize,
                sc: f64,
                rng: &mut dyn Rng,
            ) -> Option<Vec<f64>> {
                self.inner.propose(s, c, sc, rng)
            }
            fn telemetry_names(&self) -> Vec<String> {
                vec!["dummy".into()]
            }
            fn telemetry(&mut self, _s: &Vec<f64>) -> Vec<f64> {
                vec![0.0]
            }
        }
        let mut a = Annealer::new(AnnealOptions {
            moves_budget: 40_000,
            seed: 13,
            trace_every: 500,
            ..AnnealOptions::default()
        });
        let mut p = Probe {
            inner: Sphere { dim: 4 },
        };
        let res = a.run(&mut p);
        // Mid-run points (30–60% progress) should hover near the 0.44
        // plateau.
        let mid: Vec<f64> = res
            .trace
            .points
            .iter()
            .filter(|pt| {
                let prog = pt.move_index as f64 / 40_000.0;
                (0.3..0.6).contains(&prog)
            })
            .map(|pt| pt.acceptance)
            .collect();
        assert!(!mid.is_empty());
        let mean = mid.iter().sum::<f64>() / mid.len() as f64;
        assert!(
            (0.25..0.65).contains(&mean),
            "mid-run acceptance should track the Lam plateau: {mean:.3}"
        );
    }

    #[test]
    fn controlled_run_without_stop_matches_plain_run() {
        let opts = AnnealOptions {
            moves_budget: 6_000,
            seed: 17,
            trace_every: 200,
            ..AnnealOptions::default()
        };
        let plain = Annealer::new(opts.clone()).run(&mut Rastrigin);
        let mut hooks = 0usize;
        let controlled =
            match Annealer::new(opts).run_controlled(&mut Rastrigin, None, 250, |_, ck| {
                hooks += 1;
                assert!(ck.attempted.is_multiple_of(250));
                Directive::Continue
            }) {
                ControlledOutcome::Complete(r) => r,
                ControlledOutcome::Interrupted(_) => unreachable!(),
            };
        assert!(hooks > 10, "hook fired {hooks} times");
        assert_eq!(plain.best_cost.to_bits(), controlled.best_cost.to_bits());
        assert_eq!(plain.final_cost.to_bits(), controlled.final_cost.to_bits());
        assert_eq!(plain.attempted, controlled.attempted);
        assert_eq!(plain.accepted, controlled.accepted);
        assert_eq!(plain.trace.points, controlled.trace.points);
    }

    #[test]
    fn interrupt_and_resume_is_bit_identical() {
        let opts = AnnealOptions {
            moves_budget: 6_000,
            seed: 21,
            trace_every: 300,
            quench_patience: 1_500,
            ..AnnealOptions::default()
        };
        let full = Annealer::new(opts.clone()).run(&mut Rastrigin);
        // Interrupt in the main phase (early, late) and in the quench.
        for stop_at in [400usize, 5_200, 6_300] {
            let outcome =
                Annealer::new(opts.clone()).run_controlled(&mut Rastrigin, None, 100, |_, ck| {
                    if ck.attempted >= stop_at {
                        Directive::Stop
                    } else {
                        Directive::Continue
                    }
                });
            let ck = match outcome {
                ControlledOutcome::Interrupted(ck) => *ck,
                // The quench may freeze out before a late stop point —
                // then there is nothing to resume.
                ControlledOutcome::Complete(_) => continue,
            };
            if stop_at > 6_000 {
                assert_eq!(ck.phase, Phase::Quench);
            } else {
                assert_eq!(ck.phase, Phase::Main);
            }
            let resumed = match Annealer::new(opts.clone()).run_controlled(
                &mut Rastrigin,
                Some(ck),
                0,
                |_, _| Directive::Continue,
            ) {
                ControlledOutcome::Complete(r) => r,
                ControlledOutcome::Interrupted(_) => unreachable!(),
            };
            assert_eq!(full.best_cost.to_bits(), resumed.best_cost.to_bits());
            assert_eq!(full.final_cost.to_bits(), resumed.final_cost.to_bits());
            assert_eq!(full.best_state.0.to_bits(), resumed.best_state.0.to_bits());
            assert_eq!(full.best_state.1.to_bits(), resumed.best_state.1.to_bits());
            assert_eq!(full.attempted, resumed.attempted);
            assert_eq!(full.accepted, resumed.accepted);
            assert_eq!(full.trace.points, resumed.trace.points);
            assert_eq!(full.class_usage, resumed.class_usage);
        }
    }

    #[test]
    fn frozen_hook_ends_quench() {
        let budget = 2_000;
        let mut a = Annealer::new(AnnealOptions {
            moves_budget: budget,
            seed: 5,
            quench_patience: 1_000_000, // would run ~forever without the hook
            ..AnnealOptions::default()
        });
        let res = a.run(&mut FreezeFast(Sphere { dim: 2 }));
        assert!(res.attempted <= budget + 1);
    }
}
