//! Hustin-style adaptive move-class selection.
//!
//! The annealer must decide, at every step, which *kind* of move to
//! make: perturb one variable, perturb several, take a Newton–Raphson
//! jump, step a discrete grid… Hustin's method (from the TIM placer,
//! adopted by OBLX) keeps per-class statistics of how much accepted
//! cost change each class produces per attempt, and samples classes in
//! proportion to that measured *quality* — so gradient moves dominate
//! exactly when they help, with no hand-tuned mix ratios.

use rand::Rng;

/// What a proposed move touched, relative to the state it was derived
/// from — the contract between [`crate::AnnealProblem::propose_dirty`]
/// and [`crate::AnnealProblem::cost_moved`].
///
/// The split into *primary* and *auxiliary* indices is generic: the
/// problem defines what each group means (OBLX uses primary = user
/// variables, auxiliary = relaxed-dc node voltages). A move must
/// declare a **superset** of what it actually changed; declaring too
/// much only costs speed, declaring too little is a correctness bug
/// (incremental evaluators may reuse stale partial results).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    /// Conservative flag: everything may have changed. When set, the
    /// index lists are irrelevant.
    pub all: bool,
    /// Indices of changed primary variables.
    pub primary: Vec<usize>,
    /// Indices of changed auxiliary variables.
    pub aux: Vec<usize>,
}

impl DirtySet {
    /// The conservative set: everything may have changed.
    pub fn everything() -> Self {
        DirtySet {
            all: true,
            primary: Vec::new(),
            aux: Vec::new(),
        }
    }

    /// A precise set from primary and auxiliary index lists.
    pub fn of(primary: Vec<usize>, aux: Vec<usize>) -> Self {
        DirtySet {
            all: false,
            primary,
            aux,
        }
    }

    /// `true` when index `i` is declared dirty in the primary group.
    pub fn primary_dirty(&self, i: usize) -> bool {
        self.all || self.primary.contains(&i)
    }

    /// `true` when index `i` is declared dirty in the auxiliary group.
    pub fn aux_dirty(&self, i: usize) -> bool {
        self.all || self.aux.contains(&i)
    }
}

/// Statistics for one move class.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassStats {
    /// Attempts in the current window.
    pub attempts: usize,
    /// Acceptances in the current window.
    pub accepts: usize,
    /// Σ|ΔC| over accepted moves in the window.
    pub accepted_delta: f64,
    /// Current selection probability.
    pub probability: f64,
    /// Current move-range scale in `(0, 1]`.
    pub scale: f64,
    /// Lifetime attempts (for reporting).
    pub total_attempts: usize,
    /// Lifetime acceptances (for reporting).
    pub total_accepts: usize,
}

/// Adaptive move-class selector.
#[derive(Debug, Clone)]
pub struct MoveStats {
    classes: Vec<ClassStats>,
    window: usize,
    seen: usize,
    p_min: f64,
}

/// A plain-data image of a [`MoveStats`], for checkpoint/restore. All
/// fields are public so external serializers can write any format; the
/// restore path ([`MoveStats::from_snapshot`]) reproduces the selector
/// bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveStatsSnapshot {
    /// Per-class statistics, including the in-window counters.
    pub classes: Vec<ClassStats>,
    /// Re-balance window length (attempts between rebalances).
    pub window: usize,
    /// Attempts recorded since the last rebalance.
    pub seen: usize,
    /// Probability floor applied at rebalance.
    pub p_min: f64,
}

impl MoveStats {
    /// Creates a selector over `n` classes with uniform initial
    /// probabilities and full move range.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one move class");
        let p = 1.0 / n as f64;
        MoveStats {
            classes: (0..n)
                .map(|_| ClassStats {
                    probability: p,
                    scale: 1.0,
                    ..ClassStats::default()
                })
                .collect(),
            window: 100 * n,
            seen: 0,
            // A 2% floor keeps every class alive enough to re-prove
            // itself when the cost landscape shifts (e.g. Newton moves
            // become decisive once the KCL weights ramp up late in an
            // OBLX run).
            p_min: 0.02,
        }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` when there are no classes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Per-class statistics.
    pub fn classes(&self) -> &[ClassStats] {
        &self.classes
    }

    /// Captures the full selector state for checkpointing.
    pub fn snapshot(&self) -> MoveStatsSnapshot {
        MoveStatsSnapshot {
            classes: self.classes.clone(),
            window: self.window,
            seen: self.seen,
            p_min: self.p_min,
        }
    }

    /// Rebuilds a selector from a [`MoveStats::snapshot`], continuing
    /// the exact adaptive trajectory.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot holds no classes (such a selector could
    /// never have existed).
    pub fn from_snapshot(s: MoveStatsSnapshot) -> Self {
        assert!(!s.classes.is_empty(), "snapshot must hold move classes");
        MoveStats {
            classes: s.classes,
            window: s.window,
            seen: s.seen,
            p_min: s.p_min,
        }
    }

    /// Samples a move class according to the current probabilities.
    pub fn pick(&self, rng: &mut dyn Rng) -> usize {
        let r = (rng.next_u64() as f64 / u64::MAX as f64).min(1.0 - f64::EPSILON);
        let mut acc = 0.0;
        for (i, c) in self.classes.iter().enumerate() {
            acc += c.probability;
            if r < acc {
                return i;
            }
        }
        self.classes.len() - 1
    }

    /// The move-range scale for a class.
    pub fn scale(&self, class: usize) -> f64 {
        self.classes[class].scale
    }

    /// Records an attempt outcome; periodically re-balances
    /// probabilities (Hustin quality) and per-class ranges.
    pub fn record(&mut self, class: usize, accepted: bool, delta_cost: f64) {
        oblx_telemetry::move_result(class, accepted);
        let c = &mut self.classes[class];
        c.attempts += 1;
        c.total_attempts += 1;
        if accepted {
            c.accepts += 1;
            c.total_accepts += 1;
            c.accepted_delta += delta_cost.abs();
        }
        self.seen += 1;
        if self.seen >= self.window {
            self.rebalance();
        }
    }

    fn rebalance(&mut self) {
        self.seen = 0;
        // Quality: accepted |ΔC| per attempt. Classes that move the
        // cost (in either direction, while being accepted) are the ones
        // teaching the annealer something.
        let qualities: Vec<f64> = self
            .classes
            .iter()
            .map(|c| {
                if c.attempts == 0 {
                    0.0
                } else {
                    c.accepted_delta / c.attempts as f64
                }
            })
            .collect();
        let total: f64 = qualities.iter().sum();
        let n = self.classes.len() as f64;
        for (c, q) in self.classes.iter_mut().zip(qualities.iter()) {
            let p_raw = if total > 0.0 { q / total } else { 1.0 / n };
            c.probability = p_raw.max(self.p_min);
            // Range adaptation: aim for a mid acceptance ratio.
            if c.attempts > 0 {
                let acc = c.accepts as f64 / c.attempts as f64;
                if acc > 0.6 {
                    c.scale = (c.scale * 1.25).min(1.0);
                } else if acc < 0.25 {
                    c.scale = (c.scale * 0.8).max(1e-4);
                }
            }
            c.attempts = 0;
            c.accepts = 0;
            c.accepted_delta = 0.0;
        }
        // Renormalize after flooring.
        let sum: f64 = self.classes.iter().map(|c| c.probability).sum();
        for c in &mut self.classes {
            c.probability /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_at_start() {
        let ms = MoveStats::new(4);
        for c in ms.classes() {
            assert!((c.probability - 0.25).abs() < 1e-12);
            assert_eq!(c.scale, 1.0);
        }
    }

    #[test]
    fn pick_respects_probabilities() {
        let mut ms = MoveStats::new(2);
        // Make class 0 overwhelmingly productive.
        for _ in 0..ms.window {
            ms.record(0, true, 10.0);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let picks0 = (0..2_000).filter(|_| ms.pick(&mut rng) == 0).count();
        assert!(picks0 > 1_800, "class 0 should dominate: {picks0}");
        // But class 1 keeps a floor probability.
        assert!(ms.classes()[1].probability > 0.0);
    }

    #[test]
    fn useless_class_decays_but_survives() {
        let mut ms = MoveStats::new(3);
        for i in 0..3 * ms.window {
            let class = i % 3;
            // Class 2 is never accepted.
            let accepted = class != 2;
            ms.record(class, accepted, 1.0);
        }
        assert!(ms.classes()[2].probability < 0.05);
        assert!(ms.classes()[2].probability >= ms.p_min / 2.0);
    }

    #[test]
    fn range_adapts_to_acceptance() {
        let mut ms = MoveStats::new(1);
        for _ in 0..ms.window {
            ms.record(0, true, 1.0); // 100% acceptance ⇒ widen
        }
        assert!(ms.scale(0) >= 1.0 - 1e-12); // clamped at 1.0
        for _ in 0..10 * ms.window {
            ms.record(0, false, 0.0); // 0% acceptance ⇒ shrink
        }
        assert!(ms.scale(0) < 0.2, "scale = {}", ms.scale(0));
    }

    #[test]
    fn probabilities_always_normalized() {
        let mut ms = MoveStats::new(5);
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..10 * ms.window {
            let cls = ms.pick(&mut rng);
            ms.record(cls, i % 3 == 0, (i % 7) as f64);
        }
        let sum: f64 = ms.classes().iter().map(|c| c.probability).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
