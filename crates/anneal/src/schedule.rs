//! The modified Lam–Delosme cooling schedule.
//!
//! Lam's schedule steers the temperature so that the *measured*
//! acceptance ratio follows a theoretically derived target trajectory:
//! high early (exploration), pinned near 0.44 through the middle (the
//! statistically optimal region for continuous problems), decaying to
//! zero at the end (quench). The practical "modified Lam" variant used
//! here (after Swartz) replaces Lam's full statistical machinery with an
//! exponentially smoothed acceptance estimate and a multiplicative
//! temperature correction — robust, constant-free, and the form used in
//! modern annealing placers.

/// Acceptance-ratio target as a function of progress `t ∈ [0, 1]`.
///
/// Piecewise trajectory: exponential descent from 1.0 to 0.44 over the
/// first 15% of the run, flat 0.44 until 65%, then exponential decay
/// toward zero.
pub fn lam_target(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    if t < 0.15 {
        0.44 + 0.56 * (560.0f64).powf(-t / 0.15)
    } else if t < 0.65 {
        0.44
    } else {
        0.44 * (440.0f64).powf(-(t - 0.65) / 0.35)
    }
}

/// The schedule state: smoothed acceptance estimate plus the current
/// temperature.
#[derive(Debug, Clone)]
pub struct LamSchedule {
    temperature: f64,
    accept_est: f64,
    total_moves: usize,
    done_moves: usize,
    smoothing: f64,
}

impl LamSchedule {
    /// Creates a schedule for a run of `total_moves`, starting at
    /// `initial_temperature` (typically from a warm-up probe; see
    /// [`initial_temperature`]).
    pub fn new(initial_temperature: f64, total_moves: usize) -> Self {
        LamSchedule {
            temperature: initial_temperature.max(1e-300),
            accept_est: 1.0,
            total_moves: total_moves.max(1),
            done_moves: 0,
            smoothing: 0.998,
        }
    }

    /// Current temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Progress through the move budget, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        self.done_moves as f64 / self.total_moves as f64
    }

    /// Smoothed measured acceptance ratio.
    pub fn acceptance(&self) -> f64 {
        self.accept_est
    }

    /// The target acceptance at the current progress.
    pub fn target(&self) -> f64 {
        lam_target(self.progress())
    }

    /// Records one move outcome and updates the temperature control
    /// loop.
    pub fn record(&mut self, accepted: bool) {
        self.done_moves += 1;
        let a = if accepted { 1.0 } else { 0.0 };
        self.accept_est = self.smoothing * self.accept_est + (1.0 - self.smoothing) * a;
        let target = self.target();
        // Multiplicative steering: cool when accepting too much, reheat
        // when accepting too little. The 0.999 constant sets the control
        // bandwidth, not the schedule shape — it needs no per-problem
        // tuning (paper §V.A's "no problem-specific constants").
        const K: f64 = 0.999;
        if self.accept_est > target {
            self.temperature *= K;
        } else {
            self.temperature /= K;
        }
        // Hard quench at the very end.
        if self.progress() >= 1.0 {
            self.temperature = 0.0;
        }
    }

    /// `true` once the move budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.done_moves >= self.total_moves
    }

    /// Captures the full schedule state for checkpointing.
    pub fn snapshot(&self) -> ScheduleSnapshot {
        ScheduleSnapshot {
            temperature: self.temperature,
            accept_est: self.accept_est,
            total_moves: self.total_moves,
            done_moves: self.done_moves,
            smoothing: self.smoothing,
        }
    }

    /// Rebuilds a schedule from a [`LamSchedule::snapshot`], continuing
    /// the exact control trajectory.
    pub fn from_snapshot(s: ScheduleSnapshot) -> Self {
        LamSchedule {
            temperature: s.temperature,
            accept_est: s.accept_est,
            total_moves: s.total_moves.max(1),
            done_moves: s.done_moves,
            smoothing: s.smoothing,
        }
    }
}

/// A plain-data image of a [`LamSchedule`], for checkpoint/restore.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleSnapshot {
    /// Current temperature.
    pub temperature: f64,
    /// Exponentially smoothed acceptance estimate.
    pub accept_est: f64,
    /// Total move budget of the run.
    pub total_moves: usize,
    /// Moves recorded so far.
    pub done_moves: usize,
    /// Smoothing constant of the acceptance estimator.
    pub smoothing: f64,
}

/// Estimates an initial temperature from a sample of uphill cost deltas
/// so that the initial acceptance ratio is `chi0` (classic
/// Kirkpatrick/White start): `T₀ = ⟨ΔC⁺⟩ / ln(1/χ₀)`.
pub fn initial_temperature(uphill_deltas: &[f64], chi0: f64) -> f64 {
    let ups: Vec<f64> = uphill_deltas.iter().copied().filter(|&d| d > 0.0).collect();
    if ups.is_empty() {
        return 1.0;
    }
    let mean = ups.iter().sum::<f64>() / ups.len() as f64;
    let chi = chi0.clamp(0.5, 0.999);
    mean / (1.0 / chi).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_trajectory_shape() {
        assert!((lam_target(0.0) - 1.0).abs() < 1e-12);
        assert!((lam_target(0.15) - 0.441).abs() < 2e-3);
        assert!((lam_target(0.4) - 0.44).abs() < 1e-12);
        assert!(lam_target(0.99) < 0.01);
        assert!(lam_target(1.0) <= 0.001);
        // Monotone non-increasing.
        let mut last = f64::INFINITY;
        for i in 0..=100 {
            let v = lam_target(i as f64 / 100.0);
            assert!(v <= last + 1e-12);
            last = v;
        }
    }

    #[test]
    fn cooling_under_full_acceptance() {
        let mut s = LamSchedule::new(10.0, 1000);
        for _ in 0..500 {
            s.record(true);
        }
        // Accepting everything while the target decays ⇒ must cool.
        assert!(s.temperature() < 10.0);
        assert!(s.acceptance() > 0.9);
    }

    #[test]
    fn reheating_under_full_rejection_early() {
        let mut s = LamSchedule::new(1.0, 100_000);
        // Drive the estimate below the early target.
        for _ in 0..2_000 {
            s.record(false);
        }
        assert!(
            s.temperature() > 1.0,
            "rejecting early must reheat: T = {}",
            s.temperature()
        );
    }

    #[test]
    fn exhaustion_and_quench() {
        let mut s = LamSchedule::new(1.0, 10);
        for _ in 0..10 {
            s.record(true);
        }
        assert!(s.exhausted());
        assert_eq!(s.temperature(), 0.0);
    }

    #[test]
    fn initial_temperature_formula() {
        // Mean uphill 2.0, chi0 0.95 ⇒ T0 = 2/ln(1/0.95) ≈ 38.99.
        let t0 = initial_temperature(&[1.0, 3.0, -5.0], 0.95);
        assert!((t0 - 2.0 / (1.0f64 / 0.95).ln()).abs() < 1e-9);
        // No uphill samples: fall back to 1.
        assert_eq!(initial_temperature(&[-1.0, -2.0], 0.95), 1.0);
    }
}
