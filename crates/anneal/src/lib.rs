//! A problem-independent simulated-annealing engine.
//!
//! OBLX's optimization core, extracted as a reusable library. The four
//! components the paper names (§V.A) map onto this crate as follows:
//!
//! * **Representation** — owned by the problem, behind the
//!   [`AnnealProblem`] trait;
//! * **Move-set** — the problem exposes *move classes*
//!   ([`AnnealProblem::propose`]); the engine picks among them with
//!   Hustin's adaptive move-selection statistics ([`MoveStats`]) and
//!   feeds back a per-class range `scale`;
//! * **Cost function** — [`AnnealProblem::cost`], a scalar;
//! * **Control** — a modified Lam–Delosme schedule
//!   ([`schedule::LamSchedule`]): the temperature is continuously
//!   steered so the measured acceptance ratio tracks Lam's theoretical
//!   target trajectory, with Swartz-style smoothed statistics. No
//!   problem-specific temperature constants are needed, which is the
//!   paper's "automation tool" requirement.
//!
//! # Examples
//!
//! Minimizing a 1-D multimodal function:
//!
//! ```
//! use oblx_anneal::{AnnealOptions, AnnealProblem, Annealer};
//! use rand::RngExt;
//!
//! struct Wavy;
//! impl AnnealProblem for Wavy {
//!     type State = f64;
//!     fn initial_state(&mut self) -> f64 { 7.0 }
//!     fn cost(&mut self, x: &f64) -> f64 { x * x + 10.0 * (1.0 - (x).cos()) }
//!     fn move_classes(&self) -> usize { 1 }
//!     fn propose(&mut self, x: &f64, _class: usize, scale: f64,
//!                rng: &mut dyn rand::Rng) -> Option<f64> {
//!         let step = 8.0 * scale * (rng.random::<f64>() - 0.5);
//!         Some(x + step)
//!     }
//! }
//!
//! let mut annealer = Annealer::new(AnnealOptions {
//!     moves_budget: 20_000,
//!     seed: 7,
//!     ..AnnealOptions::default()
//! });
//! let result = annealer.run(&mut Wavy);
//! assert!(result.best_cost < 1e-2, "found the global bowl at 0");
//! ```

mod engine;
mod moves;
pub mod schedule;
mod trace;

pub use engine::{
    AnnealCheckpoint, AnnealOptions, AnnealProblem, AnnealResult, Annealer, ControlledOutcome,
    Directive, Phase,
};
pub use moves::{ClassStats, DirtySet, MoveStats, MoveStatsSnapshot};
pub use schedule::{LamSchedule, ScheduleSnapshot};
pub use trace::{Trace, TracePoint};
