//! Annealing run traces, for convergence plots such as the paper's
//! Fig. 2 (KCL discrepancy vs. optimization progress).

/// One sampled point of an annealing run.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePoint {
    /// Move index at which the sample was taken.
    pub move_index: usize,
    /// Cost at the sample.
    pub cost: f64,
    /// Best cost seen so far.
    pub best_cost: f64,
    /// Temperature.
    pub temperature: f64,
    /// Smoothed acceptance ratio.
    pub acceptance: f64,
    /// Problem-defined telemetry values (see
    /// [`crate::AnnealProblem::telemetry`]).
    pub telemetry: Vec<f64>,
}

/// A sampled annealing trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Telemetry channel names, parallel to each point's `telemetry`.
    pub names: Vec<String>,
    /// Sampled points in move order.
    pub points: Vec<TracePoint>,
}

impl Trace {
    /// Creates an empty trace with the given telemetry channel names.
    pub fn new(names: Vec<String>) -> Self {
        Trace {
            names,
            points: Vec::new(),
        }
    }

    /// The series for one telemetry channel, as
    /// `(move_index, value)` pairs.
    pub fn series(&self, name: &str) -> Option<Vec<(usize, f64)>> {
        let idx = self.names.iter().position(|n| n == name)?;
        Some(
            self.points
                .iter()
                .map(|p| (p.move_index, p.telemetry[idx]))
                .collect(),
        )
    }

    /// The cost series as `(move_index, cost)` pairs.
    pub fn cost_series(&self) -> Vec<(usize, f64)> {
        self.points.iter().map(|p| (p.move_index, p.cost)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup() {
        let mut t = Trace::new(vec!["kcl".into(), "gain".into()]);
        t.points.push(TracePoint {
            move_index: 10,
            cost: 5.0,
            best_cost: 5.0,
            temperature: 1.0,
            acceptance: 0.9,
            telemetry: vec![0.5, 40.0],
        });
        t.points.push(TracePoint {
            move_index: 20,
            cost: 3.0,
            best_cost: 3.0,
            temperature: 0.9,
            acceptance: 0.8,
            telemetry: vec![0.1, 55.0],
        });
        assert_eq!(t.series("kcl").unwrap(), vec![(10, 0.5), (20, 0.1)]);
        assert_eq!(t.series("gain").unwrap(), vec![(10, 40.0), (20, 55.0)]);
        assert!(t.series("nope").is_none());
        assert_eq!(t.cost_series(), vec![(10, 5.0), (20, 3.0)]);
    }
}
