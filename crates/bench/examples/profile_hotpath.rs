//! Throwaway stage profiler for the incremental eval hot path.

use astrx_oblx::bench_suite;
use oblx_awe::analyze_batch;
use oblx_linalg::Lu;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let b = bench_suite::by_name("Two-Stage").expect("exists");
    let c = oblx_bench::compiled(&b);
    let (sys, src, out) = oblx_bench::first_jig_system(&c);
    let dim = sys.dim();
    let nnz_g = sys.g.as_slice().iter().filter(|v| **v != 0.0).count();
    let nnz_c = sys.c.as_slice().iter().filter(|v| **v != 0.0).count();
    println!(
        "dim = {dim}, nnz(G) = {nnz_g} ({:.1}%), nnz(C) = {nnz_c} ({:.1}%)",
        100.0 * nnz_g as f64 / (dim * dim) as f64,
        100.0 * nnz_c as f64 / (dim * dim) as f64
    );

    let bvec = sys.input_vector(&src).unwrap();
    let n = 2000usize;

    // LU factor (with clone, as the hot path does).
    let t = Instant::now();
    for _ in 0..n {
        black_box(Lu::factor(sys.g.clone()).unwrap());
    }
    println!(
        "lu_factor+clone   {:8.2} us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // Transpose solves (2q = 16) against one factorization.
    let lu = Lu::factor(sys.g.clone()).unwrap();
    let t = Instant::now();
    let mut x = Vec::new();
    let mut scratch = Vec::new();
    for _ in 0..n {
        for _ in 0..16 {
            lu.solve_transpose_into(&bvec, &mut x, &mut scratch);
            black_box(&x);
        }
    }
    println!(
        "16 x solve_T      {:8.2} us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // Full analyze_batch (3 jobs sharing a probe, like the deduped jig).
    let jobs: Vec<(&[f64], _)> = vec![(bvec.as_slice(), out); 3];
    let t = Instant::now();
    for _ in 0..n {
        black_box(analyze_batch(&sys, &jobs, 8).unwrap());
    }
    println!(
        "analyze_batch x3  {:8.2} us  (cold: engine built per call)",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // Sparse primitive costs on the same system.
    {
        let map = sys.stamp_map();
        let (mut g_vals, mut c_vals) = (Vec::new(), Vec::new());
        sys.sparse_vals_into(&mut g_vals, &mut c_vals);
        let mut slu = oblx_linalg::SparseLu::symbolic(map.dim(), map.entries()).unwrap();
        let t = Instant::now();
        for _ in 0..n {
            slu.refactor(black_box(&g_vals)).unwrap();
        }
        println!(
            "sparse refactor   {:8.2} us  (nnz {} fill {})",
            t.elapsed().as_secs_f64() * 1e6 / n as f64,
            slu.nnz(),
            slu.fill_nnz()
        );
        let mut x = Vec::new();
        let mut sc = Vec::new();
        let t = Instant::now();
        for _ in 0..n {
            for _ in 0..16 {
                slu.solve_transpose_into(&bvec, &mut x, &mut sc);
                black_box(&x);
            }
        }
        println!(
            "16 x sparse T     {:8.2} us",
            t.elapsed().as_secs_f64() * 1e6 / n as f64
        );
    }

    // Engine-reuse path: symbolic amortized, as the eval plan runs it.
    let mut engine = oblx_awe::AweEngine::for_system(&sys);
    engine.load(&sys);
    println!("engine sparse     {}", engine.is_sparse());
    let t = Instant::now();
    for _ in 0..n {
        black_box(oblx_awe::analyze_batch_with(&mut engine, &sys, &jobs, 8).unwrap());
    }
    println!(
        "batch_with x3     {:8.2} us  (plan path: refactor+solves+fits)",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // Moments only (no fit): isolates the solve chain.
    let t = Instant::now();
    for _ in 0..n {
        black_box(oblx_awe::moments_with(&sys, &bvec, out, 16).unwrap());
    }
    println!(
        "moments_with q16  {:8.2} us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // Telemetry accounting of one analyze_batch: how many fits/shifts.
    oblx_telemetry::reset();
    oblx_telemetry::set_enabled(true);
    black_box(analyze_batch(&sys, &jobs, 8).unwrap());
    let snap = oblx_telemetry::Snapshot::capture();
    oblx_telemetry::set_enabled(false);
    println!(
        "per batch: {} fits, shift {}+/{}-",
        snap.counter("awe_fit"),
        snap.counter("awe_shift_applied"),
        snap.counter("awe_shift_rejected")
    );

    // fit_model timing on the real moment sequence.
    let mm = oblx_awe::moments_with(&sys, &bvec, out, 16).unwrap();
    let t = Instant::now();
    for _ in 0..n {
        black_box(oblx_awe::moments::fit_model(&mm.mu, 8).unwrap());
    }
    println!(
        "fit_model q8      {:8.2} us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // fit + first (uncached) ugf scan, as the shift gate pays per job.
    let t = Instant::now();
    for _ in 0..n {
        let m = oblx_awe::moments::fit_model(&mm.mu, 8).unwrap();
        black_box(oblx_awe::unity_gain_frequency(&m));
    }
    println!(
        "fit+ugf_uncached  {:8.2} us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // Restamp cost.
    let (mut sys2, _, _) = oblx_bench::first_jig_system(&c);
    let user = c.initial_user_values();
    let vars = c.var_map(&user);
    let bias = oblx_mna::SizedCircuit::build(&c.bias_netlist, &vars, &c.lib).unwrap();
    let opts = oblx_mna::DcOptions {
        abstol_i: 1e-8,
        max_iters: 300,
        ..Default::default()
    };
    let op = oblx_mna::solve_dc_with(&bias, &opts, None).unwrap();
    let jig = &c.jigs[0];
    let ckt = oblx_mna::SizedCircuit::build(&jig.netlist, &vars, &c.lib).unwrap();
    let mos: Vec<_> = ckt
        .mosfets
        .iter()
        .map(|m| {
            let i = bias
                .mosfets
                .iter()
                .position(|bm| bm.name == m.name)
                .unwrap();
            op.mos_ops[i]
        })
        .collect();
    let t = Instant::now();
    for _ in 0..n {
        sys2.restamp(&ckt, &mos, &[], &[]);
        black_box(&sys2);
    }
    println!(
        "restamp           {:8.2} us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // MOS op evaluation cost (all 8 devices).
    let t = Instant::now();
    for _ in 0..n {
        for m in &bias.mosfets {
            black_box(m.model.op(m.w, m.l, 1.0, 2.0, 0.0, 0.0));
        }
    }
    println!(
        "8 mos ops         {:8.2} us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    score_breakdown();
}

// ---- appended: score + fit breakdown ----
fn score_breakdown() {
    use astrx_oblx::{AdaptiveWeights, CostEvaluator};
    let b = bench_suite::by_name("Two-Stage").expect("exists");
    let c = oblx_bench::compiled(&b);
    let nodes = oblx_bench::newton_nodes(&c);
    let user = c.initial_user_values();
    let w = AdaptiveWeights::new(&c);
    let mut ev = CostEvaluator::new(&c);
    ev.evaluate(&user, &nodes, &w);
    let n = 2000usize;

    // Cached rescore (score-only floor).
    let t = Instant::now();
    for _ in 0..n {
        black_box(ev.evaluate(&user, &nodes, &w));
    }
    println!(
        "cached_rescore    {:8.2} us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // ugf / pm on the real fitted models.
    let (sys, src, out) = oblx_bench::first_jig_system(&c);
    let bvec = sys.input_vector(&src).unwrap();
    let jobs: Vec<(&[f64], _)> = vec![(bvec.as_slice(), out); 3];
    let models = analyze_batch(&sys, &jobs, 8).unwrap();
    let m0 = &models[0];
    let t = Instant::now();
    for _ in 0..n {
        black_box(oblx_awe::unity_gain_frequency(black_box(m0)));
    }
    println!(
        "ugf               {:8.2} us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );
    let t = Instant::now();
    for _ in 0..n {
        black_box(oblx_awe::phase_margin(black_box(m0)));
    }
    println!(
        "phase_margin      {:8.2} us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );
    println!("model order       {}", m0.order());

    // Span decomposition of the real incremental-node move.
    let mut nodes2 = nodes.clone();
    oblx_telemetry::reset();
    oblx_telemetry::set_enabled(true);
    let t = Instant::now();
    for _ in 0..n {
        nodes2[0] += 1e-12;
        black_box(ev.evaluate(&user, &nodes2, &w));
    }
    let total = t.elapsed().as_secs_f64() * 1e6 / n as f64;
    let snap = oblx_telemetry::Snapshot::capture();
    oblx_telemetry::set_enabled(false);
    println!("incremental move  {total:8.2} us (telemetry on), spans per move:");
    for (name, h) in &snap.spans {
        if h.count > 0 {
            println!(
                "    {name:<16} {:8.2} us  ({:.1} calls)",
                h.sum as f64 / 1e3 / n as f64,
                h.count as f64 / n as f64
            );
        }
    }

    // Fit internals on the real moment sequence.
    let mm = oblx_awe::moments_with(&sys, &bvec, out, 16).unwrap();
    oblx_telemetry::reset();
    oblx_telemetry::set_enabled(true);
    black_box(oblx_awe::moments::fit_model(&mm.mu, 8).unwrap());
    let snap = oblx_telemetry::Snapshot::capture();
    oblx_telemetry::set_enabled(false);
    let orders: Vec<String> = snap
        .fit_orders
        .iter()
        .enumerate()
        .filter(|(_, n)| **n > 0)
        .map(|(q, n)| format!("q{q}:{n}"))
        .collect();
    println!("accepted order(s) {}", orders.join(" "));

    // Aberth on a representative denominator (order = accepted).
    let q = m0.order().max(1);
    let coeffs: Vec<f64> = (0..=q).map(|k| 1.0 + 0.3 * k as f64).collect();
    let t = Instant::now();
    for _ in 0..n {
        black_box(oblx_linalg::Poly::from_real(black_box(&coeffs)).roots());
    }
    println!(
        "aberth q{q}         {:8.2} us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );
}
