//! Table 2's "time/ckt. eval" row: the cost of one full OBLX circuit
//! evaluation (bias assembly + device evaluations + KCL + per-jig AWE +
//! spec arithmetic) for each benchmark.
//!
//! The paper reports 36–116 ms on an IBM RS/6000-550; the *shape* claim
//! carried over is that the folded-cascode class costs ~3× the simple
//! OTA class, and that evaluations are cheap enough for tens of
//! thousands of annealing moves.

use astrx_oblx::cost::CostEvaluator;
use astrx_oblx::{bench_suite, AdaptiveWeights};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_time_per_eval");
    println!("\nTable 2 'time/ckt. eval' (paper, 1994 hardware): Simple OTA 36 ms, OTA 37 ms,");
    println!("Two-Stage 38 ms, Folded Cascode 116 ms, BiCMOS Two-Stage 38 ms\n");
    for b in bench_suite::all() {
        let compiled = oblx_bench::compiled(&b);
        let mut ev = CostEvaluator::new(&compiled);
        let w = AdaptiveWeights::new(&compiled);
        let user = compiled.initial_user_values();
        let nodes = oblx_bench::newton_nodes(&compiled);
        // Sanity: the evaluation must succeed before timing it.
        let probe = ev.evaluate(&user, &nodes, &w);
        assert!(!probe.failed, "{}: evaluation failed", b.name);
        g.bench_function(b.name, |bench| {
            bench.iter(|| {
                let breakdown = ev.evaluate(black_box(&user), black_box(&nodes), &w);
                black_box(breakdown.total)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
