//! Ablations of the design choices DESIGN.md calls out: what the
//! Newton–Raphson move family, the adaptive weights, and the AWE model
//! order each buy. Each configuration runs the same Simple OTA
//! synthesis with a fixed budget and seed; the printout compares final
//! KCL residual and fixed-weight cost, and criterion times one short
//! run per configuration.

use astrx_oblx::bench_suite;
use astrx_oblx::oblx::{fixed_cost, synthesize, SynthesisOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

struct Config {
    label: &'static str,
    opts: SynthesisOptions,
}

fn configs(moves: usize) -> Vec<Config> {
    let base = SynthesisOptions {
        moves_budget: moves,
        seed: 1,
        quench_patience: 500,
        ..SynthesisOptions::default()
    };
    vec![
        Config {
            label: "full (newton + adaptive weights, q=8)",
            opts: base.clone(),
        },
        Config {
            label: "no newton moves",
            opts: SynthesisOptions {
                disable_newton_moves: true,
                ..base.clone()
            },
        },
        Config {
            label: "no adaptive weights",
            opts: SynthesisOptions {
                disable_adaptive_weights: true,
                ..base.clone()
            },
        },
        Config {
            label: "awe order 2",
            opts: SynthesisOptions {
                awe_order: 2,
                ..base.clone()
            },
        },
    ]
}

fn print_ablation() {
    let compiled = oblx_bench::compiled(&bench_suite::simple_ota());
    let moves = oblx_bench::synthesis_budget(15_000);
    println!("\nAblation (Simple OTA, {moves} moves, seed 1):");
    println!(
        "{:<42} {:>12} {:>12} {:>10}",
        "configuration", "kcl (A)", "fixed cost", "pred err %"
    );
    for cfg in configs(moves) {
        let r = synthesize(&compiled, &cfg.opts).expect("synthesis");
        let score = fixed_cost(&compiled, &r.state);
        let err = astrx_oblx::verify::verify_result(&compiled, &r)
            .map(|v| 100.0 * v.worst_relative_error())
            .unwrap_or(f64::NAN);
        println!(
            "{:<42} {:>12.3e} {:>12.3} {:>10.2}",
            cfg.label, r.kcl_max, score, err
        );
    }
    println!(
        "\nExpected shape: dropping Newton moves leaves KCL error orders of\n\
         magnitude higher; dropping adaptive weights leaves constraints\n\
         unbalanced; low AWE order degrades prediction accuracy.\n"
    );
}

fn bench(c: &mut Criterion) {
    print_ablation();
    let compiled = oblx_bench::compiled(&bench_suite::simple_ota());
    let mut g = c.benchmark_group("ablation_short_run");
    g.sample_size(10);
    for cfg in configs(1_500) {
        g.bench_function(cfg.label, |bench| {
            bench.iter(|| {
                let r = synthesize(&compiled, &cfg.opts).expect("synthesis");
                black_box(r.best_cost)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
