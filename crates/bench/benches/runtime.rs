//! Runtime subsystem benchmark: the cost of crash-safety.
//!
//! Measures the three prices `oblxd` pays for resumability and writes
//! them to `BENCH_runtime.json` at the repo root so the perf trajectory
//! is tracked across PRs:
//!
//! * **checkpoint write latency** — serializing a live
//!   `SynthesisCheckpoint` to hex-bit JSON plus the atomic
//!   temp-and-rename persist (what every in-flight seed pays once per
//!   `--checkpoint-interval` proposals);
//! * **resume cost** — parsing a checkpoint back and finishing the run
//!   from it, against the cold uninterrupted run of the same budget;
//! * **queue throughput** — submitting 100 small jobs into a spool and
//!   draining them through the work-stealing pool.

use astrx_oblx::jobs::{checkpoint_from_json, checkpoint_to_json, write_atomic, JobRequest};
use astrx_oblx::json::ObjBuilder;
use astrx_oblx::oblx::synthesize_controlled;
use astrx_oblx::{synthesize, SynthesisOptions, SynthesisOutcome};
use criterion::{criterion_group, criterion_main, Criterion};
use oblx_anneal::Directive;
use oblx_runtime::pool::{self, PoolOptions};
use oblx_runtime::spool::Spool;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::time::Instant;

const DIFFAMP: &str = include_str!("../../core/src/testdata/diffamp.ox");

fn opts(seed: u64, moves_budget: usize) -> SynthesisOptions {
    SynthesisOptions {
        moves_budget,
        quench_patience: 100,
        trace_every: 50,
        seed,
        ..SynthesisOptions::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oblx-bench-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bench(c: &mut Criterion) {
    let compiled = astrx_oblx::compile_source(DIFFAMP).expect("diffamp compiles");

    // Cut one real mid-run checkpoint to serialize/persist/parse.
    let outcome = synthesize_controlled(&compiled, &opts(7, 2_000), None, 500, |_| Directive::Stop)
        .expect("diffamp synthesizes");
    let SynthesisOutcome::Interrupted(ck) = outcome else {
        panic!("hook stops at the first checkpoint");
    };
    let text = checkpoint_to_json(&ck);
    let ck_bytes = text.len();
    let dir = temp_dir("ckpt");

    let mut g = c.benchmark_group("runtime");
    g.bench_function("checkpoint_serialize", |b| {
        b.iter(|| black_box(checkpoint_to_json(&ck)))
    });
    let path = dir.join("seed_7.ckpt.json");
    g.bench_function("checkpoint_write_atomic", |b| {
        b.iter(|| write_atomic(&path, &text).expect("checkpoint persists"))
    });
    g.bench_function("checkpoint_parse", |b| {
        b.iter(|| black_box(checkpoint_from_json(&text).expect("round-trips")))
    });
    g.finish();

    // Resume cost: finish a 400-proposal run from a checkpoint cut at
    // proposal 300, against the cold run of the full budget. The gap
    // between (cold − resumed) and the skipped ¾ of the budget is the
    // restore overhead.
    let small = opts(7, 400);
    let cut = match synthesize_controlled(&compiled, &small, None, 300, |_| Directive::Stop)
        .expect("diffamp synthesizes")
    {
        SynthesisOutcome::Interrupted(ck) => ck,
        SynthesisOutcome::Complete(_) => panic!("400-proposal run passes proposal 300"),
    };
    let mut g = c.benchmark_group("runtime_resume");
    g.sample_size(10);
    g.bench_function("cold_400", |b| {
        b.iter(|| black_box(synthesize(&compiled, &small).expect("synthesizes")))
    });
    g.bench_function("resumed_from_300", |b| {
        b.iter(|| {
            let out =
                synthesize_controlled(&compiled, &small, Some(&cut), 0, |_| Directive::Continue)
                    .expect("resumes");
            black_box(out)
        })
    });
    g.finish();

    // Queue throughput: 100 small jobs through submit + pool drain.
    let spool_dir = temp_dir("spool");
    let spool = Spool::open(&spool_dir).expect("spool opens");
    let n_jobs = 100usize;
    let submit_start = Instant::now();
    for i in 0..n_jobs {
        spool
            .submit(JobRequest {
                name: format!("bench-{i}"),
                source: DIFFAMP.to_string(),
                deck: String::new(),
                options: opts(0, 60),
                seeds: vec![1],
                priority: 0,
            })
            .expect("submit succeeds");
    }
    let submit_s = submit_start.elapsed().as_secs_f64();
    let drain_start = Instant::now();
    let stats = pool::run(
        &spool,
        &PoolOptions {
            workers: 0,
            checkpoint_every: 1_000,
            drain: true,
            ..PoolOptions::default()
        },
        &AtomicBool::new(false),
    );
    let drain_s = drain_start.elapsed().as_secs_f64();
    assert_eq!(stats.jobs_completed, n_jobs, "every job drains");
    println!(
        "runtime/queue_throughput                 {n_jobs} jobs: submit {:.2} ms, drain {:.2} s ({:.1} jobs/s)",
        submit_s * 1e3,
        drain_s,
        n_jobs as f64 / drain_s
    );

    emit_json(c, ck_bytes, submit_s, drain_s, n_jobs);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&spool_dir);
}

/// Writes `BENCH_runtime.json` at the repo root: one flat record per
/// metric, all median seconds from the criterion results plus the
/// one-shot queue measurement.
fn emit_json(c: &Criterion, ck_bytes: usize, submit_s: f64, drain_s: f64, n_jobs: usize) {
    let median = |name: &str| {
        c.results()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
            .expect("bench ran")
    };
    let cold = median("runtime_resume/cold_400");
    let resumed = median("runtime_resume/resumed_from_300");
    let record = ObjBuilder::new()
        .field("format", "oblx-bench")
        .field("version", 1i64)
        .field("suite", "runtime")
        .field("checkpoint_bytes", ck_bytes as i64)
        .field(
            "checkpoint_serialize_s",
            median("runtime/checkpoint_serialize"),
        )
        .field(
            "checkpoint_write_atomic_s",
            median("runtime/checkpoint_write_atomic"),
        )
        .field("checkpoint_parse_s", median("runtime/checkpoint_parse"))
        .field("resume_cold_run_s", cold)
        .field("resume_resumed_run_s", resumed)
        .field("resume_fraction_of_cold", resumed / cold)
        .field("queue_jobs", n_jobs as i64)
        .field("queue_submit_s", submit_s)
        .field("queue_drain_s", drain_s)
        .field("queue_jobs_per_s", n_jobs as f64 / drain_s)
        .build();
    let out = repo_root().join("BENCH_runtime.json");
    std::fs::write(&out, format!("{}\n", record.to_json())).expect("BENCH_runtime.json written");
    println!("wrote {}", out.display());
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the repo root")
        .to_path_buf()
}

criterion_group!(benches, bench);
criterion_main!(benches);
