//! Telemetry hot-path overhead check: the same incremental cost
//! evaluation measured with recording disabled and enabled.
//!
//! The contract is that disabled telemetry costs one relaxed atomic
//! load per instrumented site and enabled telemetry stays under 5%
//! on the `cost_eval_incremental` hot path. The final line prints a
//! machine-greppable verdict (`TELEMETRY_OVERHEAD_OK pct=…` or
//! `TELEMETRY_OVERHEAD_FAIL pct=…`) for the CI smoke job.

use astrx_oblx::bench_suite;
use astrx_oblx::cost::CostEvaluator;
use astrx_oblx::AdaptiveWeights;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let b = bench_suite::by_name("Two-Stage").expect("Two-Stage benchmark exists");
    let compiled = oblx_bench::compiled(&b);
    let w = AdaptiveWeights::new(&compiled);
    let user0 = compiled.initial_user_values();
    let nodes0 = oblx_bench::newton_nodes(&compiled);

    let mut ev = CostEvaluator::new(&compiled);
    assert!(ev.has_plan(), "Two-Stage must compile to an eval plan");

    let mut g = c.benchmark_group("telemetry_overhead");

    // Incremental node-move evaluation, recording off (the default).
    {
        oblx_telemetry::set_enabled(false);
        let user = user0.clone();
        let mut nodes = nodes0.clone();
        g.bench_function("incremental_node_off", |bench| {
            bench.iter(|| {
                nodes[0] += 1e-12;
                black_box(ev.evaluate(&user, &nodes, &w).total)
            })
        });
    }

    // The same walk with every counter, histogram and span recording.
    {
        oblx_telemetry::reset();
        oblx_telemetry::set_enabled(true);
        let user = user0.clone();
        let mut nodes = nodes0.clone();
        g.bench_function("incremental_node_on", |bench| {
            bench.iter(|| {
                nodes[0] += 1e-12;
                black_box(ev.evaluate(&user, &nodes, &w).total)
            })
        });
        oblx_telemetry::set_enabled(false);
        let snap = oblx_telemetry::Snapshot::capture();
        assert!(
            snap.counter("eval_incremental") > 0,
            "the enabled pass must actually record"
        );
    }
    g.finish();

    let median = |name: &str| {
        c.results()
            .iter()
            .find(|(n, _)| n == &format!("telemetry_overhead/{name}"))
            .map(|(_, t)| *t)
            .expect("bench ran")
    };
    let off = median("incremental_node_off");
    let on = median("incremental_node_on");
    let pct = 100.0 * (on - off) / off;
    println!(
        "\ntelemetry off {:.2} µs/eval, on {:.2} µs/eval",
        off * 1e6,
        on * 1e6
    );
    let verdict = if pct < 5.0 {
        "TELEMETRY_OVERHEAD_OK"
    } else {
        "TELEMETRY_OVERHEAD_FAIL"
    };
    println!("{verdict} pct={pct:.2}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
