//! HTTP-edge benchmark: what the network front costs over the raw
//! spool, written to `BENCH_api.json` at the repo root.
//!
//! * **submit→accept latency** — client-observed wall time of a
//!   `POST /v1/jobs` (connect, edge-side parse + validate + compile,
//!   atomic spool write, 201), reported as p50/p90/p99 — measured
//!   both with a fresh connection per request and over a single
//!   keep-alive connection, so the connect/teardown cost is visible;
//! * **queue throughput through the edge** — the same 100-small-job
//!   drain the runtime suite times against the bare spool
//!   (`BENCH_runtime.json` `queue_jobs_per_s`), but with every job
//!   entering over HTTP;
//! * **quota under flood** — a burst far past the token bucket,
//!   counting how many requests the limiter turned away.
//!
//! Set `OBLX_BENCH_QUICK=1` to cut request counts (CI smoke mode).

use astrx_oblx::json::{ObjBuilder, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use oblx_api::server::{Server, ServerOptions};
use oblx_runtime::pool::{self, PoolOptions};
use oblx_runtime::spool::Spool;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const DIFFAMP: &str = include_str!("../../core/src/testdata/diffamp.ox");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oblx-bench-api-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One request, client side: connect, send, read the full response.
/// Asks for `Connection: close` so the read-to-EOF framing works;
/// this is the fresh-connection-per-request path. Returns the status.
fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("receive");
    let head = std::str::from_utf8(&bytes[..bytes.len().min(16)]).unwrap_or("");
    head.split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// One request on an already-open keep-alive connection: send, then
/// read exactly one `Content-Length`-framed response, leaving the
/// socket usable for the next request. Returns the status code.
fn roundtrip_on(stream: &mut TcpStream, method: &str, path: &str, body: &str) -> u16 {
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send");
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&bytes[..head_end]).to_ascii_lowercase();
            let need: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("content-length:"))
                .and_then(|v| v.trim().parse().ok())
                .expect("keep-alive response has Content-Length");
            if bytes.len() >= head_end + 4 + need {
                return head
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
            }
        }
        let n = stream.read(&mut chunk).expect("receive");
        assert!(n > 0, "server closed mid-response");
        bytes.extend_from_slice(&chunk[..n]);
    }
}

/// Matches the job shape of the runtime suite's queue-throughput bench
/// (60 moves, quench patience 100) so the drain rates are comparable.
fn submit_body(i: usize, moves: usize) -> String {
    ObjBuilder::new()
        .field("name", format!("edge-{i}"))
        .field("source", DIFFAMP)
        .field("seeds", Value::Arr(vec![Value::Int(1)]))
        .field("moves", i64::try_from(moves).unwrap())
        .field("quench", 100i64)
        .build()
        .to_json()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn bench(_c: &mut Criterion) {
    let quick = std::env::var_os("OBLX_BENCH_QUICK").is_some();
    let n_latency = if quick { 40 } else { 200 };
    let n_jobs = if quick { 20 } else { 100 };
    let n_flood: usize = if quick { 60 } else { 200 };

    // --- submit→accept latency -------------------------------------
    let dir = temp_dir("latency");
    let shutdown = Arc::new(AtomicBool::new(false));
    let opts = ServerOptions {
        quota_rate: 0.0,
        // High enough for the whole keep-alive run on one connection.
        keepalive_max_requests: 10_000,
        ..ServerOptions::default()
    };
    let server = Server::start(
        Spool::open(dir.join("spool")).unwrap(),
        &opts,
        Arc::clone(&shutdown),
    )
    .unwrap();
    let addr = server.addr();
    let mut lat_s: Vec<f64> = (0..n_latency)
        .map(|i| {
            let body = submit_body(i, 60);
            let t = Instant::now();
            let status = roundtrip(addr, "POST", "/v1/jobs", &body);
            let dt = t.elapsed().as_secs_f64();
            assert_eq!(status, 201, "submit accepted");
            dt
        })
        .collect();
    lat_s.sort_by(|a, b| a.total_cmp(b));
    let (p50, p90, p99) = (
        percentile(&lat_s, 0.50),
        percentile(&lat_s, 0.90),
        percentile(&lat_s, 0.99),
    );
    let submit_rate = n_latency as f64 / lat_s.iter().sum::<f64>();
    println!(
        "api/submit_accept_latency                {n_latency} posts: p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms ({:.1} submits/s sustained)",
        p50 * 1e3,
        p90 * 1e3,
        p99 * 1e3,
        submit_rate
    );
    // --- the same submits over one keep-alive connection -----------
    // Same server, same job shape; the only variable is connection
    // reuse, so the delta against the fresh-connection numbers above
    // is the per-request connect + teardown cost.
    let mut conn = TcpStream::connect(addr).expect("connect");
    let mut ka_s: Vec<f64> = (0..n_latency)
        .map(|i| {
            let body = submit_body(n_latency + i, 60);
            let t = Instant::now();
            let status = roundtrip_on(&mut conn, "POST", "/v1/jobs", &body);
            let dt = t.elapsed().as_secs_f64();
            assert_eq!(status, 201, "keep-alive submit accepted");
            dt
        })
        .collect();
    drop(conn);
    ka_s.sort_by(|a, b| a.total_cmp(b));
    let ka_p50 = percentile(&ka_s, 0.50);
    let ka_rate = n_latency as f64 / ka_s.iter().sum::<f64>();
    println!(
        "api/submit_keepalive                     {n_latency} posts on one connection: p50 {:.2} ms ({:.1} submits/s sustained)",
        ka_p50 * 1e3,
        ka_rate
    );
    shutdown.store(true, Ordering::SeqCst);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    // --- queue throughput through the edge -------------------------
    // Mirrors the runtime suite's 100-job drain so `queue_jobs_per_s`
    // here is directly comparable to the direct-spool baseline there.
    let dir = temp_dir("queue");
    let shutdown = Arc::new(AtomicBool::new(false));
    let opts = ServerOptions {
        quota_rate: 0.0,
        ..ServerOptions::default()
    };
    let server = Server::start(
        Spool::open(dir.join("spool")).unwrap(),
        &opts,
        Arc::clone(&shutdown),
    )
    .unwrap();
    let addr = server.addr();
    let submit_start = Instant::now();
    for i in 0..n_jobs {
        assert_eq!(
            roundtrip(addr, "POST", "/v1/jobs", &submit_body(i, 60)),
            201
        );
    }
    let submit_s = submit_start.elapsed().as_secs_f64();
    let spool = Spool::open(dir.join("spool")).unwrap();
    let drain_start = Instant::now();
    let stats = pool::run(
        &spool,
        &PoolOptions {
            workers: 0,
            checkpoint_every: 1_000,
            drain: true,
            ..PoolOptions::default()
        },
        &AtomicBool::new(false),
    );
    let drain_s = drain_start.elapsed().as_secs_f64();
    assert_eq!(stats.jobs_completed, n_jobs, "every job drains");
    println!(
        "api/queue_throughput                     {n_jobs} jobs over HTTP: submit {:.2} s ({:.1} jobs/s in), drain {:.2} s ({:.1} jobs/s)",
        submit_s,
        n_jobs as f64 / submit_s,
        drain_s,
        n_jobs as f64 / drain_s
    );
    shutdown.store(true, Ordering::SeqCst);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    // --- quota limiter under flood ----------------------------------
    let dir = temp_dir("flood");
    let shutdown = Arc::new(AtomicBool::new(false));
    let opts = ServerOptions {
        quota_rate: 50.0,
        quota_burst: 20.0,
        ..ServerOptions::default()
    };
    let server = Server::start(
        Spool::open(dir.join("spool")).unwrap(),
        &opts,
        Arc::clone(&shutdown),
    )
    .unwrap();
    let addr = server.addr();
    let flood_start = Instant::now();
    let mut rejected = 0usize;
    let mut served = 0usize;
    for _ in 0..n_flood {
        match roundtrip(addr, "GET", "/v1/metrics", "") {
            200 => served += 1,
            429 => rejected += 1,
            other => panic!("unexpected status {other} under flood"),
        }
    }
    let flood_s = flood_start.elapsed().as_secs_f64();
    assert!(rejected > 0, "the limiter engaged under flood");
    println!(
        "api/quota_flood                          {n_flood} reqs in {:.2} s: {served} served, {rejected} rejected 429",
        flood_s
    );
    shutdown.store(true, Ordering::SeqCst);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    // --- emit -------------------------------------------------------
    let record = ObjBuilder::new()
        .field("format", "oblx-bench")
        .field("version", 1i64)
        .field("suite", "api")
        .field("submit_posts", i64::try_from(n_latency).unwrap())
        .field("submit_p50_s", p50)
        .field("submit_p90_s", p90)
        .field("submit_p99_s", p99)
        .field("submit_sustained_per_s", submit_rate)
        .field("keepalive_posts", i64::try_from(n_latency).unwrap())
        .field("keepalive_p50_s", ka_p50)
        .field("keepalive_sustained_per_s", ka_rate)
        .field("queue_jobs", i64::try_from(n_jobs).unwrap())
        .field("queue_http_submit_s", submit_s)
        .field("queue_drain_s", drain_s)
        .field("queue_jobs_per_s", n_jobs as f64 / drain_s)
        .field("flood_requests", i64::try_from(n_flood).unwrap())
        .field("flood_served", i64::try_from(served).unwrap())
        .field("flood_quota_rejected", i64::try_from(rejected).unwrap())
        .field("flood_s", flood_s)
        .build();
    let out = repo_root().join("BENCH_api.json");
    std::fs::write(&out, format!("{}\n", record.to_json())).expect("BENCH_api.json written");
    println!("wrote {}", out.display());
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the repo root")
        .to_path_buf()
}

criterion_group!(benches, bench);
criterion_main!(benches);
