//! §VI model experiment: the same Simple OTA problem evaluated under
//! BSIM/2µ, BSIM/1.2µ, and MOS3/1.2µ decks — the cost-evaluation price
//! of each deck, plus a printed short-synthesis area comparison.
//!
//! Paper result: areas 580 µm² (BSIM/2µ) > 300 µm² (BSIM/1.2µ) >
//! 140 µm² (MOS3/1.2µ) for identical specs.

use astrx_oblx::bench_suite;
use astrx_oblx::cost::CostEvaluator;
use astrx_oblx::oblx::{synthesize, SynthesisOptions};
use astrx_oblx::report::eng;
use astrx_oblx::verify::verify_result;
use astrx_oblx::AdaptiveWeights;
use criterion::{criterion_group, criterion_main, Criterion};
use oblx_devices::process::ProcessDeck;
use std::hint::black_box;

const DECKS: [ProcessDeck; 3] = [
    ProcessDeck::C2Bsim,
    ProcessDeck::C12Bsim,
    ProcessDeck::C12Level3,
];

fn print_experiment() {
    println!("\n§VI model experiment (short runs; paper areas 580/300/140 µm²):");
    let b = bench_suite::simple_ota();
    for deck in DECKS {
        let compiled = astrx_oblx::astrx::compile(b.problem_with_deck(deck).expect("parses"))
            .expect("compiles");
        let result = synthesize(
            &compiled,
            &SynthesisOptions {
                moves_budget: oblx_bench::synthesis_budget(12_000),
                seed: 9,
                ..SynthesisOptions::default()
            },
        )
        .expect("synthesis");
        match verify_result(&compiled, &result) {
            Ok(v) => println!(
                "  {:<10} area {} m^2, cost {:.3}, pred err {:.2}%",
                deck.label(),
                eng(v.area),
                result.best_cost,
                100.0 * v.worst_relative_error()
            ),
            Err(e) => println!("  {:<10} verification failed: {e}", deck.label()),
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_experiment();
    let b = bench_suite::simple_ota();
    let mut g = c.benchmark_group("model_experiment_eval_cost");
    for deck in DECKS {
        let compiled = astrx_oblx::astrx::compile(b.problem_with_deck(deck).expect("parses"))
            .expect("compiles");
        let mut ev = CostEvaluator::new(&compiled);
        let w = AdaptiveWeights::new(&compiled);
        let user = compiled.initial_user_values();
        let nodes = oblx_bench::newton_nodes(&compiled);
        g.bench_function(deck.label(), |bench| {
            bench.iter(|| black_box(ev.evaluate(&user, &nodes, &w).total))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
