//! Table 2's "CPU time/run" row: a complete (budgeted) OBLX annealing
//! run on the Simple OTA, timed end to end, plus a printed spec table
//! from a short run.
//!
//! The full Table 2 regeneration with production budgets lives in
//! `examples/table2_synthesis.rs`; this bench keeps a fixed small
//! budget so the number is comparable across code changes.

use astrx_oblx::bench_suite;
use astrx_oblx::oblx::{synthesize, SynthesisOptions};
use astrx_oblx::report::{eng, pair, TextTable};
use astrx_oblx::verify::verify_result;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_short_run() {
    let b = bench_suite::simple_ota();
    let compiled = oblx_bench::compiled(&b);
    let result = synthesize(
        &compiled,
        &SynthesisOptions {
            moves_budget: oblx_bench::synthesis_budget(15_000),
            seed: 1,
            ..SynthesisOptions::default()
        },
    )
    .expect("synthesis");
    println!(
        "\nSimple OTA short run: cost {:.3}, kcl {:.2e} A, {:.3} ms/eval (paper: 36 ms, 6 min/run)",
        result.best_cost, result.kcl_max, result.ms_per_eval
    );
    if let Ok(v) = verify_result(&compiled, &result) {
        let mut t = TextTable::new(vec!["goal", "spec(good)", "OBLX / simulation"]);
        for ((name, p, s), goal) in v.rows.iter().zip(compiled.problem.specs.iter()) {
            t.row(vec![name.clone(), eng(goal.good), pair(*p, *s)]);
        }
        println!("{}", t.render());
        println!(
            "worst prediction error {:.2}% (paper: 'match simulation almost exactly')\n",
            100.0 * v.worst_relative_error()
        );
    }
}

fn bench(c: &mut Criterion) {
    print_short_run();
    let compiled = oblx_bench::compiled(&bench_suite::simple_ota());
    let mut g = c.benchmark_group("table2_synthesis_run");
    g.sample_size(10);
    g.bench_function("simple_ota_2k_moves", |bench| {
        bench.iter(|| {
            let r = synthesize(
                &compiled,
                &SynthesisOptions {
                    moves_budget: 2_000,
                    seed: 11,
                    quench_patience: 200,
                    ..SynthesisOptions::default()
                },
            )
            .expect("synthesis");
            black_box(r.best_cost)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
