//! §IV's efficiency claim: AWE evaluates a linear circuit for the cost
//! of roughly one LU factorization, "orders of magnitude faster" than a
//! SPICE-class per-frequency analysis.
//!
//! For each benchmark jig (linearized at a Newton-solved bias point)
//! this bench times: one AWE analysis (moments + Padé + poles), one
//! single-frequency complex solve, and a 30-point ac sweep.

use astrx_oblx::bench_suite;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n§IV AWE-vs-simulation economics (paper: tens of ms per AWE eval in 1994;");
    println!("a SPICE-style multi-frequency analysis costs 1–2 orders of magnitude more)\n");
    for b in [
        bench_suite::simple_ota(),
        bench_suite::two_stage(),
        bench_suite::folded_cascode(),
        bench_suite::novel_folded_cascode(),
    ] {
        let compiled = oblx_bench::compiled(&b);
        let (sys, src, out) = oblx_bench::first_jig_system(&compiled);
        let dim = sys.dim();
        let mut g = c.benchmark_group(format!("awe_speed/{}", b.name));
        g.bench_function(format!("awe_analysis_dim{dim}"), |bench| {
            bench.iter(|| {
                let m = oblx_awe::analyze(&sys, &src, out, 5).expect("model");
                black_box(m.dc_gain())
            })
        });
        g.bench_function("single_complex_solve", |bench| {
            bench.iter(|| black_box(sys.transfer(&src, out, 1.0e6).expect("solve").norm()))
        });
        g.bench_function("ac_sweep_30pt", |bench| {
            bench.iter(|| {
                let mut acc = 0.0;
                for i in 0..30 {
                    let f = 10f64.powf(1.0 + 8.0 * i as f64 / 29.0);
                    acc += sys
                        .transfer(&src, out, 2.0 * std::f64::consts::PI * f)
                        .expect("solve")
                        .norm();
                }
                black_box(acc)
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
