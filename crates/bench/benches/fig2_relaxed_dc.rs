//! Fig. 2 — the relaxed-dc trace, plus the cost of the Newton–Raphson
//! *move* the formulation replaces with a penalty term (the economics
//! the relaxed-dc idea rests on: a full NR solve costs many evaluations'
//! worth of work, so it must not run on every annealing move).

use astrx_oblx::bench_suite;
use astrx_oblx::oblx::{synthesize, OblxProblem, SynthesisOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use oblx_anneal::AnnealProblem;
use rand::SeedableRng;
use std::hint::black_box;

fn print_fig2() {
    let b = bench_suite::simple_ota();
    let compiled = oblx_bench::compiled(&b);
    let moves = oblx_bench::synthesis_budget(12_000);
    let result = synthesize(
        &compiled,
        &SynthesisOptions {
            moves_budget: moves,
            seed: 5,
            trace_every: moves / 24,
            ..SynthesisOptions::default()
        },
    )
    .expect("synthesis");
    println!("\nFig. 2 — max |KCL residual| (A) vs move count, Simple OTA:");
    for (mv, kcl) in result.trace.series("kcl_max").expect("traced") {
        println!("  move {mv:>7}: {kcl:.3e}");
    }
    println!("  final best: {:.3e} A\n", result.kcl_max);
}

fn bench(c: &mut Criterion) {
    print_fig2();
    let compiled = oblx_bench::compiled(&bench_suite::simple_ota());
    let mut problem = OblxProblem::new(&compiled, SynthesisOptions::default());
    let state = problem.initial_state();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    let mut g = c.benchmark_group("fig2_relaxed_dc");
    // One full-NR move (Jacobian build + factor + solve) vs one random
    // node move — the cost asymmetry that motivates relaxed dc.
    g.bench_function("newton_full_move", |bench| {
        bench.iter(|| black_box(problem.propose(black_box(&state), 4, 1.0, &mut rng)))
    });
    g.bench_function("random_node_move", |bench| {
        bench.iter(|| black_box(problem.propose(black_box(&state), 2, 1.0, &mut rng)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
