//! Sparse vs dense LU on the Two-Stage jig system: the primitive costs
//! behind the plan's incremental evaluation path.
//!
//! Measures, on the same `(G, b)` the synthesis hot path factors:
//!
//! * `dense_factor` — `Lu::factor` including the `G` clone the cold
//!   path pays per evaluation;
//! * `sparse_symbolic` — Markowitz ordering + fill-in computation (paid
//!   once per plan compile, never per move);
//! * `sparse_refactor` — numeric-only refactorization on the fixed
//!   pivot order (paid once per dirty jig per move);
//! * `dense_solve_t16` / `sparse_solve_t16` — the 2q = 16 transpose
//!   solves of one AWE moment chain.
//!
//! The final line prints a machine-greppable verdict for the CI smoke
//! job (`SPARSE_LU_OK …` / `SPARSE_LU_FAIL …`). The gates are
//! *within-run ratios* — sparse refactor vs dense factor, sparse vs
//! dense solve chain — so they hold across machines of different
//! absolute speed. Thresholds carry ≥25% headroom over the recorded
//! ratios in BENCH_eval.json; crossing one means the sparse path
//! regressed structurally, not that the VM had a slow day.
//!
//! Set `OBLX_BENCH_QUICK=1` to cut sample counts (CI smoke mode).

use criterion::{criterion_group, criterion_main, Criterion};
use oblx_linalg::{Lu, SparseLu};
use std::hint::black_box;

/// Refactor must stay well under a dense factor; recorded ratio ≈ 0.13.
const MAX_REFACTOR_RATIO: f64 = 0.625;
/// Sparse transpose solves must not fall behind dense; recorded ≈ 0.40.
const MAX_SOLVE_RATIO: f64 = 1.0;

fn bench(c: &mut Criterion) {
    let b = astrx_oblx::bench_suite::by_name("Two-Stage").expect("Two-Stage benchmark exists");
    let compiled = oblx_bench::compiled(&b);
    let (sys, src, _out) = oblx_bench::first_jig_system(&compiled);
    let bvec = sys.input_vector(&src).expect("stimulus resolves");

    let map = sys.stamp_map();
    let (mut g_vals, mut c_vals) = (Vec::new(), Vec::new());
    sys.sparse_vals_into(&mut g_vals, &mut c_vals);

    // Cross-check before timing anything: the two factorizations must
    // agree on this system (they use different pivot orders, so exact
    // bit-identity is not expected here — the plan gets bit-identity by
    // never mixing engines on one circuit).
    {
        let lu = Lu::factor(sys.g.clone()).expect("dense factors");
        let slu = SparseLu::symbolic(map.dim(), map.entries())
            .and_then(|mut s| s.refactor(&g_vals).map(|_| s))
            .expect("sparse factors");
        let (mut xd, mut xs) = (Vec::new(), Vec::new());
        let mut scratch = Vec::new();
        lu.solve_transpose_into(&bvec, &mut xd, &mut scratch);
        slu.solve_transpose_into(&bvec, &mut xs, &mut scratch);
        for (a, b) in xd.iter().zip(&xs) {
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "sparse and dense transpose solves disagree: {a} vs {b}"
            );
        }
    }

    let quick = std::env::var_os("OBLX_BENCH_QUICK").is_some();
    let mut g = c.benchmark_group("sparse_lu");
    if quick {
        g.sample_size(5);
    }

    g.bench_function("dense_factor", |bench| {
        bench.iter(|| black_box(Lu::factor(sys.g.clone()).expect("factors")))
    });

    g.bench_function("sparse_symbolic", |bench| {
        bench.iter(|| black_box(SparseLu::symbolic(map.dim(), map.entries()).expect("orders")))
    });

    {
        let mut slu = SparseLu::symbolic(map.dim(), map.entries()).expect("orders");
        g.bench_function("sparse_refactor", |bench| {
            bench.iter(|| slu.refactor(black_box(&g_vals)).expect("refactors"))
        });
    }

    {
        let lu = Lu::factor(sys.g.clone()).expect("factors");
        let (mut x, mut scratch) = (Vec::new(), Vec::new());
        g.bench_function("dense_solve_t16", |bench| {
            bench.iter(|| {
                for _ in 0..16 {
                    lu.solve_transpose_into(black_box(&bvec), &mut x, &mut scratch);
                    black_box(&x);
                }
            })
        });
    }

    {
        let mut slu = SparseLu::symbolic(map.dim(), map.entries()).expect("orders");
        slu.refactor(&g_vals).expect("refactors");
        let (mut x, mut scratch) = (Vec::new(), Vec::new());
        g.bench_function("sparse_solve_t16", |bench| {
            bench.iter(|| {
                for _ in 0..16 {
                    slu.solve_transpose_into(black_box(&bvec), &mut x, &mut scratch);
                    black_box(&x);
                }
            })
        });
        println!(
            "  system dim {}, nnz {} -> fill {}",
            map.dim(),
            slu.nnz(),
            slu.fill_nnz()
        );
    }
    g.finish();

    let median = |name: &str| {
        c.results()
            .iter()
            .find(|(n, _)| n == &format!("sparse_lu/{name}"))
            .map(|(_, t)| *t)
            .expect("bench ran")
    };
    let refactor_ratio = median("sparse_refactor") / median("dense_factor");
    let solve_ratio = median("sparse_solve_t16") / median("dense_solve_t16");
    println!(
        "\nsparse_refactor/dense_factor = {refactor_ratio:.3} (gate < {MAX_REFACTOR_RATIO}), \
         sparse/dense solve_t16 = {solve_ratio:.3} (gate < {MAX_SOLVE_RATIO})"
    );
    let verdict = if refactor_ratio < MAX_REFACTOR_RATIO && solve_ratio < MAX_SOLVE_RATIO {
        "SPARSE_LU_OK"
    } else {
        "SPARSE_LU_FAIL"
    };
    println!("{verdict} refactor_ratio={refactor_ratio:.3} solve_ratio={solve_ratio:.3}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
