//! The tentpole speedup benchmark: one OBLX cost evaluation of the
//! Two-Stage amplifier under each evaluator path.
//!
//! * `full_rebuild` — the pre-plan baseline: re-parse variable maps,
//!   rebuild every `SizedCircuit`, restamp and re-solve (what every
//!   evaluation cost before the precompiled plan existed);
//! * `plan_full` — plan-based full update (all bindings re-applied into
//!   preallocated buffers, no `HashMap`/`String` work);
//! * `incremental_node` — single node-voltage move: dirty-set diffing
//!   recomputes only the touched device ops, the KCL residual, and the
//!   jigs that contain the moved node;
//! * `incremental_geom` — single device-geometry move: one device
//!   re-evaluated, its jigs re-AWE'd;
//! * `cached_rescore` — exact state revisit served from a slot.
//!
//! Each scenario walks monotonically (`+1 ulp`-scale steps) so no
//! evaluation after the first ever hits the exact-match cache unless
//! that is the point of the scenario.

use astrx_oblx::bench_suite;
use astrx_oblx::cost::CostEvaluator;
use astrx_oblx::AdaptiveWeights;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let b = bench_suite::by_name("Two-Stage").expect("Two-Stage benchmark exists");
    let compiled = oblx_bench::compiled(&b);
    let w = AdaptiveWeights::new(&compiled);
    let user0 = compiled.initial_user_values();
    let nodes0 = oblx_bench::newton_nodes(&compiled);

    let mut ev = CostEvaluator::new(&compiled);
    assert!(ev.has_plan(), "Two-Stage must compile to an eval plan");

    let mut g = c.benchmark_group("cost_eval_incremental");
    if std::env::var_os("OBLX_BENCH_QUICK").is_some() {
        g.sample_size(5);
    }

    // Baseline: what one evaluation cost before the plan existed.
    {
        let cold = CostEvaluator::new(&compiled);
        let (user, nodes) = (user0.clone(), nodes0.clone());
        g.bench_function("full_rebuild", |bench| {
            bench.iter(|| {
                let r = cold.record(&user, &nodes).expect("evaluable");
                black_box(cold.cost_of_record(&r, &w).expect("scorable").total)
            })
        });
    }

    // Plan-based full update: every user variable moves each step.
    {
        let mut user = user0.clone();
        let nodes = nodes0.clone();
        let before = ev.stats();
        g.bench_function("plan_full", |bench| {
            bench.iter(|| {
                for v in user.iter_mut() {
                    *v *= 1.0 + 1e-12;
                }
                black_box(ev.evaluate(&user, &nodes, &w).total)
            })
        });
        report_paths("plan_full", ev.stats() - before);
    }

    // Incremental: one node voltage moves each step.
    {
        let user = user0.clone();
        let mut nodes = nodes0.clone();
        let before = ev.stats();
        g.bench_function("incremental_node", |bench| {
            bench.iter(|| {
                nodes[0] += 1e-12;
                black_box(ev.evaluate(&user, &nodes, &w).total)
            })
        });
        report_paths("incremental_node", ev.stats() - before);
    }

    // Incremental: one device geometry moves each step.
    {
        let mut user = user0.clone();
        let nodes = nodes0.clone();
        let before = ev.stats();
        g.bench_function("incremental_geom", |bench| {
            bench.iter(|| {
                user[0] *= 1.0 + 1e-12;
                black_box(ev.evaluate(&user, &nodes, &w).total)
            })
        });
        report_paths("incremental_geom", ev.stats() - before);
    }

    // Exact revisit: rescore a cached slot.
    {
        let (user, nodes) = (user0.clone(), nodes0.clone());
        ev.evaluate(&user, &nodes, &w);
        let before = ev.stats();
        g.bench_function("cached_rescore", |bench| {
            bench.iter(|| black_box(ev.evaluate(&user, &nodes, &w).total))
        });
        report_paths("cached_rescore", ev.stats() - before);
    }
    g.finish();

    let median = |name: &str| {
        c.results()
            .iter()
            .find(|(n, _)| n == &format!("cost_eval_incremental/{name}"))
            .map(|(_, t)| *t)
            .expect("bench ran")
    };
    let full = median("full_rebuild");
    println!(
        "\nSpeedup over the pre-plan full rebuild ({:.2} µs/eval):",
        full * 1e6
    );
    for name in [
        "plan_full",
        "incremental_node",
        "incremental_geom",
        "cached_rescore",
    ] {
        let t = median(name);
        println!("  {name:<18} {:>8.2} µs/eval  {:>6.1}×", t * 1e6, full / t);
    }

    // CI smoke gate on the *within-run* ratio (machine-independent;
    // absolute µs swing ±30% on shared VMs while this ratio holds).
    // Recorded ratio ≈ 0.08 (BENCH_eval.json); the pre-sparse plan
    // scored 0.28. The 0.20 threshold sits between them with >25%
    // headroom on both sides, so only a structural regression of the
    // sparse / incremental path can cross it — quick-mode noise cannot.
    let ratio = median("incremental_node") / full;
    let verdict = if ratio < 0.20 {
        "EVAL_SPEEDUP_OK"
    } else {
        "EVAL_SPEEDUP_FAIL"
    };
    println!("{verdict} incremental/full_rebuild={ratio:.3}");
}

/// Prints which evaluator paths a scenario actually exercised, so a
/// regression that silently demotes `incremental` to `full` shows up.
fn report_paths(name: &str, d: astrx_oblx::EvalStats) {
    println!(
        "  {name}: {} cold, {} full, {} incremental, {} cached",
        d.cold, d.full, d.incremental, d.cached
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
