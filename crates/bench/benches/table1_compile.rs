//! Table 1 — ASTRX analysis statistics, plus the compile-time cost of
//! producing them for every benchmark.

use astrx_oblx::bench_suite;
use astrx_oblx::report::TextTable;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_table1() {
    let mut t = TextTable::new(vec![
        "circuit",
        "in lines (paper)",
        "user vars (paper)",
        "node vars (paper)",
        "terms (paper)",
        "C lines (paper)",
    ]);
    for b in bench_suite::all() {
        let c = oblx_bench::compiled(&b);
        let s = &c.stats;
        let p = &b.paper;
        t.row(vec![
            b.name.to_string(),
            format!(
                "{} ({})",
                s.netlist_lines + s.synthesis_lines,
                p.netlist_lines + p.synthesis_lines
            ),
            format!("{} ({})", s.user_vars, p.user_vars),
            format!("{} ({})", s.node_vars, p.node_vars),
            format!("{} ({})", s.terms, p.terms),
            format!("{} ({})", s.c_lines, p.c_lines),
        ]);
    }
    println!(
        "\nTable 1 — ASTRX analysis (measured, paper in parens)\n{}",
        t.render()
    );
}

fn bench(c: &mut Criterion) {
    print_table1();
    let mut g = c.benchmark_group("table1_astrx_compile");
    for b in bench_suite::all() {
        let problem = b.problem().expect("parses");
        g.bench_function(b.name, |bench| {
            bench.iter(|| {
                let compiled =
                    astrx_oblx::astrx::compile(black_box(problem.clone())).expect("compiles");
                black_box(compiled.stats.terms)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
