//! Table 3 — the novel folded cascode: per-evaluation cost (the paper's
//! 83 ms row) and a budgeted re-synthesis printout against the manual
//! design's numbers.

use astrx_oblx::bench_suite;
use astrx_oblx::cost::CostEvaluator;
use astrx_oblx::oblx::{synthesize, SynthesisOptions};
use astrx_oblx::report::{pair, TextTable};
use astrx_oblx::verify::verify_result;
use astrx_oblx::AdaptiveWeights;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_resynthesis() {
    let b = bench_suite::novel_folded_cascode();
    let compiled = oblx_bench::compiled(&b);
    let result = synthesize(
        &compiled,
        &SynthesisOptions {
            moves_budget: oblx_bench::synthesis_budget(15_000),
            seed: 3,
            ..SynthesisOptions::default()
        },
    )
    .expect("synthesis");
    println!(
        "\nTable 3 short re-synthesis: cost {:.3}, kcl {:.2e} A, {:.3} ms/eval (paper: 83 ms, 116 min/run)",
        result.best_cost, result.kcl_max, result.ms_per_eval
    );
    match verify_result(&compiled, &result) {
        Ok(v) => {
            let mut t = TextTable::new(vec!["attribute", "OBLX / simulation"]);
            for (name, p, s) in &v.rows {
                t.row(vec![name.clone(), pair(*p, *s)]);
            }
            println!("{}", t.render());
        }
        Err(e) => println!("verification failed at this budget: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    print_resynthesis();
    let compiled = oblx_bench::compiled(&bench_suite::novel_folded_cascode());
    let mut ev = CostEvaluator::new(&compiled);
    let w = AdaptiveWeights::new(&compiled);
    let user = compiled.initial_user_values();
    let nodes = oblx_bench::newton_nodes(&compiled);
    let mut g = c.benchmark_group("table3_novel_folded_cascode");
    g.bench_function("cost_evaluation", |bench| {
        bench.iter(|| black_box(ev.evaluate(black_box(&user), black_box(&nodes), &w).total))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
