//! Encapsulated-device-evaluator throughput: the innermost kernel of
//! every cost evaluation. The paper's architecture assumes evaluators
//! are cheap enough to call for every device on every annealing move.

use criterion::{criterion_group, criterion_main, Criterion};
use oblx_devices::process::ProcessDeck;
use oblx_devices::{BjtModel, BjtParams, ModelLibrary};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("device_eval");

    for (label, deck) in [
        ("mos_level1", ProcessDeck::C2Level1),
        ("mos_level3", ProcessDeck::C12Level3),
        ("mos_bsim", ProcessDeck::C2Bsim),
    ] {
        let lib = ModelLibrary::from_cards(&deck.cards()).expect("deck");
        let m = lib.mos("nmos").expect("nmos").clone();
        g.bench_function(label, |bench| {
            bench.iter(|| {
                // A small grid of bias points exercises all regions.
                let mut acc = 0.0;
                for vd in [0.1, 1.5, 4.0] {
                    for vg in [0.5, 1.5, 3.0] {
                        let op = m.op(20e-6, 2e-6, vd, vg, 0.0, 0.0);
                        acc += op.id + op.gm;
                    }
                }
                black_box(acc)
            })
        });
    }

    let q = BjtModel::new("q", true, BjtParams::default());
    g.bench_function("bjt_gummel_poon", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for vb in [0.3, 0.65, 0.8] {
                for vc in [0.2, 2.0, 4.5] {
                    let op = q.op(1.0, vc, vb, 0.0);
                    acc += op.ic + op.gm_be;
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
