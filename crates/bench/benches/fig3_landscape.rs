//! Fig. 3 — the accuracy/effort landscape: times the two baseline
//! methods (square-law design procedure; one gradient step of the
//! DELIGHT-style local optimizer) against one OBLX cost evaluation,
//! and prints the landscape rows.

use astrx_oblx::bench_suite;
use astrx_oblx::cost::CostEvaluator;
use astrx_oblx::verify::verify_design;
use astrx_oblx::AdaptiveWeights;
use criterion::{criterion_group, criterion_main, Criterion};
use oblx_baselines::delight::simulator_cost;
use oblx_baselines::equation::{design_simple_ota, OtaSpec, SquareLawProcess};
use oblx_baselines::fig3::fig3_points;
use std::hint::black_box;

fn print_fig3() {
    println!("\nFig. 3 — literature cluster coordinates (as plotted by the paper):");
    for p in fig3_points() {
        println!(
            "  {:<34} {:<28} complexity {:>3}  error {:>5.0}%  effort {:>6.0} h",
            p.tool,
            p.class.label(),
            p.complexity,
            p.error_pct,
            p.effort_hours
        );
    }
    // Measured equation-based point.
    let b = bench_suite::simple_ota();
    let compiled = oblx_bench::compiled(&b);
    let d = design_simple_ota(&OtaSpec::default(), &SquareLawProcess::default());
    let state = d.to_state(&compiled);
    if let Ok(v) = verify_design(&compiled, &state, &d.predicted) {
        println!(
            "  {:<34} {:<28} measured error {:>5.0}% (against the BSIM-deck simulator)",
            "square-law OTA design (this repo)",
            "equation-based (simplified)",
            100.0 * v.worst_relative_error()
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_fig3();
    let b = bench_suite::simple_ota();
    let compiled = oblx_bench::compiled(&b);

    let mut g = c.benchmark_group("fig3_method_costs");
    g.bench_function("equation_based_design", |bench| {
        bench.iter(|| {
            black_box(design_simple_ota(
                &OtaSpec::default(),
                &SquareLawProcess::default(),
            ))
        })
    });

    let mut ev = CostEvaluator::new(&compiled);
    let w = AdaptiveWeights::new(&compiled);
    let user = compiled.initial_user_values();
    let nodes = oblx_bench::newton_nodes(&compiled);
    g.bench_function("oblx_cost_evaluation", |bench| {
        bench.iter(|| black_box(ev.evaluate(&user, &nodes, &w).total))
    });

    g.sample_size(10);
    g.bench_function("delight_full_simulation_eval", |bench| {
        bench.iter(|| black_box(simulator_cost(&compiled, &user)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
