//! Shared fixtures for the table/figure regeneration benches.
//!
//! Every bench in `benches/` regenerates one table or figure of the
//! paper: it prints the measured rows (so EXPERIMENTS.md can quote
//! them) and times the kernel that the paper's corresponding metric
//! depends on.

use astrx_oblx::astrx::{compile, determined_voltages, CompiledProblem};
use astrx_oblx::bench_suite::Benchmark;
use oblx_mna::{solve_dc_with, DcOptions, LinearSystem, OutputSelector, SizedCircuit};

/// Compiles a benchmark, panicking with its name on failure (benches
/// are allowed to be loud).
pub fn compiled(b: &Benchmark) -> CompiledProblem {
    compile(b.problem().unwrap_or_else(|e| panic!("{}: {e}", b.name)))
        .unwrap_or_else(|e| panic!("{}: {e}", b.name))
}

/// Newton-solves the bias circuit of a compiled benchmark at its
/// default sizing and returns the free-node voltages (the relaxed-dc
/// state of a dc-correct point).
pub fn newton_nodes(c: &CompiledProblem) -> Vec<f64> {
    let user = c.initial_user_values();
    let vars = c.var_map(&user);
    let bias = SizedCircuit::build(&c.bias_netlist, &vars, &c.lib).expect("bias builds");
    let opts = DcOptions {
        abstol_i: 1e-8,
        max_iters: 300,
        ..DcOptions::default()
    };
    let op = solve_dc_with(&bias, &opts, None).expect("newton converges");
    determined_voltages(&bias)
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_none())
        .map(|(i, _)| op.v[i])
        .collect()
}

/// Builds the first jig's linearized system at the Newton-solved bias
/// point: `(system, source name, output probe)`.
pub fn first_jig_system(c: &CompiledProblem) -> (LinearSystem, String, OutputSelector) {
    let user = c.initial_user_values();
    let vars = c.var_map(&user);
    let bias = SizedCircuit::build(&c.bias_netlist, &vars, &c.lib).expect("bias builds");
    let opts = DcOptions {
        abstol_i: 1e-8,
        max_iters: 300,
        ..DcOptions::default()
    };
    let op = solve_dc_with(&bias, &opts, None).expect("newton converges");

    let jig = &c.jigs[0];
    let ckt = SizedCircuit::build(&jig.netlist, &vars, &c.lib).expect("jig builds");
    let mos: Vec<_> = ckt
        .mosfets
        .iter()
        .map(|m| {
            let i = bias
                .mosfets
                .iter()
                .position(|bm| bm.name == m.name)
                .expect("bias counterpart");
            op.mos_ops[i]
        })
        .collect();
    let bjt: Vec<_> = ckt
        .bjts
        .iter()
        .map(|q| {
            let i = bias
                .bjts
                .iter()
                .position(|bq| bq.name == q.name)
                .expect("bias counterpart");
            op.bjt_ops[i]
        })
        .collect();
    let diode: Vec<_> = ckt
        .diodes
        .iter()
        .map(|d| {
            let i = bias
                .diodes
                .iter()
                .position(|bd| bd.name == d.name)
                .expect("bias counterpart");
            op.diode_ops[i]
        })
        .collect();
    let sys = LinearSystem::from_device_ops(&ckt, &mos, &bjt, &diode);
    let a = &jig.analyses[0];
    let out = sys
        .output_selector(&a.out_p, a.out_m.as_deref())
        .expect("probe resolves");
    (sys, a.source.clone(), out)
}

/// Environment-tunable synthesis budget for the heavyweight benches.
pub fn synthesis_budget(default: usize) -> usize {
    std::env::var("OBLX_MOVES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}
